// Victim-serving micro-benchmarks: fp64 vs int8-quantized PolicyHandle
// throughput — the cost model behind the quantized serving path (nn/quant.h).
//
// The custom main() first runs an inference probe (skipped when
// IMAP_BENCH_NO_PROBE is set, e.g. by the CI bench-smoke stage): the same
// frozen victim ({11, 64, 64, 3}, Hopper scale) is served through a plain
// fp64 PolicyHandle and through an int8 handle built under ScopedVictimQuant,
// query_batch is timed at batch 16/32/64 (min over 7 repetitions each), and
// the per-batch throughput, speedup and the max |Δaction| between the two
// paths are recorded in BENCH_infer.json (committed, see README). The
// google-benchmark suites then run as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "grid_runner.h"
#include "nn/batch.h"
#include "nn/gaussian.h"
#include "nn/kernel_backend.h"
#include "nn/mlp.h"
#include "nn/quant.h"
#include "rl/policy_handle.h"

using namespace imap;

namespace {

/// The frozen victim every benchmark serves: locomotion-scale obs/action
/// widths with the standard {64, 64} tanh torso.
std::shared_ptr<const nn::GaussianPolicy> make_victim() {
  Rng rng(11);
  return std::make_shared<const nn::GaussianPolicy>(
      11, 3, std::vector<std::size_t>{64, 64}, rng);
}

nn::Batch random_obs(std::size_t rows, std::size_t dim, Rng& rng) {
  nn::Batch b(rows, dim);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < dim; ++c) b(r, c) = rng.normal(0.0, 1.0);
  return b;
}

// Victim query throughput through PolicyHandle: Arg0 = batch size, Arg1 = 0
// for the fp64 path, 1 for the int8-quantized path. items/s is queries/s.
void BM_VictimQueryBatch(benchmark::State& state) {
  const auto victim = make_victim();
  const bool quant = state.range(1) != 0;
  nn::ScopedVictimQuant scope(quant);
  rl::PolicyHandle handle(victim);
  Rng rng(7);
  const auto b = static_cast<std::size_t>(state.range(0));
  const nn::Batch obs = random_obs(b, victim->obs_dim(), rng);
  nn::Mlp::Workspace ws;
  for (auto _ : state) {
    const auto& y = handle.query_batch(obs, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(quant ? "int8" : "fp64");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b));
}
BENCHMARK(BM_VictimQueryBatch)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

/// Seconds for `calls` back-to-back query_batch calls on `obs`, min over 7
/// repetitions (min, not mean: background load only ever inflates a rep, so
/// the minimum is the robust estimate of the serving cost).
double time_queries(const rl::PolicyHandle& handle, const nn::Batch& obs,
                    int calls) {
  nn::Mlp::Workspace ws;
  handle.query_batch(obs, ws);  // warm-up: grow the workspace arenas
  constexpr int kReps = 7;
  double secs = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) {
      const auto& y = handle.query_batch(obs, ws);
      benchmark::DoNotOptimize(y.data());
    }
    secs = std::min(
        secs, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  return secs;
}

void infer_probe() {
  const auto victim = make_victim();
  const rl::PolicyHandle fp64_handle(victim);
  const rl::PolicyHandle int8_handle = [&victim] {
    nn::ScopedVictimQuant on(true);
    return rl::PolicyHandle(victim);
  }();

  // Accuracy first: the speedup claim is only meaningful alongside the
  // pinned error bound the tests enforce (kQuantActionTolerance).
  Rng rng(7);
  const nn::Batch err_obs = random_obs(256, victim->obs_dim(), rng);
  nn::Mlp::Workspace ews, qws;
  const nn::Batch& exact = fp64_handle.query_batch(err_obs, ews);
  const nn::Batch& quant = int8_handle.query_batch(err_obs, qws);
  double max_err = 0.0;
  for (std::size_t r = 0; r < exact.rows(); ++r)
    for (std::size_t c = 0; c < exact.dim(); ++c)
      max_err = std::max(max_err, std::abs(quant(r, c) - exact(r, c)));
  const bool within = max_err <= nn::kQuantActionTolerance;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\"victim\": [11, 64, 64, 3], \"backend\": \""
     << nn::kernel::active_backend().name << "\", \"reps\": 7";
  os.precision(6);
  os << ", \"max_abs_action_err\": " << max_err
     << ", \"tolerance\": " << nn::kQuantActionTolerance
     << ", \"within_tolerance\": " << (within ? "true" : "false")
     << ", \"batches\": [";

  double min_speedup = std::numeric_limits<double>::infinity();
  const int kBatches[] = {16, 32, 64};
  bool first = true;
  for (const int b : kBatches) {
    // Fixed total queries per rep so each batch row does comparable work.
    const int calls = 16384 / b;
    const nn::Batch obs =
        random_obs(static_cast<std::size_t>(b), victim->obs_dim(), rng);
    const double fp64_s = time_queries(fp64_handle, obs, calls);
    const double int8_s = time_queries(int8_handle, obs, calls);
    const double total = static_cast<double>(calls) * b;
    const double fp64_qps = fp64_s > 0.0 ? total / fp64_s : 0.0;
    const double int8_qps = int8_s > 0.0 ? total / int8_s : 0.0;
    const double speedup = int8_s > 0.0 ? fp64_s / int8_s : 1.0;
    min_speedup = std::min(min_speedup, speedup);

    os << (first ? "" : ", ");
    first = false;
    os.precision(6);
    os << "{\"batch\": " << b << ", \"fp64_s\": " << fp64_s
       << ", \"int8_s\": " << int8_s;
    os.precision(0);
    os << ", \"fp64_queries_per_s\": " << fp64_qps
       << ", \"int8_queries_per_s\": " << int8_qps;
    os.precision(3);
    os << ", \"speedup\": " << speedup << "}";
    std::cerr << "bench_micro_infer probe: batch " << b << " fp64 "
              << fp64_s << "s vs int8 " << int8_s << "s (" << speedup
              << "x)\n";
  }
  os.precision(3);
  os << "], \"min_speedup\": " << min_speedup << "}";
  bench::write_report_entry("BENCH_infer.json", "BM_VictimQueryBatch",
                            os.str());
  std::cerr << "bench_micro_infer probe: min speedup " << min_speedup
            << "x over batches 16-64, max action error " << max_err
            << " (tolerance " << nn::kQuantActionTolerance << ", "
            << (within ? "within" : "EXCEEDED")
            << ") -> BENCH_infer.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (std::getenv("IMAP_BENCH_NO_PROBE") == nullptr) infer_probe();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
