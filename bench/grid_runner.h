// Shared parallel grid harness for the bench binaries: dispatches the
// independent cells of a result grid (Tables 1-3, Figs. 4-7, ablations) onto
// the process thread pool and records per-cell wall-clock plus a summary
// entry in BENCH_parallel.json.
//
// Determinism: every cell derives its randomness purely from its plan and
// the experiment seed (ExperimentRunner::plan_rng), so the results are
// independent of scheduling and of IMAP_THREADS. Victim checkpoints are
// pre-trained serially (deduped by training-env) and duplicate cells are
// coalesced by cache key, so concurrent cells never race on a cache file.
//
// With IMAP_PROCS > 1 the grid is instead handed to core::DagScheduler,
// which executes the victim→attack dependency DAG on a pool of worker
// processes (crash-recovering, same results — see core/experiment_dag.h).

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"

namespace imap::bench {

/// Wall-clock of one grid cell or custom job.
struct CellTiming {
  std::string label;
  double seconds = 0.0;
};

class GridRunner {
 public:
  GridRunner(core::ExperimentRunner& runner, std::string bench_name);

  /// Run every plan as an independent cell, in parallel when the pool has
  /// threads; returns outcomes in plan order. Duplicate plans (same cache
  /// key) are run once and fanned back out.
  std::vector<core::AttackOutcome> run_plans(
      const std::vector<core::AttackPlan>& plans);

  /// Run labelled self-contained jobs in parallel, timing each. Jobs must
  /// own their state (pre-split Rngs, own env clones) — nothing may depend
  /// on the order in which other jobs run.
  void run_jobs(
      std::vector<std::pair<std::string, std::function<void()>>> jobs);

  /// Merge this bench's summary (threads, per-cell and total wall-clock,
  /// serial-equivalent time, speedup) into BENCH_parallel.json. Call once,
  /// after all grids/jobs.
  void write_report() const;

  const std::vector<CellTiming>& timings() const { return timings_; }

 private:
  core::ExperimentRunner& runner_;
  std::string bench_name_;
  std::vector<CellTiming> timings_;
  double wall_seconds_ = 0.0;  ///< summed over run_plans/run_jobs calls
};

/// Merge `entry_json` (a JSON value) under key `key` into the flat JSON
/// object at `path` (created if missing), preserving other keys' entries.
/// Used for the committed bench reports (BENCH_parallel.json,
/// BENCH_kernels.json).
void write_report_entry(const std::string& path, const std::string& key,
                        const std::string& entry_json);

/// Merge `entry_json` (a JSON value) under key `bench_name` into
/// BENCH_parallel.json in the working directory, preserving other benches'
/// entries.
void write_parallel_report_entry(const std::string& bench_name,
                                 const std::string& entry_json);

}  // namespace imap::bench
