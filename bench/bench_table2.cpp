// Table 2: average episode rewards of the victim policies across the nine
// sparse-reward tasks (six locomotion, two navigation, one manipulation)
// under No Attack, Random, SA-RL, the four IMAP attacks and the best
// IMAP+BR variant per task.

#include <iostream>
#include <map>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

namespace {
const std::vector<std::string> kEnvs = {
    "SparseHopper",    "SparseWalker2d",         "SparseHalfCheetah",
    "SparseAnt",       "SparseHumanoidStandup",  "SparseHumanoid",
    "AntUMaze",        "Ant4Rooms",              "FetchReach"};
}

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_table2: scale=" << runner.config().scale << "\n";

  Table table({"Env", "No Attack", "Random", "SA-RL", "IMAP-SC", "IMAP-PC",
               "IMAP-R", "IMAP-D", "IMAP+BR"});

  std::map<std::string, double> column_sum;
  const std::vector<AttackKind> plain = {AttackKind::None, AttackKind::Random,
                                         AttackKind::SaRl};

  // Per env: 3 plain, 4 IMAP, 4 IMAP+BR cells, in column order.
  std::vector<core::AttackPlan> plans;
  for (const auto& env : kEnvs) {
    auto add_cell = [&](AttackKind attack, bool br) {
      core::AttackPlan plan;
      plan.env_name = env;
      plan.attack = attack;
      plan.bias_reduction = br;
      plans.push_back(plan);
    };
    for (const auto attack : plain) add_cell(attack, false);
    for (const auto attack : core::imap_attacks()) add_cell(attack, false);
    for (const auto attack : core::imap_attacks()) add_cell(attack, true);
  }
  bench::GridRunner grid(runner, "bench_table2");
  const auto outcomes = grid.run_plans(plans);

  std::size_t cell = 0;
  for (const auto& env : kEnvs) {
    std::vector<std::string> row{env};

    for (const auto attack : plain) {
      const auto& outcome = outcomes[cell++];
      row.push_back(Table::pm(outcome.victim_eval.returns.mean,
                              outcome.victim_eval.returns.stddev, 2));
      column_sum[core::to_string(attack)] += outcome.victim_eval.returns.mean;
    }
    for (const auto attack : core::imap_attacks()) {
      const auto& outcome = outcomes[cell++];
      row.push_back(Table::pm(outcome.victim_eval.returns.mean,
                              outcome.victim_eval.returns.stddev, 2));
      column_sum[core::to_string(attack)] += outcome.victim_eval.returns.mean;
    }
    // Best IMAP+BR variant for this task (the paper's last column).
    double best = 1e18, best_std = 0.0;
    std::string best_name;
    for (const auto attack : core::imap_attacks()) {
      const auto& outcome = outcomes[cell++];
      if (outcome.victim_eval.returns.mean < best) {
        best = outcome.victim_eval.returns.mean;
        best_std = outcome.victim_eval.returns.stddev;
        best_name = core::to_string(attack).substr(5);  // "SC" etc.
      }
    }
    row.push_back(Table::pm(best, best_std, 2) + " (" + best_name + ")");
    column_sum["IMAP+BR"] += best;
    table.add_row(std::move(row));
  }
  grid.write_report();

  std::vector<std::string> avg{"Average"};
  for (const std::string col : {"No Attack", "Random", "SA-RL", "IMAP-SC",
                                "IMAP-PC", "IMAP-R", "IMAP-D", "IMAP+BR"})
    avg.push_back(
        Table::num(column_sum[col] / static_cast<double>(kEnvs.size()), 2));
  table.add_row(std::move(avg));

  std::cout << "Table 2 — sparse-reward tasks: victim episode rewards under "
               "attack (mean ± std)\n\n";
  std::cout << table.to_string() << "\n";
  table.save_csv("table2.csv");
  std::cout << "CSV written to table2.csv\n";
  return 0;
}
