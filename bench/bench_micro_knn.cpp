// Micro-benchmarks of the KNN state-density estimator (Sec. 5.2) — the
// per-step cost that dominates IMAP's intrinsic-bonus computation.

#include <benchmark/benchmark.h>

#include "core/knn.h"

using imap::Rng;
using imap::core::KnnBuffer;

namespace {

KnnBuffer filled_buffer(std::size_t dim, std::size_t n, std::size_t k) {
  Rng rng(42);
  KnnBuffer buf(dim, n, k, rng.split(1));
  for (std::size_t i = 0; i < n; ++i) buf.add(rng.normal_vec(dim));
  return buf;
}

void BM_KnnAdd(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  KnnBuffer buf(dim, 4096, 3, rng.split(1));
  const auto s = rng.normal_vec(dim);
  for (auto _ : state) {
    buf.add(s);
    benchmark::DoNotOptimize(buf.size());
  }
}
BENCHMARK(BM_KnnAdd)->Arg(8)->Arg(16)->Arg(32);

void BM_KnnQuery(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto buf = filled_buffer(dim, n, 3);
  Rng rng(7);
  const auto q = rng.normal_vec(dim);
  for (auto _ : state) benchmark::DoNotOptimize(buf.knn_distance(q));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_KnnQuery)
    ->Args({8, 1024})
    ->Args({8, 4096})
    ->Args({16, 4096})
    ->Args({16, 16384})
    ->Args({32, 4096});

// The per-iteration cost of one full PC bonus pass (rollout × (D_k + B)).
void BM_PcBonusPass(benchmark::State& state) {
  const std::size_t dim = 16, rollout = 2048, cap = 4096;
  Rng rng(42);
  const auto union_buf = filled_buffer(dim, cap, 3);
  std::vector<std::vector<double>> states(rollout);
  for (auto& s : states) s = rng.normal_vec(dim);
  for (auto _ : state) {
    KnnBuffer dk(dim, rollout, 3, rng.split(1));
    for (const auto& s : states) dk.add(s);
    double acc = 0.0;
    for (const auto& s : states)
      acc += dk.knn_distance(s) * union_buf.knn_distance(s);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PcBonusPass)->Unit(benchmark::kMillisecond);

}  // namespace
