#include "grid_runner.h"

#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include <thread>

#include "common/proc.h"
#include "common/thread_pool.h"
#include "core/experiment_dag.h"
#include "env/registry.h"

namespace imap::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell_label(const core::AttackPlan& plan) {
  std::string label = plan.env_name + "/" + plan.defense + "/" +
                      core::to_string(plan.attack) +
                      (plan.bias_reduction ? "+BR" : "");
  for (auto& c : label)
    if (c == ' ') c = '-';
  return label;
}

}  // namespace

GridRunner::GridRunner(core::ExperimentRunner& runner, std::string bench_name)
    : runner_(runner), bench_name_(std::move(bench_name)) {}

std::vector<core::AttackOutcome> GridRunner::run_plans(
    const std::vector<core::AttackPlan>& plans) {
  const auto t0 = std::chrono::steady_clock::now();

  // Multi-process fabric: route the whole grid through the DAG scheduler —
  // victim and attack cells become dependency-ordered nodes executed by a
  // pool of worker processes. Results are identical to the thread path
  // below (cells derive randomness from their plan only).
  if (const int procs = proc::configured_procs(); procs > 1) {
    std::cerr << "  [" << bench_name_ << "] dispatching " << plans.size()
              << " cells to the DAG scheduler (" << procs << " procs)\n";
    core::DagOptions dopts;
    dopts.procs = procs;
    core::DagScheduler sched(runner_.config(), dopts);
    auto out = sched.run(plans);
    const auto& nodes = sched.nodes();
    const auto& secs = sched.node_seconds();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::string label =
          nodes[i].kind == core::DagNode::Kind::Attack
              ? cell_label(nodes[i].plan)
              : "victim/" + nodes[i].env_name +
                    (nodes[i].kind == core::DagNode::Kind::Victim
                         ? "/" + nodes[i].defense
                         : std::string());
      for (auto& c : label)
        if (c == ' ') c = '-';
      timings_.push_back({std::move(label), secs[i]});
    }
    wall_seconds_ += seconds_since(t0);
    return out;
  }

  // Coalesce duplicate cells (benches re-query shared cells; Table 3 shares
  // Table 2's grid) so one cache key is computed — and stored — exactly once.
  std::vector<std::size_t> unique_of(plans.size());
  std::vector<std::size_t> unique_cells;  // index into plans
  {
    std::map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const auto& p = plans[i];
      const long long steps = p.attack_steps
                                  ? p.attack_steps
                                  : runner_.default_attack_steps(p.env_name);
      const int eps = p.eval_episodes
                          ? p.eval_episodes
                          : runner_.default_eval_episodes(p.env_name);
      const auto key = runner_.cache_key(p, steps, eps);
      const auto [it, inserted] = seen.emplace(key, unique_cells.size());
      if (inserted) unique_cells.push_back(i);
      unique_of[i] = it->second;
    }
  }

  // Pre-train the victims serially, deduped by the checkpoint identity (the
  // TRAINING env: sparse tasks share their dense counterpart's victim), so
  // concurrent cells only ever read checkpoints.
  {
    std::set<std::string> warmed;
    for (const auto idx : unique_cells) {
      const auto& p = plans[idx];
      if (env::spec(p.env_name).type == env::TaskType::MultiAgent) {
        if (warmed.insert("game|" + p.env_name).second)
          runner_.zoo().game_victim(p.env_name);
      } else {
        const auto train_name = env::make_training_env(p.env_name)->name();
        if (warmed.insert(train_name + "|" + p.defense).second)
          runner_.zoo().victim(p.env_name, p.defense);
      }
    }
  }

  std::vector<core::AttackOutcome> unique_out(unique_cells.size());
  std::vector<double> unique_secs(unique_cells.size(), 0.0);
  std::mutex log_m;
  parallel_for(
      unique_cells.size(),
      [&](std::size_t u) {
        const auto& plan = plans[unique_cells[u]];
        {
          std::lock_guard<std::mutex> lk(log_m);
          std::cerr << "  [" << bench_name_ << "] running "
                    << cell_label(plan) << "...\n";
        }
        const auto c0 = std::chrono::steady_clock::now();
        unique_out[u] = runner_.run(plan);
        unique_secs[u] = seconds_since(c0);
      },
      /*grain=*/1);

  for (std::size_t u = 0; u < unique_cells.size(); ++u)
    timings_.push_back({cell_label(plans[unique_cells[u]]), unique_secs[u]});
  wall_seconds_ += seconds_since(t0);

  std::vector<core::AttackOutcome> out(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    out[i] = unique_out[unique_of[i]];
  return out;
}

void GridRunner::run_jobs(
    std::vector<std::pair<std::string, std::function<void()>>> jobs) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> secs(jobs.size(), 0.0);
  std::mutex log_m;
  parallel_for(
      jobs.size(),
      [&](std::size_t j) {
        {
          std::lock_guard<std::mutex> lk(log_m);
          std::cerr << "  [" << bench_name_ << "] running " << jobs[j].first
                    << "...\n";
        }
        const auto c0 = std::chrono::steady_clock::now();
        jobs[j].second();
        secs[j] = seconds_since(c0);
      },
      /*grain=*/1);
  for (std::size_t j = 0; j < jobs.size(); ++j)
    timings_.push_back({jobs[j].first, secs[j]});
  wall_seconds_ += seconds_since(t0);
}

void GridRunner::write_report() const {
  double serial_equiv = 0.0;
  for (const auto& t : timings_) serial_equiv += t.seconds;
  const double speedup =
      wall_seconds_ > 0.0 ? serial_equiv / wall_seconds_ : 1.0;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"threads\": " << effective_concurrency()
     << ", \"procs\": " << proc::configured_procs()
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"cells\": " << timings_.size()
     << ", \"serial_equiv_s\": " << serial_equiv
     << ", \"wall_s\": " << wall_seconds_ << ", \"speedup\": " << speedup
     << ", \"cell_wall_s\": {";
  for (std::size_t i = 0; i < timings_.size(); ++i) {
    if (i) os << ", ";
    os << '"' << timings_[i].label << "\": " << timings_[i].seconds;
  }
  os << "}}";
  write_parallel_report_entry(bench_name_, os.str());
  std::cerr << "  [" << bench_name_ << "] " << timings_.size() << " cells, "
            << serial_equiv << "s serial-equivalent in " << wall_seconds_
            << "s wall (" << speedup << "x, " << effective_concurrency()
            << " threads) -> BENCH_parallel.json\n";
}

namespace {

/// Split the top level of a flat JSON object {"k": <value>, ...} into
/// (key, raw value) pairs. Minimal but sufficient for files we wrote
/// ourselves; anything unparseable is dropped rather than corrupted further.
std::vector<std::pair<std::string, std::string>> split_top_level(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return out;
  ++i;
  while (true) {
    skip_ws();
    if (i >= text.size()) return out;
    if (text[i] == '}') return out;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') return out;
    ++i;
    std::string key;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key += text[i++];
      key += text[i++];
    }
    if (i >= text.size()) return out;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return out;
    ++i;
    skip_ws();
    // Raw value: balance braces/brackets outside strings until a top-level
    // ',' or the closing '}'.
    const std::size_t vstart = i;
    int depth = 0;
    bool in_str = false;
    while (i < text.size()) {
      const char c = text[i];
      if (in_str) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_str = false;
      } else if (c == '"') {
        in_str = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    std::string value = text.substr(vstart, i - vstart);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back())))
      value.pop_back();
    out.emplace_back(std::move(key), std::move(value));
  }
}

}  // namespace

void write_report_entry(const std::string& path, const std::string& key,
                        const std::string& entry_json) {
  std::vector<std::pair<std::string, std::string>> entries;
  if (std::filesystem::exists(path)) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    entries = split_top_level(ss.str());
  }
  bool replaced = false;
  for (auto& [k, v] : entries)
    if (k == key) {
      v = entry_json;
      replaced = true;
    }
  if (!replaced) entries.emplace_back(key, entry_json);

  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << "  \"" << entries[i].first << "\": " << entries[i].second;
    out << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

void write_parallel_report_entry(const std::string& bench_name,
                                 const std::string& entry_json) {
  write_report_entry("BENCH_parallel.json", bench_name, entry_json);
}

}  // namespace imap::bench
