// Table 3 (Appendix C): the full IMAP+BR grid on the nine sparse-reward
// tasks — every IMAP variant with and without Bias-Reduction, next to the
// SA-RL baseline. Shares its cached runs with bench_table2.

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

namespace {
const std::vector<std::string> kEnvs = {
    "SparseHopper",    "SparseWalker2d",         "SparseHalfCheetah",
    "SparseAnt",       "SparseHumanoidStandup",  "SparseHumanoid",
    "AntUMaze",        "Ant4Rooms",              "FetchReach"};
}

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_table3: scale=" << runner.config().scale << "\n";

  Table table({"Env", "SA-RL", "IMAP-SC", "IMAP-PC", "IMAP-R", "IMAP-D",
               "IMAP-SC+BR", "IMAP-PC+BR", "IMAP-R+BR", "IMAP-D+BR"});

  // Per env: SA-RL, 4 IMAP, 4 IMAP+BR cells, in column order.
  std::vector<core::AttackPlan> plans;
  for (const auto& env : kEnvs) {
    auto add_cell = [&](AttackKind attack, bool br) {
      core::AttackPlan plan;
      plan.env_name = env;
      plan.attack = attack;
      plan.bias_reduction = br;
      plans.push_back(plan);
    };
    add_cell(AttackKind::SaRl, false);
    for (const auto attack : core::imap_attacks()) add_cell(attack, false);
    for (const auto attack : core::imap_attacks()) add_cell(attack, true);
  }
  bench::GridRunner grid(runner, "bench_table3");
  const auto outcomes = grid.run_plans(plans);

  int br_improves = 0, br_cells = 0;
  std::size_t cell = 0;
  for (const auto& env : kEnvs) {
    std::vector<std::string> row{env};

    const auto& sarl = outcomes[cell++].victim_eval.returns;
    row.push_back(Table::pm(sarl.mean, sarl.stddev, 2));
    std::vector<double> plain_means;
    for (std::size_t i = 0; i < core::imap_attacks().size(); ++i) {
      const auto& r = outcomes[cell++].victim_eval.returns;
      plain_means.push_back(r.mean);
      row.push_back(Table::pm(r.mean, r.stddev, 2));
    }
    std::size_t i = 0;
    for (std::size_t j = 0; j < core::imap_attacks().size(); ++j) {
      const auto& r = outcomes[cell++].victim_eval.returns;
      row.push_back(Table::pm(r.mean, r.stddev, 2));
      ++br_cells;
      if (r.mean < plain_means[i++] - 1e-9) ++br_improves;
    }
    table.add_row(std::move(row));
  }
  grid.write_report();

  std::cout << "Table 3 — sparse-reward tasks: the full IMAP / IMAP+BR grid\n\n";
  std::cout << table.to_string() << "\n";
  std::cout << "BR improves the matching IMAP variant in " << br_improves
            << "/" << br_cells << " cells (paper: about half).\n";
  table.save_csv("table3.csv");
  std::cout << "CSV written to table3.csv\n";
  return 0;
}
