// Table 3 (Appendix C): the full IMAP+BR grid on the nine sparse-reward
// tasks — every IMAP variant with and without Bias-Reduction, next to the
// SA-RL baseline. Shares its cached runs with bench_table2.

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"

using namespace imap;
using core::AttackKind;

namespace {
const std::vector<std::string> kEnvs = {
    "SparseHopper",    "SparseWalker2d",         "SparseHalfCheetah",
    "SparseAnt",       "SparseHumanoidStandup",  "SparseHumanoid",
    "AntUMaze",        "Ant4Rooms",              "FetchReach"};
}

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_table3: scale=" << runner.config().scale << "\n";

  Table table({"Env", "SA-RL", "IMAP-SC", "IMAP-PC", "IMAP-R", "IMAP-D",
               "IMAP-SC+BR", "IMAP-PC+BR", "IMAP-R+BR", "IMAP-D+BR"});

  int br_improves = 0, br_cells = 0;
  for (const auto& env : kEnvs) {
    std::vector<std::string> row{env};
    auto cell = [&](AttackKind attack, bool br) {
      core::AttackPlan plan;
      plan.env_name = env;
      plan.attack = attack;
      plan.bias_reduction = br;
      std::cerr << "  running " << env << " / " << core::to_string(attack)
                << (br ? "+BR" : "") << "...\n";
      return runner.run(plan).victim_eval.returns;
    };

    row.push_back(Table::pm(cell(AttackKind::SaRl, false).mean,
                            cell(AttackKind::SaRl, false).stddev, 2));
    std::vector<double> plain_means;
    for (const auto attack : core::imap_attacks()) {
      const auto r = cell(attack, false);
      plain_means.push_back(r.mean);
      row.push_back(Table::pm(r.mean, r.stddev, 2));
    }
    std::size_t i = 0;
    for (const auto attack : core::imap_attacks()) {
      const auto r = cell(attack, true);
      row.push_back(Table::pm(r.mean, r.stddev, 2));
      ++br_cells;
      if (r.mean < plain_means[i++] - 1e-9) ++br_improves;
    }
    table.add_row(std::move(row));
  }

  std::cout << "Table 3 — sparse-reward tasks: the full IMAP / IMAP+BR grid\n\n";
  std::cout << table.to_string() << "\n";
  std::cout << "BR improves the matching IMAP variant in " << br_improves
            << "/" << br_cells << " cells (paper: about half).\n";
  table.save_csv("table3.csv");
  std::cout << "CSV written to table3.csv\n";
  return 0;
}
