// Figure 7: ablation on ξ, the mixing between the adversary-marginal and
// victim-marginal coverage terms of the multi-agent PC regularizer (Eq. 9):
// ξ = 0 explores only the adversary's own state space, ξ = 1 only the
// victim's. The paper's finding: the adversary-side term is critical and
// the victim-side term adds a further boost (robust across ξ).

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_fig7: scale=" << runner.config().scale << "\n";

  const std::vector<double> xis = {0.0, 0.25, 0.5, 0.75, 1.0};
  Table table({"Game", "xi", "ASR"});

  const std::vector<std::string> games = {"YouShallNotPass", "KickAndDefend"};
  std::vector<core::AttackPlan> plans;
  for (const auto& game : games)
    for (const double xi : xis) {
      core::AttackPlan plan;
      plan.env_name = game;
      plan.attack = AttackKind::ImapPC;
      plan.bias_reduction = true;
      plan.xi = xi;
      plans.push_back(plan);
    }
  bench::GridRunner grid(runner, "bench_fig7");
  const auto outcomes = grid.run_plans(plans);

  std::size_t cell = 0;
  for (const auto& game : games) {
    std::cout << "== " << game << " (IMAP-PC+BR, sweeping xi) ==\n";
    for (const double xi : xis) {
      const auto& outcome = outcomes[cell++];
      std::cout << "  xi=" << xi
                << ": ASR=" << Table::num(100 * outcome.asr(), 2) << "%\n";
      table.add_row(
          {game, Table::num(xi, 2), Table::num(100 * outcome.asr(), 2) + "%"});
    }
  }

  std::cout << "\n" << table.to_string();
  grid.write_report();
  table.save_csv("fig7.csv");
  std::cout << "CSV written to fig7.csv (paper Fig. 7: robust to xi)\n";
  return 0;
}
