// Ablations of the design choices DESIGN.md calls out (beyond the paper's
// own η/ξ ablations in Figs. 6–7):
//
//  A. Attack class: white-box gradient heuristics (FGSM, MAD) vs black-box
//     adversarial policies (SA-RL, IMAP) — the paper's Sec. 2 framing that
//     learned APs dominate one-shot gradient attacks.
//  B. Threat-model relaxation: SA-RL trained on the victim's true reward
//     (its original formulation) vs the black-box surrogate used here.
//  C. State-density estimator: the paper's KNN choice vs an RND
//     prediction-error bonus (Sec. 5.2 argues KNN; this measures it).
//  D. KNN k: sensitivity of IMAP-SC to the neighbour count.

#include <iostream>

#include "attack/gradient_attack.h"
#include "attack/sa_rl.h"
#include "attack/threat_model.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/rnd.h"
#include "env/registry.h"

using namespace imap;
using core::AttackKind;

int main() {
  const auto cfg = BenchConfig::from_env();
  core::ExperimentRunner runner(cfg);
  const std::string env_name = "Hopper";
  const auto deploy_env = env::make_env(env_name);
  const double eps = env::spec(env_name).epsilon;
  const auto victim_policy = runner.zoo().victim(env_name, "PPO");
  const auto victim = core::Zoo::as_fn(victim_policy);
  const long long steps = runner.default_attack_steps(env_name);
  const int episodes = runner.default_eval_episodes(env_name);
  Rng rng(cfg.seed + 1000);

  // ---------------------------------------------------------------- A
  Table a({"Attack", "Access", "Victim reward"});
  {
    auto cell = [&](const std::string& name, const std::string& access,
                    const rl::ActionFn& adv) {
      Rng er(17);
      const auto e = attack::evaluate_attack(*deploy_env, victim, adv, eps,
                                             episodes, er);
      a.add_row({name, access, Table::pm(e.returns.mean, e.returns.stddev)});
      std::cerr << "  [A] " << name << " -> " << e.returns.mean << "\n";
    };
    cell("FGSM", "white-box", attack::make_fgsm_attack(victim_policy, eps));
    cell("MAD (3-step PGD)", "white-box",
         attack::make_mad_attack(victim_policy, eps, 3));
    for (const auto kind : {AttackKind::None, AttackKind::Random,
                            AttackKind::SaRl, AttackKind::ImapPC}) {
      core::AttackPlan plan;
      plan.env_name = env_name;
      plan.attack = kind;
      const auto out = runner.run(plan);  // shared with bench_table1's cache
      a.add_row({core::to_string(kind),
                 kind == AttackKind::None || kind == AttackKind::Random
                     ? "—"
                     : "black-box",
                 Table::pm(out.victim_eval.returns.mean,
                           out.victim_eval.returns.stddev)});
    }
  }
  std::cout << "Ablation A — attack classes on the vanilla " << env_name
            << " victim:\n\n"
            << a.to_string() << "\n";

  // ---------------------------------------------------------------- B
  Table b({"SA-RL objective", "Victim reward"});
  {
    std::cerr << "  [B] training relaxed SA-RL (true-reward objective)...\n";
    attack::SaRl relaxed(*deploy_env, victim, eps, {}, rng.split(1),
                         /*relaxed=*/true);
    relaxed.train(steps);
    Rng er(17);
    const auto e = attack::evaluate_attack(*deploy_env, victim,
                                           relaxed.adversary(), eps,
                                           episodes, er);
    b.add_row({"-r_E (relaxed, original SA-RL)",
               Table::pm(e.returns.mean, e.returns.stddev)});
    core::AttackPlan plan;
    plan.env_name = env_name;
    plan.attack = AttackKind::SaRl;
    const auto surrogate = runner.run(plan);
    b.add_row({"-r_hat (black-box surrogate, ours)",
               Table::pm(surrogate.victim_eval.returns.mean,
                         surrogate.victim_eval.returns.stddev)});
  }
  std::cout << "Ablation B — threat-model relaxation:\n\n"
            << b.to_string() << "\n";

  // ---------------------------------------------------------------- C
  Table c({"Density estimator", "Victim reward"});
  {
    std::cerr << "  [C] training RND-driven intrinsic adversary...\n";
    attack::StatePerturbationEnv attack_env(*deploy_env, victim, eps,
                                            attack::RewardMode::Adversary);
    rl::PpoTrainer trainer(attack_env, rl::PpoOptions{}, rng.split(2));
    core::RndNovelty rnd(attack_env.obs_dim(), 16, rng.split(3));
    trainer.set_intrinsic_hook([&rnd](rl::RolloutBuffer& buf) {
      rnd.compute(buf);
      return 1.0;  // fixed τ, mirroring IMAP-SC without BR
    });
    trainer.train(steps);
    auto snapshot = std::make_shared<nn::GaussianPolicy>(trainer.policy());
    Rng er(17);
    const auto e = attack::evaluate_attack(
        *deploy_env, victim,
        [snapshot](const std::vector<double>& o) {
          return snapshot->mean_action(o);
        },
        eps, episodes, er);
    c.add_row({"RND prediction error",
               Table::pm(e.returns.mean, e.returns.stddev)});
    core::AttackPlan plan;
    plan.env_name = env_name;
    plan.attack = AttackKind::ImapSC;
    const auto knn = runner.run(plan);
    c.add_row({"KNN (paper / ours)",
               Table::pm(knn.victim_eval.returns.mean,
                         knn.victim_eval.returns.stddev)});
  }
  std::cout << "Ablation C — intrinsic-bonus density estimator:\n\n"
            << c.to_string() << "\n";

  // ---------------------------------------------------------------- D
  Table d({"KNN k", "Victim reward"});
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    std::cerr << "  [D] IMAP-SC with k=" << k << "...\n";
    core::ImapOptions opts;
    opts.reg.type = core::RegularizerType::SC;
    opts.reg.knn_k = k;
    opts.surrogate_scale = deploy_env->max_steps();
    core::ImapTrainer attacker(*deploy_env, victim, eps, opts,
                               rng.split(100 + k));
    attacker.train(steps);
    Rng er(17);
    const auto e = attack::evaluate_attack(*deploy_env, victim,
                                           attacker.adversary(), eps,
                                           episodes, er);
    d.add_row({std::to_string(k), Table::pm(e.returns.mean, e.returns.stddev)});
  }
  std::cout << "Ablation D — KNN neighbour count (IMAP-SC):\n\n"
            << d.to_string();

  a.save_csv("ablation_attack_class.csv");
  b.save_csv("ablation_threat_model.csv");
  c.save_csv("ablation_density.csv");
  d.save_csv("ablation_knn_k.csv");
  std::cout << "\nCSVs written: ablation_*.csv\n";
  return 0;
}
