// Ablations of the design choices DESIGN.md calls out (beyond the paper's
// own η/ξ ablations in Figs. 6–7):
//
//  A. Attack class: white-box gradient heuristics (FGSM, MAD) vs black-box
//     adversarial policies (SA-RL, IMAP) — the paper's Sec. 2 framing that
//     learned APs dominate one-shot gradient attacks.
//  B. Threat-model relaxation: SA-RL trained on the victim's true reward
//     (its original formulation) vs the black-box surrogate used here.
//  C. State-density estimator: the paper's KNN choice vs an RND
//     prediction-error bonus (Sec. 5.2 argues KNN; this measures it).
//  D. KNN k: sensitivity of IMAP-SC to the neighbour count.
//
// All cells and custom jobs are independent — their Rngs are split up front
// (Rng::split is pure, so the pre-split streams match the old serial code) —
// and run through the parallel grid harness.

#include <iostream>
#include <memory>

#include "attack/gradient_attack.h"
#include "attack/sa_rl.h"
#include "attack/threat_model.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/rnd.h"
#include "env/registry.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

int main() {
  const auto cfg = BenchConfig::from_env();
  core::ExperimentRunner runner(cfg);
  const std::string env_name = "Hopper";
  const auto deploy_env = env::make_env(env_name);
  const double eps = env::spec(env_name).epsilon;
  const auto victim_policy = runner.zoo().victim(env_name, "PPO");
  const auto victim = core::Zoo::as_fn(victim_policy);
  const long long steps = runner.default_attack_steps(env_name);
  const int episodes = runner.default_eval_episodes(env_name);
  Rng rng(cfg.seed + 1000);

  bench::GridRunner grid(runner, "bench_ablation");

  // Plan cells shared with bench_table1's cache: A uses the first four, B
  // re-reads the SA-RL cell, C the IMAP-SC cell.
  const std::vector<AttackKind> plan_kinds = {
      AttackKind::None, AttackKind::Random, AttackKind::SaRl,
      AttackKind::ImapPC, AttackKind::ImapSC};
  std::vector<core::AttackPlan> plans;
  for (const auto kind : plan_kinds) {
    core::AttackPlan plan;
    plan.env_name = env_name;
    plan.attack = kind;
    plans.push_back(plan);
  }
  const auto outcomes = grid.run_plans(plans);
  const auto& sarl_outcome = outcomes[2];
  const auto& imap_sc_outcome = outcomes[4];

  // Custom jobs: each owns its env clone and a pre-split Rng stream.
  rl::EvalStats fgsm_eval, mad_eval, relaxed_eval, rnd_eval;
  const std::vector<std::size_t> ks = {1, 3, 8};
  std::vector<rl::EvalStats> k_evals(ks.size());

  std::vector<std::pair<std::string, std::function<void()>>> jobs;
  jobs.emplace_back("A/FGSM", [&, env = std::shared_ptr<rl::Env>(deploy_env->clone())] {
    Rng er(17);
    fgsm_eval = attack::evaluate_attack(
        *env, victim, attack::make_fgsm_attack(victim_policy, eps), eps,
        episodes, er);
  });
  jobs.emplace_back("A/MAD", [&, env = std::shared_ptr<rl::Env>(deploy_env->clone())] {
    Rng er(17);
    mad_eval = attack::evaluate_attack(
        *env, victim, attack::make_mad_attack(victim_policy, eps, 3), eps,
        episodes, er);
  });
  jobs.emplace_back(
      "B/relaxed-SA-RL",
      [&, env = std::shared_ptr<rl::Env>(deploy_env->clone()), job_rng = rng.split(1)]() mutable {
        attack::SaRl relaxed(*env, victim, eps, {}, job_rng,
                             /*relaxed=*/true);
        relaxed.train(steps);
        Rng er(17);
        relaxed_eval = attack::evaluate_attack(*env, victim,
                                               relaxed.adversary(), eps,
                                               episodes, er);
      });
  jobs.emplace_back(
      "C/RND",
      [&, env = std::shared_ptr<rl::Env>(deploy_env->clone()), trainer_rng = rng.split(2),
       rnd_rng = rng.split(3)]() mutable {
        attack::StatePerturbationEnv attack_env(*env, victim, eps,
                                                attack::RewardMode::Adversary);
        rl::PpoTrainer trainer(attack_env, rl::PpoOptions{}, trainer_rng);
        core::RndNovelty rnd(attack_env.obs_dim(), 16, rnd_rng);
        trainer.set_intrinsic_hook([&rnd](rl::RolloutBuffer& buf) {
          rnd.compute(buf);
          return 1.0;  // fixed τ, mirroring IMAP-SC without BR
        });
        trainer.train(steps);
        auto snapshot = std::make_shared<nn::GaussianPolicy>(trainer.policy());
        Rng er(17);
        rnd_eval = attack::evaluate_attack(
            *env, victim,
            [snapshot](const std::vector<double>& o) {
              return snapshot->mean_action(o);
            },
            eps, episodes, er);
      });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const std::size_t k = ks[i];
    jobs.emplace_back(
        "D/knn-k=" + std::to_string(k),
        [&, i, k, env = std::shared_ptr<rl::Env>(deploy_env->clone()),
         job_rng = rng.split(100 + k)]() mutable {
          core::ImapOptions opts;
          opts.reg.type = core::RegularizerType::SC;
          opts.reg.knn_k = k;
          opts.surrogate_scale = env->max_steps();
          core::ImapTrainer attacker(*env, victim, eps, opts, job_rng);
          attacker.train(steps);
          Rng er(17);
          k_evals[i] = attack::evaluate_attack(*env, victim,
                                               attacker.adversary(), eps,
                                               episodes, er);
        });
  }
  grid.run_jobs(std::move(jobs));

  // ---------------------------------------------------------------- A
  Table a({"Attack", "Access", "Victim reward"});
  a.add_row({"FGSM", "white-box",
             Table::pm(fgsm_eval.returns.mean, fgsm_eval.returns.stddev)});
  a.add_row({"MAD (3-step PGD)", "white-box",
             Table::pm(mad_eval.returns.mean, mad_eval.returns.stddev)});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto kind = plan_kinds[i];
    const auto& out = outcomes[i];
    a.add_row({core::to_string(kind),
               kind == AttackKind::None || kind == AttackKind::Random
                   ? "—"
                   : "black-box",
               Table::pm(out.victim_eval.returns.mean,
                         out.victim_eval.returns.stddev)});
  }
  std::cout << "Ablation A — attack classes on the vanilla " << env_name
            << " victim:\n\n"
            << a.to_string() << "\n";

  // ---------------------------------------------------------------- B
  Table b({"SA-RL objective", "Victim reward"});
  b.add_row({"-r_E (relaxed, original SA-RL)",
             Table::pm(relaxed_eval.returns.mean,
                       relaxed_eval.returns.stddev)});
  b.add_row({"-r_hat (black-box surrogate, ours)",
             Table::pm(sarl_outcome.victim_eval.returns.mean,
                       sarl_outcome.victim_eval.returns.stddev)});
  std::cout << "Ablation B — threat-model relaxation:\n\n"
            << b.to_string() << "\n";

  // ---------------------------------------------------------------- C
  Table c({"Density estimator", "Victim reward"});
  c.add_row({"RND prediction error",
             Table::pm(rnd_eval.returns.mean, rnd_eval.returns.stddev)});
  c.add_row({"KNN (paper / ours)",
             Table::pm(imap_sc_outcome.victim_eval.returns.mean,
                       imap_sc_outcome.victim_eval.returns.stddev)});
  std::cout << "Ablation C — intrinsic-bonus density estimator:\n\n"
            << c.to_string() << "\n";

  // ---------------------------------------------------------------- D
  Table d({"KNN k", "Victim reward"});
  for (std::size_t i = 0; i < ks.size(); ++i)
    d.add_row({std::to_string(ks[i]),
               Table::pm(k_evals[i].returns.mean, k_evals[i].returns.stddev)});
  std::cout << "Ablation D — KNN neighbour count (IMAP-SC):\n\n"
            << d.to_string();

  grid.write_report();
  a.save_csv("ablation_attack_class.csv");
  b.save_csv("ablation_threat_model.csv");
  c.save_csv("ablation_density.csv");
  d.save_csv("ablation_knn_k.csv");
  std::cout << "\nCSVs written: ablation_*.csv\n";
  return 0;
}
