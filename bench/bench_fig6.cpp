// Figure 6: ablation on the Bias-Reduction dual step size η (Eq. 17) —
// IMAP-PC+BR under η ∈ {0.5, 1, 2, 5} on one sparse single-agent task and
// one competitive game. The paper's finding: IMAP is insensitive to η, with
// larger step sizes slightly better.

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_fig6: scale=" << runner.config().scale << "\n";

  const std::vector<double> etas = {0.5, 1.0, 2.0, 5.0};
  Table table({"Task", "eta", "Victim performance", "Attack metric"});

  const std::vector<std::string> envs = {"SparseHopper", "YouShallNotPass"};
  std::vector<core::AttackPlan> plans;
  for (const auto& env : envs)
    for (const double eta : etas) {
      core::AttackPlan plan;
      plan.env_name = env;
      plan.attack = AttackKind::ImapPC;
      plan.bias_reduction = true;
      plan.eta = eta;
      plans.push_back(plan);
    }
  bench::GridRunner grid(runner, "bench_fig6");
  const auto outcomes = grid.run_plans(plans);

  std::size_t cell = 0;
  for (const auto& env : envs) {
    std::cout << "== " << env << " (IMAP-PC+BR, sweeping eta) ==\n";
    for (const double eta : etas) {
      const auto& outcome = outcomes[cell++];
      const bool game = env == "YouShallNotPass";
      const double metric = game ? outcome.asr()
                                 : outcome.victim_eval.returns.mean;
      std::cout << "  eta=" << eta << ": victim="
                << Table::num(outcome.victim_eval.returns.mean, 2)
                << (game ? "  ASR=" + Table::num(100 * outcome.asr(), 1) + "%"
                         : "")
                << "\n";
      table.add_row({env, Table::num(eta, 1),
                     Table::pm(outcome.victim_eval.returns.mean,
                               outcome.victim_eval.returns.stddev, 2),
                     game ? Table::num(100 * metric, 2) + "% ASR"
                          : Table::num(metric, 2)});
    }
  }

  std::cout << "\n" << table.to_string();
  grid.write_report();
  table.save_csv("fig6.csv");
  std::cout << "CSV written to fig6.csv (paper Fig. 6: robust to eta)\n";
  return 0;
}
