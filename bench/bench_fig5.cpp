// Figure 5: learning curves of AP-MARL vs IMAP-PC+BR in the two two-player
// zero-sum competitive games, reported as the adversary's attacking success
// rate (ASR = 1 − victim win rate) over training, plus the final evaluated
// ASR for each method (paper: 59.64% → 83.91% in YouShallNotPass and
// 47.02% → 56.96% in KickAndDefend).

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_fig5: scale=" << runner.config().scale << "\n";

  Table series({"Game", "Attack", "Steps", "ASR"});
  Table final_table({"Game", "AP-MARL ASR", "IMAP-PC+BR ASR"});

  const std::vector<std::string> games = {"YouShallNotPass", "KickAndDefend"};
  std::vector<core::AttackPlan> plans;
  for (const auto& game : games)
    for (const bool imap : {false, true}) {
      core::AttackPlan plan;
      plan.env_name = game;
      plan.attack = imap ? AttackKind::ImapPC : AttackKind::ApMarl;
      plan.bias_reduction = imap;
      plans.push_back(plan);
    }
  bench::GridRunner grid(runner, "bench_fig5");
  const auto outcomes = grid.run_plans(plans);

  std::size_t cell = 0;
  for (const auto& game : games) {
    std::cout << "== " << game << " ==\n";
    std::vector<std::string> final_row{game};
    for (const bool imap : {false, true}) {
      const std::string label = imap ? "IMAP-PC+BR" : "AP-MARL";
      const auto& outcome = outcomes[cell++];

      std::cout << "  " << label << " ASR curve:";
      const auto& c = outcome.curve;
      const std::size_t stride = std::max<std::size_t>(1, c.size() / 8);
      for (std::size_t i = 0; i < c.size(); i += stride) {
        const double asr = 1.0 - c[i].victim_success;
        std::cout << "  " << c[i].steps / 1000 << "k:" << Table::num(asr, 2);
        series.add_row({game, label, std::to_string(c[i].steps),
                        Table::num(asr, 4)});
      }
      std::cout << "\n";
      const double final_asr = outcome.asr();
      std::cout << "  " << label
                << " final evaluated ASR: " << Table::num(100 * final_asr, 2)
                << "%\n";
      final_row.push_back(Table::num(100 * final_asr, 2) + "%");
    }
    final_table.add_row(std::move(final_row));
  }

  std::cout << "\nFinal attacking success rates (paper: YSNP 59.64% vs "
               "83.91%; KAD 47.02% vs 56.96%):\n\n"
            << final_table.to_string();
  grid.write_report();
  series.save_csv("fig5.csv");
  std::cout << "Series CSV written to fig5.csv\n";
  return 0;
}
