// Serving-daemon benchmark: cross-connection request coalescing vs the
// batch-1 server path, fp64 vs int8, at 1/8/32 concurrent closed-loop HTTP
// clients (min-of-7 wall-clock per cell; min, not mean, because background
// load only ever inflates a rep).
//
// Every cell runs a fresh in-process Server on an ephemeral loopback port
// with one synthetic resident victim (obs 128, {2048, 2048} tanh torso, act
// 16 — large enough that the forward, not HTTP framing, dominates a
// request). Each client holds one keep-alive connection and fires
// single-row /infer requests back to back; every response is compared
// bit-for-bit against a direct PolicyHandle::query through the same
// quantization mode, so the speedup claim and the correctness claim come
// from the same run. Results land in BENCH_serve.json (committed, see
// README); the headline number is qps(32 clients, coalesced, int8) /
// qps(32 clients, batch-1, int8).
//
// Knobs: IMAP_BENCH_SERVE_ITERS (requests per client per rep, default 12),
// IMAP_BENCH_SERVE_REPS (default 7) — the CI bench-smoke stage shrinks both.
// Exit status is 1 on any bit-identity mismatch; perf numbers never fail
// the run (they are tracked, not gated, at bench time).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "grid_runner.h"
#include "nn/gaussian.h"
#include "nn/kernel_backend.h"
#include "rl/policy_handle.h"
#include "serve/http.h"
#include "serve/server.h"

using namespace imap;

namespace {

constexpr std::size_t kObsDim = 128;
constexpr std::size_t kActDim = 16;
constexpr std::size_t kHidden = 2048;

std::shared_ptr<const nn::GaussianPolicy> make_victim() {
  Rng rng(29);
  return std::make_shared<const nn::GaussianPolicy>(
      kObsDim, kActDim, std::vector<std::size_t>{kHidden, kHidden}, rng);
}

std::vector<double> client_obs(std::size_t client) {
  Rng rng(1000 + client);
  return rng.normal_vec(kObsDim, 0.0, 0.5);
}

/// The server's shortest-round-trip response formatting, replicated so the
/// expected bodies compare bit-for-bit.
std::string format_row(const std::vector<double>& a) {
  char num[32];
  std::string out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto res = std::to_chars(num, num + sizeof num, a[i]);
    if (i > 0) out += ' ';
    out.append(num, static_cast<std::size_t>(res.ptr - num));
  }
  out += '\n';
  return out;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                static_cast<socklen_t>(sizeof addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Read one Content-Length-framed response; returns its body.
std::string read_response_body(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const std::size_t head_end = buf.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      const std::size_t cl = buf.find("Content-Length: ");
      if (cl == std::string::npos) return "";
      const std::size_t len = static_cast<std::size_t>(
          std::strtoull(buf.c_str() + cl + 16, nullptr, 10));
      if (buf.size() >= head_end + 4 + len)
        return buf.substr(head_end + 4, len);
    }
    const ssize_t n = ::recv(fd, chunk, 4096, 0);
    if (n <= 0) return "";
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

struct CellResult {
  int clients = 0;
  bool coalesce = false;
  bool quant = false;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  long long mismatches = 0;
};

/// One benchmark cell: a fresh server, `clients` closed-loop connections,
/// min-of-`reps` wall clock.
CellResult run_cell(const std::shared_ptr<const nn::GaussianPolicy>& victim,
                    const std::string& zoo_dir, int clients, bool coalesce,
                    bool quant, int iters, int reps) {
  serve::ServeOptions opts;
  opts.port = 0;
  opts.threads = clients + 2;
  opts.coalesce.enabled = coalesce;
  opts.coalesce.max_batch = 32;
  opts.coalesce.max_wait_us = 2'000;
  opts.cache.quant = quant;
  opts.cache.ttl_ms = 3'600'000;
  opts.bench.zoo_dir = zoo_dir;
  serve::Server server(opts);
  server.start();
  server.model_cache().put("Bench", "PPO", victim);

  const rl::PolicyHandle direct = rl::PolicyHandle::serving(victim, quant);
  const std::size_t n = static_cast<std::size_t>(clients);
  std::vector<std::string> request(n), expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string row = format_row(client_obs(i));
    request[i] = "POST /infer?env=Bench HTTP/1.1\r\nContent-Length: " +
                 std::to_string(row.size()) + "\r\n\r\n" + row;
    expect[i] = format_row(direct.query(client_obs(i)));
  }

  ThreadPool pool(n + 1);
  ScopedPool scope(pool);
  std::vector<long long> mismatches(n, 0);
  double secs = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    parallel_for(
        n,
        [&](std::size_t i) {
          const int fd = connect_to(server.port());
          if (fd < 0) {
            mismatches[i] += iters;
            return;
          }
          for (int it = 0; it < iters; ++it) {
            if (!serve::send_all(fd, request[i]) ||
                read_response_body(fd) != expect[i])
              ++mismatches[i];
          }
          ::close(fd);
        },
        1);
    secs = std::min(
        secs,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }

  CellResult r;
  r.clients = clients;
  r.coalesce = coalesce;
  r.quant = quant;
  r.qps = secs > 0.0 ? static_cast<double>(n) * iters / secs : 0.0;
  r.p50_us = server.metrics().infer_latency_us.percentile(50.0);
  r.p99_us = server.metrics().infer_latency_us.percentile(99.0);
  r.mean_batch = server.metrics().batch_size.mean();
  for (const long long m : mismatches) r.mismatches += m;
  server.stop();
  return r;
}

}  // namespace

int main() {
  const int iters =
      static_cast<int>(env_double("IMAP_BENCH_SERVE_ITERS", 12));
  const int reps = static_cast<int>(env_double("IMAP_BENCH_SERVE_REPS", 7));
  const std::string zoo_dir =
      "/tmp/imap_bench_serve_zoo_" + std::to_string(::getpid());
  std::filesystem::remove_all(zoo_dir);

  const auto victim = make_victim();
  std::vector<CellResult> cells;
  long long mismatches = 0;
  for (const bool quant : {false, true}) {
    for (const bool coalesce : {false, true}) {
      for (const int clients : {1, 8, 32}) {
        const CellResult r =
            run_cell(victim, zoo_dir, clients, coalesce, quant, iters, reps);
        cells.push_back(r);
        mismatches += r.mismatches;
        std::cerr << "bench_serve: clients=" << clients << " coalesce="
                  << (coalesce ? "on " : "off") << " "
                  << (quant ? "int8" : "fp64") << "  " << std::fixed
                  << std::setprecision(0) << r.qps << " req/s  p50 "
                  << r.p50_us << "us p99 " << r.p99_us << "us  mean batch "
                  << std::setprecision(1) << r.mean_batch
                  << (r.mismatches > 0 ? "  MISMATCHES!" : "") << "\n";
      }
    }
  }
  std::filesystem::remove_all(zoo_dir);

  const auto cell_of = [&](int clients, bool coalesce, bool quant) {
    for (const auto& c : cells)
      if (c.clients == clients && c.coalesce == coalesce && c.quant == quant)
        return c;
    return CellResult{};
  };
  const double base = cell_of(32, false, true).qps;
  const double speedup = base > 0.0 ? cell_of(32, true, true).qps / base : 0.0;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\"victim\": [" << kObsDim << ", " << kHidden << ", " << kHidden
     << ", " << kActDim
     << "], \"backend\": \"" << nn::kernel::active_backend().name
     << "\", \"reps\": " << reps << ", \"iters_per_client\": " << iters
     << ", \"max_batch\": 32, \"max_wait_us\": 2000, \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    os << (i > 0 ? ", " : "") << "{\"clients\": " << c.clients
       << ", \"coalesce\": " << (c.coalesce ? "true" : "false")
       << ", \"quant\": \"" << (c.quant ? "int8" : "fp64") << "\"";
    os.precision(0);
    os << ", \"qps\": " << c.qps << ", \"p50_us\": " << c.p50_us
       << ", \"p99_us\": " << c.p99_us;
    os.precision(1);
    os << ", \"mean_batch\": " << c.mean_batch << "}";
  }
  os.precision(3);
  os << "], \"speedup_32_int8_coalesced_vs_batch1\": " << speedup
     << ", \"bit_identical\": " << (mismatches == 0 ? "true" : "false")
     << "}";
  bench::write_report_entry("BENCH_serve.json", "serve_probe", os.str());

  std::cerr << "bench_serve: 32-client int8 coalescing speedup "
            << std::setprecision(2) << speedup << "x vs batch-1 server path ("
            << (mismatches == 0 ? "all responses bit-identical"
                                : "BIT-IDENTITY FAILURES")
            << ") -> BENCH_serve.json\n";
  return mismatches == 0 ? 0 : 1;
}
