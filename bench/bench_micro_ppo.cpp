// Micro-benchmarks of the RL substrate: environment stepping and PPO
// training throughput — the cost model behind the bench budgets.

#include <benchmark/benchmark.h>

#include "env/registry.h"
#include "rl/ppo.h"

using namespace imap;

namespace {

void BM_EnvStep(benchmark::State& state, const std::string& name) {
  auto env = env::make_env(name);
  Rng rng(7);
  auto obs = env->reset(rng);
  const auto action = env->action_space().sample(rng);
  for (auto _ : state) {
    auto sr = env->step(action);
    if (sr.done || sr.truncated) env->reset(rng);
    benchmark::DoNotOptimize(sr.reward);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EnvStep, hopper, std::string("Hopper"));
BENCHMARK_CAPTURE(BM_EnvStep, ant, std::string("Ant"));
BENCHMARK_CAPTURE(BM_EnvStep, maze, std::string("AntUMaze"));
BENCHMARK_CAPTURE(BM_EnvStep, fetch, std::string("FetchReach"));

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(7);
  nn::GaussianPolicy policy(17, 6, {32, 32}, rng);
  const auto obs = rng.normal_vec(17);
  for (auto _ : state) benchmark::DoNotOptimize(policy.mean_action(obs));
}
BENCHMARK(BM_PolicyForward);

void BM_PpoIteration(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIteration)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
