// Micro-benchmarks of the RL substrate: environment stepping, the batched
// nn kernels and PPO training throughput — the cost model behind the bench
// budgets.
//
// The custom main() first runs two probes (skipped when IMAP_BENCH_NO_PROBE
// is set, e.g. by the CI bench-smoke stage):
//  * a parallel-speedup probe — the same PPO configuration (4 rollout
//    workers, auto gradient shards) timed once pinned serial (ScopedSerial)
//    and once on a dedicated 4-thread pool (ScopedPool), verifying the
//    traces match bit-for-bit and recording the timings in
//    BENCH_parallel.json;
//  * a kernel probe — the per-sample vs batched PPO update timed on one
//    fixed rollout (hidden {64,64}, minibatch 64), verifying the two modes
//    produce bit-identical parameters and recording the before/after
//    throughput in BENCH_kernels.json (committed, see README).
// The google-benchmark suites then run as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

#include "common/thread_pool.h"
#include "env/registry.h"
#include "grid_runner.h"
#include "nn/batch.h"
#include "rl/ppo.h"

using namespace imap;

namespace {

void BM_EnvStep(benchmark::State& state, const std::string& name) {
  auto env = env::make_env(name);
  Rng rng(7);
  auto obs = env->reset(rng);
  const auto action = env->action_space().sample(rng);
  for (auto _ : state) {
    auto sr = env->step(action);
    if (sr.done || sr.truncated) env->reset(rng);
    benchmark::DoNotOptimize(sr.reward);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EnvStep, hopper, std::string("Hopper"));
BENCHMARK_CAPTURE(BM_EnvStep, ant, std::string("Ant"));
BENCHMARK_CAPTURE(BM_EnvStep, maze, std::string("AntUMaze"));
BENCHMARK_CAPTURE(BM_EnvStep, fetch, std::string("FetchReach"));

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(7);
  nn::GaussianPolicy policy(17, 6, {32, 32}, rng);
  const auto obs = rng.normal_vec(17);
  for (auto _ : state) benchmark::DoNotOptimize(policy.mean_action(obs));
}
BENCHMARK(BM_PolicyForward);

// Batched MLP forward through the blocked kernels: items/s is rows/s, so
// the Arg(1) row is the per-sample baseline the larger batches amortise.
void BM_MlpForwardBatch(benchmark::State& state) {
  Rng rng(7);
  nn::Mlp net({17, 64, 64, 6}, rng);
  const auto b = static_cast<std::size_t>(state.range(0));
  nn::Batch x(b, 17);
  for (std::size_t r = 0; r < b; ++r)
    for (std::size_t c = 0; c < 17; ++c) x(r, c) = rng.normal();
  nn::Mlp::Workspace ws;
  for (auto _ : state) {
    const auto& y = net.forward_batch(x, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b));
}
BENCHMARK(BM_MlpForwardBatch)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// The optimisation stage alone (sampling excluded) on one fixed rollout:
// Arg(0) = legacy per-sample tapes, Arg(1) = batched kernels. The two modes
// are bit-identical in results; only throughput differs.
void BM_PpoUpdate(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.minibatch = 64;
  opts.epochs = 1;
  opts.target_kl = 0.0;
  opts.steps_per_iter = 2048;
  opts.batched_update = state.range(0) != 0;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);
  rl::IterStats stats;
  for (auto _ : state) {
    trainer.update(buf, 0.0, stats);
    benchmark::DoNotOptimize(stats.value_loss);
  }
  state.SetLabel(opts.batched_update ? "batched" : "per-sample");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          opts.steps_per_iter);
}
BENCHMARK(BM_PpoUpdate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PpoIteration(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIteration)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

// Parallel PPO iteration: 4 rollout workers + auto gradient shards on the
// process pool (serial unless IMAP_THREADS / the core count allows more).
void BM_PpoIterationParallel(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  opts.num_workers = 4;
  opts.grad_shards = 0;  // auto from minibatch
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIterationParallel)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Run `iters` PPO iterations with the parallel options; returns (seconds,
/// final mean_return) so the serial/pool traces can be compared.
std::pair<double, double> probe_run(int iters) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = 2048;
  opts.num_workers = 4;
  opts.grad_shards = 0;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  double last = 0.0;
  for (int i = 0; i < iters; ++i) last = trainer.iterate().mean_return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {secs, last};
}

void speedup_probe() {
  constexpr int kIters = 3;
  double serial_s = 0.0, pool_s = 0.0, serial_ret = 0.0, pool_ret = 0.0;
  {
    ScopedSerial serial;
    std::tie(serial_s, serial_ret) = probe_run(kIters);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    std::tie(pool_s, pool_ret) = probe_run(kIters);
  }
  const double speedup = pool_s > 0.0 ? serial_s / pool_s : 1.0;
  const bool identical = serial_ret == pool_ret;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"iters\": " << kIters << ", \"steps_per_iter\": 2048"
     << ", \"workers\": 4, \"serial_s\": " << serial_s
     << ", \"pool4_s\": " << pool_s << ", \"speedup\": " << speedup
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_parallel_report_entry("bench_micro_ppo", os.str());
  std::cerr << "bench_micro_ppo speedup probe: serial " << serial_s
            << "s vs 4-thread pool " << pool_s << "s (" << speedup
            << "x on " << std::thread::hardware_concurrency()
            << " hardware threads); traces "
            << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_parallel.json\n";
}

/// Time the PPO update stage in one kernel mode on a fixed rollout; returns
/// (seconds per update, parameter checksum) so the modes can be compared
/// for both throughput and bit-identity.
std::pair<double, double> kernel_probe_run(bool batched) {
  ScopedSerial serial;  // isolate the kernel speedup from thread scaling
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.minibatch = 64;
  opts.epochs = 1;
  opts.target_kl = 0.0;
  opts.steps_per_iter = 2048;
  opts.batched_update = batched;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);
  rl::IterStats stats;
  trainer.update(buf, 0.0, stats);  // warm-up: grow the workspace arenas
  // Min over repetitions, not mean: background load only ever inflates a
  // rep, so the minimum is the robust estimate of the kernel cost.
  constexpr int kUpdates = 7;
  double secs = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kUpdates; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    trainer.update(buf, 0.0, stats);
    secs = std::min(
        secs, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  double checksum = 0.0;
  for (const double p : trainer.policy().flat_params()) checksum += p;
  return {secs, checksum};
}

void kernel_probe() {
  const auto [per_sample_s, per_sample_sum] = kernel_probe_run(false);
  const auto [batched_s, batched_sum] = kernel_probe_run(true);
  const double speedup = batched_s > 0.0 ? per_sample_s / batched_s : 1.0;
  const bool identical = per_sample_sum == batched_sum;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(5);
  os << "{\"env\": \"Hopper\", \"hidden\": [64, 64], \"minibatch\": 64"
     << ", \"epochs\": 1, \"steps_per_iter\": 2048"
     << ", \"per_sample_update_s\": " << per_sample_s
     << ", \"batched_update_s\": " << batched_s;
  os.precision(3);
  os << ", \"speedup\": " << speedup
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_report_entry("BENCH_kernels.json", "BM_PpoUpdate", os.str());
  std::cerr << "bench_micro_ppo kernel probe: per-sample update "
            << per_sample_s << "s vs batched " << batched_s << "s ("
            << speedup << "x); traces "
            << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_kernels.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (std::getenv("IMAP_BENCH_NO_PROBE") == nullptr) {
    speedup_probe();
    kernel_probe();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
