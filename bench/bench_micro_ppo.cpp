// Micro-benchmarks of the RL substrate: environment stepping, the batched
// nn kernels and PPO training throughput — the cost model behind the bench
// budgets.
//
// The custom main() first runs three probes (skipped when
// IMAP_BENCH_NO_PROBE is set, e.g. by the CI bench-smoke stage):
//  * a parallel-speedup probe — the same PPO configuration (4 rollout
//    workers, auto gradient shards) timed once pinned serial (ScopedSerial)
//    and once on a dedicated 4-thread pool (ScopedPool), verifying the
//    traces match bit-for-bit and recording the timings in
//    BENCH_parallel.json;
//  * a kernel probe — the per-sample vs batched PPO update timed on one
//    fixed rollout (hidden {64,64}, minibatch 64), verifying the two modes
//    produce bit-identical parameters and recording the before/after
//    throughput in BENCH_kernels.json (committed, see README);
//  * a rollout probe — the per-sample vs vectorized (E = 16 lockstep slots)
//    collection stage timed on the victim-wrapped Hopper, verifying the
//    rollouts are bit-identical and recording the steps/s in
//    BENCH_rollout.json (committed, see README).
// The google-benchmark suites then run as usual.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>

#include "attack/threat_model.h"
#include "common/proc.h"
#include "common/thread_pool.h"
#include "env/registry.h"
#include "grid_runner.h"
#include "nn/batch.h"
#include "rl/ppo.h"

using namespace imap;

namespace {

void BM_EnvStep(benchmark::State& state, const std::string& name) {
  auto env = env::make_env(name);
  Rng rng(7);
  auto obs = env->reset(rng);
  const auto action = env->action_space().sample(rng);
  for (auto _ : state) {
    auto sr = env->step(action);
    if (sr.done || sr.truncated) env->reset(rng);
    benchmark::DoNotOptimize(sr.reward);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EnvStep, hopper, std::string("Hopper"));
BENCHMARK_CAPTURE(BM_EnvStep, ant, std::string("Ant"));
BENCHMARK_CAPTURE(BM_EnvStep, maze, std::string("AntUMaze"));
BENCHMARK_CAPTURE(BM_EnvStep, fetch, std::string("FetchReach"));

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(7);
  nn::GaussianPolicy policy(17, 6, {32, 32}, rng);
  const auto obs = rng.normal_vec(17);
  for (auto _ : state) benchmark::DoNotOptimize(policy.mean_action(obs));
}
BENCHMARK(BM_PolicyForward);

// Batched MLP forward through the blocked kernels: items/s is rows/s, so
// the Arg(1) row is the per-sample baseline the larger batches amortise.
void BM_MlpForwardBatch(benchmark::State& state) {
  Rng rng(7);
  nn::Mlp net({17, 64, 64, 6}, rng);
  const auto b = static_cast<std::size_t>(state.range(0));
  nn::Batch x(b, 17);
  for (std::size_t r = 0; r < b; ++r)
    for (std::size_t c = 0; c < 17; ++c) x(r, c) = rng.normal();
  nn::Mlp::Workspace ws;
  for (auto _ : state) {
    const auto& y = net.forward_batch(x, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(b));
}
BENCHMARK(BM_MlpForwardBatch)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// The optimisation stage alone (sampling excluded) on one fixed rollout:
// Arg(0) = legacy per-sample tapes, Arg(1) = batched kernels. The two modes
// are bit-identical in results; only throughput differs.
void BM_PpoUpdate(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.minibatch = 64;
  opts.epochs = 1;
  opts.target_kl = 0.0;
  opts.steps_per_iter = 2048;
  opts.batched_update = state.range(0) != 0;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);
  rl::IterStats stats;
  for (auto _ : state) {
    trainer.update(buf, 0.0, stats);
    benchmark::DoNotOptimize(stats.value_loss);
  }
  state.SetLabel(opts.batched_update ? "batched" : "per-sample");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          opts.steps_per_iter);
}
BENCHMARK(BM_PpoUpdate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The attack-rollout MDP the collection benchmarks run on: Hopper wrapped
/// in StatePerturbationEnv over a network-backed frozen victim, so every
/// step pays a victim forward — the case the vectorized engine batches.
std::unique_ptr<attack::StatePerturbationEnv> make_collect_proto() {
  const auto inner = env::make_env("Hopper");
  Rng victim_rng(11);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {64, 64},
                            victim_rng);
  return std::make_unique<attack::StatePerturbationEnv>(
      *inner, rl::PolicyHandle::snapshot(victim), 0.075,
      attack::RewardMode::Adversary);
}

// Rollout collection throughput: Arg = E lockstep env slots. E = 1 is the
// legacy per-env serial path (one act/log_prob/value/victim forward per
// step); E >= 4 collects through the vectorized engine, which answers each
// tick with one batched policy, value and victim forward across the slots.
// The merged rollout is bit-identical for every E.
void BM_RolloutCollect(benchmark::State& state) {
  const auto proto = make_collect_proto();
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.steps_per_iter = 2048;
  opts.envs_per_worker = static_cast<int>(state.range(0));
  rl::PpoTrainer trainer(*proto, opts, Rng(7));
  rl::RolloutBuffer buf;
  for (auto _ : state) {
    trainer.collect(buf);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetLabel(state.range(0) == 1 ? "serial" : "vectorized");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          opts.steps_per_iter);
}
BENCHMARK(BM_RolloutCollect)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_PpoIteration(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIteration)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

// Parallel PPO iteration: 4 rollout workers + auto gradient shards on the
// process pool (serial unless IMAP_THREADS / the core count allows more).
void BM_PpoIterationParallel(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  opts.num_workers = 4;
  opts.grad_shards = 0;  // auto from minibatch
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIterationParallel)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Run `iters` PPO iterations with the parallel options; returns (seconds,
/// final mean_return) so the serial/pool/fabric traces can be compared.
std::pair<double, double> probe_run(int iters, int num_procs = 1) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = 2048;
  opts.num_workers = 4;
  opts.grad_shards = 0;
  opts.num_procs = num_procs;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  double last = 0.0;
  for (int i = 0; i < iters; ++i) last = trainer.iterate().mean_return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {secs, last};
}

void speedup_probe() {
  constexpr int kIters = 3;
  constexpr int kProcs = 2;
  double serial_s = 0.0, pool_s = 0.0, fabric_s = 0.0;
  double serial_ret = 0.0, pool_ret = 0.0, fabric_ret = 0.0;
  {
    ScopedSerial serial;
    std::tie(serial_s, serial_ret) = probe_run(kIters);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    std::tie(pool_s, pool_ret) = probe_run(kIters);
  }
  {
    // Process fabric leg: same training, collection sharded across forked
    // collector processes (threads pinned serial so the comparison isolates
    // the process layer).
    ScopedSerial serial;
    std::tie(fabric_s, fabric_ret) = probe_run(kIters, kProcs);
  }
  const double speedup = pool_s > 0.0 ? serial_s / pool_s : 1.0;
  const double fabric_speedup = fabric_s > 0.0 ? serial_s / fabric_s : 1.0;
  const bool identical = serial_ret == pool_ret && serial_ret == fabric_ret;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"iters\": " << kIters << ", \"steps_per_iter\": 2048"
     << ", \"workers\": 4, \"procs\": " << kProcs
     << ", \"serial_s\": " << serial_s << ", \"pool4_s\": " << pool_s
     << ", \"fabric2_s\": " << fabric_s << ", \"speedup\": " << speedup
     << ", \"fabric_speedup\": " << fabric_speedup
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_parallel_report_entry("bench_micro_ppo", os.str());
  std::cerr << "bench_micro_ppo speedup probe: serial " << serial_s
            << "s vs 4-thread pool " << pool_s << "s (" << speedup
            << "x) vs " << kProcs << "-proc fabric " << fabric_s << "s ("
            << fabric_speedup << "x) on "
            << std::thread::hardware_concurrency()
            << " hardware threads; traces "
            << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_parallel.json\n";
}

/// Time the PPO update stage in one kernel mode on a fixed rollout; returns
/// (seconds per update, parameter checksum) so the modes can be compared
/// for both throughput and bit-identity.
std::pair<double, double> kernel_probe_run(bool batched) {
  ScopedSerial serial;  // isolate the kernel speedup from thread scaling
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.minibatch = 64;
  opts.epochs = 1;
  opts.target_kl = 0.0;
  opts.steps_per_iter = 2048;
  opts.batched_update = batched;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);
  rl::IterStats stats;
  trainer.update(buf, 0.0, stats);  // warm-up: grow the workspace arenas
  // Min over repetitions, not mean: background load only ever inflates a
  // rep, so the minimum is the robust estimate of the kernel cost.
  constexpr int kUpdates = 7;
  double secs = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kUpdates; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    trainer.update(buf, 0.0, stats);
    secs = std::min(
        secs, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  double checksum = 0.0;
  for (const double p : trainer.policy().flat_params()) checksum += p;
  return {secs, checksum};
}

void kernel_probe() {
  const auto [per_sample_s, per_sample_sum] = kernel_probe_run(false);
  const auto [batched_s, batched_sum] = kernel_probe_run(true);
  const double speedup = batched_s > 0.0 ? per_sample_s / batched_s : 1.0;
  const bool identical = per_sample_sum == batched_sum;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(5);
  os << "{\"env\": \"Hopper\", \"hidden\": [64, 64], \"minibatch\": 64"
     << ", \"epochs\": 1, \"steps_per_iter\": 2048"
     << ", \"per_sample_update_s\": " << per_sample_s
     << ", \"batched_update_s\": " << batched_s;
  os.precision(3);
  os << ", \"speedup\": " << speedup
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_report_entry("BENCH_kernels.json", "BM_PpoUpdate", os.str());
  std::cerr << "bench_micro_ppo kernel probe: per-sample update "
            << per_sample_s << "s vs batched " << batched_s << "s ("
            << speedup << "x); traces "
            << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_kernels.json\n";
}

/// Order-sensitive checksum of everything a collection writes — two rollouts
/// agree on it iff they are bit-identical in every recorded field.
double buffer_checksum(const rl::RolloutBuffer& buf) {
  double sum = static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (const double v : buf.obs[i]) sum += v;
    for (const double v : buf.act[i]) sum += v;
    sum += buf.logp[i] + buf.rew_e[i] + buf.val_e[i];
    sum += static_cast<double>(buf.boundary[i]);
  }
  for (const double v : buf.last_val_e) sum += v;
  for (const double v : buf.episode_returns) sum += v;
  return sum;
}

/// Time one collection stage (16 env slots, serial vs vectorized engine) on
/// the victim-wrapped Hopper; returns (seconds per collect, checksum of the
/// last rollout) so the modes can be compared for throughput and identity.
std::pair<double, double> rollout_probe_run(bool vectorized) {
  ScopedSerial serial;  // isolate the batching speedup from thread scaling
  const auto proto = make_collect_proto();
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.steps_per_iter = 2048;
  opts.envs_per_worker = 16;
  opts.vectorized_rollout = vectorized;
  rl::PpoTrainer trainer(*proto, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);  // warm-up: grow buffers and workspaces
  // Min over repetitions, not mean (see kernel_probe_run). Both modes step
  // the same slot streams, so rep r's rollout matches across modes and the
  // last checksum is comparable.
  constexpr int kCollects = 7;
  double secs = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kCollects; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    trainer.collect(buf);
    secs = std::min(
        secs, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  return {secs, buffer_checksum(buf)};
}

void rollout_probe() {
  const auto [serial_s, serial_sum] = rollout_probe_run(false);
  const auto [vectorized_s, vectorized_sum] = rollout_probe_run(true);
  const double serial_sps = serial_s > 0.0 ? 2048.0 / serial_s : 0.0;
  const double vectorized_sps =
      vectorized_s > 0.0 ? 2048.0 / vectorized_s : 0.0;
  const double speedup = vectorized_s > 0.0 ? serial_s / vectorized_s : 1.0;
  const bool identical = serial_sum == vectorized_sum;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(5);
  os << "{\"env\": \"Hopper\", \"threat_model\": \"StatePerturbationEnv\""
     << ", \"hidden\": [64, 64], \"steps_per_iter\": 2048"
     << ", \"envs_per_worker\": 16, \"serial_collect_s\": " << serial_s
     << ", \"vectorized_collect_s\": " << vectorized_s;
  os.precision(1);
  os << ", \"serial_steps_per_s\": " << serial_sps
     << ", \"vectorized_steps_per_s\": " << vectorized_sps;
  os.precision(3);
  os << ", \"speedup\": " << speedup
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_report_entry("BENCH_rollout.json", "BM_RolloutCollect",
                            os.str());
  std::cerr << "bench_micro_ppo rollout probe: serial collect " << serial_s
            << "s vs vectorized (E=16) " << vectorized_s << "s (" << speedup
            << "x); traces " << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_rollout.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Probe-only mode for the CI bench-diff gate: run just the rollout probe
  // (writes BENCH_rollout.json in the cwd) and exit, skipping the slower
  // speedup/kernel probes and the google-benchmark suites.
  if (std::getenv("IMAP_BENCH_ROLLOUT_PROBE_ONLY") != nullptr) {
    rollout_probe();
    return 0;
  }
  if (std::getenv("IMAP_BENCH_NO_PROBE") == nullptr) {
    speedup_probe();
    kernel_probe();
    rollout_probe();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
