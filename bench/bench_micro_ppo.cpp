// Micro-benchmarks of the RL substrate: environment stepping and PPO
// training throughput — the cost model behind the bench budgets.
//
// The custom main() first runs a parallel-speedup probe: the same PPO
// configuration (4 rollout workers, auto gradient shards) timed once pinned
// serial (ScopedSerial) and once on a dedicated 4-thread pool (ScopedPool),
// verifying the traces match bit-for-bit and recording the timings in
// BENCH_parallel.json. The google-benchmark suites then run as usual.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>

#include "common/thread_pool.h"
#include "env/registry.h"
#include "grid_runner.h"
#include "rl/ppo.h"

using namespace imap;

namespace {

void BM_EnvStep(benchmark::State& state, const std::string& name) {
  auto env = env::make_env(name);
  Rng rng(7);
  auto obs = env->reset(rng);
  const auto action = env->action_space().sample(rng);
  for (auto _ : state) {
    auto sr = env->step(action);
    if (sr.done || sr.truncated) env->reset(rng);
    benchmark::DoNotOptimize(sr.reward);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EnvStep, hopper, std::string("Hopper"));
BENCHMARK_CAPTURE(BM_EnvStep, ant, std::string("Ant"));
BENCHMARK_CAPTURE(BM_EnvStep, maze, std::string("AntUMaze"));
BENCHMARK_CAPTURE(BM_EnvStep, fetch, std::string("FetchReach"));

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(7);
  nn::GaussianPolicy policy(17, 6, {32, 32}, rng);
  const auto obs = rng.normal_vec(17);
  for (auto _ : state) benchmark::DoNotOptimize(policy.mean_action(obs));
}
BENCHMARK(BM_PolicyForward);

void BM_PpoIteration(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIteration)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

// Parallel PPO iteration: 4 rollout workers + auto gradient shards on the
// process pool (serial unless IMAP_THREADS / the core count allows more).
void BM_PpoIterationParallel(benchmark::State& state) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = static_cast<int>(state.range(0));
  opts.num_workers = 4;
  opts.grad_shards = 0;  // auto from minibatch
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  for (auto _ : state) {
    auto stats = trainer.iterate();
    benchmark::DoNotOptimize(stats.mean_return);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PpoIterationParallel)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Run `iters` PPO iterations with the parallel options; returns (seconds,
/// final mean_return) so the serial/pool traces can be compared.
std::pair<double, double> probe_run(int iters) {
  auto env = env::make_env("Hopper");
  rl::PpoOptions opts;
  opts.steps_per_iter = 2048;
  opts.num_workers = 4;
  opts.grad_shards = 0;
  rl::PpoTrainer trainer(*env, opts, Rng(7));
  const auto t0 = std::chrono::steady_clock::now();
  double last = 0.0;
  for (int i = 0; i < iters; ++i) last = trainer.iterate().mean_return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return {secs, last};
}

void speedup_probe() {
  constexpr int kIters = 3;
  double serial_s = 0.0, pool_s = 0.0, serial_ret = 0.0, pool_ret = 0.0;
  {
    ScopedSerial serial;
    std::tie(serial_s, serial_ret) = probe_run(kIters);
  }
  {
    ThreadPool pool(4);
    ScopedPool scope(pool);
    std::tie(pool_s, pool_ret) = probe_run(kIters);
  }
  const double speedup = pool_s > 0.0 ? serial_s / pool_s : 1.0;
  const bool identical = serial_ret == pool_ret;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"iters\": " << kIters << ", \"steps_per_iter\": 2048"
     << ", \"workers\": 4, \"serial_s\": " << serial_s
     << ", \"pool4_s\": " << pool_s << ", \"speedup\": " << speedup
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  bench::write_parallel_report_entry("bench_micro_ppo", os.str());
  std::cerr << "bench_micro_ppo speedup probe: serial " << serial_s
            << "s vs 4-thread pool " << pool_s << "s (" << speedup
            << "x on " << std::thread::hardware_concurrency()
            << " hardware threads); traces "
            << (identical ? "identical" : "DIVERGED")
            << " -> BENCH_parallel.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  speedup_probe();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
