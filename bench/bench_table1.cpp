// Table 1: average episode rewards of one vanilla and five robust victims in
// the four dense-reward locomotion tasks under No Attack, Random, SA-RL and
// the four IMAP attacks. Also prints the Sec. 7 headline: the % performance
// drop IMAP inflicts on the WocaR victims.
//
// Honours IMAP_BENCH_SCALE / IMAP_ZOO_DIR / IMAP_SEED. Results are cached
// under <zoo>/results, so reruns are incremental.

#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.h"
#include "core/experiment.h"
#include "env/registry.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

namespace {

const std::vector<std::string> kEnvs = {"Hopper", "Walker2d", "HalfCheetah",
                                        "Ant"};

std::vector<std::string> victims_for(const std::string& env) {
  // The paper reports no RADIAL/WocaR victims for Ant (Table 1).
  if (env == "Ant") return {"PPO", "ATLA", "SA", "ATLA-SA"};
  return {"PPO", "ATLA", "SA", "ATLA-SA", "RADIAL", "WocaR"};
}

const std::vector<AttackKind> kAttacks = {
    AttackKind::None,   AttackKind::Random, AttackKind::SaRl,
    AttackKind::ImapSC, AttackKind::ImapPC, AttackKind::ImapR,
    AttackKind::ImapD};

}  // namespace

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_table1: scale=" << runner.config().scale
            << " zoo=" << runner.config().zoo_dir << "\n";

  Table table({"Env", "Victim", "No Attack", "Random", "SA-RL", "IMAP-SC",
               "IMAP-PC", "IMAP-R", "IMAP-D"});

  // The whole grid is enumerable up front; the cells are independent, so
  // run them through the parallel grid harness and format afterwards.
  std::vector<core::AttackPlan> plans;
  for (const auto& env : kEnvs)
    for (const auto& victim : victims_for(env))
      for (const auto attack : kAttacks) {
        core::AttackPlan plan;
        plan.env_name = env;
        plan.defense = victim;
        plan.attack = attack;
        plans.push_back(plan);
      }
  bench::GridRunner grid(runner, "bench_table1");
  const auto outcomes = grid.run_plans(plans);

  // mean_of[env][victim][attack] = mean reward.
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      mean_of;

  std::size_t cell = 0;
  for (const auto& env : kEnvs) {
    std::map<std::string, double> column_sum;
    const auto victims = victims_for(env);
    for (const auto& victim : victims) {
      std::vector<std::string> row{env, victim};
      for (const auto attack : kAttacks) {
        const auto& outcome = outcomes[cell++];
        row.push_back(Table::pm(outcome.victim_eval.returns.mean,
                                outcome.victim_eval.returns.stddev));
        mean_of[env][victim][core::to_string(attack)] =
            outcome.victim_eval.returns.mean;
        column_sum[core::to_string(attack)] +=
            outcome.victim_eval.returns.mean;
      }
      table.add_row(std::move(row));
    }
    std::vector<std::string> avg{env, "Average"};
    for (const auto attack : kAttacks)
      avg.push_back(Table::num(column_sum[core::to_string(attack)] /
                                   static_cast<double>(victims.size()),
                               0));
    table.add_row(std::move(avg));
  }
  grid.write_report();

  std::cout << "Table 1 — dense-reward tasks: victim episode rewards under "
               "attack (mean ± std)\n\n";
  std::cout << table.to_string() << "\n";
  table.save_csv("table1.csv");

  // Sec. 7 headline: best-IMAP drop on the WocaR victims.
  std::cout << "IMAP vs WocaR (Sec. 7; paper: 54.58% / 34.07% / 38.10% on "
               "Hopper / Walker2d / HalfCheetah):\n";
  for (const std::string env : {"Hopper", "Walker2d", "HalfCheetah"}) {
    const auto& row = mean_of[env]["WocaR"];
    const double clean = row.at("No Attack");
    double best = clean;
    std::string best_name = "none";
    for (const std::string name : {"IMAP-SC", "IMAP-PC", "IMAP-R", "IMAP-D"}) {
      if (row.at(name) < best) {
        best = row.at(name);
        best_name = name;
      }
    }
    std::cout << "  " << env << ": " << Table::num(clean, 0) << " -> "
              << Table::num(best, 0) << "  (drop "
              << Table::num(100.0 * (1.0 - best / std::max(1.0, clean)), 1)
              << "% via " << best_name << ")\n";
  }
  std::cout << "\nCSV written to table1.csv\n";
  return 0;
}
