// Figure 4: test-time attacking curves of SA-RL and the four IMAP attacks on
// the six sparse-reward locomotion tasks — the victim's success probability
// (training-time surrogate) as a function of adversary samples. Lower is a
// stronger attack. Shares its cached runs with bench_table2/3.

#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "grid_runner.h"

using namespace imap;
using core::AttackKind;

namespace {
const std::vector<std::string> kEnvs = {
    "SparseHopper", "SparseWalker2d",        "SparseHalfCheetah",
    "SparseAnt",    "SparseHumanoidStandup", "SparseHumanoid"};

const std::vector<AttackKind> kAttacks = {
    AttackKind::SaRl, AttackKind::ImapSC, AttackKind::ImapPC,
    AttackKind::ImapR, AttackKind::ImapD};
}  // namespace

int main() {
  core::ExperimentRunner runner(BenchConfig::from_env());
  std::cerr << "bench_fig4: scale=" << runner.config().scale << "\n";

  Table series({"Env", "Attack", "Steps", "VictimSuccess"});

  std::vector<core::AttackPlan> plans;
  for (const auto& env : kEnvs)
    for (const auto attack : kAttacks) {
      core::AttackPlan plan;
      plan.env_name = env;
      plan.attack = attack;
      plans.push_back(plan);
    }
  bench::GridRunner grid(runner, "bench_fig4");
  const auto outcomes = grid.run_plans(plans);

  std::size_t cell = 0;
  for (const auto& env : kEnvs) {
    std::cout << "== " << env << " ==\n";
    for (const auto attack : kAttacks) {
      const auto& outcome = outcomes[cell++];

      // Print ~8 evenly spaced curve points per series.
      const auto& c = outcome.curve;
      std::cout << "  " << core::to_string(attack) << ":";
      const std::size_t stride = std::max<std::size_t>(1, c.size() / 8);
      for (std::size_t i = 0; i < c.size(); i += stride) {
        std::cout << "  " << c[i].steps / 1000 << "k:"
                  << Table::num(c[i].victim_success, 2);
        series.add_row({env, core::to_string(attack),
                        std::to_string(c[i].steps),
                        Table::num(c[i].victim_success, 4)});
      }
      if (!c.empty())
        std::cout << "  (final " << Table::num(c.back().victim_success, 2)
                  << ")";
      std::cout << "\n";
    }
  }

  grid.write_report();
  series.save_csv("fig4.csv");
  std::cout << "\nSeries CSV written to fig4.csv (victim success vs adversary "
               "samples; paper Fig. 4)\n";
  return 0;
}
