// bench_fabric: throughput probes for the multi-process fabric, recorded in
// the tracked BENCH_fabric.json (see README "Benchmarks").
//
//  * collect probe — the same PPO collection stage (victim-wrapped Hopper,
//    4 rollout workers) timed with num_procs=1 (in-process) and num_procs=N
//    (persistent forked collectors over contiguous slot ranges), min over 7
//    repetitions; verifies the merged rollouts are bit-identical and
//    records steps/s for both.
//  * grid probe — a small victim→attack grid run once through the DAG
//    scheduler serially and once on N worker processes (fresh stores, so
//    nothing is cached); verifies every outcome is bit-identical and
//    records grid cells/s plus per-node wall-clock.
//
// On a single-hardware-thread runner the N-process legs measure fork and
// framing overhead rather than parallel speedup — hardware_threads is
// recorded precisely so readers can tell which regime a row came from;
// expect linear-minus-overhead scaling per available core.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "attack/threat_model.h"
#include "common/config.h"
#include "core/experiment_dag.h"
#include "env/registry.h"
#include "grid_runner.h"
#include "rl/ppo.h"

using namespace imap;

namespace {

/// Order-sensitive checksum of everything a collection writes — two rollouts
/// agree on it iff they are bit-identical in every recorded field.
double buffer_checksum(const rl::RolloutBuffer& buf) {
  double sum = static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (const double v : buf.obs[i]) sum += v;
    for (const double v : buf.act[i]) sum += v;
    sum += buf.logp[i] + buf.rew_e[i] + buf.val_e[i];
    sum += static_cast<double>(buf.boundary[i]);
  }
  for (const double v : buf.last_val_e) sum += v;
  for (const double v : buf.episode_returns) sum += v;
  return sum;
}

std::unique_ptr<attack::StatePerturbationEnv> make_collect_proto() {
  const auto inner = env::make_env("Hopper");
  Rng victim_rng(11);
  nn::GaussianPolicy victim(inner->obs_dim(), inner->act_dim(), {64, 64},
                            victim_rng);
  return std::make_unique<attack::StatePerturbationEnv>(
      *inner, rl::PolicyHandle::snapshot(victim), 0.075,
      attack::RewardMode::Adversary);
}

/// Time the collection stage at a given fabric width; returns (min seconds
/// per collect over 7 reps, checksum of the last rollout). Both widths step
/// identical slot streams, so rep r's rollout matches across widths.
std::pair<double, double> collect_probe_run(int num_procs) {
  const auto proto = make_collect_proto();
  rl::PpoOptions opts;
  opts.hidden = {64, 64};
  opts.steps_per_iter = 2048;
  opts.num_workers = 4;
  opts.envs_per_worker = 4;
  opts.num_procs = num_procs;
  rl::PpoTrainer trainer(*proto, opts, Rng(7));
  rl::RolloutBuffer buf;
  trainer.collect(buf);  // warm-up: spawn the fabric, grow the buffers
  constexpr int kCollects = 7;
  // Min over repetitions, not mean: background load only ever inflates a
  // rep, so the minimum is the robust estimate.
  double secs = std::numeric_limits<double>::infinity();
  for (int i = 0; i < kCollects; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    trainer.collect(buf);
    secs = std::min(
        secs, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }
  return {secs, buffer_checksum(buf)};
}

bool collect_probe(int fabric_procs, std::ostringstream& os) {
  const auto [serial_s, serial_sum] = collect_probe_run(1);
  const auto [fabric_s, fabric_sum] = collect_probe_run(fabric_procs);
  const double speedup = fabric_s > 0.0 ? serial_s / fabric_s : 1.0;
  const bool identical = serial_sum == fabric_sum;
  os.precision(5);
  os << "\"collect\": {\"steps_per_iter\": 2048, \"workers\": 4"
     << ", \"procs\": " << fabric_procs << ", \"p1_s\": " << serial_s
     << ", \"pn_s\": " << fabric_s;
  os.precision(1);
  os << ", \"p1_steps_per_s\": " << (serial_s > 0.0 ? 2048.0 / serial_s : 0.0)
     << ", \"pn_steps_per_s\": "
     << (fabric_s > 0.0 ? 2048.0 / fabric_s : 0.0);
  os.precision(3);
  os << ", \"speedup\": " << speedup
     << ", \"traces_identical\": " << (identical ? "true" : "false") << "}";
  std::cerr << "bench_fabric collect probe: 1-proc " << serial_s << "s vs "
            << fabric_procs << "-proc " << fabric_s << "s (" << speedup
            << "x); traces " << (identical ? "identical" : "DIVERGED")
            << "\n";
  return identical;
}

/// Order-sensitive checksum of one attack outcome (eval stats + curve).
double outcome_checksum(const core::AttackOutcome& out) {
  double sum = out.victim_eval.returns.mean + out.victim_eval.returns.stddev +
               static_cast<double>(out.victim_eval.returns.episodes) +
               out.victim_eval.success_rate + out.victim_eval.mean_length;
  for (const double v : out.victim_eval.episode_returns) sum += v;
  for (const auto& p : out.curve)
    sum += static_cast<double>(p.steps) + p.victim_success + p.tau;
  return sum;
}

std::vector<core::AttackPlan> grid_plans() {
  std::vector<core::AttackPlan> plans;
  for (const auto& [env, kind] :
       std::vector<std::pair<std::string, core::AttackKind>>{
           {"Hopper", core::AttackKind::None},
           {"Hopper", core::AttackKind::ImapPC},
           {"SparseHopper", core::AttackKind::ImapSC}}) {
    core::AttackPlan p;
    p.env_name = env;
    p.attack = kind;
    p.attack_steps = 4096;
    p.eval_episodes = 10;
    plans.push_back(p);
  }
  return plans;
}

/// Run the probe grid once at a given width into a fresh store; returns
/// (seconds, per-plan outcome checksums, per-node seconds with labels).
std::pair<double, std::vector<double>> grid_probe_run(
    int procs, const std::string& zoo,
    std::vector<std::pair<std::string, double>>* node_secs) {
  std::filesystem::remove_all(zoo);
  BenchConfig cfg = BenchConfig::from_env();
  cfg.zoo_dir = zoo;
  core::DagOptions dopts;
  dopts.procs = procs;
  core::DagScheduler sched(cfg, dopts);
  const auto plans = grid_plans();
  const auto t0 = std::chrono::steady_clock::now();
  const auto out = sched.run(plans);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<double> sums;
  for (const auto& o : out) sums.push_back(outcome_checksum(o));
  if (node_secs) {
    const auto& nodes = sched.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& n = nodes[i];
      std::string label = n.kind == core::DagNode::Kind::Attack
                              ? n.plan.env_name + "/" +
                                    core::to_string(n.plan.attack)
                              : "victim/" + n.env_name;
      for (auto& c : label)
        if (c == ' ') c = '-';
      node_secs->emplace_back(std::move(label), sched.node_seconds()[i]);
    }
  }
  std::filesystem::remove_all(zoo);
  return {secs, sums};
}

bool grid_probe(int fabric_procs, std::ostringstream& os) {
  const auto [serial_s, serial_sums] =
      grid_probe_run(1, "./bench_fabric_zoo_p1", nullptr);
  std::vector<std::pair<std::string, double>> node_secs;
  const auto [fabric_s, fabric_sums] =
      grid_probe_run(fabric_procs, "./bench_fabric_zoo_pn", &node_secs);
  const double speedup = fabric_s > 0.0 ? serial_s / fabric_s : 1.0;
  const bool identical = serial_sums == fabric_sums;
  const double cells = static_cast<double>(grid_plans().size());
  os.precision(3);
  os << "\"grid\": {\"cells\": " << grid_plans().size()
     << ", \"procs\": " << fabric_procs << ", \"p1_s\": " << serial_s
     << ", \"pn_s\": " << fabric_s
     << ", \"p1_cells_per_s\": " << (serial_s > 0.0 ? cells / serial_s : 0.0)
     << ", \"pn_cells_per_s\": " << (fabric_s > 0.0 ? cells / fabric_s : 0.0)
     << ", \"speedup\": " << speedup
     << ", \"traces_identical\": " << (identical ? "true" : "false")
     << ", \"node_wall_s\": {";
  for (std::size_t i = 0; i < node_secs.size(); ++i) {
    if (i) os << ", ";
    os << '"' << node_secs[i].first << "\": " << node_secs[i].second;
  }
  os << "}}";
  std::cerr << "bench_fabric grid probe: 1-proc " << serial_s << "s vs "
            << fabric_procs << "-proc " << fabric_s << "s (" << speedup
            << "x); outcomes " << (identical ? "identical" : "DIVERGED")
            << "\n";
  return identical;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int procs =
      std::max(2, std::min(4, static_cast<int>(hw == 0 ? 1 : hw)));
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << "{\"hardware_threads\": " << hw << ", ";
  const bool collect_ok = collect_probe(procs, os);
  os << ", ";
  const bool grid_ok = grid_probe(procs, os);
  os << "}";
  bench::write_report_entry("BENCH_fabric.json", "bench_fabric", os.str());
  std::cerr << "bench_fabric -> BENCH_fabric.json\n";
  // Speedups vary with the host; identity never may. Nonzero exit makes the
  // ci bench-smoke stage a real gate on trace divergence.
  return collect_ok && grid_ok ? 0 : 1;
}
