#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "nn/batch.h"
#include "nn/matrix.h"

namespace imap::nn {

/// Fully-connected network with tanh hidden activations and a linear output
/// layer, trained by manual backpropagation.
///
/// Parameters and gradients live in flat vectors so an optimiser (Adam) can
/// treat the whole network as one parameter block; per-layer (W, b) views
/// index into the flats. Forward passes for training cache activations in a
/// caller-owned Tape so the same network can be used re-entrantly.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Weights ~ N(0, 1/sqrt(fan_in)) scaled by
  /// `init_scale`; the output layer is additionally shrunk (x0.01) which is
  /// standard for policy heads.
  Mlp(std::vector<std::size_t> sizes, Rng& rng, double init_scale = 1.0);

  /// Inference forward (no caching).
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Allocation-free inference forward for per-step callers: `out` receives
  /// the output, `scratch` is the ping-pong partner; both grow once and are
  /// reused across calls. Bit-identical to forward().
  void forward_into(const std::vector<double>& x, std::vector<double>& out,
                    std::vector<double>& scratch) const;

  /// Activation cache for one forward pass.
  struct Tape {
    std::vector<std::vector<double>> pre;   ///< pre-activations per layer
    std::vector<std::vector<double>> post;  ///< post-activations (post[0]=x)
  };

  /// Forward pass that records activations for a later backward.
  std::vector<double> forward_tape(const std::vector<double>& x,
                                   Tape& tape) const;

  /// Same pass, but returns a reference to the output activations held by
  /// the tape instead of copying them out — allocation-free when the tape
  /// is reused (valid until the tape's next forward).
  const std::vector<double>& forward_tape_ref(const std::vector<double>& x,
                                              Tape& tape) const;

  /// Accumulate dL/dparams into the gradient buffer given dL/doutput.
  /// Returns dL/dinput (useful for adversarial perturbation search).
  std::vector<double> backward(const Tape& tape,
                               const std::vector<double>& grad_out);

  /// dL/dinput only, without touching parameter gradients (for FGSM-style
  /// input-gradient computations by the defenses).
  std::vector<double> input_gradient(const Tape& tape,
                                     const std::vector<double>& grad_out) const;

  /// Allocation-free input_gradient: result in `out`, `scratch` is the
  /// backward ping-pong partner; both reused across calls. Bit-identical.
  void input_gradient_into(const Tape& tape,
                           const std::vector<double>& grad_out,
                           std::vector<double>& out,
                           std::vector<double>& scratch) const;

  /// Reusable arena for the batched kernels: the batched activation tape
  /// (pre/post per layer) plus the backward ping-pong scratch. All buffers
  /// grow to the high-water batch size once and are then reused — zero heap
  /// allocations per step in steady state. One Workspace may be in flight
  /// per thread; the Mlp itself stays read-only during batched forwards.
  ///
  /// The workspace also carries the per-layer column-major weight copies the
  /// lanes-across-outputs SIMD backends read (`wt`), keyed by (owner,
  /// weight_version): forward_batch rebuilds them only when the network's
  /// weights actually changed, so frozen victims pay the O(out·in) transpose
  /// once instead of on every tick. The `q*` buffers are scratch for the
  /// int8 serving path (nn/quant.h) — plain members here so QuantizedMlp can
  /// reuse the same zero-allocation arena without a circular header.
  struct Workspace {
    std::vector<Batch> pre;   ///< pre-activations per layer (B×out)
    std::vector<Batch> post;  ///< post-activations (post[0] = input copy)
    Batch g;                  ///< dL/d(pre-activation) scratch
    Batch gin;                ///< dL/d(input of layer) scratch

    std::vector<std::vector<double>> wt;  ///< per-layer Wᵀ (in×out, i.e.
                                          ///< wt[c·out + r] = w[r·in + c])
    const void* wt_owner = nullptr;       ///< Mlp the cache was built from
    std::uint64_t wt_version = 0;         ///< weight_version() at build time

    std::vector<std::int16_t> qx;  ///< quantized activations (B×2·in_pairs)
    std::vector<float> qscale;     ///< per-sample dequant scales (B)
    std::vector<float> qh;         ///< layer output ping buffer (B×out)
    std::vector<float> qh2;        ///< layer output pong buffer (B×out)
    Batch qout;                    ///< final fp64 output rows (B×out)
  };

  /// Batched inference/training forward: stacks B samples through the
  /// blocked kernels, recording the activation tape in `ws`. Returns the
  /// output rows (a reference into `ws`, valid until the next call).
  /// Bit-identical to calling forward()/forward_tape() once per row.
  const Batch& forward_batch(const Batch& x, Workspace& ws) const;

  /// Convenience overload on the Mlp-owned workspace (hence non-const:
  /// concurrent use of one Mlp's owned workspace would race).
  const Batch& forward_batch(const Batch& x) { return forward_batch(x, ws_); }

  /// Batched backward through the tape recorded by forward_batch on `ws`:
  /// accumulates dL/dparams into the gradient buffer and returns dL/dinput
  /// rows (reference into `ws`). Gradients are bit-identical to running
  /// backward() per row in ascending row order.
  const Batch& backward_batch(Workspace& ws, const Batch& grad_out);
  const Batch& backward_batch(const Batch& grad_out) {
    return backward_batch(ws_, grad_out);
  }

  /// Batched dL/dinput only (parameter gradients untouched).
  const Batch& input_gradient_batch(Workspace& ws,
                                    const Batch& grad_out) const;

  Workspace& workspace() { return ws_; }

  void zero_grad();

  /// Mutable access conservatively bumps the weight version: callers that
  /// take this reference are about to write (Adam steps, checkpoint
  /// restores), and over-invalidation only costs a transpose rebuild while
  /// under-invalidation would serve stale weights from cached transposes.
  /// Contract: do NOT hold this reference and mutate across forward calls —
  /// re-acquire it around each mutation so the version advances (writes
  /// through a stored reference are invisible to the counter).
  std::vector<double>& params() {
    ++weight_version_;
    return params_;
  }
  const std::vector<double>& params() const { return params_; }

  /// Monotone counter identifying the current weight values; any mutable
  /// parameter access advances it. Keys the Workspace transpose cache and
  /// QuantizedMlp staleness checks.
  std::uint64_t weight_version() const { return weight_version_; }

  /// Ensure ws.wt holds this network's current per-layer transposes.
  /// No-op when (owner, version) already match — the steady-state path.
  void ensure_transpose_cache(Workspace& ws) const;
  std::vector<double>& grads() { return grads_; }
  const std::vector<double>& grads() const { return grads_; }

  std::size_t in_dim() const { return sizes_.front(); }
  std::size_t out_dim() const { return sizes_.back(); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Serialize architecture + weights; load_state checks the architecture
  /// matches and restores the weights (gradients are transient, not saved).
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  struct LayerView {
    std::size_t w_off;  ///< offset of W (out×in, row-major) in the flat block
    std::size_t b_off;  ///< offset of b (out) in the flat block
    std::size_t in;
    std::size_t out;
  };

  std::vector<std::size_t> sizes_;
  std::vector<LayerView> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
  std::uint64_t weight_version_ = 0;
  Workspace ws_;  ///< owned arena for the convenience batched overloads
};

}  // namespace imap::nn
