#pragma once

#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "nn/batch.h"
#include "nn/matrix.h"

namespace imap::nn {

/// Fully-connected network with tanh hidden activations and a linear output
/// layer, trained by manual backpropagation.
///
/// Parameters and gradients live in flat vectors so an optimiser (Adam) can
/// treat the whole network as one parameter block; per-layer (W, b) views
/// index into the flats. Forward passes for training cache activations in a
/// caller-owned Tape so the same network can be used re-entrantly.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Weights ~ N(0, 1/sqrt(fan_in)) scaled by
  /// `init_scale`; the output layer is additionally shrunk (x0.01) which is
  /// standard for policy heads.
  Mlp(std::vector<std::size_t> sizes, Rng& rng, double init_scale = 1.0);

  /// Inference forward (no caching).
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Activation cache for one forward pass.
  struct Tape {
    std::vector<std::vector<double>> pre;   ///< pre-activations per layer
    std::vector<std::vector<double>> post;  ///< post-activations (post[0]=x)
  };

  /// Forward pass that records activations for a later backward.
  std::vector<double> forward_tape(const std::vector<double>& x,
                                   Tape& tape) const;

  /// Accumulate dL/dparams into the gradient buffer given dL/doutput.
  /// Returns dL/dinput (useful for adversarial perturbation search).
  std::vector<double> backward(const Tape& tape,
                               const std::vector<double>& grad_out);

  /// dL/dinput only, without touching parameter gradients (for FGSM-style
  /// input-gradient computations by the defenses).
  std::vector<double> input_gradient(const Tape& tape,
                                     const std::vector<double>& grad_out) const;

  /// Reusable arena for the batched kernels: the batched activation tape
  /// (pre/post per layer) plus the backward ping-pong scratch. All buffers
  /// grow to the high-water batch size once and are then reused — zero heap
  /// allocations per step in steady state. One Workspace may be in flight
  /// per thread; the Mlp itself stays read-only during batched forwards.
  struct Workspace {
    std::vector<Batch> pre;   ///< pre-activations per layer (B×out)
    std::vector<Batch> post;  ///< post-activations (post[0] = input copy)
    Batch g;                  ///< dL/d(pre-activation) scratch
    Batch gin;                ///< dL/d(input of layer) scratch
  };

  /// Batched inference/training forward: stacks B samples through the
  /// blocked kernels, recording the activation tape in `ws`. Returns the
  /// output rows (a reference into `ws`, valid until the next call).
  /// Bit-identical to calling forward()/forward_tape() once per row.
  const Batch& forward_batch(const Batch& x, Workspace& ws) const;

  /// Convenience overload on the Mlp-owned workspace (hence non-const:
  /// concurrent use of one Mlp's owned workspace would race).
  const Batch& forward_batch(const Batch& x) { return forward_batch(x, ws_); }

  /// Batched backward through the tape recorded by forward_batch on `ws`:
  /// accumulates dL/dparams into the gradient buffer and returns dL/dinput
  /// rows (reference into `ws`). Gradients are bit-identical to running
  /// backward() per row in ascending row order.
  const Batch& backward_batch(Workspace& ws, const Batch& grad_out);
  const Batch& backward_batch(const Batch& grad_out) {
    return backward_batch(ws_, grad_out);
  }

  /// Batched dL/dinput only (parameter gradients untouched).
  const Batch& input_gradient_batch(Workspace& ws,
                                    const Batch& grad_out) const;

  Workspace& workspace() { return ws_; }

  void zero_grad();

  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& grads() { return grads_; }
  const std::vector<double>& grads() const { return grads_; }

  std::size_t in_dim() const { return sizes_.front(); }
  std::size_t out_dim() const { return sizes_.back(); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Serialize architecture + weights; load_state checks the architecture
  /// matches and restores the weights (gradients are transient, not saved).
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  struct LayerView {
    std::size_t w_off;  ///< offset of W (out×in, row-major) in the flat block
    std::size_t b_off;  ///< offset of b (out) in the flat block
    std::size_t in;
    std::size_t out;
  };

  std::vector<std::size_t> sizes_;
  std::vector<LayerView> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
  Workspace ws_;  ///< owned arena for the convenience batched overloads
};

}  // namespace imap::nn
