#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace imap::nn {

/// Fully-connected network with tanh hidden activations and a linear output
/// layer, trained by manual backpropagation.
///
/// Parameters and gradients live in flat vectors so an optimiser (Adam) can
/// treat the whole network as one parameter block; per-layer (W, b) views
/// index into the flats. Forward passes for training cache activations in a
/// caller-owned Tape so the same network can be used re-entrantly.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Weights ~ N(0, 1/sqrt(fan_in)) scaled by
  /// `init_scale`; the output layer is additionally shrunk (x0.01) which is
  /// standard for policy heads.
  Mlp(std::vector<std::size_t> sizes, Rng& rng, double init_scale = 1.0);

  /// Inference forward (no caching).
  std::vector<double> forward(const std::vector<double>& x) const;

  /// Activation cache for one forward pass.
  struct Tape {
    std::vector<std::vector<double>> pre;   ///< pre-activations per layer
    std::vector<std::vector<double>> post;  ///< post-activations (post[0]=x)
  };

  /// Forward pass that records activations for a later backward.
  std::vector<double> forward_tape(const std::vector<double>& x,
                                   Tape& tape) const;

  /// Accumulate dL/dparams into the gradient buffer given dL/doutput.
  /// Returns dL/dinput (useful for adversarial perturbation search).
  std::vector<double> backward(const Tape& tape,
                               const std::vector<double>& grad_out);

  /// dL/dinput only, without touching parameter gradients (for FGSM-style
  /// input-gradient computations by the defenses).
  std::vector<double> input_gradient(const Tape& tape,
                                     const std::vector<double>& grad_out) const;

  void zero_grad();

  std::vector<double>& params() { return params_; }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& grads() { return grads_; }
  const std::vector<double>& grads() const { return grads_; }

  std::size_t in_dim() const { return sizes_.front(); }
  std::size_t out_dim() const { return sizes_.back(); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }

 private:
  struct LayerView {
    std::size_t w_off;  ///< offset of W (out×in, row-major) in the flat block
    std::size_t b_off;  ///< offset of b (out) in the flat block
    std::size_t in;
    std::size_t out;
  };

  std::vector<double> layer_forward(const LayerView& l,
                                    const std::vector<double>& x,
                                    const std::vector<double>& block) const;

  std::vector<std::size_t> sizes_;
  std::vector<LayerView> layers_;
  std::vector<double> params_;
  std::vector<double> grads_;
};

}  // namespace imap::nn
