#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

// The batched kernels carry a hand-vectorised AVX2 variant. SIMD lanes are
// only ever mapped across *independent* output elements (output neurons,
// input dims, weight-matrix entries); each lane executes the exact scalar
// chain — separate mul then add, ascending contraction index — so the
// vector paths are bit-identical to the scalar ones. The target attribute
// deliberately enables avx2 but NOT fma: with no FMA instructions available
// the compiler cannot contract mul+add and change rounding.
#if defined(__x86_64__) && defined(__GNUC__)
#define IMAP_KERNEL_AVX2 1
#include <immintrin.h>
#endif

namespace imap::nn {

namespace kernel {

void affine(const double* w, const double* b, std::size_t out, std::size_t in,
            const double* x, double* y) {
  for (std::size_t r = 0; r < out; ++r) {
    const double* row = w + r * in;
    double s = b ? b[r] : 0.0;
    for (std::size_t c = 0; c < in; ++c) s += row[c] * x[c];
    y[r] = s;
  }
}

void matvec_t_acc(const double* w, std::size_t out, std::size_t in,
                  const double* x, double* y) {
  for (std::size_t r = 0; r < out; ++r) {
    const double* row = w + r * in;
    const double xr = x[r];
    for (std::size_t c = 0; c < in; ++c) y[c] += row[c] * xr;
  }
}

void outer_acc(double* m, std::size_t rows, std::size_t cols, const double* u,
               const double* v, double scale) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    const double ur = u[r] * scale;
    for (std::size_t c = 0; c < cols; ++c) row[c] += ur * v[c];
  }
}

namespace {

#ifdef IMAP_KERNEL_AVX2

bool cpu_has_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// Y[n] = W·X[n] + b, lanes across output neurons. Four adjacent outputs
// share one broadcast of x[c] and advance their accumulators in lock-step;
// per lane the reduction is b[r] then += w[r][c]·x[c] for ascending c —
// the affine() chain exactly. Reads the weights through a column-major
// copy (wt[c·out + r]) so the four-lane load is contiguous; the copy is
// O(out·in) against O(batch·out·in) compute.
__attribute__((target("avx2"))) void batch_affine_avx2(
    const double* w, const double* b, std::size_t out, std::size_t in,
    const double* x, std::size_t batch, double* y) {
  thread_local std::vector<double> wt;
  if (wt.size() < in * out) wt.resize(in * out);
  double* wtp = wt.data();
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) wtp[c * out + r] = w[r * in + c];
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x + n * in;
    double* yn = y + n * out;
    std::size_t r = 0;
    for (; r + 16 <= out; r += 16) {
      __m256d a0, a1, a2, a3;
      if (b) {
        a0 = _mm256_loadu_pd(b + r);
        a1 = _mm256_loadu_pd(b + r + 4);
        a2 = _mm256_loadu_pd(b + r + 8);
        a3 = _mm256_loadu_pd(b + r + 12);
      } else {
        a0 = a1 = a2 = a3 = _mm256_setzero_pd();
      }
      for (std::size_t c = 0; c < in; ++c) {
        const __m256d xc = _mm256_set1_pd(xn[c]);
        const double* col = wtp + c * out + r;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(col), xc));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(col + 4), xc));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(col + 8), xc));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(col + 12), xc));
      }
      _mm256_storeu_pd(yn + r, a0);
      _mm256_storeu_pd(yn + r + 4, a1);
      _mm256_storeu_pd(yn + r + 8, a2);
      _mm256_storeu_pd(yn + r + 12, a3);
    }
    for (; r + 4 <= out; r += 4) {
      __m256d a = b ? _mm256_loadu_pd(b + r) : _mm256_setzero_pd();
      for (std::size_t c = 0; c < in; ++c) {
        const __m256d xc = _mm256_set1_pd(xn[c]);
        a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(wtp + c * out + r), xc));
      }
      _mm256_storeu_pd(yn + r, a);
    }
    for (; r < out; ++r) {
      const double* row = w + r * in;
      double s = b ? b[r] : 0.0;
      for (std::size_t c = 0; c < in; ++c) s += row[c] * xn[c];
      yn[r] = s;
    }
  }
}

// GIN[n] = Wᵀ·G[n], lanes across input dims. For a block of input columns
// the r-loop broadcasts g[n][r] and pulls a contiguous slice of weight row
// r; per lane each gin element starts at 0 and accumulates in ascending r
// order — the matvec_t_acc chain on a zeroed output.
__attribute__((target("avx2"))) void batch_matvec_t_avx2(
    const double* w, std::size_t out, std::size_t in, const double* g,
    std::size_t batch, double* gin) {
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    double* on = gin + n * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd(),
              a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m256d gr = _mm256_set1_pd(gn[r]);
        const double* row = w + r * in + c;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(row), gr));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(row + 4), gr));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(row + 8), gr));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(row + 12), gr));
      }
      _mm256_storeu_pd(on + c, a0);
      _mm256_storeu_pd(on + c + 4, a1);
      _mm256_storeu_pd(on + c + 8, a2);
      _mm256_storeu_pd(on + c + 12, a3);
    }
    for (; c + 4 <= in; c += 4) {
      __m256d a = _mm256_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m256d gr = _mm256_set1_pd(gn[r]);
        a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(w + r * in + c), gr));
      }
      _mm256_storeu_pd(on + c, a);
    }
    for (; c < in; ++c) {
      double s = 0.0;
      for (std::size_t r = 0; r < out; ++r) s += w[r * in + c] * gn[r];
      on[c] = s;
    }
  }
}

// dW += Σ_n G[n]⊗X[n], db += Σ_n G[n], lanes across weight columns. Each
// dw entry is held in a register across the whole batch and accumulates
// g[n][r]·x[n][c] in ascending n — the per-sample outer_acc chain (whose
// scale of 1.0 is bitwise exact) — then is stored once, turning batch
// passes over the out×in block into one.
__attribute__((target("avx2"))) void batch_outer_acc_avx2(
    const double* g, const double* x, std::size_t batch, std::size_t out,
    std::size_t in, double* dw, double* db) {
  for (std::size_t r = 0; r < out; ++r) {
    double* dwr = dw + r * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m256d a0 = _mm256_loadu_pd(dwr + c);
      __m256d a1 = _mm256_loadu_pd(dwr + c + 4);
      __m256d a2 = _mm256_loadu_pd(dwr + c + 8);
      __m256d a3 = _mm256_loadu_pd(dwr + c + 12);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m256d gr = _mm256_set1_pd(g[n * out + r]);
        const double* xn = x + n * in + c;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(xn), gr));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(xn + 4), gr));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(xn + 8), gr));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(xn + 12), gr));
      }
      _mm256_storeu_pd(dwr + c, a0);
      _mm256_storeu_pd(dwr + c + 4, a1);
      _mm256_storeu_pd(dwr + c + 8, a2);
      _mm256_storeu_pd(dwr + c + 12, a3);
    }
    for (; c + 4 <= in; c += 4) {
      __m256d a = _mm256_loadu_pd(dwr + c);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m256d gr = _mm256_set1_pd(g[n * out + r]);
        a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(x + n * in + c), gr));
      }
      _mm256_storeu_pd(dwr + c, a);
    }
    for (; c < in; ++c) {
      double s = dwr[c];
      for (std::size_t n = 0; n < batch; ++n) s += g[n * out + r] * x[n * in + c];
      dwr[c] = s;
    }
    double sb = db[r];
    for (std::size_t n = 0; n < batch; ++n) sb += g[n * out + r];
    db[r] = sb;
  }
}

#endif  // IMAP_KERNEL_AVX2

}  // namespace

void batch_affine(const double* w, const double* b, std::size_t out,
                  std::size_t in, const double* x, std::size_t batch,
                  double* y) {
#ifdef IMAP_KERNEL_AVX2
  // The AVX2 variant pays an O(out·in) weight-transpose per call, so it
  // needs a few batch rows to amortise; results are bit-identical either
  // way, the threshold is purely a throughput choice.
  if (batch >= 4 && cpu_has_avx2()) {
    batch_affine_avx2(w, b, out, in, x, batch, y);
    return;
  }
#endif
  std::size_t n = 0;
  // 4-row blocks: one pass over each weight row serves four samples. The
  // four accumulators are independent and each runs c = 0..in-1 in order,
  // so every output bit-matches the per-sample affine() path.
  for (; n + 4 <= batch; n += 4) {
    const double* x0 = x + n * in;
    const double* x1 = x0 + in;
    const double* x2 = x1 + in;
    const double* x3 = x2 + in;
    double* y0 = y + n * out;
    double* y1 = y0 + out;
    double* y2 = y1 + out;
    double* y3 = y2 + out;
    for (std::size_t r = 0; r < out; ++r) {
      const double* row = w + r * in;
      const double br = b ? b[r] : 0.0;
      double s0 = br, s1 = br, s2 = br, s3 = br;
      for (std::size_t c = 0; c < in; ++c) {
        const double wc = row[c];
        s0 += wc * x0[c];
        s1 += wc * x1[c];
        s2 += wc * x2[c];
        s3 += wc * x3[c];
      }
      y0[r] = s0;
      y1[r] = s1;
      y2[r] = s2;
      y3[r] = s3;
    }
  }
  for (; n < batch; ++n) affine(w, b, out, in, x + n * in, y + n * out);
}

void batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                    const double* g, std::size_t batch, double* gin) {
#ifdef IMAP_KERNEL_AVX2
  if (cpu_has_avx2()) {
    batch_matvec_t_avx2(w, out, in, g, batch, gin);
    return;
  }
#endif
  std::size_t n = 0;
  for (; n + 4 <= batch; n += 4) {
    const double* g0 = g + n * out;
    const double* g1 = g0 + out;
    const double* g2 = g1 + out;
    const double* g3 = g2 + out;
    double* o0 = gin + n * in;
    double* o1 = o0 + in;
    double* o2 = o1 + in;
    double* o3 = o2 + in;
    for (std::size_t c = 0; c < in; ++c) o0[c] = o1[c] = o2[c] = o3[c] = 0.0;
    // r-outer / c-inner, matching matvec_t_acc: each gin element receives
    // its contributions in ascending r order.
    for (std::size_t r = 0; r < out; ++r) {
      const double* row = w + r * in;
      const double a0 = g0[r], a1 = g1[r], a2 = g2[r], a3 = g3[r];
      for (std::size_t c = 0; c < in; ++c) {
        const double wc = row[c];
        o0[c] += wc * a0;
        o1[c] += wc * a1;
        o2[c] += wc * a2;
        o3[c] += wc * a3;
      }
    }
  }
  for (; n < batch; ++n) {
    double* o = gin + n * in;
    for (std::size_t c = 0; c < in; ++c) o[c] = 0.0;
    matvec_t_acc(w, out, in, g + n * out, o);
  }
}

void batch_outer_acc(const double* g, const double* x, std::size_t batch,
                     std::size_t out, std::size_t in, double* dw, double* db) {
#ifdef IMAP_KERNEL_AVX2
  if (cpu_has_avx2()) {
    batch_outer_acc_avx2(g, x, batch, out, in, dw, db);
    return;
  }
#endif
  // Sample-major: each dw/db entry accumulates its per-sample contributions
  // in ascending n order — bit-identical to per-sample accumulation. The
  // dw block (out×in) is revisited per sample but stays cache-resident for
  // the layer widths this library uses.
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    const double* xn = x + n * in;
    outer_acc(dw, out, in, gn, xn, 1.0);
    for (std::size_t r = 0; r < out; ++r) db[r] += gn[r];
  }
}

}  // namespace kernel

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::matvec(const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  kernel::affine(data_.data(), nullptr, rows_, cols_, x.data(), y.data());
  return y;
}

std::vector<double> Matrix::matvec_transposed(
    const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  kernel::matvec_t_acc(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

void Matrix::add_outer(const std::vector<double>& u,
                       const std::vector<double>& v, double scale) {
  IMAP_CHECK(u.size() == rows_ && v.size() == cols_);
  kernel::outer_acc(data_.data(), rows_, cols_, u.data(), v.data(), scale);
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void axpy(std::vector<double>& y, double a, const std::vector<double>& x) {
  IMAP_CHECK(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double linf_norm(const std::vector<double>& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] - b[i];
  return y;
}

std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] + b[i];
  return y;
}

void scale_inplace(std::vector<double>& a, double s) {
  for (double& x : a) x *= s;
}

void clamp_inplace(std::vector<double>& a, double lo, double hi) {
  for (double& x : a) x = std::clamp(x, lo, hi);
}

}  // namespace imap::nn
