#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/kernel_backend.h"

namespace imap::nn {

namespace kernel {

void affine(const double* w, const double* b, std::size_t out, std::size_t in,
            const double* x, double* y) {
  for (std::size_t r = 0; r < out; ++r) {
    const double* row = w + r * in;
    double s = b ? b[r] : 0.0;
    for (std::size_t c = 0; c < in; ++c) s += row[c] * x[c];
    y[r] = s;
  }
}

void matvec_t_acc(const double* w, std::size_t out, std::size_t in,
                  const double* x, double* y) {
  for (std::size_t r = 0; r < out; ++r) {
    const double* row = w + r * in;
    const double xr = x[r];
    for (std::size_t c = 0; c < in; ++c) y[c] += row[c] * xr;
  }
}

void outer_acc(double* m, std::size_t rows, std::size_t cols, const double* u,
               const double* v, double scale) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* row = m + r * cols;
    const double ur = u[r] * scale;
    for (std::size_t c = 0; c < cols; ++c) row[c] += ur * v[c];
  }
}

// Batched entry points: thin dispatchers over the runtime-selected backend
// (nn/kernel_backend.h). batch_affine additionally applies the backend's
// measured small-batch gate — below it the scalar blocked path wins on
// throughput; results are bit-identical either way, the threshold is purely
// a speed choice and drops when the caller supplies a cached transpose.

void batch_affine(const double* w, const double* b, std::size_t out,
                  std::size_t in, const double* x, std::size_t batch,
                  double* y) {
  batch_affine(w, nullptr, b, out, in, x, batch, y);
}

void batch_affine(const double* w, const double* wt, const double* b,
                  std::size_t out, std::size_t in, const double* x,
                  std::size_t batch, double* y) {
  const KernelBackend& be = active_backend();
  const std::size_t gate =
      wt != nullptr ? be.min_batch_affine_cached : be.min_batch_affine;
  if (batch >= gate) {
    be.batch_affine(w, wt, b, out, in, x, batch, y);
  } else {
    scalar_backend().batch_affine(w, nullptr, b, out, in, x, batch, y);
  }
}

void batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                    const double* g, std::size_t batch, double* gin) {
  active_backend().batch_matvec_t(w, out, in, g, batch, gin);
}

void batch_outer_acc(const double* g, const double* x, std::size_t batch,
                     std::size_t out, std::size_t in, double* dw, double* db) {
  active_backend().batch_outer_acc(g, x, batch, out, in, dw, db);
}

void quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                  const float* bias, std::size_t out, std::size_t in_pairs,
                  const std::int16_t* xq, const float* xscale,
                  std::size_t batch, float* y) {
  const KernelBackend& be = active_backend();
  auto fn = be.quant_affine ? be.quant_affine : scalar_backend().quant_affine;
  fn(wq_packed, row_scale, bias, out, in_pairs, xq, xscale, batch, y);
}

void quant_act(float* h, std::size_t batch, std::size_t width,
               std::size_t out_pairs, std::int16_t* qx, float* qscale) {
  const KernelBackend& be = active_backend();
  auto fn = be.quant_act ? be.quant_act : scalar_backend().quant_act;
  fn(h, batch, width, out_pairs, qx, qscale);
}

}  // namespace kernel

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::matvec(const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  kernel::affine(data_.data(), nullptr, rows_, cols_, x.data(), y.data());
  return y;
}

std::vector<double> Matrix::matvec_transposed(
    const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  kernel::matvec_t_acc(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

void Matrix::add_outer(const std::vector<double>& u,
                       const std::vector<double>& v, double scale) {
  IMAP_CHECK(u.size() == rows_ && v.size() == cols_);
  kernel::outer_acc(data_.data(), rows_, cols_, u.data(), v.data(), scale);
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void axpy(std::vector<double>& y, double a, const std::vector<double>& x) {
  IMAP_CHECK(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double linf_norm(const std::vector<double>& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] - b[i];
  return y;
}

std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] + b[i];
  return y;
}

void scale_inplace(std::vector<double>& a, double s) {
  for (double& x : a) x *= s;
}

void clamp_inplace(std::vector<double>& a, double lo, double hi) {
  for (double& x : a) x = std::clamp(x, lo, hi);
}

}  // namespace imap::nn
