#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::matvec(const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Matrix::matvec_transposed(
    const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::add_outer(const std::vector<double>& u,
                       const std::vector<double>& v, double scale) {
  IMAP_CHECK(u.size() == rows_ && v.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    const double ur = u[r] * scale;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ur * v[c];
  }
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void axpy(std::vector<double>& y, double a, const std::vector<double>& x) {
  IMAP_CHECK(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double l2norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

double linf_norm(const std::vector<double>& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] - b[i];
  return y;
}

std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  IMAP_CHECK(a.size() == b.size());
  std::vector<double> y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] + b[i];
  return y;
}

void scale_inplace(std::vector<double>& a, double s) {
  for (double& x : a) x *= s;
}

void clamp_inplace(std::vector<double>& a, double lo, double hi) {
  for (double& x : a) x = std::clamp(x, lo, hi);
}

}  // namespace imap::nn
