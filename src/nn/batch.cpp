#include "nn/batch.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace imap::nn {

void Batch::fill(double v) {
  std::fill(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(rows_ * dim_), v);
}

void Batch::assign(const Batch& other) {
  resize(other.rows_, other.dim_);
  std::copy(other.data(), other.data() + rows_ * dim_, data());
}

void Batch::set_row(std::size_t r, const std::vector<double>& x) {
  IMAP_CHECK(r < rows_ && x.size() == dim_);
  std::copy(x.begin(), x.end(), row(r));
}

void Batch::gather(const std::vector<std::vector<double>>& rows_in,
                   const std::vector<std::size_t>& idx, std::size_t b,
                   std::size_t e) {
  IMAP_CHECK(b <= e && e <= idx.size());
  const std::size_t n = e - b;
  const std::size_t d = n ? rows_in[idx[b]].size() : 0;
  resize(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& src = rows_in[idx[b + r]];
    IMAP_CHECK(src.size() == d);
    std::copy(src.begin(), src.end(), row(r));
  }
}

void Batch::gather_range(const std::vector<std::vector<double>>& rows_in,
                         std::size_t b, std::size_t e) {
  IMAP_CHECK(b <= e && e <= rows_in.size());
  const std::size_t n = e - b;
  const std::size_t d = n ? rows_in[b].size() : 0;
  resize(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& src = rows_in[b + r];
    IMAP_CHECK(src.size() == d);
    std::copy(src.begin(), src.end(), row(r));
  }
}

void Batch::from_rows(const std::vector<std::vector<double>>& rows_in) {
  const std::size_t n = rows_in.size();
  const std::size_t d = n ? rows_in[0].size() : 0;
  resize(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    IMAP_CHECK(rows_in[r].size() == d);
    std::copy(rows_in[r].begin(), rows_in[r].end(), row(r));
  }
}

}  // namespace imap::nn
