#include "nn/kernel_backend.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/kernel_impl.h"

namespace imap::nn::kernel {

namespace {

bool always_supported() { return true; }

#if defined(IMAP_KERNEL_AVX2) || defined(IMAP_KERNEL_AVX512)
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
#endif
#ifdef IMAP_KERNEL_AVX512
bool cpu_has_avx512() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
}
#endif

// Gate values are measured on the reference host (see DESIGN.md "kernel
// backends & quantized serving" for the numbers): without a caller-cached
// transpose the SIMD batch_affine pays an O(out·in) transpose per call, so
// scalar wins at batch 1 and the SIMD path from batch 2 on; with
// Mlp::Workspace's cached transpose it wins from batch 1 (~9x at 64x64).
// NEON keeps the conservative pre-refactor gate of 4 — no aarch64 reference
// host to re-measure on; revisit when one is available.
const KernelBackend kScalar = {
    "scalar",          &always_supported,
    &detail::scalar_batch_affine,
    &detail::scalar_batch_matvec_t,
    &detail::scalar_batch_outer_acc,
    &detail::scalar_quant_affine,
    &detail::scalar_quant_act,
    /*wants_transposed=*/false,
    /*min_batch_affine=*/1,
    /*min_batch_affine_cached=*/1,
};

#ifdef IMAP_KERNEL_AVX2
const KernelBackend kAvx2 = {
    "avx2",            &cpu_has_avx2,
    &detail::avx2_batch_affine,
    &detail::avx2_batch_matvec_t,
    &detail::avx2_batch_outer_acc,
    &detail::avx2_quant_affine,
    &detail::avx2_quant_act,
    /*wants_transposed=*/true,
    /*min_batch_affine=*/2,
    /*min_batch_affine_cached=*/1,
};
#endif

#ifdef IMAP_KERNEL_AVX512
const KernelBackend kAvx512 = {
    "avx512",          &cpu_has_avx512,
    &detail::avx512_batch_affine,
    &detail::avx512_batch_matvec_t,
    &detail::avx512_batch_outer_acc,
    &detail::avx512_quant_affine,
    &detail::avx512_quant_act,
    /*wants_transposed=*/true,
    /*min_batch_affine=*/2,
    /*min_batch_affine_cached=*/1,
};
#endif

#ifdef IMAP_KERNEL_NEON
const KernelBackend kNeon = {
    "neon",            &always_supported,
    &detail::neon_batch_affine,
    &detail::neon_batch_matvec_t,
    &detail::neon_batch_outer_acc,
    /*quant_affine=*/nullptr,
    /*quant_act=*/nullptr,
    /*wants_transposed=*/true,
    /*min_batch_affine=*/4,
    /*min_batch_affine_cached=*/1,
};
#endif

// Widest first: auto-selection walks this list and takes the first backend
// whose CPUID probe passes.
const std::vector<const KernelBackend*>& registry() {
  static const std::vector<const KernelBackend*> kAll = {
#ifdef IMAP_KERNEL_AVX512
      &kAvx512,
#endif
#ifdef IMAP_KERNEL_AVX2
      &kAvx2,
#endif
#ifdef IMAP_KERNEL_NEON
      &kNeon,
#endif
      &kScalar,
  };
  return kAll;
}

const KernelBackend* widest_supported() {
  for (const KernelBackend* be : registry())
    if (be->supported()) return be;
  return &kScalar;
}

// IMAP_KERNEL resolution, done once. An unknown or CPU-unsupported request
// warns and falls back to auto so forced-backend ctest entries stay portable
// to machines without the wider ISA.
const KernelBackend* resolve_env_choice() {
  const char* env = std::getenv("IMAP_KERNEL");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0)
    return widest_supported();
  const KernelBackend* be = find_backend(env);
  if (be == nullptr) {
    std::fprintf(stderr,
                 "[imap] IMAP_KERNEL=%s: backend not compiled into this "
                 "binary; using auto selection\n",
                 env);
    return widest_supported();
  }
  if (!be->supported()) {
    std::fprintf(stderr,
                 "[imap] IMAP_KERNEL=%s: backend unsupported on this CPU; "
                 "using auto selection\n",
                 env);
    return widest_supported();
  }
  return be;
}

const KernelBackend* g_forced = nullptr;

}  // namespace

const KernelBackend& active_backend() {
  if (g_forced != nullptr) return *g_forced;
  static const KernelBackend* resolved = resolve_env_choice();
  return *resolved;
}

const KernelBackend& scalar_backend() { return kScalar; }

const std::vector<const KernelBackend*>& all_backends() { return registry(); }

const KernelBackend* find_backend(const std::string& name) {
  for (const KernelBackend* be : registry())
    if (name == be->name) return be;
  return nullptr;
}

const KernelBackend* set_forced_backend(const KernelBackend* be) {
  const KernelBackend* prev = g_forced;
  g_forced = be;
  return prev;
}

ScopedBackend::ScopedBackend(const std::string& name) {
  const KernelBackend* be = find_backend(name);
  if (be != nullptr && be->supported()) {
    prev_ = set_forced_backend(be);
    activated_ = true;
  }
}

ScopedBackend::~ScopedBackend() {
  if (activated_) set_forced_backend(prev_);
}

}  // namespace imap::nn::kernel

