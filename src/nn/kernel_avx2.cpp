// AVX2 backend. SIMD lanes are only ever mapped across *independent* output
// elements (output neurons, input dims, weight-matrix entries); each lane
// executes the exact scalar chain — separate mul then add, ascending
// contraction index — so these kernels are bit-identical to the scalar
// backend. This TU is compiled with -mavx2 -mno-fma -ffp-contract=off: with
// no FMA instructions available the compiler cannot contract mul+add and
// change rounding.

#ifdef IMAP_KERNEL_AVX2

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "nn/kernel_impl.h"

namespace imap::nn::kernel::detail {

namespace {

/// Column-major weight view for the lanes-across-outputs loops: the caller's
/// cached transpose when provided (Mlp::Workspace::wt — free), else a
/// thread-cached local copy (O(out·in) per call against O(batch·out·in)
/// compute; the reason uncached dispatch gates on batch size).
const double* transposed(const double* w, const double* wt, std::size_t out,
                         std::size_t in) {
  if (wt != nullptr) return wt;
  thread_local std::vector<double> scratch;
  if (scratch.size() < in * out) scratch.resize(in * out);
  double* p = scratch.data();
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) p[c * out + r] = w[r * in + c];
  return p;
}

}  // namespace

// Y[n] = W·X[n] + b, lanes across output neurons. Four adjacent outputs
// share one broadcast of x[c] and advance their accumulators in lock-step;
// per lane the reduction is b[r] then += w[r][c]·x[c] for ascending c —
// the affine() chain exactly.
void avx2_batch_affine(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y) {
  const double* wtp = transposed(w, wt, out, in);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x + n * in;
    double* yn = y + n * out;
    std::size_t r = 0;
    for (; r + 16 <= out; r += 16) {
      __m256d a0, a1, a2, a3;
      if (b) {
        a0 = _mm256_loadu_pd(b + r);
        a1 = _mm256_loadu_pd(b + r + 4);
        a2 = _mm256_loadu_pd(b + r + 8);
        a3 = _mm256_loadu_pd(b + r + 12);
      } else {
        a0 = a1 = a2 = a3 = _mm256_setzero_pd();
      }
      for (std::size_t c = 0; c < in; ++c) {
        const __m256d xc = _mm256_set1_pd(xn[c]);
        const double* col = wtp + c * out + r;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(col), xc));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(col + 4), xc));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(col + 8), xc));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(col + 12), xc));
      }
      _mm256_storeu_pd(yn + r, a0);
      _mm256_storeu_pd(yn + r + 4, a1);
      _mm256_storeu_pd(yn + r + 8, a2);
      _mm256_storeu_pd(yn + r + 12, a3);
    }
    for (; r + 4 <= out; r += 4) {
      __m256d a = b ? _mm256_loadu_pd(b + r) : _mm256_setzero_pd();
      for (std::size_t c = 0; c < in; ++c) {
        const __m256d xc = _mm256_set1_pd(xn[c]);
        a = _mm256_add_pd(a,
                          _mm256_mul_pd(_mm256_loadu_pd(wtp + c * out + r), xc));
      }
      _mm256_storeu_pd(yn + r, a);
    }
    for (; r < out; ++r) {
      const double* row = w + r * in;
      double s = b ? b[r] : 0.0;
      for (std::size_t c = 0; c < in; ++c) s += row[c] * xn[c];
      yn[r] = s;
    }
  }
}

// GIN[n] = Wᵀ·G[n], lanes across input dims. For a block of input columns
// the r-loop broadcasts g[n][r] and pulls a contiguous slice of weight row
// r; per lane each gin element starts at 0 and accumulates in ascending r
// order — the matvec_t_acc chain on a zeroed output.
void avx2_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin) {
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    double* on = gin + n * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd(),
              a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m256d gr = _mm256_set1_pd(gn[r]);
        const double* row = w + r * in + c;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(row), gr));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(row + 4), gr));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(row + 8), gr));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(row + 12), gr));
      }
      _mm256_storeu_pd(on + c, a0);
      _mm256_storeu_pd(on + c + 4, a1);
      _mm256_storeu_pd(on + c + 8, a2);
      _mm256_storeu_pd(on + c + 12, a3);
    }
    for (; c + 4 <= in; c += 4) {
      __m256d a = _mm256_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m256d gr = _mm256_set1_pd(gn[r]);
        a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(w + r * in + c), gr));
      }
      _mm256_storeu_pd(on + c, a);
    }
    for (; c < in; ++c) {
      double s = 0.0;
      for (std::size_t r = 0; r < out; ++r) s += w[r * in + c] * gn[r];
      on[c] = s;
    }
  }
}

// dW += Σ_n G[n]⊗X[n], db += Σ_n G[n], lanes across weight columns. Each
// dw entry is held in a register across the whole batch and accumulates
// g[n][r]·x[n][c] in ascending n — the per-sample outer_acc chain (whose
// scale of 1.0 is bitwise exact) — then is stored once, turning batch
// passes over the out×in block into one.
void avx2_batch_outer_acc(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db) {
  for (std::size_t r = 0; r < out; ++r) {
    double* dwr = dw + r * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m256d a0 = _mm256_loadu_pd(dwr + c);
      __m256d a1 = _mm256_loadu_pd(dwr + c + 4);
      __m256d a2 = _mm256_loadu_pd(dwr + c + 8);
      __m256d a3 = _mm256_loadu_pd(dwr + c + 12);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m256d gr = _mm256_set1_pd(g[n * out + r]);
        const double* xn = x + n * in + c;
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(xn), gr));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(xn + 4), gr));
        a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(xn + 8), gr));
        a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(xn + 12), gr));
      }
      _mm256_storeu_pd(dwr + c, a0);
      _mm256_storeu_pd(dwr + c + 4, a1);
      _mm256_storeu_pd(dwr + c + 8, a2);
      _mm256_storeu_pd(dwr + c + 12, a3);
    }
    for (; c + 4 <= in; c += 4) {
      __m256d a = _mm256_loadu_pd(dwr + c);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m256d gr = _mm256_set1_pd(g[n * out + r]);
        a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(x + n * in + c), gr));
      }
      _mm256_storeu_pd(dwr + c, a);
    }
    for (; c < in; ++c) {
      double s = dwr[c];
      for (std::size_t n = 0; n < batch; ++n)
        s += g[n * out + r] * x[n * in + c];
      dwr[c] = s;
    }
    double sb = db[r];
    for (std::size_t n = 0; n < batch; ++n) sb += g[n * out + r];
    db[r] = sb;
  }
}

// int8 serving kernel, lanes across output neurons. One _mm256_madd_epi16
// consumes 8 outputs × 1 column pair: the packed weight layout puts the
// (c, c+1) int16 pair of 8 consecutive rows in one 256-bit load, the
// activation pair broadcasts as an int32, and madd produces the exact
// w0·x0 + w1·x1 int32 per output. Integer accumulation is associative, so
// the result equals scalar_quant_affine bit for bit; the float dequant runs
// the same three-op chain (t = rs·xs; y = acc·t + bias) per lane.
void avx2_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                       const float* bias, std::size_t out,
                       std::size_t in_pairs, const std::int16_t* xq,
                       const float* xscale, std::size_t batch, float* y) {
  // Weight-stationary over the tile-major layout (kernel_backend.h): a full
  // kQuantTile(16)-row tile is contiguous, consumed here as two 256-bit
  // halves per column pair (lanes 0-7 and 8-15 of the tile's cache line).
  // Contiguous streaming keeps the tile cache-resident across the batch
  // sweep, and samples are blocked 4 at a time so each weight load serves
  // four madds — the matrix streams once per 4 samples rather than once per
  // sample. The activation pair broadcasts as one 32-bit load
  // (little-endian memory already holds lo | hi<<16 at xr + 2p). Each
  // sample's per-lane arithmetic order is unchanged — bit-identical across
  // batch sizes and backends.
  const auto bcast_pair = [](const std::int16_t* p2) {
    std::int32_t word;
    std::memcpy(&word, p2, sizeof word);
    return _mm256_set1_epi32(word);
  };
  const std::size_t stride = 2 * in_pairs;
  const std::size_t full = out / kQuantTile;
  for (std::size_t tile = 0; tile < full; ++tile) {
    const std::int16_t* wt = wq_packed + tile * in_pairs * 2 * kQuantTile;
    for (std::size_t half = 0; half < 2; ++half) {
      const std::size_t r = tile * kQuantTile + half * 8;
      const std::int16_t* wh = wt + half * 16;
      const __m256 rsv = _mm256_loadu_ps(row_scale + r);
      const __m256 bv = _mm256_loadu_ps(bias + r);
      std::size_t n = 0;
      for (; n + 4 <= batch; n += 4) {
        const std::int16_t* x0 = xq + n * stride;
        const std::int16_t* x1 = x0 + stride;
        const std::int16_t* x2 = x1 + stride;
        const std::int16_t* x3 = x2 + stride;
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        __m256i a2 = _mm256_setzero_si256();
        __m256i a3 = _mm256_setzero_si256();
        for (std::size_t p = 0; p < in_pairs; ++p) {
          const __m256i wv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wh + p * 2 * kQuantTile));
          a0 = _mm256_add_epi32(a0,
                                _mm256_madd_epi16(wv, bcast_pair(x0 + 2 * p)));
          a1 = _mm256_add_epi32(a1,
                                _mm256_madd_epi16(wv, bcast_pair(x1 + 2 * p)));
          a2 = _mm256_add_epi32(a2,
                                _mm256_madd_epi16(wv, bcast_pair(x2 + 2 * p)));
          a3 = _mm256_add_epi32(a3,
                                _mm256_madd_epi16(wv, bcast_pair(x3 + 2 * p)));
        }
        const __m256i acc[4] = {a0, a1, a2, a3};
        for (std::size_t j = 0; j < 4; ++j) {
          const __m256 t = _mm256_mul_ps(rsv, _mm256_set1_ps(xscale[n + j]));
          const __m256 yv =
              _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc[j]), t), bv);
          _mm256_storeu_ps(y + (n + j) * out + r, yv);
        }
      }
      for (; n < batch; ++n) {
        const std::int16_t* xr = xq + n * stride;
        __m256i acc = _mm256_setzero_si256();
        for (std::size_t p = 0; p < in_pairs; ++p) {
          const __m256i wv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wh + p * 2 * kQuantTile));
          acc = _mm256_add_epi32(acc,
                                 _mm256_madd_epi16(wv, bcast_pair(xr + 2 * p)));
        }
        const __m256 t = _mm256_mul_ps(rsv, _mm256_set1_ps(xscale[n]));
        const __m256 yv =
            _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc), t), bv);
        _mm256_storeu_ps(y + n * out + r, yv);
      }
    }
  }
  // Remainder rows: column-pair-major of width w after the tiles.
  const std::size_t w = out - full * kQuantTile;
  const std::int16_t* wrem = wq_packed + full * in_pairs * 2 * kQuantTile;
  for (std::size_t lane = 0; lane < w; ++lane) {
    const std::size_t r = full * kQuantTile + lane;
    const float rs = row_scale[r];
    const float br = bias[r];
    for (std::size_t n = 0; n < batch; ++n) {
      const std::int16_t* xr = xq + n * 2 * in_pairs;
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < in_pairs; ++p) {
        const std::int16_t* wp = wrem + (p * w + lane) * 2;
        acc += static_cast<std::int32_t>(wp[0]) *
                   static_cast<std::int32_t>(xr[2 * p]) +
               static_cast<std::int32_t>(wp[1]) *
                   static_cast<std::int32_t>(xr[2 * p + 1]);
      }
      const float t = rs * xscale[n];
      y[n * out + r] = static_cast<float>(acc) * t + br;
    }
  }
}

// Fused tanh + requantize, 8 floats per vector. The polynomial body mirrors
// quant_fast_tanh op for op (mul/add/div/min/max are each one IEEE rounding,
// and this TU forbids contraction), the row abs-max is an order-free integer
// reduction, and _mm256_cvtps_epi32 rounds to nearest-even exactly like the
// scalar lrintf — so codes and scales bit-match scalar_quant_act.
void avx2_quant_act(float* h, std::size_t batch, std::size_t width,
                    std::size_t out_pairs, std::int16_t* qx, float* qscale) {
  const __m256 lo5 = _mm256_set1_ps(-5.0f);
  const __m256 hi5 = _mm256_set1_ps(5.0f);
  const __m256 c135135 = _mm256_set1_ps(135135.0f);
  const __m256 c17325 = _mm256_set1_ps(17325.0f);
  const __m256 c378 = _mm256_set1_ps(378.0f);
  const __m256 c62370 = _mm256_set1_ps(62370.0f);
  const __m256 c3150 = _mm256_set1_ps(3150.0f);
  const __m256 c28 = _mm256_set1_ps(28.0f);
  const __m256i absmask = _mm256_set1_epi32(0x7fffffff);
  const std::size_t stride = 2 * out_pairs;
  for (std::size_t n = 0; n < batch; ++n) {
    float* hn = h + n * width;
    std::int16_t* qn = qx + n * stride;
    __m256i amaxv = _mm256_setzero_si256();
    std::size_t c = 0;
    for (; c + 8 <= width; c += 8) {
      __m256 x = _mm256_loadu_ps(hn + c);
      x = _mm256_min_ps(_mm256_max_ps(x, lo5), hi5);
      const __m256 x2 = _mm256_mul_ps(x, x);
      const __m256 p = _mm256_mul_ps(
          x, _mm256_add_ps(
                 c135135,
                 _mm256_mul_ps(
                     x2, _mm256_add_ps(
                             c17325, _mm256_mul_ps(
                                         x2, _mm256_add_ps(c378, x2))))));
      const __m256 q = _mm256_add_ps(
          c135135,
          _mm256_mul_ps(
              x2, _mm256_add_ps(
                      c62370,
                      _mm256_mul_ps(
                          x2, _mm256_add_ps(c3150,
                                            _mm256_mul_ps(c28, x2))))));
      const __m256 t = _mm256_div_ps(p, q);
      _mm256_storeu_ps(hn + c, t);
      amaxv = _mm256_max_epu32(
          amaxv, _mm256_and_si256(_mm256_castps_si256(t), absmask));
    }
    __m128i m128 = _mm_max_epu32(_mm256_castsi256_si128(amaxv),
                                 _mm256_extracti128_si256(amaxv, 1));
    m128 = _mm_max_epu32(m128, _mm_shuffle_epi32(m128, _MM_SHUFFLE(1, 0, 3, 2)));
    m128 = _mm_max_epu32(m128, _mm_shuffle_epi32(m128, _MM_SHUFFLE(2, 3, 0, 1)));
    std::uint32_t m = static_cast<std::uint32_t>(_mm_cvtsi128_si32(m128));
    for (; c < width; ++c) {
      hn[c] = quant_fast_tanh(hn[c]);
      m = std::max(m, std::bit_cast<std::uint32_t>(hn[c]) & 0x7fffffffu);
    }
    if (m != 0) {
      const float amax = std::bit_cast<float>(m);
      const float inv = 127.0f / amax;
      const __m256 invv = _mm256_set1_ps(inv);
      const __m256i cpos = _mm256_set1_epi32(127);
      const __m256i cneg = _mm256_set1_epi32(-127);
      c = 0;
      for (; c + 8 <= width; c += 8) {
        __m256i i = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(hn + c),
                                                     invv));
        i = _mm256_max_epi32(_mm256_min_epi32(i, cpos), cneg);
        const __m128i packed = _mm_packs_epi32(
            _mm256_castsi256_si128(i), _mm256_extracti128_si256(i, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(qn + c), packed);
      }
      for (; c < width; ++c) qn[c] = quant_code(hn[c] * inv);
      qscale[n] = amax / 127.0f;
    } else {
      for (c = 0; c < width; ++c) qn[c] = 0;
      qscale[n] = 0.0f;
    }
    for (c = width; c < stride; ++c) qn[c] = 0;
  }
}

}  // namespace imap::nn::kernel::detail

#endif  // IMAP_KERNEL_AVX2
