// AVX-512 backend: same lane discipline as AVX2 (lanes across independent
// output elements, each lane running the exact scalar reduction chain) at
// twice the width — 8 doubles per zmm for the fp64 kernels, 16 int32 dot
// pairs per zmm for the int8 serving kernel. The TU is compiled with
// -mavx512f -mavx512bw -mno-fma -ffp-contract=off; tails reuse masked loads
// where cheap and plain scalar otherwise, both preserving bit-identity.

#ifdef IMAP_KERNEL_AVX512

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "nn/kernel_impl.h"

namespace imap::nn::kernel::detail {

namespace {

const double* transposed(const double* w, const double* wt, std::size_t out,
                         std::size_t in) {
  if (wt != nullptr) return wt;
  thread_local std::vector<double> scratch;
  if (scratch.size() < in * out) scratch.resize(in * out);
  double* p = scratch.data();
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) p[c * out + r] = w[r * in + c];
  return p;
}

}  // namespace

void avx512_batch_affine(const double* w, const double* wt, const double* b,
                         std::size_t out, std::size_t in, const double* x,
                         std::size_t batch, double* y) {
  const double* wtp = transposed(w, wt, out, in);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x + n * in;
    double* yn = y + n * out;
    std::size_t r = 0;
    for (; r + 16 <= out; r += 16) {
      __m512d a0, a1;
      if (b) {
        a0 = _mm512_loadu_pd(b + r);
        a1 = _mm512_loadu_pd(b + r + 8);
      } else {
        a0 = a1 = _mm512_setzero_pd();
      }
      for (std::size_t c = 0; c < in; ++c) {
        const __m512d xc = _mm512_set1_pd(xn[c]);
        const double* col = wtp + c * out + r;
        a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_loadu_pd(col), xc));
        a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_loadu_pd(col + 8), xc));
      }
      _mm512_storeu_pd(yn + r, a0);
      _mm512_storeu_pd(yn + r + 8, a1);
    }
    for (; r + 8 <= out; r += 8) {
      __m512d a = b ? _mm512_loadu_pd(b + r) : _mm512_setzero_pd();
      for (std::size_t c = 0; c < in; ++c) {
        const __m512d xc = _mm512_set1_pd(xn[c]);
        a = _mm512_add_pd(a,
                          _mm512_mul_pd(_mm512_loadu_pd(wtp + c * out + r), xc));
      }
      _mm512_storeu_pd(yn + r, a);
    }
    if (r < out) {
      const __mmask8 m =
          static_cast<__mmask8>((1u << (out - r)) - 1u);
      __m512d a = b ? _mm512_maskz_loadu_pd(m, b + r) : _mm512_setzero_pd();
      for (std::size_t c = 0; c < in; ++c) {
        const __m512d xc = _mm512_set1_pd(xn[c]);
        const __m512d wv = _mm512_maskz_loadu_pd(m, wtp + c * out + r);
        a = _mm512_add_pd(a, _mm512_mul_pd(wv, xc));
      }
      _mm512_mask_storeu_pd(yn + r, m, a);
    }
  }
}

void avx512_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                           const double* g, std::size_t batch, double* gin) {
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    double* on = gin + n * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m512d gr = _mm512_set1_pd(gn[r]);
        const double* row = w + r * in + c;
        a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_loadu_pd(row), gr));
        a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_loadu_pd(row + 8), gr));
      }
      _mm512_storeu_pd(on + c, a0);
      _mm512_storeu_pd(on + c + 8, a1);
    }
    for (; c + 8 <= in; c += 8) {
      __m512d a = _mm512_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m512d gr = _mm512_set1_pd(gn[r]);
        a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_loadu_pd(w + r * in + c), gr));
      }
      _mm512_storeu_pd(on + c, a);
    }
    if (c < in) {
      const __mmask8 m =
          static_cast<__mmask8>((1u << (in - c)) - 1u);
      __m512d a = _mm512_setzero_pd();
      for (std::size_t r = 0; r < out; ++r) {
        const __m512d gr = _mm512_set1_pd(gn[r]);
        const __m512d wv = _mm512_maskz_loadu_pd(m, w + r * in + c);
        a = _mm512_add_pd(a, _mm512_mul_pd(wv, gr));
      }
      _mm512_mask_storeu_pd(on + c, m, a);
    }
  }
}

void avx512_batch_outer_acc(const double* g, const double* x,
                            std::size_t batch, std::size_t out, std::size_t in,
                            double* dw, double* db) {
  for (std::size_t r = 0; r < out; ++r) {
    double* dwr = dw + r * in;
    std::size_t c = 0;
    for (; c + 16 <= in; c += 16) {
      __m512d a0 = _mm512_loadu_pd(dwr + c);
      __m512d a1 = _mm512_loadu_pd(dwr + c + 8);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m512d gr = _mm512_set1_pd(g[n * out + r]);
        const double* xn = x + n * in + c;
        a0 = _mm512_add_pd(a0, _mm512_mul_pd(_mm512_loadu_pd(xn), gr));
        a1 = _mm512_add_pd(a1, _mm512_mul_pd(_mm512_loadu_pd(xn + 8), gr));
      }
      _mm512_storeu_pd(dwr + c, a0);
      _mm512_storeu_pd(dwr + c + 8, a1);
    }
    for (; c + 8 <= in; c += 8) {
      __m512d a = _mm512_loadu_pd(dwr + c);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m512d gr = _mm512_set1_pd(g[n * out + r]);
        a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_loadu_pd(x + n * in + c), gr));
      }
      _mm512_storeu_pd(dwr + c, a);
    }
    if (c < in) {
      const __mmask8 m =
          static_cast<__mmask8>((1u << (in - c)) - 1u);
      __m512d a = _mm512_maskz_loadu_pd(m, dwr + c);
      for (std::size_t n = 0; n < batch; ++n) {
        const __m512d gr = _mm512_set1_pd(g[n * out + r]);
        const __m512d xv = _mm512_maskz_loadu_pd(m, x + n * in + c);
        a = _mm512_add_pd(a, _mm512_mul_pd(xv, gr));
      }
      _mm512_mask_storeu_pd(dwr + c, m, a);
    }
    double sb = db[r];
    for (std::size_t n = 0; n < batch; ++n) sb += g[n * out + r];
    db[r] = sb;
  }
}

namespace {

/// One 32-bit load broadcast of the activation pair at `p2`: little-endian
/// memory already holds lo | hi<<16, so no shift/or reassembly is needed.
inline __m512i bcast_pair(const std::int16_t* p2) {
  std::int32_t word;
  std::memcpy(&word, p2, sizeof word);
  return _mm512_set1_epi32(word);
}

// Full-tile sweep of the int8 kernel over the tile-major layout
// (kernel_backend.h): a kQuantTile-row tile is 2·kQuantTile·in_pairs
// contiguous codes, so the p loop streams consecutive 64-byte lines — one
// _mm512_loadu_si512 each — and the whole tile stays cache-resident across
// the batch sweep. Samples are blocked 8 at a time (8 accumulators + the
// weight vector leave 23 of the 32 zmm registers free) so every weight line
// loaded serves eight madds: the weight matrix streams from cache/memory
// once per 8 samples instead of once per sample — the amortization the
// serving coalescer banks on. Each sample's per-lane op chain (madd
// accumulation in ascending p, then t = rs·xs, y = cvt(acc)·t + b) matches
// the scalar reference, so outputs are bit-identical for every batch size.
//
// Two ISA variants of the same loop: the baseline accumulates with
// vpaddd(vpmaddwd(w, x)); the AVX512-VNNI variant fuses that pair into one
// vpdpwssd uop — the identical int32 result at half the port-0/5 pressure,
// which is what bounds this loop once the tile is cache-resident. The TU's
// baseline ISA stays avx512f/bw; only the VNNI function carries the extra
// target attribute, and avx512_quant_affine picks it via CPUID at runtime.
#define IMAP_QUANT_TILE_SWEEP(ACCUM)                                          \
  const std::size_t stride = 2 * in_pairs;                                    \
  const std::size_t full = out / kQuantTile;                                  \
  for (std::size_t tile = 0; tile < full; ++tile) {                           \
    const std::size_t r = tile * kQuantTile;                                  \
    const std::int16_t* wt = wq_packed + tile * in_pairs * 2 * kQuantTile;    \
    const __m512 rsv = _mm512_loadu_ps(row_scale + r);                        \
    const __m512 bv = _mm512_loadu_ps(bias + r);                              \
    std::size_t n = 0;                                                        \
    for (; n + 8 <= batch; n += 8) {                                          \
      const std::int16_t* x0 = xq + n * stride;                               \
      const std::int16_t* x1 = x0 + stride;                                   \
      const std::int16_t* x2 = x1 + stride;                                   \
      const std::int16_t* x3 = x2 + stride;                                   \
      const std::int16_t* x4 = x3 + stride;                                   \
      const std::int16_t* x5 = x4 + stride;                                   \
      const std::int16_t* x6 = x5 + stride;                                   \
      const std::int16_t* x7 = x6 + stride;                                   \
      __m512i a0 = _mm512_setzero_si512();                                    \
      __m512i a1 = _mm512_setzero_si512();                                    \
      __m512i a2 = _mm512_setzero_si512();                                    \
      __m512i a3 = _mm512_setzero_si512();                                    \
      __m512i a4 = _mm512_setzero_si512();                                    \
      __m512i a5 = _mm512_setzero_si512();                                    \
      __m512i a6 = _mm512_setzero_si512();                                    \
      __m512i a7 = _mm512_setzero_si512();                                    \
      for (std::size_t p = 0; p < in_pairs; ++p) {                            \
        const __m512i wv = _mm512_loadu_si512(                                \
            reinterpret_cast<const void*>(wt + p * 2 * kQuantTile));          \
        a0 = ACCUM(a0, wv, bcast_pair(x0 + 2 * p));                           \
        a1 = ACCUM(a1, wv, bcast_pair(x1 + 2 * p));                           \
        a2 = ACCUM(a2, wv, bcast_pair(x2 + 2 * p));                           \
        a3 = ACCUM(a3, wv, bcast_pair(x3 + 2 * p));                           \
        a4 = ACCUM(a4, wv, bcast_pair(x4 + 2 * p));                           \
        a5 = ACCUM(a5, wv, bcast_pair(x5 + 2 * p));                           \
        a6 = ACCUM(a6, wv, bcast_pair(x6 + 2 * p));                           \
        a7 = ACCUM(a7, wv, bcast_pair(x7 + 2 * p));                           \
      }                                                                       \
      const __m512i acc[8] = {a0, a1, a2, a3, a4, a5, a6, a7};                \
      for (std::size_t j = 0; j < 8; ++j) {                                   \
        const __m512 t = _mm512_mul_ps(rsv, _mm512_set1_ps(xscale[n + j]));   \
        const __m512 yv =                                                     \
            _mm512_add_ps(_mm512_mul_ps(_mm512_cvtepi32_ps(acc[j]), t), bv);  \
        _mm512_storeu_ps(y + (n + j) * out + r, yv);                          \
      }                                                                       \
    }                                                                         \
    for (; n < batch; ++n) {                                                  \
      const std::int16_t* xr = xq + n * stride;                               \
      __m512i acc = _mm512_setzero_si512();                                   \
      for (std::size_t p = 0; p < in_pairs; ++p) {                            \
        const __m512i wv = _mm512_loadu_si512(                                \
            reinterpret_cast<const void*>(wt + p * 2 * kQuantTile));          \
        acc = ACCUM(acc, wv, bcast_pair(xr + 2 * p));                         \
      }                                                                       \
      const __m512 t = _mm512_mul_ps(rsv, _mm512_set1_ps(xscale[n]));         \
      const __m512 yv =                                                       \
          _mm512_add_ps(_mm512_mul_ps(_mm512_cvtepi32_ps(acc), t), bv);       \
      _mm512_storeu_ps(y + n * out + r, yv);                                  \
    }                                                                         \
  }

#define IMAP_ACCUM_MADD(acc, w, x) \
  _mm512_add_epi32(acc, _mm512_madd_epi16(w, x))
#define IMAP_ACCUM_VNNI(acc, w, x) _mm512_dpwssd_epi32(acc, w, x)

void quant_tiles(const std::int16_t* wq_packed, const float* row_scale,
                 const float* bias, std::size_t out, std::size_t in_pairs,
                 const std::int16_t* xq, const float* xscale,
                 std::size_t batch, float* y) {
  IMAP_QUANT_TILE_SWEEP(IMAP_ACCUM_MADD)
}

__attribute__((target("avx512f,avx512bw,avx512vnni"))) void quant_tiles_vnni(
    const std::int16_t* wq_packed, const float* row_scale, const float* bias,
    std::size_t out, std::size_t in_pairs, const std::int16_t* xq,
    const float* xscale, std::size_t batch, float* y) {
  IMAP_QUANT_TILE_SWEEP(IMAP_ACCUM_VNNI)
}

#undef IMAP_ACCUM_VNNI
#undef IMAP_ACCUM_MADD
#undef IMAP_QUANT_TILE_SWEEP

}  // namespace

// 16 outputs per _mm512_madd_epi16 (or vpdpwssd); same exact int32
// accumulation and three-op float dequant as the scalar reference (see
// kernel_avx2.cpp for the layout rationale, quant_tiles above for the
// tiling and ISA-variant rationale).
void avx512_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                         const float* bias, std::size_t out,
                         std::size_t in_pairs, const std::int16_t* xq,
                         const float* xscale, std::size_t batch, float* y) {
  static const bool use_vnni = __builtin_cpu_supports("avx512vnni");
  if (use_vnni)
    quant_tiles_vnni(wq_packed, row_scale, bias, out, in_pairs, xq, xscale,
                     batch, y);
  else
    quant_tiles(wq_packed, row_scale, bias, out, in_pairs, xq, xscale, batch,
                y);
  // Remainder rows: column-pair-major of width w after the tiles.
  const std::size_t full = out / kQuantTile;
  const std::size_t w = out - full * kQuantTile;
  const std::int16_t* wrem = wq_packed + full * in_pairs * 2 * kQuantTile;
  for (std::size_t lane = 0; lane < w; ++lane) {
    const std::size_t r = full * kQuantTile + lane;
    const float rs = row_scale[r];
    const float br = bias[r];
    for (std::size_t n = 0; n < batch; ++n) {
      const std::int16_t* xr = xq + n * 2 * in_pairs;
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < in_pairs; ++p) {
        const std::int16_t* wp = wrem + (p * w + lane) * 2;
        acc += static_cast<std::int32_t>(wp[0]) *
                   static_cast<std::int32_t>(xr[2 * p]) +
               static_cast<std::int32_t>(wp[1]) *
                   static_cast<std::int32_t>(xr[2 * p + 1]);
      }
      const float t = rs * xscale[n];
      y[n * out + r] = static_cast<float>(acc) * t + br;
    }
  }
}

// Fused tanh + requantize, 16 floats per vector (see kernel_avx2.cpp for the
// bit-identity argument; _mm512_cvtps_epi32 rounds to nearest-even like the
// scalar lrintf, and _mm512_cvtsepi32_epi16 packs the pre-clamped codes).
void avx512_quant_act(float* h, std::size_t batch, std::size_t width,
                      std::size_t out_pairs, std::int16_t* qx, float* qscale) {
  const __m512 lo5 = _mm512_set1_ps(-5.0f);
  const __m512 hi5 = _mm512_set1_ps(5.0f);
  const __m512 c135135 = _mm512_set1_ps(135135.0f);
  const __m512 c17325 = _mm512_set1_ps(17325.0f);
  const __m512 c378 = _mm512_set1_ps(378.0f);
  const __m512 c62370 = _mm512_set1_ps(62370.0f);
  const __m512 c3150 = _mm512_set1_ps(3150.0f);
  const __m512 c28 = _mm512_set1_ps(28.0f);
  const __m512i absmask = _mm512_set1_epi32(0x7fffffff);
  const std::size_t stride = 2 * out_pairs;
  for (std::size_t n = 0; n < batch; ++n) {
    float* hn = h + n * width;
    std::int16_t* qn = qx + n * stride;
    __m512i amaxv = _mm512_setzero_si512();
    std::size_t c = 0;
    for (; c + 16 <= width; c += 16) {
      __m512 x = _mm512_loadu_ps(hn + c);
      x = _mm512_min_ps(_mm512_max_ps(x, lo5), hi5);
      const __m512 x2 = _mm512_mul_ps(x, x);
      const __m512 p = _mm512_mul_ps(
          x, _mm512_add_ps(
                 c135135,
                 _mm512_mul_ps(
                     x2, _mm512_add_ps(
                             c17325, _mm512_mul_ps(
                                         x2, _mm512_add_ps(c378, x2))))));
      const __m512 q = _mm512_add_ps(
          c135135,
          _mm512_mul_ps(
              x2, _mm512_add_ps(
                      c62370,
                      _mm512_mul_ps(
                          x2, _mm512_add_ps(c3150,
                                            _mm512_mul_ps(c28, x2))))));
      const __m512 t = _mm512_div_ps(p, q);
      _mm512_storeu_ps(hn + c, t);
      amaxv = _mm512_max_epu32(
          amaxv, _mm512_and_si512(_mm512_castps_si512(t), absmask));
    }
    std::uint32_t m = _mm512_reduce_max_epu32(amaxv);
    for (; c < width; ++c) {
      hn[c] = quant_fast_tanh(hn[c]);
      m = std::max(m, std::bit_cast<std::uint32_t>(hn[c]) & 0x7fffffffu);
    }
    if (m != 0) {
      const float amax = std::bit_cast<float>(m);
      const float inv = 127.0f / amax;
      const __m512 invv = _mm512_set1_ps(inv);
      const __m512i cpos = _mm512_set1_epi32(127);
      const __m512i cneg = _mm512_set1_epi32(-127);
      c = 0;
      for (; c + 16 <= width; c += 16) {
        __m512i i = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(hn + c),
                                                     invv));
        i = _mm512_max_epi32(_mm512_min_epi32(i, cpos), cneg);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(qn + c),
                            _mm512_cvtsepi32_epi16(i));
      }
      for (; c < width; ++c) qn[c] = quant_code(hn[c] * inv);
      qscale[n] = amax / 127.0f;
    } else {
      for (c = 0; c < width; ++c) qn[c] = 0;
      qscale[n] = 0.0f;
    }
    for (c = width; c < stride; ++c) qn[c] = 0;
  }
}

}  // namespace imap::nn::kernel::detail

#endif  // IMAP_KERNEL_AVX512
