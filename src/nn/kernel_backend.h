#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imap::nn::kernel {

/// Output-row tile height of the packed int8 weight layout (see
/// quant_packed_index). 16 rows × one int16 column pair = 32 codes = one
/// 64-byte cache line = exactly one AVX-512 vector; AVX2 consumes a tile as
/// two 256-bit halves and scalar walks lanes within it.
inline constexpr std::size_t kQuantTile = 16;

/// Flat index of weight element (row r, column c) inside a quantized
/// layer's packed buffer (2·in_pairs·out int16 codes). The layout is
/// tile-major: full kQuantTile-row tiles first, each storing its 32 codes
/// for column pair p = c/2 contiguously —
///   ((r/16)·in_pairs + p)·32 + (r%16)·2 + c%2
/// — so a tile's weights stream as consecutive cache lines and distribute
/// evenly across cache sets (a row-interleaved layout at stride 2·out puts
/// every line of a row tile in the same few sets once out·4 bytes hits a
/// power of two, and the conflict misses defeat cross-sample reuse). The
/// out%16 remainder rows sit after the tiles in column-pair-major order:
///   full·in_pairs·32 + (p·w + r - full·16)·2 + c%2,  w = out%16.
/// Odd `in` zero-pads the last pair. Shared by the packer (nn/quant.cpp),
/// every backend kernel, and the layout tests.
inline std::size_t quant_packed_index(std::size_t r, std::size_t c,
                                      std::size_t out, std::size_t in_pairs) {
  const std::size_t p = c / 2;
  const std::size_t tile = r / kQuantTile;
  if ((tile + 1) * kQuantTile <= out)
    return (tile * in_pairs + p) * 2 * kQuantTile + (r % kQuantTile) * 2 +
           c % 2;
  const std::size_t full = out / kQuantTile;
  const std::size_t w = out - full * kQuantTile;
  return full * in_pairs * 2 * kQuantTile +
         (p * w + (r - full * kQuantTile)) * 2 + c % 2;
}

/// One SIMD (or scalar) implementation of the batched kernel set. Backends
/// are compiled-in per architecture (scalar everywhere; avx2/avx512 on
/// x86-64; neon on aarch64) and selected at runtime: CPUID picks the widest
/// supported one, `IMAP_KERNEL=auto|scalar|avx2|avx512|neon` overrides.
///
/// Every backend honours the determinism contract of `kernel::` (see
/// nn/matrix.h): lanes only across independent output elements, separate
/// mul/add with FP contraction disabled at the translation-unit level, each
/// lane running the exact scalar reduction chain. The fp64 kernels are
/// therefore bit-identical across backends; the int8 kernel is bit-identical
/// across backends too (integer accumulation is exact, and the dequant float
/// chain is fixed), differing only from the fp64 *reference* by the
/// quantization error (see nn/quant.h).
struct KernelBackend {
  const char* name;

  /// CPUID probe: true when this machine can execute the backend.
  bool (*supported)();

  /// Y[n] = W·X[n] + b. `wt` is an optional column-major copy of `w`
  /// (wt[c·out + r]); lanes-across-outputs backends read it when non-null
  /// and fall back to a local thread-cached transpose otherwise. The scalar
  /// backend ignores it.
  void (*batch_affine)(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y);

  /// GIN[n] = Wᵀ·G[n] (overwrites GIN).
  void (*batch_matvec_t)(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin);

  /// dW += Σ_n G[n]⊗X[n], db += Σ_n G[n].
  void (*batch_outer_acc)(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db);

  /// int8 serving kernel (see nn/quant.h for the scheme):
  ///   y[n][r] = float(Σ_p wq[p][r]·xq[n][p]) · (row_scale[r]·xscale[n])
  ///             + bias[r]
  /// Weights arrive pre-packed tile-major as int16 pairs (element (r, c) at
  /// quant_packed_index(r, c, out, in_pairs) — one cache line per
  /// kQuantTile-row tile per column pair); activations are int16 rows of
  /// stride 2·in_pairs, zero-padded on the last pair when `in` is odd.
  /// Null ⇒ dispatch falls back to scalar.
  void (*quant_affine)(const std::int16_t* wq_packed, const float* row_scale,
                       const float* bias, std::size_t out,
                       std::size_t in_pairs, const std::int16_t* xq,
                       const float* xscale, std::size_t batch, float* y);

  /// Fused serving activation between quantized layers: overwrite the
  /// batch×width row block `h` with the rational fast_tanh (see
  /// kernel_impl.h), then int8-requantize each row into pair-aligned codes
  /// (stride 2·out_pairs, zero-padded) with per-sample scales. Every op in
  /// the chain is one IEEE rounding (mul/add/div/min/max, integer abs-max,
  /// round-to-nearest-even convert), so vector and scalar evaluations are
  /// bitwise identical — backends only change the speed, never the codes.
  /// Null ⇒ dispatch falls back to scalar.
  void (*quant_act)(float* h, std::size_t batch, std::size_t width,
                    std::size_t out_pairs, std::int16_t* qx, float* qscale);

  /// True when batch_affine vectorises across output lanes and therefore
  /// profits from the caller-cached transpose (Mlp::Workspace::wt).
  bool wants_transposed;

  /// Smallest batch for which this backend's batch_affine beats the scalar
  /// blocked path — below it the dispatcher silently uses scalar. Two
  /// thresholds: without a caller-provided transpose the backend pays an
  /// O(out·in) per-call transpose and needs a few rows to amortise it; with
  /// the Workspace-cached transpose the gate drops to 1 (measured, see
  /// DESIGN.md "kernel backends").
  std::size_t min_batch_affine;
  std::size_t min_batch_affine_cached;
};

/// The backend answering dispatched kernel:: calls right now: the forced one
/// (tests), else the IMAP_KERNEL choice, else the widest CPU-supported one.
const KernelBackend& active_backend();

/// The scalar reference backend (always compiled, always supported).
const KernelBackend& scalar_backend();

/// Every backend compiled into this binary, widest-first (availability on
/// this CPU not implied — check supported()).
const std::vector<const KernelBackend*>& all_backends();

/// Compiled-in backend by name, or nullptr (e.g. "neon" on an x86 build).
const KernelBackend* find_backend(const std::string& name);

/// Test hook: force `be` (nullptr = back to env/CPU resolution). Returns the
/// previous forced value. Not thread-safe — flip it only from test setup,
/// never while worker threads run kernels.
const KernelBackend* set_forced_backend(const KernelBackend* be);

/// RAII forcing of one backend for a test scope. `activated()` is false when
/// the named backend is not compiled in or the CPU cannot run it (the test
/// should skip); the previous selection is restored either way on
/// destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

  bool activated() const { return activated_; }

 private:
  const KernelBackend* prev_ = nullptr;
  bool activated_ = false;
};

}  // namespace imap::nn::kernel
