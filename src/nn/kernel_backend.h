#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imap::nn::kernel {

/// One SIMD (or scalar) implementation of the batched kernel set. Backends
/// are compiled-in per architecture (scalar everywhere; avx2/avx512 on
/// x86-64; neon on aarch64) and selected at runtime: CPUID picks the widest
/// supported one, `IMAP_KERNEL=auto|scalar|avx2|avx512|neon` overrides.
///
/// Every backend honours the determinism contract of `kernel::` (see
/// nn/matrix.h): lanes only across independent output elements, separate
/// mul/add with FP contraction disabled at the translation-unit level, each
/// lane running the exact scalar reduction chain. The fp64 kernels are
/// therefore bit-identical across backends; the int8 kernel is bit-identical
/// across backends too (integer accumulation is exact, and the dequant float
/// chain is fixed), differing only from the fp64 *reference* by the
/// quantization error (see nn/quant.h).
struct KernelBackend {
  const char* name;

  /// CPUID probe: true when this machine can execute the backend.
  bool (*supported)();

  /// Y[n] = W·X[n] + b. `wt` is an optional column-major copy of `w`
  /// (wt[c·out + r]); lanes-across-outputs backends read it when non-null
  /// and fall back to a local thread-cached transpose otherwise. The scalar
  /// backend ignores it.
  void (*batch_affine)(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y);

  /// GIN[n] = Wᵀ·G[n] (overwrites GIN).
  void (*batch_matvec_t)(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin);

  /// dW += Σ_n G[n]⊗X[n], db += Σ_n G[n].
  void (*batch_outer_acc)(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db);

  /// int8 serving kernel (see nn/quant.h for the scheme):
  ///   y[n][r] = float(Σ_p wq[p][r]·xq[n][p]) · (row_scale[r]·xscale[n])
  ///             + bias[r]
  /// Weights arrive pre-packed column-pair-major as int16 pairs
  /// (wq_packed[(p·out + r)·2 + {0,1}] = row r's weights for columns 2p and
  /// 2p+1); activations are int16 rows of stride 2·in_pairs, zero-padded on
  /// the last pair when `in` is odd. Null ⇒ dispatch falls back to scalar.
  void (*quant_affine)(const std::int16_t* wq_packed, const float* row_scale,
                       const float* bias, std::size_t out,
                       std::size_t in_pairs, const std::int16_t* xq,
                       const float* xscale, std::size_t batch, float* y);

  /// Fused serving activation between quantized layers: overwrite the
  /// batch×width row block `h` with the rational fast_tanh (see
  /// kernel_impl.h), then int8-requantize each row into pair-aligned codes
  /// (stride 2·out_pairs, zero-padded) with per-sample scales. Every op in
  /// the chain is one IEEE rounding (mul/add/div/min/max, integer abs-max,
  /// round-to-nearest-even convert), so vector and scalar evaluations are
  /// bitwise identical — backends only change the speed, never the codes.
  /// Null ⇒ dispatch falls back to scalar.
  void (*quant_act)(float* h, std::size_t batch, std::size_t width,
                    std::size_t out_pairs, std::int16_t* qx, float* qscale);

  /// True when batch_affine vectorises across output lanes and therefore
  /// profits from the caller-cached transpose (Mlp::Workspace::wt).
  bool wants_transposed;

  /// Smallest batch for which this backend's batch_affine beats the scalar
  /// blocked path — below it the dispatcher silently uses scalar. Two
  /// thresholds: without a caller-provided transpose the backend pays an
  /// O(out·in) per-call transpose and needs a few rows to amortise it; with
  /// the Workspace-cached transpose the gate drops to 1 (measured, see
  /// DESIGN.md "kernel backends").
  std::size_t min_batch_affine;
  std::size_t min_batch_affine_cached;
};

/// The backend answering dispatched kernel:: calls right now: the forced one
/// (tests), else the IMAP_KERNEL choice, else the widest CPU-supported one.
const KernelBackend& active_backend();

/// The scalar reference backend (always compiled, always supported).
const KernelBackend& scalar_backend();

/// Every backend compiled into this binary, widest-first (availability on
/// this CPU not implied — check supported()).
const std::vector<const KernelBackend*>& all_backends();

/// Compiled-in backend by name, or nullptr (e.g. "neon" on an x86 build).
const KernelBackend* find_backend(const std::string& name);

/// Test hook: force `be` (nullptr = back to env/CPU resolution). Returns the
/// previous forced value. Not thread-safe — flip it only from test setup,
/// never while worker threads run kernels.
const KernelBackend* set_forced_backend(const KernelBackend* be);

/// RAII forcing of one backend for a test scope. `activated()` is false when
/// the named backend is not compiled in or the CPU cannot run it (the test
/// should skip); the previous selection is restored either way on
/// destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

  bool activated() const { return activated_; }

 private:
  const KernelBackend* prev_ = nullptr;
  bool activated_ = false;
};

}  // namespace imap::nn::kernel
