#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/batch.h"
#include "nn/mlp.h"

namespace imap::nn {

/// int8-quantized serving copy of a frozen Mlp — the victim fast path.
///
/// Scheme (per layer):
///  * Weights: per-row symmetric int8. row_scale[r] = max_c|W[r][c]| / 127,
///    wq[r][c] = round(W[r][c] / row_scale[r]) ∈ [-127, 127]. Stored as
///    int16 pairs packed tile-major (kernel::quant_packed_index, see
///    nn/kernel_backend.h): each kQuantTile-row tile keeps its 32 codes per
///    column pair in one contiguous cache line, so the SIMD kernels consume
///    a tile with one multiply-add per pair (madd_epi16) across output
///    lanes, and a tile streams contiguously — it stays cache-resident
///    across a batch sweep instead of thrashing a few cache sets. Odd `in`
///    zero-pads the last pair.
///  * Activations: per-sample symmetric int8 (dynamic). For each sample,
///    amax = max_c|x[c]|, xq[c] = round(127·x[c]/amax) ∈ [-127, 127],
///    xscale = amax / 127 (amax = 0 ⇒ all-zero codes, xscale 0).
///  * Accumulation: int32 over column pairs — exact, hence bit-identical
///    across kernel backends — then one fixed float dequant chain
///    y[r] = float(acc)·(row_scale[r]·xscale) + bias[r]. Hidden activations
///    go through kernel::quant_act — a fused rational fast_tanh (Padé(7,6),
///    max error ≈ 1.1e-4, see nn/kernel_impl.h) plus re-quantization for the
///    next layer; the final layer is widened to double.
///
/// Accuracy contract: quantization error is bounded and pinned by tests —
/// for policy-scale networks the max |Δaction| against the fp64 Mlp stays
/// under kQuantActionTolerance (asserted in tests/test_quant.cpp and
/// re-measured by bench_micro_infer). Training never touches this path; it
/// exists only for inference-heavy frozen victims (IMAP_VICTIM_QUANT=1).
///
/// A QuantizedMlp is a derived, in-memory artifact: it is built from a live
/// Mlp and keyed by Mlp::weight_version(), never serialized. Checkpoint
/// restores bump the version (and the archive format version guards the
/// on-disk weights themselves), so a stale quantization can always be
/// detected via stale_for() and rebuilt.
class QuantizedMlp {
 public:
  explicit QuantizedMlp(const Mlp& net);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// True when `net`'s weights changed since this quantization was built
  /// (different object, or same object with a bumped weight_version).
  bool stale_for(const Mlp& net) const {
    return source_ != &net || built_version_ != net.weight_version();
  }

  /// Quantized batched forward. Mirrors Mlp::forward_batch row-for-row
  /// (fast_tanh hidden activations, linear output) through the int8
  /// kernels; scratch lives in the caller's workspace (the q* buffers), so
  /// steady state allocates nothing. Returns the output rows (reference
  /// into `ws`, valid until the next call). Bit-identical across kernel
  /// backends and across batch sizes (each row is processed independently).
  const Batch& forward_batch(const Batch& x, Mlp::Workspace& ws) const;

  /// Single-sample convenience over forward_batch (thread-local scratch);
  /// bit-identical to the corresponding batched row.
  std::vector<double> forward(const std::vector<double>& x) const;

 private:
  struct QLayer {
    std::size_t in;
    std::size_t out;
    std::size_t in_pairs;               ///< ceil(in / 2)
    std::vector<std::int16_t> wq_packed;  ///< 2·in_pairs·out codes
    std::vector<float> row_scale;         ///< out
    std::vector<float> bias;              ///< out (fp32 copy of b)
  };

  std::vector<QLayer> layers_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::size_t max_pairs_ = 0;  ///< widest layer input, in pairs
  std::size_t max_out_ = 0;    ///< widest layer output
  const Mlp* source_ = nullptr;
  std::uint64_t built_version_ = 0;
};

/// Tested ceiling on max |Δaction| between QuantizedMlp and the fp64 Mlp for
/// the policy networks this library builds (unit-scale observations, tanh
/// hiddens). Asserted in tests/test_quant.cpp and reported alongside the
/// throughput numbers in BENCH_infer.json.
inline constexpr double kQuantActionTolerance = 5e-2;

/// True when frozen-victim serving should go through QuantizedMlp: the
/// IMAP_VICTIM_QUANT environment toggle (=1, parsed once), or an active
/// ScopedVictimQuant override. Consulted when a PolicyHandle is built, not
/// per query — a handle constructed without quant keeps serving fp64.
bool victim_quant_enabled();

/// RAII test hook forcing victim quantization on or off for a scope,
/// overriding the environment. Not thread-safe; flip from test setup only.
class ScopedVictimQuant {
 public:
  explicit ScopedVictimQuant(bool on);
  ~ScopedVictimQuant();
  ScopedVictimQuant(const ScopedVictimQuant&) = delete;
  ScopedVictimQuant& operator=(const ScopedVictimQuant&) = delete;

 private:
  int prev_;
};

}  // namespace imap::nn
