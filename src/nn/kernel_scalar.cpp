// Scalar reference backend: the blocked (but SIMD-free) batched kernels that
// every other backend is pinned against. Per-(n,r) the reduction chain is the
// per-sample kernel::affine / matvec_t_acc / outer_acc chain exactly, so this
// backend defines the bit pattern the fp64 contract demands.

#include <algorithm>
#include <bit>

#include "nn/kernel_impl.h"
#include "nn/matrix.h"

namespace imap::nn::kernel::detail {

void scalar_batch_affine(const double* w, const double* /*wt*/,
                         const double* b, std::size_t out, std::size_t in,
                         const double* x, std::size_t batch, double* y) {
  std::size_t n = 0;
  // 4-row blocks: one pass over each weight row serves four samples. The
  // four accumulators are independent and each runs c = 0..in-1 in order,
  // so every output bit-matches the per-sample affine() path.
  for (; n + 4 <= batch; n += 4) {
    const double* x0 = x + n * in;
    const double* x1 = x0 + in;
    const double* x2 = x1 + in;
    const double* x3 = x2 + in;
    double* y0 = y + n * out;
    double* y1 = y0 + out;
    double* y2 = y1 + out;
    double* y3 = y2 + out;
    for (std::size_t r = 0; r < out; ++r) {
      const double* row = w + r * in;
      const double br = b ? b[r] : 0.0;
      double s0 = br, s1 = br, s2 = br, s3 = br;
      for (std::size_t c = 0; c < in; ++c) {
        const double wc = row[c];
        s0 += wc * x0[c];
        s1 += wc * x1[c];
        s2 += wc * x2[c];
        s3 += wc * x3[c];
      }
      y0[r] = s0;
      y1[r] = s1;
      y2[r] = s2;
      y3[r] = s3;
    }
  }
  for (; n < batch; ++n) affine(w, b, out, in, x + n * in, y + n * out);
}

void scalar_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                           const double* g, std::size_t batch, double* gin) {
  std::size_t n = 0;
  for (; n + 4 <= batch; n += 4) {
    const double* g0 = g + n * out;
    const double* g1 = g0 + out;
    const double* g2 = g1 + out;
    const double* g3 = g2 + out;
    double* o0 = gin + n * in;
    double* o1 = o0 + in;
    double* o2 = o1 + in;
    double* o3 = o2 + in;
    for (std::size_t c = 0; c < in; ++c) o0[c] = o1[c] = o2[c] = o3[c] = 0.0;
    // r-outer / c-inner, matching matvec_t_acc: each gin element receives
    // its contributions in ascending r order.
    for (std::size_t r = 0; r < out; ++r) {
      const double* row = w + r * in;
      const double a0 = g0[r], a1 = g1[r], a2 = g2[r], a3 = g3[r];
      for (std::size_t c = 0; c < in; ++c) {
        const double wc = row[c];
        o0[c] += wc * a0;
        o1[c] += wc * a1;
        o2[c] += wc * a2;
        o3[c] += wc * a3;
      }
    }
  }
  for (; n < batch; ++n) {
    double* o = gin + n * in;
    for (std::size_t c = 0; c < in; ++c) o[c] = 0.0;
    matvec_t_acc(w, out, in, g + n * out, o);
  }
}

void scalar_batch_outer_acc(const double* g, const double* x,
                            std::size_t batch, std::size_t out, std::size_t in,
                            double* dw, double* db) {
  // Sample-major: each dw/db entry accumulates its per-sample contributions
  // in ascending n order — bit-identical to per-sample accumulation. The
  // dw block (out×in) is revisited per sample but stays cache-resident for
  // the layer widths this library uses.
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    const double* xn = x + n * in;
    outer_acc(dw, out, in, gn, xn, 1.0);
    for (std::size_t r = 0; r < out; ++r) db[r] += gn[r];
  }
}

void scalar_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                         const float* bias, std::size_t out,
                         std::size_t in_pairs, const std::int16_t* xq,
                         const float* xscale, std::size_t batch, float* y) {
  // Reference chain for the int8 kernel: int32 accumulation over column
  // pairs (exact, hence backend-invariant), then the fixed three-op float
  // dequant — t = row_scale·xscale, y = float(acc)·t + bias — which every
  // SIMD variant executes with the same single roundings per element.
  //
  // The weights arrive tile-major (see kernel_backend.h): a kQuantTile-row
  // tile's 2·kQuantTile·in_pairs codes are contiguous, so the whole tile
  // distributes evenly across cache sets and stays resident while the batch
  // sweep reuses it — the weight matrix streams from memory once per batch
  // instead of once per sample. Per-element arithmetic order (the p chain)
  // is untouched — tile/lane/sample loop order cannot change any rounding,
  // so results stay bit-identical for every batch size.
  const std::size_t full = out / kQuantTile;
  for (std::size_t tile = 0; tile < full; ++tile) {
    const std::int16_t* wt = wq_packed + tile * in_pairs * 2 * kQuantTile;
    for (std::size_t lane = 0; lane < kQuantTile; ++lane) {
      const std::size_t r = tile * kQuantTile + lane;
      const float rs = row_scale[r];
      const float br = bias[r];
      for (std::size_t n = 0; n < batch; ++n) {
        const std::int16_t* xr = xq + n * 2 * in_pairs;
        std::int32_t acc = 0;
        for (std::size_t p = 0; p < in_pairs; ++p) {
          const std::int16_t* wp = wt + p * 2 * kQuantTile + lane * 2;
          acc += static_cast<std::int32_t>(wp[0]) *
                     static_cast<std::int32_t>(xr[2 * p]) +
                 static_cast<std::int32_t>(wp[1]) *
                     static_cast<std::int32_t>(xr[2 * p + 1]);
        }
        const float t = rs * xscale[n];
        y[n * out + r] = static_cast<float>(acc) * t + br;
      }
    }
  }
  // Remainder rows (out % kQuantTile) live after the tiles in
  // column-pair-major order of width w — small enough to stay cached.
  const std::size_t w = out - full * kQuantTile;
  const std::int16_t* wrem = wq_packed + full * in_pairs * 2 * kQuantTile;
  for (std::size_t lane = 0; lane < w; ++lane) {
    const std::size_t r = full * kQuantTile + lane;
    const float rs = row_scale[r];
    const float br = bias[r];
    for (std::size_t n = 0; n < batch; ++n) {
      const std::int16_t* xr = xq + n * 2 * in_pairs;
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < in_pairs; ++p) {
        const std::int16_t* wp = wrem + (p * w + lane) * 2;
        acc += static_cast<std::int32_t>(wp[0]) *
                   static_cast<std::int32_t>(xr[2 * p]) +
               static_cast<std::int32_t>(wp[1]) *
                   static_cast<std::int32_t>(xr[2 * p + 1]);
      }
      const float t = rs * xscale[n];
      y[n * out + r] = static_cast<float>(acc) * t + br;
    }
  }
}

void scalar_quant_act(float* h, std::size_t batch, std::size_t width,
                      std::size_t out_pairs, std::int16_t* qx, float* qscale) {
  // Reference chain for the fused tanh + requantize step. The row abs-max is
  // taken on the absolute float bit patterns (an exact, order-free integer
  // reduction — for non-NaN floats |a| <= |b| iff their masked bits compare
  // the same way), so vectorised reductions match this loop bit for bit.
  const std::size_t stride = 2 * out_pairs;
  for (std::size_t n = 0; n < batch; ++n) {
    float* hn = h + n * width;
    std::int16_t* qn = qx + n * stride;
    std::uint32_t m = 0;
    for (std::size_t c = 0; c < width; ++c) {
      hn[c] = quant_fast_tanh(hn[c]);
      m = std::max(m, std::bit_cast<std::uint32_t>(hn[c]) & 0x7fffffffu);
    }
    if (m != 0) {
      const float amax = std::bit_cast<float>(m);
      const float inv = 127.0f / amax;
      for (std::size_t c = 0; c < width; ++c) qn[c] = quant_code(hn[c] * inv);
      qscale[n] = amax / 127.0f;
    } else {
      for (std::size_t c = 0; c < width; ++c) qn[c] = 0;
      qscale[n] = 0.0f;
    }
    for (std::size_t c = width; c < stride; ++c) qn[c] = 0;
  }
}

}  // namespace imap::nn::kernel::detail
