#pragma once

#include <cstddef>
#include <vector>

#include "common/serialize.h"

namespace imap::nn {

/// Adam optimiser over a flat parameter vector.
///
/// State (first/second moments, timestep) is owned here; call `step` with the
/// parameter block and its gradient block after each minibatch. Gradient
/// clipping by global L2 norm is built in because PPO updates with small
/// batches occasionally spike.
class Adam {
 public:
  struct Options {
    double lr = 3e-4;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double max_grad_norm = 0.5;  ///< 0 disables clipping
  };

  explicit Adam(std::size_t n_params) : Adam(n_params, Options{}) {}
  Adam(std::size_t n_params, Options opts);

  /// Apply one Adam update in-place; `grads` is not modified.
  void step(std::vector<double>& params, const std::vector<double>& grads);

  void set_lr(double lr) { opts_.lr = lr; }
  double lr() const { return opts_.lr; }
  std::size_t iterations() const { return t_; }

  /// Serialize moments + timestep (+ current lr, which set_lr may have
  /// annealed). Restoring into an Adam built with the same n_params resumes
  /// the update sequence bit-identically.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  Options opts_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace imap::nn
