#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace imap::nn {

/// Dense row-major matrix of doubles. This is deliberately a small value
/// type: the networks in this library are tiny (observation dims ≤ 32,
/// hidden widths ≤ 64), so clarity beats BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double stddev);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = M x  (x.size() == cols).
  std::vector<double> matvec(const std::vector<double>& x) const;

  /// y = Mᵀ x  (x.size() == rows).
  std::vector<double> matvec_transposed(const std::vector<double>& x) const;

  /// M += outer(u, v) * scale, with u.size()==rows, v.size()==cols.
  void add_outer(const std::vector<double>& u, const std::vector<double>& v,
                 double scale = 1.0);

  void fill(double v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Elementwise helpers over flat vectors (used throughout the nn/rl code).
void axpy(std::vector<double>& y, double a, const std::vector<double>& x);
double dot(const std::vector<double>& a, const std::vector<double>& b);
double l2norm(const std::vector<double>& a);
double linf_norm(const std::vector<double>& a);
std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b);
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);
void scale_inplace(std::vector<double>& a, double s);
void clamp_inplace(std::vector<double>& a, double lo, double hi);

}  // namespace imap::nn
