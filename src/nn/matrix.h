#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace imap::nn {

/// The shared dense kernels every matrix/MLP code path routes through —
/// per-sample (Matrix::matvec, Mlp::layer forward/backward) and batched
/// (Mlp::forward_batch / backward_batch) alike. One implementation, one
/// summation order.
///
/// Determinism contract: for each output element the reduction over the
/// contraction dimension runs sequentially in ascending index order,
/// starting from the bias (or the existing accumulator for the *_acc
/// kernels). Blocking — and SIMD lanes in the wider backends — is only
/// ever applied across *independent* output elements (batch rows, output
/// neurons, weight entries), and the vector paths use separate mul/add
/// with FP contraction disabled per translation unit, so the batched
/// kernels are bit-identical to calling the per-sample kernel once per row
/// on any hardware.
///
/// The batched entry points below dispatch to a runtime-selected backend
/// (scalar / avx2 / avx512 / neon, see nn/kernel_backend.h). Selection is
/// CPUID-driven with an `IMAP_KERNEL` override; because every backend obeys
/// the contract, the choice affects throughput only, never bits.
namespace kernel {

/// y[r] = b[r] + Σ_c w[r·in + c]·x[c]   (b == nullptr ⇒ bias 0).
void affine(const double* w, const double* b, std::size_t out, std::size_t in,
            const double* x, double* y);

/// y[c] += Σ_r w[r·in + c]·x[r], accumulated r-outer / c-inner — the
/// backward input-gradient order.
void matvec_t_acc(const double* w, std::size_t out, std::size_t in,
                  const double* x, double* y);

/// m[r·cols + c] += (u[r]·scale)·v[c].
void outer_acc(double* m, std::size_t rows, std::size_t cols, const double* u,
               const double* v, double scale);

/// Y[n] = W·X[n] + b for every batch row n. X is batch×in, Y batch×out,
/// both row-major. Vectorised across output neurons (SIMD backends) or
/// blocked 4 batch rows at a time (scalar); per-(n,r) summation order
/// matches affine() exactly in every variant.
void batch_affine(const double* w, const double* b, std::size_t out,
                  std::size_t in, const double* x, std::size_t batch,
                  double* y);

/// As above, with an optional caller-cached column-major weight copy
/// (wt[c·out + r], or nullptr). Backends that vectorise across output
/// lanes read `wt` instead of re-transposing `w` per call, and the
/// small-batch dispatch gate drops to the backend's cached threshold
/// (Mlp::Workspace maintains this cache keyed by a weight version).
void batch_affine(const double* w, const double* wt, const double* b,
                  std::size_t out, std::size_t in, const double* x,
                  std::size_t batch, double* y);

/// GIN[n] = Wᵀ·G[n] for every batch row n (overwrites GIN). Per-row
/// accumulation order matches matvec_t_acc on a zeroed output.
void batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                    const double* g, std::size_t batch, double* gin);

/// dW[r·in + c] += Σ_n G[n][r]·X[n][c] and db[r] += Σ_n G[n][r], with the
/// per-entry sum over n sequential in ascending n — bit-identical to
/// accumulating one sample at a time via outer_acc.
void batch_outer_acc(const double* g, const double* x, std::size_t batch,
                     std::size_t out, std::size_t in, double* dw, double* db);

/// int8 serving kernel (layout and quantization scheme in nn/quant.h):
///   y[n][r] = float(Σ_p wq[p][r]·xq[n][p]) · (row_scale[r]·xscale[n])
///             + bias[r]
/// with exact int32 accumulation over column pairs. Dispatches to the
/// active backend's int8 path, or the scalar reference when the backend
/// has none (e.g. neon); bit-identical across backends either way.
void quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                  const float* bias, std::size_t out, std::size_t in_pairs,
                  const std::int16_t* xq, const float* xscale,
                  std::size_t batch, float* y);

/// Fused serving activation between quantized layers: overwrite the
/// batch×width block `h` with the rational fast_tanh, then int8-requantize
/// each row into pair-aligned codes (stride 2·out_pairs, zero-padded) with
/// per-sample scales. Dispatches like quant_affine; every op is one IEEE
/// rounding, so backends are bit-identical (see nn/kernel_backend.h).
void quant_act(float* h, std::size_t batch, std::size_t width,
               std::size_t out_pairs, std::int16_t* qx, float* qscale);

}  // namespace kernel

/// Dense row-major matrix of doubles. This is deliberately a small value
/// type: the networks in this library are tiny (observation dims ≤ 32,
/// hidden widths ≤ 64), so clarity beats BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double stddev);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = M x  (x.size() == cols).
  std::vector<double> matvec(const std::vector<double>& x) const;

  /// y = Mᵀ x  (x.size() == rows).
  std::vector<double> matvec_transposed(const std::vector<double>& x) const;

  /// M += outer(u, v) * scale, with u.size()==rows, v.size()==cols.
  void add_outer(const std::vector<double>& u, const std::vector<double>& v,
                 double scale = 1.0);

  void fill(double v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Elementwise helpers over flat vectors (used throughout the nn/rl code).
void axpy(std::vector<double>& y, double a, const std::vector<double>& x);
double dot(const std::vector<double>& a, const std::vector<double>& b);
double l2norm(const std::vector<double>& a);
double linf_norm(const std::vector<double>& a);
std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b);
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);
void scale_inplace(std::vector<double>& a, double s);
void clamp_inplace(std::vector<double>& a, double lo, double hi);

}  // namespace imap::nn
