#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace imap::nn {

/// The shared dense kernels every matrix/MLP code path routes through —
/// per-sample (Matrix::matvec, Mlp::layer forward/backward) and batched
/// (Mlp::forward_batch / backward_batch) alike. One implementation, one
/// summation order.
///
/// Determinism contract: for each output element the reduction over the
/// contraction dimension runs sequentially in ascending index order,
/// starting from the bias (or the existing accumulator for the *_acc
/// kernels). Blocking — and, on x86-64 with AVX2, SIMD lanes — is only
/// ever applied across *independent* output elements (batch rows, output
/// neurons, weight entries), and the vector paths use separate mul/add
/// with FMA disabled at the ISA level, so the batched kernels are
/// bit-identical to calling the per-sample kernel once per row on any
/// hardware.
namespace kernel {

/// y[r] = b[r] + Σ_c w[r·in + c]·x[c]   (b == nullptr ⇒ bias 0).
void affine(const double* w, const double* b, std::size_t out, std::size_t in,
            const double* x, double* y);

/// y[c] += Σ_r w[r·in + c]·x[r], accumulated r-outer / c-inner — the
/// backward input-gradient order.
void matvec_t_acc(const double* w, std::size_t out, std::size_t in,
                  const double* x, double* y);

/// m[r·cols + c] += (u[r]·scale)·v[c].
void outer_acc(double* m, std::size_t rows, std::size_t cols, const double* u,
               const double* v, double scale);

/// Y[n] = W·X[n] + b for every batch row n. X is batch×in, Y batch×out,
/// both row-major. Vectorised across output neurons (AVX2) or blocked 4
/// batch rows at a time (scalar); per-(n,r) summation order matches
/// affine() exactly in both variants.
void batch_affine(const double* w, const double* b, std::size_t out,
                  std::size_t in, const double* x, std::size_t batch,
                  double* y);

/// GIN[n] = Wᵀ·G[n] for every batch row n (overwrites GIN). Per-row
/// accumulation order matches matvec_t_acc on a zeroed output.
void batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                    const double* g, std::size_t batch, double* gin);

/// dW[r·in + c] += Σ_n G[n][r]·X[n][c] and db[r] += Σ_n G[n][r], with the
/// per-entry sum over n sequential in ascending n — bit-identical to
/// accumulating one sample at a time via outer_acc.
void batch_outer_acc(const double* g, const double* x, std::size_t batch,
                     std::size_t out, std::size_t in, double* dw, double* db);

}  // namespace kernel

/// Dense row-major matrix of doubles. This is deliberately a small value
/// type: the networks in this library are tiny (observation dims ≤ 32,
/// hidden widths ≤ 64), so clarity beats BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix randn(std::size_t rows, std::size_t cols, Rng& rng,
                      double stddev);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = M x  (x.size() == cols).
  std::vector<double> matvec(const std::vector<double>& x) const;

  /// y = Mᵀ x  (x.size() == rows).
  std::vector<double> matvec_transposed(const std::vector<double>& x) const;

  /// M += outer(u, v) * scale, with u.size()==rows, v.size()==cols.
  void add_outer(const std::vector<double>& u, const std::vector<double>& v,
                 double scale = 1.0);

  void fill(double v);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Elementwise helpers over flat vectors (used throughout the nn/rl code).
void axpy(std::vector<double>& y, double a, const std::vector<double>& x);
double dot(const std::vector<double>& a, const std::vector<double>& b);
double l2norm(const std::vector<double>& a);
double linf_norm(const std::vector<double>& a);
std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b);
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);
void scale_inplace(std::vector<double>& a, double s);
void clamp_inplace(std::vector<double>& a, double lo, double hi);

}  // namespace imap::nn
