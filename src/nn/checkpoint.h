#pragma once

#include <optional>
#include <string>

#include "common/serialize.h"
#include "nn/gaussian.h"

namespace imap::nn {

/// Checkpoint I/O for policies and value nets (the victim "zoo" and trained
/// adversaries). Architecture is stored alongside the weights so loading
/// reconstructs the exact network.
void write_policy(BinaryWriter& w, const GaussianPolicy& p);
GaussianPolicy read_policy(BinaryReader& r);

void write_value_net(BinaryWriter& w, const ValueNet& v);
ValueNet read_value_net(BinaryReader& r);

/// Convenience file round-trips. save returns false on I/O failure; load
/// returns nullopt if the file does not exist (bad files throw CheckError).
bool save_policy(const std::string& path, const GaussianPolicy& p);
std::optional<GaussianPolicy> load_policy(const std::string& path);

}  // namespace imap::nn
