#include "nn/gaussian.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::nn {

namespace diag_gaussian {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;  // ln(2π)
}

double log_prob(const double* a, const double* mean, const double* log_std,
                std::size_t n) {
  double lp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (a[i] - mean[i]) * std::exp(-log_std[i]);
    lp += -0.5 * z * z - log_std[i] - 0.5 * kLog2Pi;
  }
  IMAP_NCHECK_FINITE(lp, "diag_gaussian.log_prob");
  return lp;
}

double log_prob(const std::vector<double>& a, const std::vector<double>& mean,
                const std::vector<double>& log_std) {
  IMAP_CHECK(a.size() == mean.size() && a.size() == log_std.size());
  return log_prob(a.data(), mean.data(), log_std.data(), a.size());
}

double entropy(const std::vector<double>& log_std) {
  double h = 0.0;
  for (double ls : log_std) h += ls + 0.5 * (kLog2Pi + 1.0);
  return h;
}

double kl(const std::vector<double>& mean_p, const std::vector<double>& ls_p,
          const std::vector<double>& mean_q, const std::vector<double>& ls_q) {
  IMAP_CHECK(mean_p.size() == mean_q.size());
  IMAP_CHECK(ls_p.size() == ls_q.size() && ls_p.size() == mean_p.size());
  double kl = 0.0;
  for (std::size_t i = 0; i < mean_p.size(); ++i) {
    const double var_p = std::exp(2.0 * ls_p[i]);
    const double var_q = std::exp(2.0 * ls_q[i]);
    const double dm = mean_p[i] - mean_q[i];
    kl += ls_q[i] - ls_p[i] + (var_p + dm * dm) / (2.0 * var_q) - 0.5;
  }
  return kl;
}

std::vector<double> dlogp_dmean(const std::vector<double>& a,
                                const std::vector<double>& mean,
                                const std::vector<double>& log_std) {
  std::vector<double> g(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double inv_var = std::exp(-2.0 * log_std[i]);
    g[i] = (a[i] - mean[i]) * inv_var;
  }
  return g;
}

std::vector<double> dlogp_dlogstd(const std::vector<double>& a,
                                  const std::vector<double>& mean,
                                  const std::vector<double>& log_std) {
  std::vector<double> g(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double z = (a[i] - mean[i]) * std::exp(-log_std[i]);
    g[i] = z * z - 1.0;
  }
  return g;
}

}  // namespace diag_gaussian

GaussianPolicy::GaussianPolicy(std::size_t obs_dim, std::size_t act_dim,
                               std::vector<std::size_t> hidden, Rng& rng,
                               double init_log_std)
    : net_([&] {
        std::vector<std::size_t> sizes{obs_dim};
        sizes.insert(sizes.end(), hidden.begin(), hidden.end());
        sizes.push_back(act_dim);
        return Mlp(std::move(sizes), rng);
      }()),
      log_std_(act_dim, init_log_std),
      log_std_grad_(act_dim, 0.0) {}

std::vector<double> GaussianPolicy::mean_action(
    const std::vector<double>& obs) const {
  return net_.forward(obs);
}

std::vector<double> GaussianPolicy::act(const std::vector<double>& obs,
                                        Rng& rng) const {
  std::vector<double> out;
  std::vector<double> scratch;
  act_into(obs, rng, out, scratch);
  return out;
}

void GaussianPolicy::act_into(const std::vector<double>& obs, Rng& rng,
                              std::vector<double>& out,
                              std::vector<double>& scratch) const {
  net_.forward_into(obs, out, scratch);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += std::exp(log_std_[i]) * rng.normal();
}

double GaussianPolicy::log_prob(const std::vector<double>& obs,
                                const std::vector<double>& act) const {
  return diag_gaussian::log_prob(act, net_.forward(obs), log_std_);
}

double GaussianPolicy::entropy() const {
  return diag_gaussian::entropy(log_std_);
}

std::vector<double> GaussianPolicy::mean_tape(const std::vector<double>& obs,
                                              Mlp::Tape& tape) const {
  return net_.forward_tape(obs, tape);
}

const Batch& GaussianPolicy::mean_batch(const Batch& obs) {
  return net_.forward_batch(obs);
}

const Batch& GaussianPolicy::mean_batch(const Batch& obs,
                                        Mlp::Workspace& ws) const {
  return net_.forward_batch(obs, ws);
}

void GaussianPolicy::log_prob_batch(const Batch& obs, const Batch& act,
                                    std::vector<double>& out) {
  IMAP_CHECK(act.rows() == obs.rows() && act.dim() == act_dim());
  const Batch& mean = mean_batch(obs);
  out.resize(obs.rows());
  for (std::size_t n = 0; n < obs.rows(); ++n)
    out[n] = diag_gaussian::log_prob(act.row(n), mean.row(n), log_std_.data(),
                                     act_dim());
}

void GaussianPolicy::backward_logp(const Mlp::Tape& tape,
                                   const std::vector<double>& act,
                                   double coeff) {
  const auto& mean = tape.post.back();
  auto gm = diag_gaussian::dlogp_dmean(act, mean, log_std_);
  for (double& g : gm) g *= coeff;
  net_.backward(tape, gm);
  const auto gs = diag_gaussian::dlogp_dlogstd(act, mean, log_std_);
  for (std::size_t i = 0; i < log_std_grad_.size(); ++i)
    log_std_grad_[i] += coeff * gs[i];
}

void GaussianPolicy::backward_logp_batch(const Batch& act,
                                         const std::vector<double>& coeff) {
  auto& ws = net_.workspace();
  IMAP_CHECK_MSG(!ws.post.empty(),
                 "backward_logp_batch without a prior mean_batch");
  const Batch& mean = ws.post.back();
  const std::size_t b = act.rows();
  IMAP_CHECK(coeff.size() == b && act.dim() == act_dim() && mean.rows() == b);
  dmean_.resize(b, act_dim());
  for (std::size_t n = 0; n < b; ++n) {
    const double* a = act.row(n);
    const double* m = mean.row(n);
    double* g = dmean_.row(n);
    const double cn = coeff[n];
    for (std::size_t i = 0; i < log_std_.size(); ++i) {
      const double inv_var = std::exp(-2.0 * log_std_[i]);
      // Two-step (dlogp then ·coeff), matching backward_logp bit-for-bit.
      double v = (a[i] - m[i]) * inv_var;
      v *= cn;
      g[i] = v;
    }
  }
  net_.backward_batch(dmean_);
  for (std::size_t n = 0; n < b; ++n) {
    const double* a = act.row(n);
    const double* m = mean.row(n);
    const double cn = coeff[n];
    for (std::size_t i = 0; i < log_std_grad_.size(); ++i) {
      const double z = (a[i] - m[i]) * std::exp(-log_std_[i]);
      log_std_grad_[i] += cn * (z * z - 1.0);
    }
  }
}

void GaussianPolicy::backward_entropy(double coeff) {
  // dH/d log_std_i = 1.
  for (double& g : log_std_grad_) g += coeff;
}

std::vector<double> GaussianPolicy::flat_params() const {
  std::vector<double> p = net_.params();
  p.insert(p.end(), log_std_.begin(), log_std_.end());
  return p;
}

void GaussianPolicy::set_flat_params(const std::vector<double>& p) {
  IMAP_CHECK(p.size() == n_params());
  std::copy(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(net_.params().size()),
            net_.params().begin());
  std::copy(p.end() - static_cast<std::ptrdiff_t>(log_std_.size()), p.end(),
            log_std_.begin());
}

std::vector<double> GaussianPolicy::flat_grads() const {
  std::vector<double> g = net_.grads();
  g.insert(g.end(), log_std_grad_.begin(), log_std_grad_.end());
  return g;
}

void GaussianPolicy::flat_params_into(std::vector<double>& out) const {
  out.resize(n_params());
  std::copy(net_.params().begin(), net_.params().end(), out.begin());
  std::copy(log_std_.begin(), log_std_.end(),
            out.begin() + static_cast<std::ptrdiff_t>(net_.params().size()));
}

void GaussianPolicy::flat_grads_into(std::vector<double>& out) const {
  out.resize(n_params());
  std::copy(net_.grads().begin(), net_.grads().end(), out.begin());
  std::copy(log_std_grad_.begin(), log_std_grad_.end(),
            out.begin() + static_cast<std::ptrdiff_t>(net_.grads().size()));
}

void GaussianPolicy::accumulate_flat_grads(const std::vector<double>& g) {
  IMAP_CHECK(g.size() == n_params());
  auto& ng = net_.grads();
  for (std::size_t i = 0; i < ng.size(); ++i) ng[i] += g[i];
  const std::size_t off = ng.size();
  for (std::size_t i = 0; i < log_std_grad_.size(); ++i)
    log_std_grad_[i] += g[off + i];
}

void GaussianPolicy::zero_grad() {
  net_.zero_grad();
  std::fill(log_std_grad_.begin(), log_std_grad_.end(), 0.0);
}

void GaussianPolicy::clamp_log_std(double lo, double hi) {
  for (double& ls : log_std_) ls = std::clamp(ls, lo, hi);
}

ValueNet::ValueNet(std::size_t obs_dim, std::vector<std::size_t> hidden,
                   Rng& rng)
    : net_([&] {
        std::vector<std::size_t> sizes{obs_dim};
        sizes.insert(sizes.end(), hidden.begin(), hidden.end());
        sizes.push_back(1);
        return Mlp(std::move(sizes), rng);
      }()) {}

double ValueNet::value(const std::vector<double>& obs) const {
  return net_.forward(obs)[0];
}

double ValueNet::value_tape(const std::vector<double>& obs,
                            Mlp::Tape& tape) const {
  return net_.forward_tape(obs, tape)[0];
}

void ValueNet::value_batch(const Batch& obs, std::vector<double>& out) {
  const Batch& o = net_.forward_batch(obs);
  out.resize(obs.rows());
  for (std::size_t n = 0; n < obs.rows(); ++n) out[n] = o.row(n)[0];
}

void ValueNet::value_batch(const Batch& obs, Mlp::Workspace& ws,
                           std::vector<double>& out) const {
  const Batch& o = net_.forward_batch(obs, ws);
  out.resize(obs.rows());
  for (std::size_t n = 0; n < obs.rows(); ++n) out[n] = o.row(n)[0];
}

void ValueNet::backward(const Mlp::Tape& tape, double coeff) {
  net_.backward(tape, {coeff});
}

void ValueNet::backward_batch(const std::vector<double>& coeff) {
  dout_.resize(coeff.size(), 1);
  for (std::size_t n = 0; n < coeff.size(); ++n) dout_(n, 0) = coeff[n];
  net_.backward_batch(dout_);
}

void GaussianPolicy::save_state(BinaryWriter& w) const {
  net_.save_state(w);
  w.write_vec(log_std_);
}

void GaussianPolicy::load_state(BinaryReader& r) {
  net_.load_state(r);
  auto ls = r.read_vec();
  IMAP_CHECK_MSG(ls.size() == log_std_.size(),
                 "policy checkpoint has wrong log_std size");
  log_std_ = std::move(ls);
}

void ValueNet::save_state(BinaryWriter& w) const { net_.save_state(w); }

void ValueNet::load_state(BinaryReader& r) { net_.load_state(r); }

}  // namespace imap::nn
