#include "nn/quant.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "nn/kernel_backend.h"
#include "nn/matrix.h"

namespace imap::nn {

namespace {

std::int16_t clamp_code(long v) {
  return static_cast<std::int16_t>(std::clamp(v, -127L, 127L));
}

/// max |x| over a float row, computed on the absolute bit patterns: for
/// non-NaN floats, |a| <= |b| iff (bits(a) & 0x7fffffff) <= (bits(b) &
/// 0x7fffffff), and an integer max-reduction is exact and associative — so
/// the loop vectorises without reordering concerns, unlike an fp max chain.
float abs_max(const float* x, std::size_t n) {
  std::uint32_t m = 0;
  for (std::size_t c = 0; c < n; ++c)
    m = std::max(m, std::bit_cast<std::uint32_t>(x[c]) & 0x7fffffffu);
  return std::bit_cast<float>(m);
}

/// Per-sample symmetric int8 quantization of the B fp64 network-input rows
/// into zero-padded pair-aligned int16 codes (row stride 2·in_pairs). The
/// obs widths are small (≤ 32), so this stays scalar here; the hot hidden
/// activations go through kernel::quant_act instead. Float precision
/// throughout: the codes only carry ~7 bits, so the extra double rounding
/// buys nothing, and float lrintf/converts vectorise.
void quantize_input_rows(const double* x, std::size_t b, std::size_t in,
                         std::size_t in_pairs, std::int16_t* qx, float* qscale,
                         float* xf_scratch) {
  const std::size_t stride = 2 * in_pairs;
  for (std::size_t n = 0; n < b; ++n) {
    const double* xn = x + n * in;
    std::int16_t* qn = qx + n * stride;
    for (std::size_t c = 0; c < in; ++c)
      xf_scratch[c] = static_cast<float>(xn[c]);
    const float amax = abs_max(xf_scratch, in);
    if (amax > 0.0f) {
      const float inv = 127.0f / amax;
      for (std::size_t c = 0; c < in; ++c)
        qn[c] = clamp_code(std::lrintf(xf_scratch[c] * inv));
      qscale[n] = amax / 127.0f;
    } else {
      for (std::size_t c = 0; c < in; ++c) qn[c] = 0;
      qscale[n] = 0.0f;
    }
    for (std::size_t c = in; c < stride; ++c) qn[c] = 0;
  }
}

}  // namespace

QuantizedMlp::QuantizedMlp(const Mlp& net)
    : in_dim_(net.in_dim()),
      out_dim_(net.out_dim()),
      source_(&net),
      built_version_(net.weight_version()) {
  const auto& sizes = net.sizes();
  const auto& params = net.params();
  // Rebuild the layer views from the architecture (offsets mirror the Mlp
  // constructor: W then b per layer, flat-packed in order).
  std::size_t off = 0;
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    QLayer q;
    q.in = sizes[i];
    q.out = sizes[i + 1];
    q.in_pairs = (q.in + 1) / 2;
    const double* w = params.data() + off;
    off += q.in * q.out;
    const double* b = params.data() + off;
    off += q.out;

    q.row_scale.resize(q.out);
    q.bias.resize(q.out);
    q.wq_packed.assign(2 * q.in_pairs * q.out, 0);
    for (std::size_t r = 0; r < q.out; ++r) {
      const double* row = w + r * q.in;
      double amax = 0.0;
      for (std::size_t c = 0; c < q.in; ++c)
        amax = std::max(amax, std::abs(row[c]));
      q.bias[r] = static_cast<float>(b[r]);
      if (amax > 0.0) {
        const double inv = 127.0 / amax;
        for (std::size_t c = 0; c < q.in; ++c) {
          const std::int16_t code = clamp_code(std::lrint(row[c] * inv));
          q.wq_packed[kernel::quant_packed_index(r, c, q.out, q.in_pairs)] =
              code;
        }
        q.row_scale[r] = static_cast<float>(amax / 127.0);
      } else {
        q.row_scale[r] = 0.0f;
      }
    }
    max_pairs_ = std::max(max_pairs_, q.in_pairs);
    max_out_ = std::max(max_out_, q.out);
    layers_.push_back(std::move(q));
  }
  IMAP_CHECK(off == params.size());
}

const Batch& QuantizedMlp::forward_batch(const Batch& x,
                                         Mlp::Workspace& ws) const {
  IMAP_CHECK_MSG(x.dim() == in_dim_,
                 "batch dim " << x.dim() << " != " << in_dim_);
  const std::size_t b = x.rows();
  // Grow-only scratch in the caller's workspace: zero allocations once the
  // high-water batch size is reached, same contract as the fp64 arena.
  if (ws.qx.size() < b * 2 * max_pairs_) ws.qx.resize(b * 2 * max_pairs_);
  if (ws.qscale.size() < b) ws.qscale.resize(b);
  if (ws.qh.size() < b * max_out_) ws.qh.resize(b * max_out_);
  if (ws.qh2.size() < b * max_out_) ws.qh2.resize(b * max_out_);

  // Double→float staging row for the network input (hidden activations are
  // already float). Function-scope thread_local: no per-call allocation.
  thread_local std::vector<float> xf;
  if (xf.size() < in_dim_) xf.resize(in_dim_);
  quantize_input_rows(x.data(), b, in_dim_, layers_.front().in_pairs,
                      ws.qx.data(), ws.qscale.data(), xf.data());
  float* cur = ws.qh.data();
  float* alt = ws.qh2.data();
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const QLayer& l = layers_[li];
    kernel::quant_affine(l.wq_packed.data(), l.row_scale.data(),
                         l.bias.data(), l.out, l.in_pairs, ws.qx.data(),
                         ws.qscale.data(), b, cur);
    if (li + 1 < layers_.size()) {
      // Fused fast_tanh + requantize through the active kernel backend
      // (bit-identical across backends — see nn/kernel_backend.h).
      kernel::quant_act(cur, b, l.out, layers_[li + 1].in_pairs,
                        ws.qx.data(), ws.qscale.data());
      std::swap(cur, alt);
    }
  }
  ws.qout.resize(b, out_dim_);
  const float* src = cur;
  double* dst = ws.qout.data();
  const std::size_t nel = b * out_dim_;
  for (std::size_t i = 0; i < nel; ++i)
    dst[i] = static_cast<double>(src[i]);
  return ws.qout;
}

std::vector<double> QuantizedMlp::forward(const std::vector<double>& x) const {
  thread_local Mlp::Workspace ws;
  thread_local Batch xb;
  xb.resize(1, x.size());
  xb.set_row(0, x);
  const Batch& y = forward_batch(xb, ws);
  return std::vector<double>(y.row(0), y.row(0) + out_dim_);
}

namespace {
// -1 = follow the environment, 0/1 = ScopedVictimQuant override.
int g_quant_override = -1;

bool env_victim_quant() {
  static const bool on = [] {
    const char* env = std::getenv("IMAP_VICTIM_QUANT");
    return env != nullptr && std::atoi(env) == 1;
  }();
  return on;
}
}  // namespace

bool victim_quant_enabled() {
  if (g_quant_override >= 0) return g_quant_override == 1;
  return env_victim_quant();
}

ScopedVictimQuant::ScopedVictimQuant(bool on) : prev_(g_quant_override) {
  g_quant_override = on ? 1 : 0;
}

ScopedVictimQuant::~ScopedVictimQuant() { g_quant_override = prev_; }

}  // namespace imap::nn
