// NEON backend (aarch64): 2-lane f64 vectors, same lane discipline as the
// x86 backends — lanes across independent output elements, separate
// vmulq/vaddq (never vfmaq) so each lane runs the exact scalar chain. The
// TU is compiled with -ffp-contract=off; asimd is baseline on aarch64 so no
// extra ISA flags are needed. No int8 kernel here: quant_affine is null in
// the registry and dispatch falls back to the scalar reference.

#ifdef IMAP_KERNEL_NEON

#include <arm_neon.h>

#include <vector>

#include "nn/kernel_impl.h"

namespace imap::nn::kernel::detail {

namespace {

const double* transposed(const double* w, const double* wt, std::size_t out,
                         std::size_t in) {
  if (wt != nullptr) return wt;
  thread_local std::vector<double> scratch;
  if (scratch.size() < in * out) scratch.resize(in * out);
  double* p = scratch.data();
  for (std::size_t r = 0; r < out; ++r)
    for (std::size_t c = 0; c < in; ++c) p[c * out + r] = w[r * in + c];
  return p;
}

}  // namespace

void neon_batch_affine(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y) {
  const double* wtp = transposed(w, wt, out, in);
  for (std::size_t n = 0; n < batch; ++n) {
    const double* xn = x + n * in;
    double* yn = y + n * out;
    std::size_t r = 0;
    for (; r + 8 <= out; r += 8) {
      float64x2_t a0, a1, a2, a3;
      if (b) {
        a0 = vld1q_f64(b + r);
        a1 = vld1q_f64(b + r + 2);
        a2 = vld1q_f64(b + r + 4);
        a3 = vld1q_f64(b + r + 6);
      } else {
        a0 = a1 = a2 = a3 = vdupq_n_f64(0.0);
      }
      for (std::size_t c = 0; c < in; ++c) {
        const float64x2_t xc = vdupq_n_f64(xn[c]);
        const double* col = wtp + c * out + r;
        a0 = vaddq_f64(a0, vmulq_f64(vld1q_f64(col), xc));
        a1 = vaddq_f64(a1, vmulq_f64(vld1q_f64(col + 2), xc));
        a2 = vaddq_f64(a2, vmulq_f64(vld1q_f64(col + 4), xc));
        a3 = vaddq_f64(a3, vmulq_f64(vld1q_f64(col + 6), xc));
      }
      vst1q_f64(yn + r, a0);
      vst1q_f64(yn + r + 2, a1);
      vst1q_f64(yn + r + 4, a2);
      vst1q_f64(yn + r + 6, a3);
    }
    for (; r + 2 <= out; r += 2) {
      float64x2_t a = b ? vld1q_f64(b + r) : vdupq_n_f64(0.0);
      for (std::size_t c = 0; c < in; ++c) {
        const float64x2_t xc = vdupq_n_f64(xn[c]);
        a = vaddq_f64(a, vmulq_f64(vld1q_f64(wtp + c * out + r), xc));
      }
      vst1q_f64(yn + r, a);
    }
    for (; r < out; ++r) {
      const double* row = w + r * in;
      double s = b ? b[r] : 0.0;
      for (std::size_t c = 0; c < in; ++c) s += row[c] * xn[c];
      yn[r] = s;
    }
  }
}

void neon_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin) {
  for (std::size_t n = 0; n < batch; ++n) {
    const double* gn = g + n * out;
    double* on = gin + n * in;
    std::size_t c = 0;
    for (; c + 8 <= in; c += 8) {
      float64x2_t a0 = vdupq_n_f64(0.0), a1 = vdupq_n_f64(0.0),
                  a2 = vdupq_n_f64(0.0), a3 = vdupq_n_f64(0.0);
      for (std::size_t r = 0; r < out; ++r) {
        const float64x2_t gr = vdupq_n_f64(gn[r]);
        const double* row = w + r * in + c;
        a0 = vaddq_f64(a0, vmulq_f64(vld1q_f64(row), gr));
        a1 = vaddq_f64(a1, vmulq_f64(vld1q_f64(row + 2), gr));
        a2 = vaddq_f64(a2, vmulq_f64(vld1q_f64(row + 4), gr));
        a3 = vaddq_f64(a3, vmulq_f64(vld1q_f64(row + 6), gr));
      }
      vst1q_f64(on + c, a0);
      vst1q_f64(on + c + 2, a1);
      vst1q_f64(on + c + 4, a2);
      vst1q_f64(on + c + 6, a3);
    }
    for (; c + 2 <= in; c += 2) {
      float64x2_t a = vdupq_n_f64(0.0);
      for (std::size_t r = 0; r < out; ++r) {
        const float64x2_t gr = vdupq_n_f64(gn[r]);
        a = vaddq_f64(a, vmulq_f64(vld1q_f64(w + r * in + c), gr));
      }
      vst1q_f64(on + c, a);
    }
    for (; c < in; ++c) {
      double s = 0.0;
      for (std::size_t r = 0; r < out; ++r) s += w[r * in + c] * gn[r];
      on[c] = s;
    }
  }
}

void neon_batch_outer_acc(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db) {
  for (std::size_t r = 0; r < out; ++r) {
    double* dwr = dw + r * in;
    std::size_t c = 0;
    for (; c + 8 <= in; c += 8) {
      float64x2_t a0 = vld1q_f64(dwr + c);
      float64x2_t a1 = vld1q_f64(dwr + c + 2);
      float64x2_t a2 = vld1q_f64(dwr + c + 4);
      float64x2_t a3 = vld1q_f64(dwr + c + 6);
      for (std::size_t n = 0; n < batch; ++n) {
        const float64x2_t gr = vdupq_n_f64(g[n * out + r]);
        const double* xn = x + n * in + c;
        a0 = vaddq_f64(a0, vmulq_f64(vld1q_f64(xn), gr));
        a1 = vaddq_f64(a1, vmulq_f64(vld1q_f64(xn + 2), gr));
        a2 = vaddq_f64(a2, vmulq_f64(vld1q_f64(xn + 4), gr));
        a3 = vaddq_f64(a3, vmulq_f64(vld1q_f64(xn + 6), gr));
      }
      vst1q_f64(dwr + c, a0);
      vst1q_f64(dwr + c + 2, a1);
      vst1q_f64(dwr + c + 4, a2);
      vst1q_f64(dwr + c + 6, a3);
    }
    for (; c + 2 <= in; c += 2) {
      float64x2_t a = vld1q_f64(dwr + c);
      for (std::size_t n = 0; n < batch; ++n) {
        const float64x2_t gr = vdupq_n_f64(g[n * out + r]);
        a = vaddq_f64(a, vmulq_f64(vld1q_f64(x + n * in + c), gr));
      }
      vst1q_f64(dwr + c, a);
    }
    for (; c < in; ++c) {
      double s = dwr[c];
      for (std::size_t n = 0; n < batch; ++n)
        s += g[n * out + r] * x[n * in + c];
      dwr[c] = s;
    }
    double sb = db[r];
    for (std::size_t n = 0; n < batch; ++n) sb += g[n * out + r];
    db[r] = sb;
  }
}

}  // namespace imap::nn::kernel::detail

#endif  // IMAP_KERNEL_NEON
