#pragma once

#include <cstddef>
#include <vector>

namespace imap::nn {

/// Row-major matrix of stacked samples (rows = batch size, dim = feature
/// width) — the currency of the batched kernel layer. `resize` never shrinks
/// the underlying heap block, so a Batch reused across minibatches settles
/// into a steady state with zero allocations per step.
class Batch {
 public:
  Batch() = default;
  Batch(std::size_t rows, std::size_t dim) { resize(rows, dim); }

  /// Re-shape to rows×dim. Existing contents are NOT preserved; capacity is
  /// (the block only grows, it is never released until destruction).
  void resize(std::size_t rows, std::size_t dim) {
    rows_ = rows;
    dim_ = dim;
    if (data_.size() < rows * dim) data_.resize(rows * dim);
  }

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * dim_; }
  const double* row(std::size_t r) const { return data_.data() + r * dim_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * dim_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * dim_ + c];
  }

  void fill(double v);

  /// Copy another batch's shape and valid contents (capacity-reusing).
  void assign(const Batch& other);

  /// Copy one sample into row r (x.size() must equal dim()).
  void set_row(std::size_t r, const std::vector<double>& x);

  /// Stack rows[idx[b]], rows[idx[b+1]], ..., rows[idx[e-1]] — the minibatch
  /// gather used by the PPO update (idx = shuffled order, [b,e) the slice).
  void gather(const std::vector<std::vector<double>>& rows_in,
              const std::vector<std::size_t>& idx, std::size_t b,
              std::size_t e);

  /// Stack rows_in[b..e) directly (identity gather) — used for chunked
  /// whole-buffer sweeps like the intrinsic-value refresh.
  void gather_range(const std::vector<std::vector<double>>& rows_in,
                    std::size_t b, std::size_t e);

  /// Stack every row of `rows_in` (all rows must share one width).
  void from_rows(const std::vector<std::vector<double>>& rows_in);

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

}  // namespace imap::nn
