#pragma once

#include <vector>

#include "common/rng.h"
#include "nn/mlp.h"

namespace imap::nn {

/// Closed-form diagonal-Gaussian math shared by the policy classes.
namespace diag_gaussian {

/// Pointer core of log_prob — the batched paths call this once per row.
double log_prob(const double* a, const double* mean, const double* log_std,
                std::size_t n);

/// log N(a | mean, exp(log_std)²), summed over dims.
double log_prob(const std::vector<double>& a, const std::vector<double>& mean,
                const std::vector<double>& log_std);

/// Differential entropy, summed over dims (state-independent given log_std).
double entropy(const std::vector<double>& log_std);

/// KL(p ‖ q) between two diagonal Gaussians.
double kl(const std::vector<double>& mean_p, const std::vector<double>& ls_p,
          const std::vector<double>& mean_q, const std::vector<double>& ls_q);

/// d log_prob / d mean (per-dim).
std::vector<double> dlogp_dmean(const std::vector<double>& a,
                                const std::vector<double>& mean,
                                const std::vector<double>& log_std);

/// d log_prob / d log_std (per-dim).
std::vector<double> dlogp_dlogstd(const std::vector<double>& a,
                                  const std::vector<double>& mean,
                                  const std::vector<double>& log_std);

}  // namespace diag_gaussian

/// Stochastic policy π(a|s) = N(μ_θ(s), diag(exp(log_std))²) with a
/// state-independent trainable log-std — the standard continuous-control
/// parameterisation used by PPO (and by the paper).
class GaussianPolicy {
 public:
  GaussianPolicy(std::size_t obs_dim, std::size_t act_dim,
                 std::vector<std::size_t> hidden, Rng& rng,
                 double init_log_std = -0.5);

  std::size_t obs_dim() const { return net_.in_dim(); }
  std::size_t act_dim() const { return log_std_.size(); }

  /// Deterministic action (the mean) — used for deployed/frozen victims.
  std::vector<double> mean_action(const std::vector<double>& obs) const;

  /// Sampled action.
  std::vector<double> act(const std::vector<double>& obs, Rng& rng) const;

  /// Allocation-free act() for per-step collection loops: the action lands
  /// in `out`, `scratch` is the forward ping-pong partner; both buffers grow
  /// once and are reused. Same RNG draw sequence, bit-identical to act().
  void act_into(const std::vector<double>& obs, Rng& rng,
                std::vector<double>& out, std::vector<double>& scratch) const;

  /// log π(a|s), recomputing the forward pass.
  double log_prob(const std::vector<double>& obs,
                  const std::vector<double>& act) const;

  /// Policy entropy (state-independent).
  double entropy() const;

  /// Forward with activation tape (for training); returns the mean.
  std::vector<double> mean_tape(const std::vector<double>& obs,
                                Mlp::Tape& tape) const;

  /// Batched mean forward on the policy-owned workspace, recording the
  /// batched tape for a later backward_logp_batch. Returns the mean rows
  /// (reference into the workspace, valid until the next batched call).
  const Batch& mean_batch(const Batch& obs);

  /// Inference-only batched mean forward through a caller-owned workspace —
  /// for read-only consumers (rollout collection, frozen-victim queries)
  /// that share one policy across worker threads. Each row is bit-identical
  /// to mean_action() on that row.
  const Batch& mean_batch(const Batch& obs, Mlp::Workspace& ws) const;

  /// log π(a_n|s_n) for every row of a minibatch, written into `out`
  /// (resized to obs.rows()). Bit-identical to per-row log_prob(). Records
  /// the mean tape like mean_batch.
  void log_prob_batch(const Batch& obs, const Batch& act,
                      std::vector<double>& out);

  /// Accumulate coeff · ∇_θ log π(a|s) into the gradient buffers. The tape
  /// must come from mean_tape(obs). Used by the PPO policy-gradient step
  /// (coeff = clipped advantage weight) and by behaviour cloning.
  void backward_logp(const Mlp::Tape& tape, const std::vector<double>& act,
                     double coeff);

  /// Batched backward_logp over the tape recorded by the last
  /// mean_batch/log_prob_batch: accumulates Σ_n coeff[n]·∇_θ log π(a_n|s_n).
  /// Bit-identical to calling backward_logp once per row in ascending row
  /// order (coeff[n] = 0 rows contribute exact zeros).
  void backward_logp_batch(const Batch& act, const std::vector<double>& coeff);

  /// Accumulate coeff · ∇_θ H(π) (only log_std receives gradient).
  void backward_entropy(double coeff);

  /// Flat parameter/gradient access for the optimiser: mean-net parameters
  /// followed by log_std.
  std::size_t n_params() const { return net_.params().size() + log_std_.size(); }
  std::vector<double> flat_params() const;
  void set_flat_params(const std::vector<double>& p);
  std::vector<double> flat_grads() const;
  /// Allocation-free variants for hot loops: write into a caller-owned
  /// buffer (resized on first use, reused afterwards).
  void flat_params_into(std::vector<double>& out) const;
  void flat_grads_into(std::vector<double>& out) const;
  /// Add a flat gradient vector (same layout as flat_grads) into the
  /// gradient buffers — used to fold sharded accumulators back in.
  void accumulate_flat_grads(const std::vector<double>& g);
  void zero_grad();

  /// Keep the exploration noise in a sane range after optimiser steps.
  void clamp_log_std(double lo = -3.0, double hi = 1.0);

  const std::vector<double>& log_std() const { return log_std_; }
  Mlp& net() { return net_; }
  const Mlp& net() const { return net_; }

  /// Serialize mean-net weights + log_std (architecture-checked on load).
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  Mlp net_;
  std::vector<double> log_std_;
  std::vector<double> log_std_grad_;
  Batch dmean_;  ///< reusable dL/dmean rows for backward_logp_batch
};

/// Scalar state-value network V(s).
class ValueNet {
 public:
  ValueNet(std::size_t obs_dim, std::vector<std::size_t> hidden, Rng& rng);

  double value(const std::vector<double>& obs) const;
  double value_tape(const std::vector<double>& obs, Mlp::Tape& tape) const;

  /// V(s_n) for every row of a minibatch, written into `out` (resized to
  /// obs.rows()); records the batched tape for a later backward_batch.
  /// Bit-identical to per-row value().
  void value_batch(const Batch& obs, std::vector<double>& out);

  /// Inference-only batched values through a caller-owned workspace — the
  /// critic sweep of the vectorized rollout engine (one critic shared by
  /// all worker threads, one workspace per worker). Bit-identical to
  /// per-row value().
  void value_batch(const Batch& obs, Mlp::Workspace& ws,
                   std::vector<double>& out) const;

  /// Accumulate coeff · ∇_θ V(s) into gradients (coeff = dL/dV).
  void backward(const Mlp::Tape& tape, double coeff);

  /// Batched critic backward over the tape recorded by the last
  /// value_batch: accumulates Σ_n coeff[n]·∇_θ V(s_n). Bit-identical to
  /// per-row backward() in ascending row order.
  void backward_batch(const std::vector<double>& coeff);

  std::vector<double>& params() { return net_.params(); }
  const std::vector<double>& params() const { return net_.params(); }
  std::vector<double>& grads() { return net_.grads(); }
  void zero_grad() { net_.zero_grad(); }
  std::size_t n_params() const { return net_.params().size(); }

  Mlp& net() { return net_; }
  const Mlp& net() const { return net_; }

  /// Serialize critic weights (architecture-checked on load).
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  Mlp net_;
  Batch dout_;  ///< reusable B×1 grad-out rows for backward_batch
};

}  // namespace imap::nn
