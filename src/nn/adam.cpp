#include "nn/adam.h"

#include <cmath>

#include "common/check.h"

namespace imap::nn {

Adam::Adam(std::size_t n_params, Options opts)
    : opts_(opts), m_(n_params, 0.0), v_(n_params, 0.0) {}

void Adam::step(std::vector<double>& params,
                const std::vector<double>& grads) {
  IMAP_CHECK(params.size() == m_.size());
  IMAP_CHECK(grads.size() == m_.size());
  ++t_;

  double clip = 1.0;
  if (opts_.max_grad_norm > 0.0) {
    double sq = 0.0;
    for (double g : grads) sq += g * g;
    const double norm = std::sqrt(sq);
    if (norm > opts_.max_grad_norm) clip = opts_.max_grad_norm / norm;
  }

  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = grads[i] * clip;
    m_[i] = opts_.beta1 * m_[i] + (1.0 - opts_.beta1) * g;
    v_[i] = opts_.beta2 * v_[i] + (1.0 - opts_.beta2) * g * g;
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
  }
  IMAP_NCHECK_FINITE_VEC(params, "adam.params after step");
}

void Adam::save_state(BinaryWriter& w) const {
  w.write_u64(t_);
  w.write_f64(opts_.lr);
  w.write_vec(m_);
  w.write_vec(v_);
}

void Adam::load_state(BinaryReader& r) {
  t_ = r.read_u64();
  opts_.lr = r.read_f64();
  auto m = r.read_vec();
  auto v = r.read_vec();
  IMAP_CHECK_MSG(m.size() == m_.size() && v.size() == v_.size(),
                 "Adam checkpoint has wrong parameter count");
  m_ = std::move(m);
  v_ = std::move(v);
}

}  // namespace imap::nn
