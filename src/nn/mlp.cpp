#include "nn/mlp.h"

#include <cmath>

#include "common/check.h"

namespace imap::nn {

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng, double init_scale)
    : sizes_(std::move(sizes)) {
  IMAP_CHECK_MSG(sizes_.size() >= 2, "Mlp needs at least in and out dims");
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    LayerView l;
    l.in = sizes_[i];
    l.out = sizes_[i + 1];
    l.w_off = total;
    total += l.in * l.out;
    l.b_off = total;
    total += l.out;
    layers_.push_back(l);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    const bool last = (li + 1 == layers_.size());
    // Orthogonal-ish init is overkill here; scaled Gaussian with fan-in
    // normalisation trains these tiny nets reliably.
    const double std = init_scale / std::sqrt(static_cast<double>(l.in)) *
                       (last ? 0.01 : 1.0);
    for (std::size_t i = 0; i < l.in * l.out; ++i)
      params_[l.w_off + i] = rng.normal(0.0, std);
    for (std::size_t i = 0; i < l.out; ++i) params_[l.b_off + i] = 0.0;
  }
}

std::vector<double> Mlp::layer_forward(const LayerView& l,
                                       const std::vector<double>& x,
                                       const std::vector<double>& block) const {
  std::vector<double> y(l.out);
  const double* w = block.data() + l.w_off;
  const double* b = block.data() + l.b_off;
  for (std::size_t r = 0; r < l.out; ++r) {
    double s = b[r];
    const double* row = w + r * l.in;
    for (std::size_t c = 0; c < l.in; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  IMAP_CHECK_MSG(x.size() == in_dim(),
                 "input dim " << x.size() << " != " << in_dim());
  std::vector<double> h = x;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    h = layer_forward(layers_[li], h, params_);
    if (li + 1 < layers_.size())
      for (double& v : h) v = std::tanh(v);
  }
  IMAP_NCHECK_SHAPE(h.size(), out_dim(), "Mlp::forward output");
  IMAP_NCHECK_FINITE_VEC(h, "Mlp::forward output");
  return h;
}

std::vector<double> Mlp::forward_tape(const std::vector<double>& x,
                                      Tape& tape) const {
  IMAP_CHECK(x.size() == in_dim());
  tape.pre.assign(layers_.size(), {});
  tape.post.assign(layers_.size() + 1, {});
  tape.post[0] = x;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    tape.pre[li] = layer_forward(layers_[li], tape.post[li], params_);
    tape.post[li + 1] = tape.pre[li];
    if (li + 1 < layers_.size())
      for (double& v : tape.post[li + 1]) v = std::tanh(v);
  }
  IMAP_NCHECK_FINITE_VEC(tape.post.back(), "Mlp::forward_tape output");
  return tape.post.back();
}

std::vector<double> Mlp::backward(const Tape& tape,
                                  const std::vector<double>& grad_out) {
  IMAP_CHECK(grad_out.size() == out_dim());
  std::vector<double> g = grad_out;  // dL/d(pre-activation of current layer)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    // Accumulate parameter grads: dL/dW = g ⊗ input, dL/db = g.
    double* gw = grads_.data() + l.w_off;
    double* gb = grads_.data() + l.b_off;
    const auto& in = tape.post[li];
    for (std::size_t r = 0; r < l.out; ++r) {
      double* row = gw + r * l.in;
      const double gr = g[r];
      for (std::size_t c = 0; c < l.in; ++c) row[c] += gr * in[c];
      gb[r] += gr;
    }
    // Propagate to input: dL/din = Wᵀ g, then through tanh if not first layer.
    std::vector<double> gin(l.in, 0.0);
    const double* w = params_.data() + l.w_off;
    for (std::size_t r = 0; r < l.out; ++r) {
      const double* row = w + r * l.in;
      const double gr = g[r];
      for (std::size_t c = 0; c < l.in; ++c) gin[c] += row[c] * gr;
    }
    if (li > 0) {
      const auto& post = tape.post[li];  // tanh(pre[li-1])
      for (std::size_t c = 0; c < l.in; ++c)
        gin[c] *= (1.0 - post[c] * post[c]);
    }
    g = std::move(gin);
  }
  IMAP_NCHECK_FINITE_VEC(g, "Mlp::backward input-gradient");
  return g;  // dL/dx
}

std::vector<double> Mlp::input_gradient(
    const Tape& tape, const std::vector<double>& grad_out) const {
  IMAP_CHECK(grad_out.size() == out_dim());
  std::vector<double> g = grad_out;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    std::vector<double> gin(l.in, 0.0);
    const double* w = params_.data() + l.w_off;
    for (std::size_t r = 0; r < l.out; ++r) {
      const double* row = w + r * l.in;
      const double gr = g[r];
      for (std::size_t c = 0; c < l.in; ++c) gin[c] += row[c] * gr;
    }
    if (li > 0) {
      const auto& post = tape.post[li];
      for (std::size_t c = 0; c < l.in; ++c)
        gin[c] *= (1.0 - post[c] * post[c]);
    }
    g = std::move(gin);
  }
  return g;
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

}  // namespace imap::nn
