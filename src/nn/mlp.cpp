#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/kernel_backend.h"

namespace imap::nn {

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng, double init_scale)
    : sizes_(std::move(sizes)) {
  IMAP_CHECK_MSG(sizes_.size() >= 2, "Mlp needs at least in and out dims");
  std::size_t total = 0;
  for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
    LayerView l;
    l.in = sizes_[i];
    l.out = sizes_[i + 1];
    l.w_off = total;
    total += l.in * l.out;
    l.b_off = total;
    total += l.out;
    layers_.push_back(l);
  }
  params_.resize(total);
  grads_.assign(total, 0.0);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    const bool last = (li + 1 == layers_.size());
    // Orthogonal-ish init is overkill here; scaled Gaussian with fan-in
    // normalisation trains these tiny nets reliably.
    const double std = init_scale / std::sqrt(static_cast<double>(l.in)) *
                       (last ? 0.01 : 1.0);
    for (std::size_t i = 0; i < l.in * l.out; ++i)
      params_[l.w_off + i] = rng.normal(0.0, std);
    for (std::size_t i = 0; i < l.out; ++i) params_[l.b_off + i] = 0.0;
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x) const {
  std::vector<double> out;
  std::vector<double> scratch;
  forward_into(x, out, scratch);
  return out;
}

void Mlp::forward_into(const std::vector<double>& x, std::vector<double>& out,
                       std::vector<double>& scratch) const {
  IMAP_CHECK_MSG(x.size() == in_dim(),
                 "input dim " << x.size() << " != " << in_dim());
  // Ping-pong between the two caller buffers, hoisted out of the layer loop;
  // the shared kernel::affine keeps the summation order identical to the
  // batched path. resize() reuses capacity, so a caller that holds out and
  // scratch across steps pays zero allocations in steady state.
  out.assign(x.begin(), x.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    scratch.resize(l.out);
    kernel::affine(params_.data() + l.w_off, params_.data() + l.b_off, l.out,
                   l.in, out.data(), scratch.data());
    if (li + 1 < layers_.size())
      for (double& v : scratch) v = std::tanh(v);
    std::swap(out, scratch);
  }
  IMAP_NCHECK_SHAPE(out.size(), out_dim(), "Mlp::forward output");
  IMAP_NCHECK_FINITE_VEC(out, "Mlp::forward output");
}

std::vector<double> Mlp::forward_tape(const std::vector<double>& x,
                                      Tape& tape) const {
  return forward_tape_ref(x, tape);
}

const std::vector<double>& Mlp::forward_tape_ref(const std::vector<double>& x,
                                                 Tape& tape) const {
  IMAP_CHECK(x.size() == in_dim());
  // resize/assign (not re-construction) so a reused Tape keeps its heap
  // blocks across calls.
  tape.pre.resize(layers_.size());
  tape.post.resize(layers_.size() + 1);
  tape.post[0].assign(x.begin(), x.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    tape.pre[li].resize(l.out);
    kernel::affine(params_.data() + l.w_off, params_.data() + l.b_off, l.out,
                   l.in, tape.post[li].data(), tape.pre[li].data());
    tape.post[li + 1] = tape.pre[li];
    if (li + 1 < layers_.size())
      for (double& v : tape.post[li + 1]) v = std::tanh(v);
  }
  IMAP_NCHECK_FINITE_VEC(tape.post.back(), "Mlp::forward_tape output");
  return tape.post.back();
}

std::vector<double> Mlp::backward(const Tape& tape,
                                  const std::vector<double>& grad_out) {
  IMAP_CHECK(grad_out.size() == out_dim());
  std::vector<double> g = grad_out;  // dL/d(pre-activation of current layer)
  std::vector<double> gin;           // dL/d(input of current layer)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    // Accumulate parameter grads: dL/dW += g ⊗ input, dL/db += g.
    const auto& in = tape.post[li];
    kernel::outer_acc(grads_.data() + l.w_off, l.out, l.in, g.data(),
                      in.data(), 1.0);
    double* gb = grads_.data() + l.b_off;
    for (std::size_t r = 0; r < l.out; ++r) gb[r] += g[r];
    // Propagate to input: dL/din = Wᵀ g, then through tanh if not first layer.
    gin.assign(l.in, 0.0);
    kernel::matvec_t_acc(params_.data() + l.w_off, l.out, l.in, g.data(),
                         gin.data());
    if (li > 0) {
      const auto& post = tape.post[li];  // tanh(pre[li-1])
      for (std::size_t c = 0; c < l.in; ++c)
        gin[c] *= (1.0 - post[c] * post[c]);
    }
    std::swap(g, gin);
  }
  IMAP_NCHECK_FINITE_VEC(g, "Mlp::backward input-gradient");
  return g;  // dL/dx
}

std::vector<double> Mlp::input_gradient(
    const Tape& tape, const std::vector<double>& grad_out) const {
  std::vector<double> out;
  std::vector<double> scratch;
  input_gradient_into(tape, grad_out, out, scratch);
  return out;
}

void Mlp::input_gradient_into(const Tape& tape,
                              const std::vector<double>& grad_out,
                              std::vector<double>& out,
                              std::vector<double>& scratch) const {
  IMAP_CHECK(grad_out.size() == out_dim());
  out.assign(grad_out.begin(), grad_out.end());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    scratch.assign(l.in, 0.0);
    kernel::matvec_t_acc(params_.data() + l.w_off, l.out, l.in, out.data(),
                         scratch.data());
    if (li > 0) {
      const auto& post = tape.post[li];
      for (std::size_t c = 0; c < l.in; ++c)
        scratch[c] *= (1.0 - post[c] * post[c]);
    }
    std::swap(out, scratch);
  }
}

void Mlp::ensure_transpose_cache(Workspace& ws) const {
  if (ws.wt_owner == this && ws.wt_version == weight_version_ &&
      ws.wt.size() == layers_.size())
    return;
  ws.wt.resize(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    auto& t = ws.wt[li];
    if (t.size() < l.in * l.out) t.resize(l.in * l.out);
    const double* w = params_.data() + l.w_off;
    for (std::size_t r = 0; r < l.out; ++r)
      for (std::size_t c = 0; c < l.in; ++c) t[c * l.out + r] = w[r * l.in + c];
  }
  ws.wt_owner = this;
  ws.wt_version = weight_version_;
}

const Batch& Mlp::forward_batch(const Batch& x, Workspace& ws) const {
  IMAP_CHECK_MSG(x.dim() == in_dim(),
                 "batch dim " << x.dim() << " != " << in_dim());
  const std::size_t b = x.rows();
  // SIMD backends that vectorise across output lanes read a column-major
  // weight copy; keep it cached in the workspace keyed by the weight
  // version so frozen networks never re-transpose (satellite of ISSUE 6 —
  // this was a per-call O(out·in) cost inside the old AVX2 kernel).
  const bool use_wt = kernel::active_backend().wants_transposed;
  if (use_wt) ensure_transpose_cache(ws);
  ws.pre.resize(layers_.size());
  ws.post.resize(layers_.size() + 1);
  ws.post[0].assign(x);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto& l = layers_[li];
    ws.pre[li].resize(b, l.out);
    kernel::batch_affine(params_.data() + l.w_off,
                         use_wt ? ws.wt[li].data() : nullptr,
                         params_.data() + l.b_off, l.out, l.in,
                         ws.post[li].data(), b, ws.pre[li].data());
    auto& post = ws.post[li + 1];
    post.resize(b, l.out);
    const double* src = ws.pre[li].data();
    double* dst = post.data();
    const std::size_t nel = b * l.out;
    if (li + 1 < layers_.size()) {
      for (std::size_t i = 0; i < nel; ++i) dst[i] = std::tanh(src[i]);
    } else {
      std::copy(src, src + nel, dst);
    }
  }
  return ws.post.back();
}

const Batch& Mlp::backward_batch(Workspace& ws, const Batch& grad_out) {
  IMAP_CHECK_MSG(ws.post.size() == layers_.size() + 1,
                 "backward_batch without a prior forward_batch on this "
                 "workspace");
  IMAP_CHECK(grad_out.dim() == out_dim());
  IMAP_CHECK(grad_out.rows() == ws.post.back().rows());
  const std::size_t b = grad_out.rows();
  ws.g.assign(grad_out);
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    kernel::batch_outer_acc(ws.g.data(), ws.post[li].data(), b, l.out, l.in,
                            grads_.data() + l.w_off, grads_.data() + l.b_off);
    ws.gin.resize(b, l.in);
    kernel::batch_matvec_t(params_.data() + l.w_off, l.out, l.in, ws.g.data(),
                           b, ws.gin.data());
    if (li > 0) {
      const double* post = ws.post[li].data();
      double* gi = ws.gin.data();
      const std::size_t nel = b * l.in;
      for (std::size_t i = 0; i < nel; ++i)
        gi[i] *= (1.0 - post[i] * post[i]);
    }
    std::swap(ws.g, ws.gin);
  }
  return ws.g;  // dL/dX, one row per sample
}

const Batch& Mlp::input_gradient_batch(Workspace& ws,
                                       const Batch& grad_out) const {
  IMAP_CHECK_MSG(ws.post.size() == layers_.size() + 1,
                 "input_gradient_batch without a prior forward_batch on this "
                 "workspace");
  IMAP_CHECK(grad_out.dim() == out_dim());
  IMAP_CHECK(grad_out.rows() == ws.post.back().rows());
  const std::size_t b = grad_out.rows();
  ws.g.assign(grad_out);
  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& l = layers_[li];
    ws.gin.resize(b, l.in);
    kernel::batch_matvec_t(params_.data() + l.w_off, l.out, l.in, ws.g.data(),
                           b, ws.gin.data());
    if (li > 0) {
      const double* post = ws.post[li].data();
      double* gi = ws.gin.data();
      const std::size_t nel = b * l.in;
      for (std::size_t i = 0; i < nel; ++i)
        gi[i] *= (1.0 - post[i] * post[i]);
    }
    std::swap(ws.g, ws.gin);
  }
  return ws.g;
}

void Mlp::zero_grad() { std::fill(grads_.begin(), grads_.end(), 0.0); }

void Mlp::save_state(BinaryWriter& w) const {
  w.write_u64(sizes_.size());
  for (auto s : sizes_) w.write_u64(s);
  w.write_vec(params_);
}

void Mlp::load_state(BinaryReader& r) {
  const auto n = r.read_u64();
  IMAP_CHECK_MSG(n == sizes_.size(), "Mlp checkpoint has wrong depth");
  for (auto s : sizes_)
    IMAP_CHECK_MSG(r.read_u64() == s, "Mlp checkpoint has wrong layer sizes");
  auto p = r.read_vec();
  IMAP_CHECK_MSG(p.size() == params_.size(),
                 "Mlp checkpoint has wrong parameter count");
  params_ = std::move(p);
  ++weight_version_;  // cached transposes / quantizations are now stale
}

}  // namespace imap::nn
