#include "nn/checkpoint.h"

#include "common/check.h"

namespace imap::nn {

namespace {
// Extract {hidden...} from a full size vector {in, hidden..., out}.
std::vector<std::size_t> hidden_of(const std::vector<std::size_t>& sizes) {
  IMAP_CHECK(sizes.size() >= 2);
  return {sizes.begin() + 1, sizes.end() - 1};
}

void write_sizes(BinaryWriter& w, const std::vector<std::size_t>& sizes) {
  w.write_u64(sizes.size());
  for (auto s : sizes) w.write_u64(s);
}

std::vector<std::size_t> read_sizes(BinaryReader& r) {
  const auto n = r.read_u64();
  std::vector<std::size_t> sizes(n);
  for (auto& s : sizes) s = r.read_u64();
  return sizes;
}
}  // namespace

void write_policy(BinaryWriter& w, const GaussianPolicy& p) {
  write_sizes(w, p.net().sizes());
  w.write_vec(p.flat_params());
}

GaussianPolicy read_policy(BinaryReader& r) {
  const auto sizes = read_sizes(r);
  const auto params = r.read_vec();
  Rng dummy(0);
  GaussianPolicy p(sizes.front(), sizes.back(), hidden_of(sizes), dummy);
  IMAP_CHECK_MSG(params.size() == p.n_params(),
                 "policy checkpoint has wrong parameter count");
  p.set_flat_params(params);
  return p;
}

void write_value_net(BinaryWriter& w, const ValueNet& v) {
  write_sizes(w, v.net().sizes());
  w.write_vec(v.params());
}

ValueNet read_value_net(BinaryReader& r) {
  const auto sizes = read_sizes(r);
  const auto params = r.read_vec();
  Rng dummy(0);
  ValueNet v(sizes.front(), hidden_of(sizes), dummy);
  IMAP_CHECK_MSG(params.size() == v.n_params(),
                 "value-net checkpoint has wrong parameter count");
  v.params() = params;
  return v;
}

bool save_policy(const std::string& path, const GaussianPolicy& p) {
  BinaryWriter w;
  write_policy(w, p);
  return w.save(path);
}

std::optional<GaussianPolicy> load_policy(const std::string& path) {
  BinaryReader r;
  if (!BinaryReader::load(path, r)) return std::nullopt;
  return read_policy(r);
}

}  // namespace imap::nn
