#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "nn/kernel_backend.h"  // kQuantTile / quant_packed_index layout

/// Internal declarations of the per-backend kernel implementations. Each
/// backend lives in its own translation unit (nn/kernel_<backend>.cpp)
/// compiled with exactly the ISA flags it needs plus -ffp-contract=off, so
/// no mul+add can fuse into FMA and change rounding. Only the registry
/// (nn/kernel_backend.cpp) and the dispatchers (nn/matrix.cpp) include this
/// header; everything else goes through kernel_backend.h.
namespace imap::nn::kernel::detail {

// --- shared elementwise serving math ---------------------------------------
// Inlined into every backend's quant_act (vector bodies replicate the exact
// op DAG with intrinsics; scalar tails call these directly). Each operation
// is a single IEEE rounding, so any evaluation — scalar, SSE epilogue, AVX
// lane — of the same input is bitwise identical.

/// Branchless rational tanh for the int8 serving path: the Padé(7,6)
/// approximant x·(135135 + 17325x² + 378x⁴ + x⁶) / (135135 + 62370x² +
/// 3150x⁴ + 28x⁶) with the input clamped to [-5, 5]. Max absolute error
/// ≈ 1.1e-4 over the real line — two orders of magnitude inside
/// kQuantActionTolerance and on par with the int8 quantization noise, at a
/// tenth of the libm cost.
inline float quant_fast_tanh(float x) {
  x = x < -5.0f ? -5.0f : x;
  x = x > 5.0f ? 5.0f : x;
  const float x2 = x * x;
  const float p = x * (135135.0f + x2 * (17325.0f + x2 * (378.0f + x2)));
  const float q = 135135.0f + x2 * (62370.0f + x2 * (3150.0f + 28.0f * x2));
  return p / q;
}

/// Round-to-nearest-even int8 code of `v` (already scaled into ±127 plus
/// rounding slack), clamped. Matches _mm*_cvtps_epi32 under the default
/// MXCSR/FPCR rounding mode.
inline std::int16_t quant_code(float v) {
  long code = std::lrintf(v);
  code = code < -127 ? -127 : code;
  code = code > 127 ? 127 : code;
  return static_cast<std::int16_t>(code);
}

// --- scalar reference (always compiled) ------------------------------------
void scalar_batch_affine(const double* w, const double* wt, const double* b,
                         std::size_t out, std::size_t in, const double* x,
                         std::size_t batch, double* y);
void scalar_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                           const double* g, std::size_t batch, double* gin);
void scalar_batch_outer_acc(const double* g, const double* x,
                            std::size_t batch, std::size_t out, std::size_t in,
                            double* dw, double* db);
void scalar_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                         const float* bias, std::size_t out,
                         std::size_t in_pairs, const std::int16_t* xq,
                         const float* xscale, std::size_t batch, float* y);
void scalar_quant_act(float* h, std::size_t batch, std::size_t width,
                      std::size_t out_pairs, std::int16_t* qx, float* qscale);

// --- avx2 (x86-64; TU compiled with -mavx2 -mno-fma) -----------------------
#ifdef IMAP_KERNEL_AVX2
void avx2_batch_affine(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y);
void avx2_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin);
void avx2_batch_outer_acc(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db);
void avx2_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                       const float* bias, std::size_t out,
                       std::size_t in_pairs, const std::int16_t* xq,
                       const float* xscale, std::size_t batch, float* y);
void avx2_quant_act(float* h, std::size_t batch, std::size_t width,
                    std::size_t out_pairs, std::int16_t* qx, float* qscale);
#endif

// --- avx512 (x86-64; TU compiled with -mavx512f -mavx512bw) ----------------
#ifdef IMAP_KERNEL_AVX512
void avx512_batch_affine(const double* w, const double* wt, const double* b,
                         std::size_t out, std::size_t in, const double* x,
                         std::size_t batch, double* y);
void avx512_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                           const double* g, std::size_t batch, double* gin);
void avx512_batch_outer_acc(const double* g, const double* x,
                            std::size_t batch, std::size_t out, std::size_t in,
                            double* dw, double* db);
void avx512_quant_affine(const std::int16_t* wq_packed, const float* row_scale,
                         const float* bias, std::size_t out,
                         std::size_t in_pairs, const std::int16_t* xq,
                         const float* xscale, std::size_t batch, float* y);
void avx512_quant_act(float* h, std::size_t batch, std::size_t width,
                      std::size_t out_pairs, std::int16_t* qx, float* qscale);
#endif

// --- neon (aarch64; asimd is baseline, no extra ISA flags needed) ----------
#ifdef IMAP_KERNEL_NEON
void neon_batch_affine(const double* w, const double* wt, const double* b,
                       std::size_t out, std::size_t in, const double* x,
                       std::size_t batch, double* y);
void neon_batch_matvec_t(const double* w, std::size_t out, std::size_t in,
                         const double* g, std::size_t batch, double* gin);
void neon_batch_outer_acc(const double* g, const double* x, std::size_t batch,
                          std::size_t out, std::size_t in, double* dw,
                          double* db);
#endif

}  // namespace imap::nn::kernel::detail
