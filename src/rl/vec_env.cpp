#include "rl/vec_env.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace imap::rl {

void VecEnv::configure(const Env& proto, const std::vector<Rng>& streams) {
  slots_.clear();
  slots_.reserve(streams.size());
  for (const Rng& stream : streams) {
    EnvSlot s;
    s.env = proto.clone();
    s.rng = stream;
    slots_.push_back(std::move(s));
  }
  refresh_split_cache();
}

void VecEnv::set_env(const Env& proto) {
  for (auto& s : slots_) {
    IMAP_CHECK(proto.obs_dim() == s.env->obs_dim());
    IMAP_CHECK(proto.act_dim() == s.env->act_dim());
    s.env = proto.clone();
    s.need_reset = true;
    s.replay.invalidate();
  }
  refresh_split_cache();
}

void VecEnv::refresh_split_cache() {
  victim_batchable_ = !slots_.empty();
  const nn::GaussianPolicy* net = nullptr;
  for (auto& s : slots_) {
    s.split = dynamic_cast<SplitStepEnv*>(s.env.get());
    if (s.split == nullptr || !s.split->frozen_policy().batched()) {
      victim_batchable_ = false;
      continue;
    }
    if (net == nullptr) net = s.split->frozen_policy().net();
    if (s.split->frozen_policy().net() != net) victim_batchable_ = false;
  }
}

void VecEnv::begin_round(EnvSlot& s, int budget) {
  s.buf.clear();
  s.buf.reserve(static_cast<std::size_t>(std::max(budget, 0)));
  s.buf.reserve_step(s.env->obs_dim(), s.env->act_dim());
  s.ep_successes = 0;
  if (budget > 0 && s.need_reset) {
    s.replay.on_reset(s.rng);
    s.cur_obs = s.env->reset(s.rng);
    s.ep_return = s.ep_surrogate = 0.0;
    s.ep_len = 0;
    s.need_reset = false;
  }
}

void VecEnv::record_step(EnvSlot& s, const double* act, std::size_t na,
                         double lp, double ve, StepResult&& sr,
                         const nn::ValueNet& value_e,
                         const nn::ValueNet& value_i) {
  s.replay.on_step(act, na);
  s.buf.add(s.cur_obs.data(), s.cur_obs.size(), act, na, lp, sr.reward, ve);
  s.ep_return += sr.reward;
  s.ep_surrogate += sr.surrogate;
  ++s.ep_len;

  if (sr.done || sr.truncated) {
    s.buf.done.back() = sr.done ? 1 : 0;
    s.buf.boundary.back() = 1;
    // Bootstrap with the value of the post-step state (ignored if done).
    s.buf.last_val_e.push_back(sr.done ? 0.0 : value_e.value(sr.obs));
    s.buf.last_val_i.push_back(sr.done ? 0.0 : value_i.value(sr.obs));
    s.buf.episode_returns.push_back(s.ep_return);
    s.buf.episode_surrogate.push_back(s.ep_surrogate);
    s.buf.episode_lengths.push_back(s.ep_len);
    if (sr.task_completed) ++s.ep_successes;
    // In-place auto-reset: the slot's next tick starts the next episode,
    // drawn from the slot's own stream (the lockstep never stalls).
    s.replay.on_reset(s.rng);
    s.cur_obs = s.env->reset(s.rng);
    s.ep_return = s.ep_surrogate = 0.0;
    s.ep_len = 0;
  } else {
    // Swap instead of copy: sr is dead after this call.
    std::swap(s.cur_obs, sr.obs);
  }
}

void VecEnv::close_round(EnvSlot& s, const nn::ValueNet& value_e,
                         const nn::ValueNet& value_i) {
  if (s.buf.size() == 0) return;
  // Close the rollout: the last segment bootstraps from the current state.
  if (!s.buf.boundary.back()) {
    s.buf.boundary.back() = 1;
    s.buf.last_val_e.push_back(value_e.value(s.cur_obs));
    s.buf.last_val_i.push_back(value_i.value(s.cur_obs));
  }
}

void VecEnv::collect(const nn::GaussianPolicy& policy,
                     const nn::ValueNet& value_e, const nn::ValueNet& value_i,
                     const std::vector<int>& budgets, std::size_t offset) {
  if (slots_.empty()) return;
  int max_budget = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    // Non-increasing budgets keep the live slots a prefix of the range, so
    // row r of every per-tick batch is always slot r.
    IMAP_CHECK(i == 0 || budgets[offset + i] <= budgets[offset + i - 1]);
    begin_round(slots_[i], budgets[offset + i]);
    max_budget = std::max(max_budget, budgets[offset + i]);
  }

  const std::size_t odim = slots_[0].env->obs_dim();
  const std::size_t adim = slots_[0].env->act_dim();
  const std::vector<double>& log_std = policy.log_std();

  for (int t = 0; t < max_budget; ++t) {
    std::size_t live = 0;
    while (live < slots_.size() && budgets[offset + live] > t) ++live;

    obs_b_.resize(live, odim);
    for (std::size_t r = 0; r < live; ++r)
      obs_b_.set_row(r, slots_[r].cur_obs);
    if (obs_norm_ != nullptr) obs_norm_->update_batch(obs_b_);

    // One batched mean and one batched value answer the whole tick; each
    // row is bit-identical to the per-sample forwards of collect_serial.
    const nn::Batch& mu = policy.mean_batch(obs_b_, ws_policy_);
    value_e.value_batch(obs_b_, ws_value_, vals_);

    act_b_.resize(live, adim);
    logp_.resize(live);
    for (std::size_t r = 0; r < live; ++r) {
      EnvSlot& s = slots_[r];
      const double* m = mu.row(r);
      double* a = act_b_.row(r);
      // Same draw order and arithmetic as GaussianPolicy::act on the slot's
      // own stream, and the same pointer core as log_prob — reusing the
      // batched mean instead of two more per-sample forwards.
      for (std::size_t d = 0; d < adim; ++d)
        a[d] = m[d] + std::exp(log_std[d]) * s.rng.normal();
      logp_[r] = nn::diag_gaussian::log_prob(a, m, log_std.data(), adim);
    }

    if (victim_batchable_) {
      // Phase 1 on every slot, ONE batched victim forward, then phase 2 —
      // the begin/finish split is bit-equal to each slot's own step().
      query_b_.resize(live, slots_[0].split->query_dim());
      for (std::size_t r = 0; r < live; ++r) {
        EnvSlot& s = slots_[r];
        action_.assign(act_b_.row(r), act_b_.row(r) + adim);
        query_b_.set_row(
            r, s.split->begin_step(s.env->action_space().clamp(action_)));
      }
      const nn::Batch& vout =
          slots_[0].split->frozen_policy().query_batch(query_b_, ws_victim_);
      for (std::size_t r = 0; r < live; ++r) {
        EnvSlot& s = slots_[r];
        victim_out_.assign(vout.row(r), vout.row(r) + vout.dim());
        record_step(s, act_b_.row(r), adim, logp_[r], vals_[r],
                    s.split->finish_step(victim_out_), value_e, value_i);
      }
    } else {
      for (std::size_t r = 0; r < live; ++r) {
        EnvSlot& s = slots_[r];
        action_.assign(act_b_.row(r), act_b_.row(r) + adim);
        record_step(s, act_b_.row(r), adim, logp_[r], vals_[r],
                    s.env->step(s.env->action_space().clamp(action_)),
                    value_e, value_i);
      }
    }
  }

  for (auto& s : slots_) close_round(s, value_e, value_i);
}

void VecEnv::collect_serial(const nn::GaussianPolicy& policy,
                            const nn::ValueNet& value_e,
                            const nn::ValueNet& value_i,
                            const std::vector<int>& budgets,
                            std::size_t offset) {
  // Per-step buffers hoisted out of both loops (act_into reuses their
  // capacity; the step loop is allocation-free in steady state).
  std::vector<double> action;
  std::vector<double> act_scratch;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    EnvSlot& s = slots_[i];
    const int budget = budgets[offset + i];
    begin_round(s, budget);
    for (int t = 0; t < budget; ++t) {
      if (obs_norm_ != nullptr) obs_norm_->update(s.cur_obs);
      policy.act_into(s.cur_obs, s.rng, action, act_scratch);
      const double lp = policy.log_prob(s.cur_obs, action);
      const double ve = value_e.value(s.cur_obs);
      record_step(s, action.data(), action.size(), lp, ve,
                  s.env->step(s.env->action_space().clamp(action)), value_e,
                  value_i);
    }
    close_round(s, value_e, value_i);
  }
}

namespace {
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}
}  // namespace

void VecEnv::save_state(BinaryWriter& w) const {
  w.write_u64(slots_.size());
  for (const auto& s : slots_) {
    s.rng.save_state(w);
    w.write_bool(s.need_reset);
    w.write_vec(s.cur_obs);
    w.write_f64(s.ep_return);
    w.write_f64(s.ep_surrogate);
    w.write_i64(s.ep_len);
    s.replay.save_state(w);
  }
}

void VecEnv::load_state(BinaryReader& r) {
  IMAP_CHECK_MSG(r.read_u64() == slots_.size(),
                 "checkpoint has wrong rollout-slot count");
  std::vector<double> replayed;  // reused across slots
  for (auto& s : slots_) {
    s.rng.load_state(r);
    s.need_reset = r.read_bool();
    s.cur_obs = r.read_vec();
    s.ep_return = r.read_f64();
    s.ep_surrogate = r.read_f64();
    s.ep_len = static_cast<int>(r.read_i64());
    s.replay.load_state(r);
    if (!s.need_reset && s.replay.valid()) {
      // Reconstruct the slot env mid-episode by replaying its history into
      // the fresh clone; the replayed observation must match the saved one
      // exactly or the prototype does not match the checkpoint.
      replayed = s.replay.rebuild(*s.env);
      IMAP_CHECK_MSG(same_bits(replayed, s.cur_obs),
                     "episode replay diverged from checkpoint — environment "
                     "prototype does not match");
    }
  }
}

}  // namespace imap::rl
