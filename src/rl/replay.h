#pragma once

#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "rl/env.h"

namespace imap::rl {

/// Action-history record of the episode in flight, enabling mid-episode
/// snapshot/resume without serializing environment internals.
///
/// Environments are deterministic given the resetting Rng (whose state is
/// captured here *before* reset draws from it) and the action sequence —
/// step() takes no Rng. Replaying reset + clamp + step into a fresh clone of
/// the same prototype therefore reproduces the environment's internal state
/// exactly; the final observation doubles as an integrity check against the
/// snapshotted one.
class EpisodeReplay {
 public:
  /// Capture `rng`'s current state and clear the action log. Collectors call
  /// this immediately BEFORE env.reset(rng) on the same stream.
  void on_reset(const Rng& rng);

  /// Append the raw (pre-clamp) action about to be stepped.
  void on_step(const double* act, std::size_t n);

  void invalidate() { valid_ = false; }
  bool valid() const { return valid_; }

  /// Rebuild the in-flight episode inside `env`: reset from a copy of the
  /// captured stream, then replay the recorded actions through the same
  /// clamp the collectors apply. Returns the final observation.
  std::vector<double> rebuild(Env& env) const;

  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  Rng reset_rng_{0};
  std::vector<double> actions_;  ///< flat rows of act_dim entries
  std::size_t act_dim_ = 0;
  bool valid_ = false;
};

}  // namespace imap::rl
