#pragma once

#include <vector>

#include "common/serialize.h"
#include "nn/batch.h"

namespace imap::rl {

/// Per-dimension streaming mean/variance (Welford) with normalisation —
/// used to keep intrinsic-bonus magnitudes comparable across tasks and by
/// tests as a reference implementation.
class VecNormalizer {
 public:
  explicit VecNormalizer(std::size_t dim, double clip = 10.0);

  void update(const std::vector<double>& x);

  /// Fold a whole batch of observations in one call — the per-tick path of
  /// the vectorized rollout engine. A single-row batch is bitwise identical
  /// to update(); larger batches run Welford over the rows and then a
  /// Chan-style parallel merge into the running moments, which matches E
  /// per-step updates to floating-point reassociation accuracy (the tier-1
  /// test pins the tolerance).
  void update_batch(const nn::Batch& x);

  std::vector<double> normalize(const std::vector<double>& x) const;

  std::size_t dim() const { return mean_.size(); }
  std::size_t count() const { return n_; }
  const std::vector<double>& mean() const { return mean_; }
  std::vector<double> variance() const;

  /// Serialize the running moments — resuming without them changes every
  /// normalised observation, so they are part of any training snapshot.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  std::size_t n_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
  std::vector<double> batch_mean_;  ///< update_batch scratch (reused)
  std::vector<double> batch_m2_;
  double clip_;
};

/// Scalar running scale: divides a stream by its running standard deviation.
/// Used to scale intrinsic rewards so τ has a task-independent meaning.
class ScalarScaler {
 public:
  void update(double x);
  double scale(double x) const;  ///< x / (running std + eps)
  double stddev() const;

  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace imap::rl
