#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/gaussian.h"
#include "nn/quant.h"
#include "rl/evaluate.h"

namespace imap::rl {

/// A frozen deployed policy, as handed to the threat-model wrappers and the
/// evaluation harness. Two shapes, one call surface:
///
///  * an opaque ActionFn — the fully black-box case; answerable only one
///    observation at a time;
///  * a snapshot of a GaussianPolicy network, which additionally supports
///    batched mean queries through a caller-owned workspace (query_batch),
///    letting the vectorized rollout engine answer all lockstep slots with
///    one kernel call.
///
/// Both implicit constructors are intentional: every pre-existing ActionFn
/// call site keeps compiling, and network-backed handles upgrade those sites
/// to batchable victims with no signature churn. Per-sample query() is
/// bit-identical between the two shapes when the ActionFn wraps the same
/// network's mean_action.
///
/// Serving mode is fixed at construction: when victim quantization is on
/// (IMAP_VICTIM_QUANT=1 or a ScopedVictimQuant scope, see nn/quant.h), a
/// network-backed handle builds an int8 QuantizedMlp once and answers BOTH
/// query() and query_batch() through it — keeping the per-sample and
/// batched paths bit-identical to each other in either mode, which the
/// VecEnv lockstep-vs-serial invariants rely on. Training-side code never
/// constructs handles under the toggle, so attacker/defender updates stay
/// fp64 bit-exact.
class PolicyHandle {
 public:
  PolicyHandle() = default;
  // NOLINTNEXTLINE(google-explicit-constructor)
  PolicyHandle(ActionFn fn) : fn_(std::move(fn)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  PolicyHandle(std::shared_ptr<const nn::GaussianPolicy> net);

  /// Deep-copied frozen snapshot of `policy`: training can continue on the
  /// original while the handle keeps serving the captured parameters.
  static PolicyHandle snapshot(const nn::GaussianPolicy& policy);

  /// Explicit serving-mode handle: `quantized` selects the int8 path
  /// directly instead of consulting the process-wide IMAP_VICTIM_QUANT
  /// toggle. This is what the serving daemon uses — its model cache builds
  /// handles from request-handler threads, where flipping the global toggle
  /// (documented single-threaded) would race with any training job that
  /// constructs fp64 handles concurrently.
  static PolicyHandle serving(std::shared_ptr<const nn::GaussianPolicy> net,
                              bool quantized);

  explicit operator bool() const { return net_ != nullptr || fn_ != nullptr; }

  /// True when the handle exposes a network and so supports query_batch.
  bool batched() const { return net_ != nullptr; }

  /// The backing network, or nullptr for opaque-function handles. Used to
  /// verify that every slot of a VecEnv queries the SAME frozen victim
  /// before merging their queries into one batch.
  const nn::GaussianPolicy* net() const { return net_.get(); }

  /// True when this handle serves through the int8 quantized path.
  bool quantized() const { return qnet_ != nullptr; }

  /// Network I/O widths (0 for opaque-function handles, which carry no
  /// shape). The serving layer validates request rows against these before
  /// a malformed observation can reach a kernel.
  std::size_t obs_dim() const { return net_ ? net_->obs_dim() : 0; }
  std::size_t act_dim() const { return net_ ? net_->act_dim() : 0; }

  /// Per-sample query (the deterministic mean for network-backed handles;
  /// the quantized mean when the handle was built under the quant toggle).
  std::vector<double> query(const std::vector<double>& obs) const;
  std::vector<double> operator()(const std::vector<double>& obs) const {
    return query(obs);
  }

  /// Batched mean query through a caller-owned workspace. Each output row is
  /// bit-identical to query() on that row — in fp64 and quantized modes
  /// alike. Requires batched(); the returned reference lives in `ws` until
  /// the next batched call on it.
  const nn::Batch& query_batch(const nn::Batch& obs,
                               nn::Mlp::Workspace& ws) const;

 private:
  ActionFn fn_;
  std::shared_ptr<const nn::GaussianPolicy> net_;
  std::shared_ptr<const nn::QuantizedMlp> qnet_;
};

}  // namespace imap::rl
