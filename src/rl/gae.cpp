#include "rl/gae.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace imap::rl {

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<unsigned char>& done,
                      const std::vector<unsigned char>& boundary,
                      const std::vector<double>& bootstrap_values,
                      double gamma, double lambda) {
  const std::size_t n = rewards.size();
  IMAP_CHECK(values.size() == n && done.size() == n && boundary.size() == n);
  IMAP_NCHECK_BOUNDS(gamma, 0.0, 1.0, "gae.gamma");
  IMAP_NCHECK_BOUNDS(lambda, 0.0, 1.0, "gae.lambda");
  IMAP_NCHECK_FINITE_VEC(rewards, "gae.rewards");
  IMAP_NCHECK_FINITE_VEC(values, "gae.values");

  GaeResult out;
  out.advantages.assign(n, 0.0);
  out.returns.assign(n, 0.0);

  // Count boundaries so we can walk bootstrap_values from the back.
  std::size_t n_bounds = 0;
  for (auto b : boundary) n_bounds += b;
  IMAP_CHECK_MSG(bootstrap_values.size() == n_bounds,
                 "one bootstrap value per boundary required");

  double gae = 0.0;
  std::size_t bi = n_bounds;  // index one past the current boundary value
  for (std::size_t t = n; t-- > 0;) {
    double next_value;
    double next_nonterminal;
    if (boundary[t]) {
      --bi;
      next_value = done[t] ? 0.0 : bootstrap_values[bi];
      next_nonterminal = done[t] ? 0.0 : 1.0;
      gae = 0.0;  // segments do not leak into each other
    } else {
      next_value = values[t + 1];
      next_nonterminal = 1.0;
    }
    const double delta =
        rewards[t] + gamma * next_value * next_nonterminal - values[t];
    gae = delta + gamma * lambda * next_nonterminal * gae;
    out.advantages[t] = gae;
    out.returns[t] = gae + values[t];
  }
  IMAP_NCHECK_FINITE_VEC(out.advantages, "gae.advantages");
  IMAP_NCHECK_FINITE_VEC(out.returns, "gae.returns");
  return out;
}

void normalize_advantages(std::vector<double>& adv) {
  if (adv.size() < 2) return;
  const double m = mean(adv);
  const double s = stddev(adv);
  if (s < 1e-8) return;
  for (double& a : adv) a = (a - m) / s;
}

}  // namespace imap::rl
