#pragma once

#include <vector>

namespace imap {
class BinaryWriter;
class BinaryReader;
}  // namespace imap

namespace imap::rl {

/// On-policy rollout storage for PPO (one sampling stage of Algorithm 1).
///
/// Two reward channels are kept: extrinsic (the adversary's objective,
/// −r̂_E for attacks; the task reward for victim training) and intrinsic
/// (the adversarial intrinsic bonus r_I, Eq. 13; zero for plain PPO).
///
/// Storage note: `obs`/`act` retain their inner vectors (and their heap
/// blocks) across clear() and are overwritten in place by add(), so a
/// trainer that reuses one buffer allocates nothing in the hot rollout loop
/// after the first iteration. Only the first size() rows are valid — always
/// bound loops by size(), not by obs.size().
struct RolloutBuffer {
  std::vector<std::vector<double>> obs;
  std::vector<std::vector<double>> act;
  std::vector<double> logp;
  std::vector<double> rew_e;
  std::vector<double> rew_i;
  std::vector<double> val_e;
  std::vector<double> val_i;
  /// done[t] marks s_{t+1} terminal (true termination, not truncation);
  /// boundary[t] marks the end of a segment for GAE (done OR truncated).
  std::vector<unsigned char> done;
  std::vector<unsigned char> boundary;
  /// Bootstrap values for the state after each boundary (0 if done).
  std::vector<double> last_val_e;
  std::vector<double> last_val_i;
  /// Index into last_val_* for each boundary occurrence, parallel arrays.
  std::vector<std::size_t> boundary_at;

  /// Completed-episode statistics gathered during collection.
  std::vector<double> episode_returns;     ///< sum of rew_e per episode
  std::vector<double> episode_surrogate;   ///< sum of surrogate per episode
  std::vector<int> episode_lengths;

  std::size_t size() const { return n_; }

  void clear();
  void reserve(std::size_t n);

  /// Capacity hint for the per-step obs/act rows: rows created by add() are
  /// pre-reserved to these dims, cutting per-step allocations in the hot
  /// rollout loop.
  void reserve_step(std::size_t dim_obs, std::size_t dim_act);

  void add(const std::vector<double>& o, const std::vector<double>& a,
           double lp, double re, double ve);

  /// Pointer-core of add() — the vectorized collector stores actions as rows
  /// of a Batch, so this avoids materialising a per-step std::vector.
  void add(const double* o, std::size_t no, const double* a, std::size_t na,
           double lp, double re, double ve);

  /// Append another buffer's steps, bootstrap values and episode stats in
  /// order. Used to merge per-worker rollouts in worker-index order; the
  /// source must be segment-closed (its last step marked as a boundary).
  void append(const RolloutBuffer& other);

  /// Field-by-field wire codec. This is the payload format for rollout
  /// shards crossing the process fabric (inside an Archive section), chosen
  /// so that merging decoded shards with append() is bit-identical to
  /// merging the in-process per-slot buffers directly.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  std::size_t n_ = 0;         ///< valid steps; obs/act may hold spare rows
  std::size_t dim_obs_ = 0;   ///< reserve_step hints (0 = none)
  std::size_t dim_act_ = 0;
};

}  // namespace imap::rl
