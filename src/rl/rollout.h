#pragma once

#include <vector>

namespace imap::rl {

/// On-policy rollout storage for PPO (one sampling stage of Algorithm 1).
///
/// Two reward channels are kept: extrinsic (the adversary's objective,
/// −r̂_E for attacks; the task reward for victim training) and intrinsic
/// (the adversarial intrinsic bonus r_I, Eq. 13; zero for plain PPO).
struct RolloutBuffer {
  std::vector<std::vector<double>> obs;
  std::vector<std::vector<double>> act;
  std::vector<double> logp;
  std::vector<double> rew_e;
  std::vector<double> rew_i;
  std::vector<double> val_e;
  std::vector<double> val_i;
  /// done[t] marks s_{t+1} terminal (true termination, not truncation);
  /// boundary[t] marks the end of a segment for GAE (done OR truncated).
  std::vector<unsigned char> done;
  std::vector<unsigned char> boundary;
  /// Bootstrap values for the state after each boundary (0 if done).
  std::vector<double> last_val_e;
  std::vector<double> last_val_i;
  /// Index into last_val_* for each boundary occurrence, parallel arrays.
  std::vector<std::size_t> boundary_at;

  /// Completed-episode statistics gathered during collection.
  std::vector<double> episode_returns;     ///< sum of rew_e per episode
  std::vector<double> episode_surrogate;   ///< sum of surrogate per episode
  std::vector<int> episode_lengths;

  std::size_t size() const { return obs.size(); }

  void clear();
  void reserve(std::size_t n);

  void add(std::vector<double> o, std::vector<double> a, double lp, double re,
           double ve);
};

}  // namespace imap::rl
