#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "nn/gaussian.h"
#include "rl/env.h"

namespace imap::rl {

/// Deterministic state→action mapping — how a *deployed* policy is queried
/// (the paper's threat model holds the victim network fixed; we evaluate its
/// mean action).
using ActionFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

struct EvalStats {
  ReturnSummary returns;        ///< true episode rewards J_E^ν (mean ± std)
  double success_rate = 0.0;    ///< fraction of episodes completing the task
  double mean_length = 0.0;
  std::vector<double> episode_returns;
};

/// Roll `episodes` episodes of `proto` under `act` and summarise.
EvalStats evaluate(const Env& proto, const ActionFn& act, int episodes,
                   Rng& rng);

/// Lock-step batched evaluation of a deterministic (mean-action) policy:
/// all still-live episodes are answered by one batched forward per step.
/// Episode e uses the child stream rng.split(e), so episode results are
/// exactly equal — bitwise — to running `evaluate(proto, mean-action fn, 1,
/// r)` with `Rng r = rng.split(e)` once per episode; only the wall-clock
/// changes. (Non-const policy: batched forwards write its workspace.)
/// When `proto` is a SplitStepEnv over a network-backed frozen policy (the
/// threat-model wrappers), the per-step victim queries of all live episodes
/// are answered by one batched victim forward as well — still bitwise equal,
/// by the SplitStepEnv contract.
EvalStats evaluate_batched(const Env& proto, nn::GaussianPolicy& policy,
                           int episodes, Rng& rng);

/// Dump one trajectory (state rows) for qualitative inspection (Fig. 1/2
/// style renderings become CSVs here).
std::vector<std::vector<double>> rollout_trajectory(const Env& proto,
                                                    const ActionFn& act,
                                                    Rng& rng);

}  // namespace imap::rl
