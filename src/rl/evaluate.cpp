#include "rl/evaluate.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "nn/batch.h"
#include "rl/split_step.h"

namespace imap::rl {

EvalStats evaluate(const Env& proto, const ActionFn& act, int episodes,
                   Rng& rng) {
  IMAP_CHECK(episodes > 0);
  auto env = proto.clone();
  EvalStats out;
  long long total_len = 0;
  int successes = 0;

  for (int ep = 0; ep < episodes; ++ep) {
    auto obs = env->reset(rng);
    double ret = 0.0;
    int len = 0;
    while (true) {
      StepResult sr = env->step(env->action_space().clamp(act(obs)));
      ret += sr.reward;
      ++len;
      if (sr.done || sr.truncated) {
        if (sr.task_completed) ++successes;
        break;
      }
      obs = std::move(sr.obs);
    }
    out.episode_returns.push_back(ret);
    total_len += len;
  }

  out.returns = summarize(out.episode_returns);
  out.success_rate = static_cast<double>(successes) / episodes;
  out.mean_length = static_cast<double>(total_len) / episodes;
  return out;
}

EvalStats evaluate_batched(const Env& proto, nn::GaussianPolicy& policy,
                           int episodes, Rng& rng) {
  IMAP_CHECK(episodes > 0);
  IMAP_CHECK(policy.obs_dim() == proto.obs_dim());
  IMAP_CHECK(policy.act_dim() == proto.act_dim());

  struct Episode {
    std::unique_ptr<Env> env;
    Rng rng{0};
    std::vector<double> obs;
    double ret = 0.0;
    int len = 0;
    bool finished = false;
    bool success = false;
  };
  std::vector<Episode> eps(static_cast<std::size_t>(episodes));
  for (std::size_t e = 0; e < eps.size(); ++e) {
    eps[e].env = proto.clone();
    eps[e].rng = rng.split(static_cast<std::uint64_t>(e));
    eps[e].obs = eps[e].env->reset(eps[e].rng);
  }

  // Victim batching: when every episode env splits its step around the SAME
  // network-backed frozen policy (the threat-model wrappers — clones share
  // the snapshot), a step's inner victim queries also collapse into one
  // batched forward. SplitStepEnv guarantees the substitution is bitwise.
  std::vector<SplitStepEnv*> split(eps.size(), nullptr);
  bool victim_batchable = true;
  for (std::size_t e = 0; e < eps.size(); ++e) {
    split[e] = dynamic_cast<SplitStepEnv*>(eps[e].env.get());
    if (split[e] == nullptr || !split[e]->frozen_policy().batched() ||
        split[e]->frozen_policy().net() !=
            split[0]->frozen_policy().net())
      victim_batchable = false;
    if (!victim_batchable) break;
  }

  nn::Batch obs_b, query_b;
  nn::Mlp::Workspace ws_victim;
  std::vector<std::size_t> live;
  std::vector<double> action(proto.act_dim());
  std::vector<double> victim_out;
  live.reserve(eps.size());
  for (std::size_t e = 0; e < eps.size(); ++e) live.push_back(e);

  while (!live.empty()) {
    // One batched mean forward answers every live episode this step; each
    // row is bit-identical to policy.mean_action(obs) on that episode.
    obs_b.resize(live.size(), proto.obs_dim());
    for (std::size_t r = 0; r < live.size(); ++r)
      obs_b.set_row(r, eps[live[r]].obs);
    const nn::Batch& mu = policy.mean_batch(obs_b);

    std::size_t kept = 0;
    auto absorb = [&](Episode& ep, std::size_t r, StepResult&& sr) {
      ep.ret += sr.reward;
      ++ep.len;
      if (sr.done || sr.truncated) {
        ep.finished = true;
        ep.success = sr.task_completed;
      } else {
        std::swap(ep.obs, sr.obs);
        live[kept++] = live[r];
      }
    };
    if (victim_batchable) {
      // Phase 1 for every live episode, ONE victim forward, then phase 2.
      query_b.resize(live.size(), split[live[0]]->query_dim());
      for (std::size_t r = 0; r < live.size(); ++r) {
        Episode& ep = eps[live[r]];
        action.assign(mu.row(r), mu.row(r) + proto.act_dim());
        query_b.set_row(r, split[live[r]]->begin_step(
                               ep.env->action_space().clamp(action)));
      }
      const nn::Batch& vout =
          split[live[0]]->frozen_policy().query_batch(query_b, ws_victim);
      for (std::size_t r = 0; r < live.size(); ++r) {
        victim_out.assign(vout.row(r), vout.row(r) + vout.dim());
        absorb(eps[live[r]], r, split[live[r]]->finish_step(victim_out));
      }
    } else {
      for (std::size_t r = 0; r < live.size(); ++r) {
        Episode& ep = eps[live[r]];
        action.assign(mu.row(r), mu.row(r) + proto.act_dim());
        absorb(eps[live[r]], r,
               ep.env->step(ep.env->action_space().clamp(action)));
      }
    }
    live.resize(kept);
  }

  EvalStats out;
  long long total_len = 0;
  int successes = 0;
  for (const auto& ep : eps) {
    out.episode_returns.push_back(ep.ret);
    total_len += ep.len;
    if (ep.success) ++successes;
  }
  out.returns = summarize(out.episode_returns);
  out.success_rate = static_cast<double>(successes) / episodes;
  out.mean_length = static_cast<double>(total_len) / episodes;
  return out;
}

std::vector<std::vector<double>> rollout_trajectory(const Env& proto,
                                                    const ActionFn& act,
                                                    Rng& rng) {
  auto env = proto.clone();
  std::vector<std::vector<double>> traj;
  auto obs = env->reset(rng);
  traj.push_back(obs);
  while (true) {
    StepResult sr = env->step(env->action_space().clamp(act(obs)));
    traj.push_back(sr.obs);
    if (sr.done || sr.truncated) break;
    obs = std::move(sr.obs);
  }
  return traj;
}

}  // namespace imap::rl
