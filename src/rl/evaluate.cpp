#include "rl/evaluate.h"

#include "common/check.h"

namespace imap::rl {

EvalStats evaluate(const Env& proto, const ActionFn& act, int episodes,
                   Rng& rng) {
  IMAP_CHECK(episodes > 0);
  auto env = proto.clone();
  EvalStats out;
  long long total_len = 0;
  int successes = 0;

  for (int ep = 0; ep < episodes; ++ep) {
    auto obs = env->reset(rng);
    double ret = 0.0;
    int len = 0;
    while (true) {
      StepResult sr = env->step(env->action_space().clamp(act(obs)));
      ret += sr.reward;
      ++len;
      if (sr.done || sr.truncated) {
        if (sr.task_completed) ++successes;
        break;
      }
      obs = std::move(sr.obs);
    }
    out.episode_returns.push_back(ret);
    total_len += len;
  }

  out.returns = summarize(out.episode_returns);
  out.success_rate = static_cast<double>(successes) / episodes;
  out.mean_length = static_cast<double>(total_len) / episodes;
  return out;
}

std::vector<std::vector<double>> rollout_trajectory(const Env& proto,
                                                    const ActionFn& act,
                                                    Rng& rng) {
  auto env = proto.clone();
  std::vector<std::vector<double>> traj;
  auto obs = env->reset(rng);
  traj.push_back(obs);
  while (true) {
    StepResult sr = env->step(env->action_space().clamp(act(obs)));
    traj.push_back(sr.obs);
    if (sr.done || sr.truncated) break;
    obs = std::move(sr.obs);
  }
  return traj;
}

}  // namespace imap::rl
