#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "nn/adam.h"
#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/gae.h"
#include "rl/replay.h"
#include "rl/rollout.h"
#include "rl/vec_env.h"

namespace imap::proc {
class Channel;
}  // namespace imap::proc

namespace imap::rl {

struct PpoOptions {
  std::vector<std::size_t> hidden{32, 32};
  int steps_per_iter = 2048;
  int epochs = 6;
  int minibatch = 128;
  double gamma = 0.99;
  double gae_lambda = 0.95;
  double clip = 0.2;        ///< ε in Eq. (1)
  double lr = 1e-3;
  double vf_coef = 0.5;
  double ent_coef = 0.0;
  double init_log_std = -0.5;
  double max_grad_norm = 0.5;
  double target_kl = 0.05;  ///< early-stop the update epochs past this KL

  /// K parallel rollout workers, each with its own env clone, Rng stream
  /// (split from the trainer seed) and rollout buffer, merged in
  /// worker-index order. K fixes the numeric trace; the thread count does
  /// not. K = 1 is the legacy serial path, bit-identical to older builds.
  int num_workers = 1;
  /// E lockstep environment slots per worker (the vectorized rollout
  /// engine). Global slot g = w·E + i draws from the trainer-seed child
  /// stream g and the merged rollout is concatenated in global slot order,
  /// so the trace depends only on the TOTAL slot count K·E — any
  /// (workers × slots) factorization of the same total is bit-identical.
  /// K·E = 1 is the legacy serial path, bit-identical to older builds.
  int envs_per_worker = 1;
  /// Collect through the lockstep vectorized engine (one batched policy /
  /// value / victim forward per tick across a worker's E slots) instead of
  /// the per-sample reference loop. Bit-identical either way — purely a
  /// throughput knob, kept as a benchmark baseline like batched_update.
  bool vectorized_rollout = true;
  /// Gradient-accumulation shards per minibatch: each shard back-propagates
  /// a fixed contiguous slice of the batch into its own gradient buffer and
  /// the shard buffers are reduced in a fixed tree order, so the result is
  /// identical for any thread count. 1 = legacy serial accumulation
  /// (bit-identical to older builds); 0 = pick from the minibatch size.
  int grad_shards = 1;

  /// Fabric processes for sharded rollout collection and gradient-shard
  /// reduction. 0 = read IMAP_PROCS (unset = 1, the in-process path). The
  /// numeric trace is bit-identical for ANY process count: slot RNG streams
  /// are keyed by the global slot index and gradient bits by grad_shards
  /// alone, so processes only change *who* computes each contiguous shard,
  /// never what is computed. Collection shards across min(procs, workers)
  /// persistent forked collectors; updates shard across min(procs,
  /// grad_shards) per-update gradient workers when grad_shards > 1.
  int num_procs = 0;

  /// Run the minibatch update through the batched nn kernels (stacked
  /// observation Batch + GEMM-style forward/backward on a reusable
  /// Workspace) instead of one sample at a time. The batched path is
  /// bit-identical to the per-sample path — same summation order, same
  /// per-sample accumulation order — so this is purely a throughput knob;
  /// false keeps the legacy per-sample loop as a benchmark baseline.
  bool batched_update = true;
};

/// Per-iteration diagnostics.
struct IterStats {
  int iter = 0;
  long long total_steps = 0;
  double mean_return = 0.0;     ///< completed-episode extrinsic return
  double mean_surrogate = 0.0;  ///< completed-episode surrogate (r̂) sum
  double success_rate = 0.0;    ///< fraction of completed episodes succeeding
  int episodes = 0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double approx_kl = 0.0;
  double entropy = 0.0;
  double mean_intrinsic = 0.0;  ///< mean per-step intrinsic bonus
  double tau = 0.0;             ///< temperature used this iteration
};

/// Proximal Policy Optimization (Eq. 1) with GAE and an optional second,
/// intrinsically-motivated reward channel (Eq. 14's Â_E + τ·Â_I).
///
/// The same trainer drives:
///  * victim training (extrinsic = task reward, no intrinsic hook),
///  * SA-RL / AP-MARL attack baselines (extrinsic = −r̂ via a threat-model
///    wrapper env, no intrinsic hook),
///  * IMAP (intrinsic hook installed by core::ImapTrainer, which also sets τ
///    per iteration — Algorithm 1).
class PpoTrainer {
 public:
  /// Called after each sampling stage with the fresh rollout. Fills
  /// buf.rew_i and returns the temperature τ_k for this iteration.
  using IntrinsicHook = std::function<double(RolloutBuffer&)>;

  /// Robust-training hook (defense methods): called once per minibatch with
  /// the batch indices; must accumulate extra gradients into the policy.
  using RegularizerHook = std::function<void(
      nn::GaussianPolicy&, const RolloutBuffer&,
      const std::vector<std::size_t>&)>;

  PpoTrainer(const Env& proto, PpoOptions opts, Rng rng);
  /// Joins any live fabric collector processes (out-of-line: Fabric is an
  /// incomplete type here).
  ~PpoTrainer();
  PpoTrainer(const PpoTrainer&) = delete;
  PpoTrainer& operator=(const PpoTrainer&) = delete;

  /// One sampling + optimizing stage.
  IterStats iterate();

  /// Run iterations until at least `total_steps` environment steps have been
  /// consumed; returns per-iteration stats.
  std::vector<IterStats> train(long long total_steps);

  nn::GaussianPolicy& policy() { return *policy_; }
  const nn::GaussianPolicy& policy() const { return *policy_; }
  nn::ValueNet& value_e() { return *value_e_; }
  nn::ValueNet& value_i() { return *value_i_; }
  Env& env() { return *env_; }
  Rng& rng() { return rng_; }
  const PpoOptions& options() const { return opts_; }
  long long steps_done() const { return steps_done_; }
  int iterations_done() const { return iter_; }

  void set_intrinsic_hook(IntrinsicHook hook) { intrinsic_ = std::move(hook); }
  void set_regularizer_hook(RegularizerHook hook) { reg_ = std::move(hook); }

  /// Swap the training environment (must have identical spaces). Used by
  /// alternating adversarial training (ATLA), where the victim keeps its
  /// parameters while the wrapping adversary changes between rounds.
  void set_env(const Env& proto);

  /// Sampling and optimisation stages of iterate(), exposed separately so
  /// benchmarks can time the update in isolation on a fixed rollout.
  void collect(RolloutBuffer& buf);
  void update(RolloutBuffer& buf, double tau, IterStats& stats);

  /// Full training-state snapshot: nets, Adam moments, Rng streams, loop
  /// counters and mid-episode state (in-flight episodes are reconstructed on
  /// restore by replaying their action history into fresh env clones).
  /// Restoring into a trainer built with the same prototype, options and
  /// seed resumes training bit-identically to never having stopped.
  void save_state(ArchiveWriter& a) const;
  void load_state(const ArchiveReader& a);

  /// Crash-safe file snapshot (atomic write); returns false on I/O failure.
  bool snapshot(const std::string& path) const;
  /// Restore from `path`: false if the file does not exist; corrupt or
  /// mismatched checkpoints throw CheckError.
  bool restore(const std::string& path);

 private:
  /// Partial sums of one contiguous batch slice's losses.
  struct BatchPartial {
    double pol_loss = 0.0;
    double val_loss = 0.0;
    double kl = 0.0;
    std::size_t samples = 0;
  };

  /// Reusable gathered-minibatch buffers for the batched update path. Each
  /// accumulation context (the serial path and every gradient shard) owns
  /// one so buffers grow to the minibatch high-water mark once and are then
  /// reused — zero heap allocations per minibatch in steady state.
  struct UpdateScratch {
    nn::Batch obs;               ///< gathered observation rows
    nn::Batch act;               ///< gathered action rows
    std::vector<double> coeff;   ///< per-sample policy-gradient coefficients
    std::vector<double> vals;    ///< critic outputs
    std::vector<double> vcoeff;  ///< per-sample critic dL/dV coefficients
  };

  /// One gradient-accumulation shard's scratch networks and outputs.
  struct ShardScratch {
    nn::GaussianPolicy policy;
    nn::ValueNet value_e;
    nn::ValueNet value_i;
    std::vector<double> pol_grads;
    BatchPartial partial;
    UpdateScratch scratch;
  };

  void collect_serial(RolloutBuffer& buf);
  void ensure_workers();
  int shard_count() const;
  void ensure_shards(int n_shards);

  // --- multi-process rollout fabric (ppo.cpp; see DESIGN.md, Fabric) ---
  struct Fabric;
  /// Resolved fabric width: opts_.num_procs, or IMAP_PROCS when it is 0.
  int proc_count() const;
  void ensure_fabric(int procs);
  /// Pull the authoritative slot state (RNG streams, in-flight episodes)
  /// from the last collector replies back into workers_.
  void sync_fabric_state();
  /// Sync, then join every collector. Safe to call with no fabric live.
  void shutdown_fabric();
  void collect_sharded(RolloutBuffer& buf, int procs);
  /// Child-side collector loop over workers_[w_lo, w_hi).
  void collector_body(proc::Channel& ch, std::size_t w_lo, std::size_t w_hi);
  /// Child-side gradient-shard loop over shards [s_lo, s_hi) of n_shards.
  void grad_shard_body(proc::Channel& ch, const RolloutBuffer& buf,
                       const std::vector<double>& adv, const GaeResult& gae_e,
                       const GaeResult* gae_i, int s_lo, int s_hi,
                       int n_shards) const;

  /// Accumulate policy/value gradients and loss partials for
  /// order[b..e) into the given networks. Shared by the serial path
  /// (master networks) and the sharded path (scratch clones); the math and
  /// per-sample order are identical in both.
  BatchPartial process_range(nn::GaussianPolicy& pol, nn::ValueNet& ve,
                             nn::ValueNet* vi, const RolloutBuffer& buf,
                             const std::vector<std::size_t>& order,
                             std::size_t b, std::size_t e,
                             const std::vector<double>& adv,
                             const GaeResult& gae_e, const GaeResult* gae_i,
                             double inv_bs, UpdateScratch& scratch) const;

  PpoOptions opts_;
  std::unique_ptr<Env> env_;
  Rng rng_;
  std::unique_ptr<nn::GaussianPolicy> policy_;
  std::unique_ptr<nn::ValueNet> value_e_;
  std::unique_ptr<nn::ValueNet> value_i_;
  nn::Adam policy_opt_;
  nn::Adam value_e_opt_;
  nn::Adam value_i_opt_;
  IntrinsicHook intrinsic_;
  RegularizerHook reg_;

  // Persistent episode state across iterate() calls (serial K=1 path).
  std::vector<double> cur_obs_;
  double ep_return_ = 0.0;
  double ep_surrogate_ = 0.0;
  int ep_len_ = 0;
  bool need_reset_ = true;
  EpisodeReplay replay_;  ///< in-flight episode history (serial path)

  std::vector<VecEnv> workers_;          ///< K·E>1 vectorized rollout workers
  std::vector<int> slot_budgets_;        ///< per-global-slot step budgets
  std::vector<ShardScratch> shards_;     ///< gradient shards (lazy)
  RolloutBuffer rollout_;                ///< reused across iterations
  std::unique_ptr<Fabric> fabric_;       ///< live collector fleet (lazy)
  RolloutBuffer shard_rx_;               ///< decode staging for shard frames

  // Hot-path scratch reused across update() calls (capacity only grows).
  UpdateScratch scratch_;                ///< serial-path minibatch buffers
  std::vector<double> master_params_;    ///< flat params snapshot for shards
  std::vector<double> flat_p_;           ///< optimiser param staging
  std::vector<double> flat_g_;           ///< optimiser grad staging
  std::vector<std::size_t> reg_batch_;   ///< minibatch indices for reg_ hook

  long long steps_done_ = 0;
  int iter_ = 0;
  int ep_successes_ = 0;  // per-iteration counter
};

}  // namespace imap::rl
