#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rl/space.h"

namespace imap::rl {

/// Result of one environment step.
///
/// `reward` is the task's true (training-time) reward r_E — visible to victim
/// trainers and to the evaluation harness, but NOT to attackers (the paper's
/// black-box threat model, Sec. 4.2). `surrogate` is the success indicator
/// r̂_E = 1{the victim is succeeding} that the attacker IS allowed to observe
/// (Sec. 4.1); attacks are trained on −surrogate only.
struct StepResult {
  std::vector<double> obs;
  double reward = 0.0;
  bool done = false;
  bool truncated = false;   ///< episode ended by the step limit only
  double surrogate = 0.0;   ///< r̂_E ∈ {0, 1}
  bool fell = false;        ///< entered an unhealthy/terminal failure state
  /// Valid on the final step of an episode (done || truncated): did the
  /// victim complete its task? Drives success rates / ASR in the harness.
  bool task_completed = false;
};

/// Multiplicative dynamics scales for procedural env families (the scenario
/// layer's mass/gain domain randomization). Neutral scales (1, 1) must be a
/// no-op: applying them restores the environment's pristine dynamics.
struct DynamicsScales {
  double mass = 1.0;  ///< inertia: accelerations divide by this
  double gain = 1.0;  ///< actuator strength: control authority multiplies
};

/// Single-agent environment interface (the Gym contract, minus Python).
/// Implementations are small value types; `clone` supports parallel
/// evaluation and wrapper composition.
class Env {
 public:
  virtual ~Env() = default;

  virtual std::size_t obs_dim() const = 0;
  virtual std::size_t act_dim() const = 0;
  virtual int max_steps() const = 0;
  virtual std::string name() const = 0;

  /// Action bounds; trainers clamp sampled actions into this box.
  virtual const BoxSpace& action_space() const = 0;

  virtual std::vector<double> reset(Rng& rng) = 0;
  virtual StepResult step(const std::vector<double>& action) = 0;

  /// Rescale the dynamics from the env's PRISTINE parameters (repeated
  /// application never compounds). Returns false when the env family has no
  /// randomizable dynamics — the scenario layer turns that into a
  /// construction-time error for dr[mass/gain] specs. Takes effect from the
  /// next reset/step; callers apply it between episodes.
  virtual bool apply_dynamics(const DynamicsScales& scales) {
    (void)scales;
    return false;
  }

  virtual std::unique_ptr<Env> clone() const = 0;
};

/// CRTP helper implementing clone() by copy construction.
template <class Derived>
class EnvBase : public Env {
 public:
  std::unique_ptr<Env> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

}  // namespace imap::rl
