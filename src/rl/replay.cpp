#include "rl/replay.h"

#include <algorithm>

#include "common/check.h"

namespace imap::rl {

void EpisodeReplay::on_reset(const Rng& rng) {
  reset_rng_ = rng;
  actions_.clear();
  valid_ = true;
}

void EpisodeReplay::on_step(const double* act, std::size_t n) {
  IMAP_CHECK(valid_);
  if (act_dim_ == 0) act_dim_ = n;
  IMAP_CHECK(n == act_dim_);
  actions_.insert(actions_.end(), act, act + n);
}

std::vector<double> EpisodeReplay::rebuild(Env& env) const {
  IMAP_CHECK_MSG(valid_, "episode replay is not valid");
  Rng rng = reset_rng_;
  std::vector<double> obs = env.reset(rng);
  if (actions_.empty()) return obs;
  IMAP_CHECK(act_dim_ == env.act_dim());
  std::vector<double> a(act_dim_);
  for (std::size_t off = 0; off < actions_.size(); off += act_dim_) {
    std::copy(actions_.begin() + static_cast<std::ptrdiff_t>(off),
              actions_.begin() + static_cast<std::ptrdiff_t>(off + act_dim_),
              a.begin());
    StepResult sr = env.step(env.action_space().clamp(a));
    IMAP_CHECK_MSG(!sr.done && !sr.truncated,
                   "episode replay crossed an episode boundary — checkpoint "
                   "does not match the environment prototype");
    obs = std::move(sr.obs);
  }
  return obs;
}

void EpisodeReplay::save_state(BinaryWriter& w) const {
  w.write_bool(valid_);
  reset_rng_.save_state(w);
  w.write_u64(act_dim_);
  w.write_vec(actions_);
}

void EpisodeReplay::load_state(BinaryReader& r) {
  valid_ = r.read_bool();
  reset_rng_.load_state(r);
  act_dim_ = r.read_u64();
  actions_ = r.read_vec();
  IMAP_CHECK_MSG(act_dim_ == 0 || actions_.size() % act_dim_ == 0,
                 "corrupt episode replay in checkpoint");
}

}  // namespace imap::rl
