#pragma once

#include <cstddef>
#include <vector>

#include "rl/env.h"
#include "rl/policy_handle.h"

namespace imap::rl {

/// Mixin interface for wrapper environments whose step() is exactly one
/// frozen-policy query sandwiched between pre- and post-transition code —
/// the shape of both threat-model wrappers (StatePerturbationEnv queries the
/// victim on a perturbed observation, OpponentEnv on the victim-side state).
///
/// Splitting the step lets the vectorized rollout engine run phase 1 for all
/// lockstep slots, answer every query with ONE batched victim forward, and
/// then run phase 2 per slot. The contract is that for any action a,
///
///   step(a)  ==  finish_step(frozen_policy().query(begin_step(a)))
///
/// bitwise, so the engine may substitute the batched victim path freely.
/// Implementations are detected by dynamic_cast from Env*.
class SplitStepEnv {
 public:
  virtual ~SplitStepEnv() = default;

  /// Phase 1: absorb the agent's action and return the observation the
  /// frozen policy must answer. The reference stays valid (and the wrapper
  /// stays mid-step) until the matching finish_step call.
  virtual const std::vector<double>& begin_step(
      const std::vector<double>& action) = 0;

  /// Phase 2: complete the transition from the RAW frozen-policy output for
  /// the query returned by begin_step. The wrapper applies its own clamping
  /// here, exactly as its step() does.
  virtual StepResult finish_step(const std::vector<double>& policy_out) = 0;

  /// Width of the begin_step query (= the frozen policy's input dim).
  virtual std::size_t query_dim() const = 0;

  /// The frozen policy consulted each step; batchable iff it exposes a
  /// network (PolicyHandle::batched()).
  virtual const PolicyHandle& frozen_policy() const = 0;
};

}  // namespace imap::rl
