#pragma once

#include <vector>

namespace imap::rl {

/// Generalized Advantage Estimation (Schulman et al. 2015), segment-aware.
///
/// `rewards`, `values` are per-step; `boundary[t]` marks the last step of a
/// segment (episode end or rollout truncation); `done[t]` distinguishes true
/// termination (bootstrap 0) from truncation (bootstrap with
/// `bootstrap_values` at the corresponding boundary index).
struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> returns;  ///< advantage + value, regression targets
};

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<unsigned char>& done,
                      const std::vector<unsigned char>& boundary,
                      const std::vector<double>& bootstrap_values,
                      double gamma, double lambda);

/// Standardise advantages in place to zero mean / unit std (no-op for
/// near-constant input).
void normalize_advantages(std::vector<double>& adv);

}  // namespace imap::rl
