#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/stats.h"

namespace imap::rl {

PpoTrainer::PpoTrainer(const Env& proto, PpoOptions opts, Rng rng)
    : opts_(opts),
      env_(proto.clone()),
      rng_(rng),
      policy_(std::make_unique<nn::GaussianPolicy>(
          proto.obs_dim(), proto.act_dim(), opts.hidden, rng_,
          opts.init_log_std)),
      value_e_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      value_i_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      policy_opt_(policy_->n_params(),
                  {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_e_opt_(value_e_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_i_opt_(value_i_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}) {
  IMAP_CHECK(opts_.steps_per_iter > 0);
  IMAP_CHECK(opts_.minibatch > 0);
}

void PpoTrainer::set_env(const Env& proto) {
  IMAP_CHECK(proto.obs_dim() == env_->obs_dim());
  IMAP_CHECK(proto.act_dim() == env_->act_dim());
  env_ = proto.clone();
  need_reset_ = true;
}

void PpoTrainer::collect(RolloutBuffer& buf) {
  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  ep_successes_ = 0;

  if (need_reset_) {
    cur_obs_ = env_->reset(rng_);
    ep_return_ = ep_surrogate_ = 0.0;
    ep_len_ = 0;
    need_reset_ = false;
  }

  for (int t = 0; t < opts_.steps_per_iter; ++t) {
    auto action = policy_->act(cur_obs_, rng_);
    const double lp = policy_->log_prob(cur_obs_, action);
    const double ve = value_e_->value(cur_obs_);
    StepResult sr = env_->step(env_->action_space().clamp(action));

    buf.add(cur_obs_, std::move(action), lp, sr.reward, ve);
    ep_return_ += sr.reward;
    ep_surrogate_ += sr.surrogate;
    ++ep_len_;

    const bool boundary = sr.done || sr.truncated;
    if (boundary) {
      buf.done.back() = sr.done ? 1 : 0;
      buf.boundary.back() = 1;
      // Bootstrap with the value of the post-step state (ignored if done).
      buf.last_val_e.push_back(sr.done ? 0.0 : value_e_->value(sr.obs));
      buf.last_val_i.push_back(sr.done ? 0.0 : value_i_->value(sr.obs));
      buf.episode_returns.push_back(ep_return_);
      buf.episode_surrogate.push_back(ep_surrogate_);
      buf.episode_lengths.push_back(ep_len_);
      if (sr.task_completed) ++ep_successes_;
      cur_obs_ = env_->reset(rng_);
      ep_return_ = ep_surrogate_ = 0.0;
      ep_len_ = 0;
    } else {
      cur_obs_ = sr.obs;
    }
  }

  // Close the rollout: the last segment bootstraps from the current state.
  if (!buf.boundary.back()) {
    buf.boundary.back() = 1;
    buf.last_val_e.push_back(value_e_->value(cur_obs_));
    buf.last_val_i.push_back(value_i_->value(cur_obs_));
  }
  steps_done_ += opts_.steps_per_iter;
}

void PpoTrainer::update(RolloutBuffer& buf, double tau, IterStats& stats) {
  const std::size_t n = buf.size();

  // Intrinsic values are only needed when the bonus channel is active.
  const bool use_intrinsic = intrinsic_ != nullptr;
  if (use_intrinsic) {
    for (std::size_t i = 0; i < n; ++i)
      buf.val_i[i] = value_i_->value(buf.obs[i]);
  }

  auto gae_e = compute_gae(buf.rew_e, buf.val_e, buf.done, buf.boundary,
                           buf.last_val_e, opts_.gamma, opts_.gae_lambda);
  normalize_advantages(gae_e.advantages);

  GaeResult gae_i;
  if (use_intrinsic) {
    gae_i = compute_gae(buf.rew_i, buf.val_i, buf.done, buf.boundary,
                        buf.last_val_i, opts_.gamma, opts_.gae_lambda);
    normalize_advantages(gae_i.advantages);
  }

  // Combined advantage Â_E + τ·Â_I (Eq. 14).
  std::vector<double> adv(n);
  for (std::size_t i = 0; i < n; ++i) {
    adv[i] = gae_e.advantages[i];
    if (use_intrinsic) adv[i] += tau * gae_i.advantages[i];
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double pol_loss_acc = 0.0, val_loss_acc = 0.0, kl_acc = 0.0;
  std::size_t loss_count = 0;

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Fisher–Yates with our Rng for reproducibility.
    for (std::size_t i = n; i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double epoch_kl = 0.0;
    std::size_t epoch_samples = 0;

    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(opts_.minibatch)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(opts_.minibatch));
      const std::vector<std::size_t> batch(order.begin() + start,
                                           order.begin() + end);
      const double inv_bs = 1.0 / static_cast<double>(batch.size());

      policy_->zero_grad();
      value_e_->zero_grad();
      if (use_intrinsic) value_i_->zero_grad();

      for (const auto idx : batch) {
        nn::Mlp::Tape tape;
        policy_->mean_tape(buf.obs[idx], tape);
        const double lp_new = nn::diag_gaussian::log_prob(
            buf.act[idx], tape.post.back(), policy_->log_std());
        const double ratio = std::exp(lp_new - buf.logp[idx]);
        const double a = adv[idx];

        // Clipped surrogate (Eq. 1): gradient flows only through the
        // unclipped branch when it is the active minimum.
        const bool active =
            (a >= 0.0) ? (ratio < 1.0 + opts_.clip) : (ratio > 1.0 - opts_.clip);
        if (active) {
          const double coeff = -a * ratio * inv_bs;  // dL/dlogπ
          policy_->backward_logp(tape, buf.act[idx], coeff);
        }
        pol_loss_acc += -std::min(ratio * a,
                                  std::clamp(ratio, 1.0 - opts_.clip,
                                             1.0 + opts_.clip) *
                                      a);
        epoch_kl += buf.logp[idx] - lp_new;
        ++epoch_samples;

        // Extrinsic critic regression.
        nn::Mlp::Tape vtape;
        const double v = value_e_->value_tape(buf.obs[idx], vtape);
        const double verr = v - gae_e.returns[idx];
        value_e_->backward(vtape, opts_.vf_coef * verr * inv_bs);
        val_loss_acc += 0.5 * verr * verr;

        if (use_intrinsic) {
          nn::Mlp::Tape vitape;
          const double vi = value_i_->value_tape(buf.obs[idx], vitape);
          const double vierr = vi - gae_i.returns[idx];
          value_i_->backward(vitape, opts_.vf_coef * vierr * inv_bs);
        }
        ++loss_count;
      }

      if (opts_.ent_coef > 0.0) policy_->backward_entropy(-opts_.ent_coef);
      if (reg_) reg_(*policy_, buf, batch);

      auto p = policy_->flat_params();
      policy_opt_.step(p, policy_->flat_grads());
      policy_->set_flat_params(p);
      policy_->clamp_log_std();

      value_e_opt_.step(value_e_->params(), value_e_->grads());
      if (use_intrinsic) value_i_opt_.step(value_i_->params(), value_i_->grads());
    }

    const double mean_kl =
        epoch_samples ? epoch_kl / static_cast<double>(epoch_samples) : 0.0;
    kl_acc = mean_kl;
    if (opts_.target_kl > 0.0 && mean_kl > opts_.target_kl) break;
  }

  stats.policy_loss =
      loss_count ? pol_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.value_loss =
      loss_count ? val_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.approx_kl = kl_acc;
  stats.entropy = policy_->entropy();
}

IterStats PpoTrainer::iterate() {
  RolloutBuffer buf;
  collect(buf);

  double tau = 0.0;
  if (intrinsic_) tau = intrinsic_(buf);

  IterStats stats;
  stats.iter = iter_++;
  stats.total_steps = steps_done_;
  stats.mean_return = mean(buf.episode_returns);
  stats.mean_surrogate = mean(buf.episode_surrogate);
  stats.episodes = static_cast<int>(buf.episode_returns.size());
  stats.success_rate =
      stats.episodes
          ? static_cast<double>(ep_successes_) / stats.episodes
          : 0.0;
  stats.mean_intrinsic = mean(buf.rew_i);
  stats.tau = tau;

  update(buf, tau, stats);
  return stats;
}

std::vector<IterStats> PpoTrainer::train(long long total_steps) {
  std::vector<IterStats> out;
  while (steps_done_ < total_steps) out.push_back(iterate());
  return out;
}

}  // namespace imap::rl
