#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/proc.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace imap::rl {

/// Persistent forked collector fleet. Once live, the children own the
/// authoritative VecEnv slot state (RNG stream positions, in-flight
/// episodes); the parent's workers_ are stale until sync_fabric_state()
/// decodes the blob images the collectors attach to every reply.
struct PpoTrainer::Fabric {
  struct Collector {
    proc::WorkerProcess proc;
    std::size_t w_lo = 0;  ///< contiguous worker range [w_lo, w_hi)
    std::size_t w_hi = 0;
  };
  std::vector<Collector> collectors;
  /// Per-worker raw VecEnv::save_state images from the last replies.
  std::vector<std::vector<std::uint8_t>> worker_state;
  bool states_fresh = false;
};

PpoTrainer::PpoTrainer(const Env& proto, PpoOptions opts, Rng rng)
    : opts_(opts),
      env_(proto.clone()),
      rng_(rng),
      policy_(std::make_unique<nn::GaussianPolicy>(
          proto.obs_dim(), proto.act_dim(), opts.hidden, rng_,
          opts.init_log_std)),
      value_e_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      value_i_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      policy_opt_(policy_->n_params(),
                  {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_e_opt_(value_e_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_i_opt_(value_i_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}) {
  IMAP_CHECK(opts_.steps_per_iter > 0);
  IMAP_CHECK(opts_.minibatch > 0);
  IMAP_CHECK(opts_.num_workers >= 1);
  IMAP_CHECK(opts_.envs_per_worker >= 1);
  IMAP_CHECK(opts_.grad_shards >= 0);
  IMAP_CHECK(opts_.num_procs >= 0);
}

PpoTrainer::~PpoTrainer() {
  // Join collectors without syncing: the trainer is going away, so decoding
  // the children's slot state back into workers_ would be wasted replay.
  if (fabric_) {
    fabric_->states_fresh = false;
    shutdown_fabric();
  }
}

int PpoTrainer::proc_count() const {
  return opts_.num_procs > 0 ? opts_.num_procs : proc::configured_procs();
}

void PpoTrainer::set_env(const Env& proto) {
  IMAP_CHECK(proto.obs_dim() == env_->obs_dim());
  IMAP_CHECK(proto.act_dim() == env_->act_dim());
  // Pull slot RNG stream positions back from any live collectors first —
  // ATLA swaps the env between rounds but the streams must keep advancing
  // as one unbroken sequence.
  shutdown_fabric();
  env_ = proto.clone();
  need_reset_ = true;
  replay_.invalidate();
  for (auto& w : workers_) w.set_env(proto);
}

void PpoTrainer::ensure_workers() {
  const auto k = static_cast<std::size_t>(opts_.num_workers);
  const auto e = static_cast<std::size_t>(opts_.envs_per_worker);
  if (workers_.size() == k && workers_[0].size() == e) return;
  workers_.clear();
  workers_.resize(k);
  std::vector<Rng> streams(e);
  for (std::size_t w = 0; w < k; ++w) {
    // Global slot g = w·E + i draws child stream g of the trainer seed —
    // the trace depends only on the global slot index (so any K × E
    // factorization of the same total merges bit-identically), never on
    // the thread count.
    for (std::size_t i = 0; i < e; ++i)
      streams[i] = rng_.split(0x6b1dc0deULL +
                              static_cast<std::uint64_t>(w * e + i));
    workers_[w].configure(*env_, streams);
  }
}

void PpoTrainer::collect(RolloutBuffer& buf) {
  const int total = opts_.num_workers * opts_.envs_per_worker;
  if (total <= 1) {
    collect_serial(buf);
    return;
  }
  ensure_workers();
  // Per-global-slot budgets: steps/N each, remainder to the FIRST slots —
  // non-increasing, so every worker's live slots form a prefix.
  slot_budgets_.assign(static_cast<std::size_t>(total),
                       opts_.steps_per_iter / total);
  for (int g = 0; g < opts_.steps_per_iter % total; ++g) ++slot_budgets_[g];

  // Multi-process path: contiguous worker ranges go to forked collectors
  // and the shards merge in process order == global-slot order. The merged
  // buffer is bit-identical to the in-process branch below for any
  // process × worker × slot factorization of the same total.
  const int procs = std::min(proc_count(), opts_.num_workers);
  if (procs > 1) {
    collect_sharded(buf, procs);
    return;
  }

  // Workers touch disjoint state (own slots: env, rng, buffer) and their
  // own batching scratch; the policy and value nets are read-only during
  // sampling (caller-owned workspaces, see VecEnv).
  const auto e = static_cast<std::size_t>(opts_.envs_per_worker);
  parallel_for(
      workers_.size(),
      [&](std::size_t w) {
        if (opts_.vectorized_rollout)
          workers_[w].collect(*policy_, *value_e_, *value_i_, slot_budgets_,
                              w * e);
        else
          workers_[w].collect_serial(*policy_, *value_e_, *value_i_,
                                     slot_budgets_, w * e);
      },
      /*grain=*/1);

  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  buf.reserve_step(env_->obs_dim(), env_->act_dim());
  ep_successes_ = 0;
  for (auto& w : workers_) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      buf.append(w.slot(i).buf);
      ep_successes_ += w.slot(i).ep_successes;
    }
  }
  steps_done_ += opts_.steps_per_iter;
}

void PpoTrainer::collect_serial(RolloutBuffer& buf) {
  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  buf.reserve_step(env_->obs_dim(), env_->act_dim());
  ep_successes_ = 0;

  if (need_reset_) {
    replay_.on_reset(rng_);
    cur_obs_ = env_->reset(rng_);
    ep_return_ = ep_surrogate_ = 0.0;
    ep_len_ = 0;
    need_reset_ = false;
  }

  // Per-step buffers hoisted out of the collection loop (act_into reuses
  // their capacity; the loop is allocation-free in steady state).
  std::vector<double> action;
  std::vector<double> act_scratch;
  for (int t = 0; t < opts_.steps_per_iter; ++t) {
    policy_->act_into(cur_obs_, rng_, action, act_scratch);
    const double lp = policy_->log_prob(cur_obs_, action);
    const double ve = value_e_->value(cur_obs_);
    replay_.on_step(action.data(), action.size());
    StepResult sr = env_->step(env_->action_space().clamp(action));

    buf.add(cur_obs_, action, lp, sr.reward, ve);
    ep_return_ += sr.reward;
    ep_surrogate_ += sr.surrogate;
    ++ep_len_;

    const bool boundary = sr.done || sr.truncated;
    if (boundary) {
      buf.done.back() = sr.done ? 1 : 0;
      buf.boundary.back() = 1;
      // Bootstrap with the value of the post-step state (ignored if done).
      buf.last_val_e.push_back(sr.done ? 0.0 : value_e_->value(sr.obs));
      buf.last_val_i.push_back(sr.done ? 0.0 : value_i_->value(sr.obs));
      buf.episode_returns.push_back(ep_return_);
      buf.episode_surrogate.push_back(ep_surrogate_);
      buf.episode_lengths.push_back(ep_len_);
      if (sr.task_completed) ++ep_successes_;
      replay_.on_reset(rng_);
      cur_obs_ = env_->reset(rng_);
      ep_return_ = ep_surrogate_ = 0.0;
      ep_len_ = 0;
    } else {
      // Swap instead of copy (see collect_worker).
      std::swap(cur_obs_, sr.obs);
    }
  }

  // Close the rollout: the last segment bootstraps from the current state.
  if (!buf.boundary.back()) {
    buf.boundary.back() = 1;
    buf.last_val_e.push_back(value_e_->value(cur_obs_));
    buf.last_val_i.push_back(value_i_->value(cur_obs_));
  }
  steps_done_ += opts_.steps_per_iter;
}

void PpoTrainer::ensure_fabric(int procs) {
  const std::size_t k = workers_.size();
  if (fabric_ &&
      fabric_->collectors.size() == static_cast<std::size_t>(procs) &&
      fabric_->worker_state.size() == k)
    return;
  shutdown_fabric();  // pulls live slot state into workers_ before respawn
  fabric_ = std::make_unique<Fabric>();
  fabric_->worker_state.resize(k);
  fabric_->collectors.resize(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    auto& c = fabric_->collectors[static_cast<std::size_t>(p)];
    c.w_lo = static_cast<std::size_t>(p) * k / static_cast<std::size_t>(procs);
    c.w_hi =
        static_cast<std::size_t>(p + 1) * k / static_cast<std::size_t>(procs);
    const std::size_t lo = c.w_lo;
    const std::size_t hi = c.w_hi;
    // The child forks with the parent's current workers_ state and owns
    // those slots from here on.
    c.proc = proc::WorkerProcess::spawn(
        [this, lo, hi](proc::Channel& ch) { collector_body(ch, lo, hi); });
  }
}

void PpoTrainer::sync_fabric_state() {
  if (!fabric_ || !fabric_->states_fresh) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    BinaryReader r(fabric_->worker_state[w]);
    workers_[w].load_state(r);
  }
  fabric_->states_fresh = false;
}

void PpoTrainer::shutdown_fabric() {
  if (!fabric_) return;
  sync_fabric_state();
  for (auto& c : fabric_->collectors) {
    const int rc = c.proc.join();
    IMAP_CHECK_MSG(rc == 0, "rollout collector exited with status " << rc);
  }
  fabric_.reset();
}

void PpoTrainer::collect_sharded(RolloutBuffer& buf, int procs) {
  ensure_fabric(procs);

  ArchiveWriter req;
  policy_->flat_params_into(master_params_);
  req.section("collect/pol").write_vec(master_params_);
  req.section("collect/ve")
      .write_vec(std::as_const(*value_e_).net().params());
  req.section("collect/vi")
      .write_vec(std::as_const(*value_i_).net().params());
  auto& bw = req.section("collect/budgets");
  bw.write_u64(slot_budgets_.size());
  for (const int b : slot_budgets_) bw.write_i64(b);
  for (auto& c : fabric_->collectors)
    IMAP_CHECK_MSG(c.proc.channel().send(req),
                   "rollout collector " << c.proc.pid()
                                        << " died before the round");

  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  buf.reserve_step(env_->obs_dim(), env_->act_dim());
  ep_successes_ = 0;
  ArchiveReader rep;
  for (auto& c : fabric_->collectors) {
    IMAP_CHECK_MSG(c.proc.channel().recv(rep),
                   "rollout collector " << c.proc.pid()
                                        << " exited before replying");
    auto br = rep.section("shard/buf");
    shard_rx_.load_state(br);
    buf.append(shard_rx_);
    auto er = rep.section("shard/eps");
    ep_successes_ += static_cast<int>(er.read_i64());
    for (std::size_t w = c.w_lo; w < c.w_hi; ++w)
      fabric_->worker_state[w] =
          rep.section("shard/w" + std::to_string(w)).bytes();
  }
  fabric_->states_fresh = true;
  steps_done_ += opts_.steps_per_iter;
}

void PpoTrainer::collector_body(proc::Channel& ch, std::size_t w_lo,
                                std::size_t w_hi) {
  // Runs in the forked child: this trainer object is the child's private
  // copy and workers_[w_lo, w_hi) are the authoritative slot states now.
  const auto e = static_cast<std::size_t>(opts_.envs_per_worker);
  ArchiveReader req;
  std::vector<double> params;
  std::vector<int> budgets;
  RolloutBuffer shard;
  shard.reserve_step(env_->obs_dim(), env_->act_dim());
  while (ch.recv(req)) {
    auto pr = req.section("collect/pol");
    params = pr.read_vec();
    policy_->set_flat_params(params);
    auto ver = req.section("collect/ve");
    value_e_->net().params() = ver.read_vec();
    auto vir = req.section("collect/vi");
    value_i_->net().params() = vir.read_vec();
    auto br = req.section("collect/budgets");
    const std::uint64_t nb = br.read_u64();
    budgets.resize(nb);
    for (std::size_t i = 0; i < nb; ++i)
      budgets[i] = static_cast<int>(br.read_i64());

    for (std::size_t w = w_lo; w < w_hi; ++w) {
      if (opts_.vectorized_rollout)
        workers_[w].collect(*policy_, *value_e_, *value_i_, budgets, w * e);
      else
        workers_[w].collect_serial(*policy_, *value_e_, *value_i_, budgets,
                                   w * e);
    }

    // Pre-merge this shard in global-slot order; the coordinator appends
    // whole shards in process order, which is the same global-slot order.
    shard.clear();
    std::int64_t eps = 0;
    for (std::size_t w = w_lo; w < w_hi; ++w) {
      for (std::size_t i = 0; i < workers_[w].size(); ++i) {
        shard.append(workers_[w].slot(i).buf);
        eps += workers_[w].slot(i).ep_successes;
      }
    }
    ArchiveWriter rep;
    shard.save_state(rep.section("shard/buf"));
    rep.section("shard/eps").write_i64(eps);
    // Slot-state images ride along so the coordinator can snapshot or wind
    // the fleet down without asking again.
    for (std::size_t w = w_lo; w < w_hi; ++w)
      workers_[w].save_state(rep.section("shard/w" + std::to_string(w)));
    if (!ch.send(rep)) break;
  }
}

int PpoTrainer::shard_count() const {
  if (opts_.grad_shards > 0) return opts_.grad_shards;
  // Auto: one shard per ~16 samples, capped — derived from the minibatch
  // option only, never from the thread count (determinism contract).
  return std::clamp(opts_.minibatch / 16, 1, 16);
}

void PpoTrainer::ensure_shards(int n_shards) {
  if (shards_.size() == static_cast<std::size_t>(n_shards)) return;
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(
        ShardScratch{*policy_, *value_e_, *value_i_, {}, {}, {}});
}

PpoTrainer::BatchPartial PpoTrainer::process_range(
    nn::GaussianPolicy& pol, nn::ValueNet& ve, nn::ValueNet* vi,
    const RolloutBuffer& buf, const std::vector<std::size_t>& order,
    std::size_t b, std::size_t e, const std::vector<double>& adv,
    const GaeResult& gae_e, const GaeResult* gae_i, double inv_bs,
    UpdateScratch& scratch) const {
  BatchPartial out;
  if (e <= b) return out;

  if (opts_.batched_update) {
    // Batched path: one gather plus one batched forward/backward per
    // network instead of per-sample tapes. Inactive (clipped-out) samples
    // keep coefficient 0.0, which flows through the fixed-summation-order
    // kernels as exact bitwise no-ops, so the accumulated gradients match
    // the per-sample branch below bit for bit (see DESIGN.md, Kernel layer).
    const std::size_t bs = e - b;
    scratch.obs.gather(buf.obs, order, b, e);
    scratch.act.gather(buf.act, order, b, e);
    const nn::Batch& mean = pol.mean_batch(scratch.obs);
    const std::size_t adim = pol.act_dim();
    scratch.coeff.resize(bs);
    for (std::size_t n = 0; n < bs; ++n) {
      const std::size_t idx = order[b + n];
      const double lp_new = nn::diag_gaussian::log_prob(
          scratch.act.row(n), mean.row(n), pol.log_std().data(), adim);
      const double ratio = std::exp(lp_new - buf.logp[idx]);
      IMAP_NCHECK_FINITE(ratio, "ppo.ratio");
      const double a = adv[idx];
      const bool active =
          (a >= 0.0) ? (ratio < 1.0 + opts_.clip) : (ratio > 1.0 - opts_.clip);
      scratch.coeff[n] = active ? -a * ratio * inv_bs : 0.0;
      out.pol_loss += -std::min(ratio * a,
                                std::clamp(ratio, 1.0 - opts_.clip,
                                           1.0 + opts_.clip) *
                                    a);
      out.kl += buf.logp[idx] - lp_new;
      ++out.samples;
    }
    pol.backward_logp_batch(scratch.act, scratch.coeff);

    // Extrinsic critic regression. vcoeff mirrors the per-sample
    // expression opts_.vf_coef * verr * inv_bs (left-associated).
    ve.value_batch(scratch.obs, scratch.vals);
    scratch.vcoeff.resize(bs);
    for (std::size_t n = 0; n < bs; ++n) {
      const std::size_t idx = order[b + n];
      const double verr = scratch.vals[n] - gae_e.returns[idx];
      scratch.vcoeff[n] = opts_.vf_coef * verr * inv_bs;
      out.val_loss += 0.5 * verr * verr;
    }
    ve.backward_batch(scratch.vcoeff);

    if (vi) {
      vi->value_batch(scratch.obs, scratch.vals);
      for (std::size_t n = 0; n < bs; ++n) {
        const std::size_t idx = order[b + n];
        const double vierr = scratch.vals[n] - gae_i->returns[idx];
        scratch.vcoeff[n] = opts_.vf_coef * vierr * inv_bs;
      }
      vi->backward_batch(scratch.vcoeff);
    }

    IMAP_NCHECK_FINITE(out.pol_loss, "ppo.pol_loss");
    IMAP_NCHECK_FINITE(out.val_loss, "ppo.val_loss");
    IMAP_NCHECK_FINITE(out.kl, "ppo.kl");
    return out;
  }

  // Per-sample baseline (batched_update = false): one tape per sample.
  for (std::size_t i = b; i < e; ++i) {
    const std::size_t idx = order[i];
    nn::Mlp::Tape tape;
    pol.mean_tape(buf.obs[idx], tape);
    const double lp_new = nn::diag_gaussian::log_prob(
        buf.act[idx], tape.post.back(), pol.log_std());
    const double ratio = std::exp(lp_new - buf.logp[idx]);
    IMAP_NCHECK_FINITE(ratio, "ppo.ratio");
    const double a = adv[idx];

    // Clipped surrogate (Eq. 1): gradient flows only through the
    // unclipped branch when it is the active minimum.
    const bool active =
        (a >= 0.0) ? (ratio < 1.0 + opts_.clip) : (ratio > 1.0 - opts_.clip);
    if (active) {
      const double coeff = -a * ratio * inv_bs;  // dL/dlogπ
      pol.backward_logp(tape, buf.act[idx], coeff);
    }
    out.pol_loss += -std::min(ratio * a,
                              std::clamp(ratio, 1.0 - opts_.clip,
                                         1.0 + opts_.clip) *
                                  a);
    out.kl += buf.logp[idx] - lp_new;
    ++out.samples;

    // Extrinsic critic regression.
    nn::Mlp::Tape vtape;
    const double v = ve.value_tape(buf.obs[idx], vtape);
    const double verr = v - gae_e.returns[idx];
    ve.backward(vtape, opts_.vf_coef * verr * inv_bs);
    out.val_loss += 0.5 * verr * verr;

    if (vi) {
      nn::Mlp::Tape vitape;
      const double viv = vi->value_tape(buf.obs[idx], vitape);
      const double vierr = viv - gae_i->returns[idx];
      vi->backward(vitape, opts_.vf_coef * vierr * inv_bs);
    }
  }
  IMAP_NCHECK_FINITE(out.pol_loss, "ppo.pol_loss");
  IMAP_NCHECK_FINITE(out.val_loss, "ppo.val_loss");
  IMAP_NCHECK_FINITE(out.kl, "ppo.kl");
  return out;
}

namespace {

/// In-place pairwise tree reduction of per-shard vectors, in a fixed order
/// that depends only on the shard count: identical for any thread count.
template <class Get>
void tree_reduce(std::size_t n_shards, const Get& vec_of) {
  for (std::size_t stride = 1; stride < n_shards; stride <<= 1) {
    for (std::size_t i = 0; i + stride < n_shards; i += 2 * stride) {
      auto& dst = vec_of(i);
      const auto& src = vec_of(i + stride);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    }
  }
}

}  // namespace

void PpoTrainer::update(RolloutBuffer& buf, double tau, IterStats& stats) {
  const std::size_t n = buf.size();

  // Intrinsic values are only needed when the bonus channel is active.
  const bool use_intrinsic = intrinsic_ != nullptr;
  if (use_intrinsic) {
    if (opts_.batched_update) {
      // Chunked batched refresh through the critic's workspace — the
      // batched kernel beats the per-sample parallel loop at these sizes
      // and the values are bit-identical to per-sample value() calls.
      constexpr std::size_t kChunk = 1024;
      for (std::size_t b = 0; b < n; b += kChunk) {
        const std::size_t e = std::min(n, b + kChunk);
        scratch_.obs.gather_range(buf.obs, b, e);
        value_i_->value_batch(scratch_.obs, scratch_.vals);
        for (std::size_t i = b; i < e; ++i)
          buf.val_i[i] = scratch_.vals[i - b];
      }
    } else {
      parallel_for_chunked(n, 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          buf.val_i[i] = value_i_->value(buf.obs[i]);
      });
    }
  }

  auto gae_e = compute_gae(buf.rew_e, buf.val_e, buf.done, buf.boundary,
                           buf.last_val_e, opts_.gamma, opts_.gae_lambda);
  normalize_advantages(gae_e.advantages);

  GaeResult gae_i;
  if (use_intrinsic) {
    gae_i = compute_gae(buf.rew_i, buf.val_i, buf.done, buf.boundary,
                        buf.last_val_i, opts_.gamma, opts_.gae_lambda);
    normalize_advantages(gae_i.advantages);
  }

  // Combined advantage Â_E + τ·Â_I (Eq. 14).
  std::vector<double> adv(n);
  for (std::size_t i = 0; i < n; ++i) {
    adv[i] = gae_e.advantages[i];
    if (use_intrinsic) adv[i] += tau * gae_i.advantages[i];
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const int n_shards = shard_count();
  if (n_shards > 1) ensure_shards(n_shards);

  // Cross-process gradient sharding: fork min(procs, shards) workers for
  // the lifetime of this update; each owns a contiguous shard range. The
  // slice map and reduction tree depend only on (bs, n_shards), so the
  // result is bit-identical to the in-process sharded branch (and therefore
  // to any process count). Forked after adv/GAE so the children inherit
  // them read-only; the per-epoch shuffle order is sent per minibatch.
  struct GradProc {
    proc::WorkerProcess proc;
    int s_lo = 0;
    int s_hi = 0;
  };
  std::vector<GradProc> grad_fleet;
  const int gp = std::min(proc_count(), n_shards);
  if (n_shards > 1 && gp > 1) {
    grad_fleet.resize(static_cast<std::size_t>(gp));
    for (int p = 0; p < gp; ++p) {
      auto& g = grad_fleet[static_cast<std::size_t>(p)];
      g.s_lo = p * n_shards / gp;
      g.s_hi = (p + 1) * n_shards / gp;
      const int s_lo = g.s_lo;
      const int s_hi = g.s_hi;
      const GaeResult* gi = use_intrinsic ? &gae_i : nullptr;
      g.proc = proc::WorkerProcess::spawn(
          [this, &buf, &adv, &gae_e, gi, s_lo, s_hi,
           n_shards](proc::Channel& ch) {
            grad_shard_body(ch, buf, adv, gae_e, gi, s_lo, s_hi, n_shards);
          });
    }
  }

  double pol_loss_acc = 0.0, val_loss_acc = 0.0, kl_acc = 0.0;
  std::size_t loss_count = 0;

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Fisher–Yates with our Rng for reproducibility.
    for (std::size_t i = n; i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double epoch_kl = 0.0;
    std::size_t epoch_samples = 0;

    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(opts_.minibatch)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(opts_.minibatch));
      const std::size_t bs = end - start;
      const double inv_bs = 1.0 / static_cast<double>(bs);

      if (n_shards <= 1) {
        // Legacy serial accumulation on the master networks.
        policy_->zero_grad();
        value_e_->zero_grad();
        if (use_intrinsic) value_i_->zero_grad();
        const BatchPartial p = process_range(
            *policy_, *value_e_, use_intrinsic ? value_i_.get() : nullptr,
            buf, order, start, end, adv, gae_e,
            use_intrinsic ? &gae_i : nullptr, inv_bs, scratch_);
        pol_loss_acc += p.pol_loss;
        val_loss_acc += p.val_loss;
        epoch_kl += p.kl;
        epoch_samples += p.samples;
        loss_count += p.samples;
      } else {
        // Sharded accumulation: shard s owns batch slice
        // [s·bs/S, (s+1)·bs/S) and its own gradient buffers; shard buffers
        // are then tree-reduced in a fixed order. The slice map and the
        // reduction tree depend only on (bs, S) — never the thread or
        // process count.
        policy_->flat_params_into(master_params_);
        if (!grad_fleet.empty()) {
          // Fabric path: broadcast params + the shuffled minibatch index
          // slice, then decode each worker's shard grads into the same
          // shards_ buffers the in-process branch fills.
          ArchiveWriter req;
          req.section("grad/pol").write_vec(master_params_);
          req.section("grad/ve")
              .write_vec(std::as_const(*value_e_).net().params());
          if (use_intrinsic)
            req.section("grad/vi")
                .write_vec(std::as_const(*value_i_).net().params());
          auto& mbw = req.section("grad/mb");
          mbw.write_f64(inv_bs);
          mbw.write_u64(bs);
          for (std::size_t i = start; i < end; ++i) mbw.write_u64(order[i]);
          for (auto& g : grad_fleet)
            IMAP_CHECK_MSG(g.proc.channel().send(req),
                           "gradient worker " << g.proc.pid() << " died");
          ArchiveReader rep;
          for (auto& g : grad_fleet) {
            IMAP_CHECK_MSG(g.proc.channel().recv(rep),
                           "gradient worker " << g.proc.pid()
                                              << " exited before replying");
            for (int s = g.s_lo; s < g.s_hi; ++s) {
              auto& sh = shards_[static_cast<std::size_t>(s)];
              auto gr = rep.section("grad/s" + std::to_string(s));
              sh.pol_grads = gr.read_vec();
              sh.value_e.grads() = gr.read_vec();
              if (use_intrinsic) sh.value_i.grads() = gr.read_vec();
              sh.partial.pol_loss = gr.read_f64();
              sh.partial.val_loss = gr.read_f64();
              sh.partial.kl = gr.read_f64();
              sh.partial.samples = gr.read_u64();
            }
          }
        } else {
          parallel_for(
              static_cast<std::size_t>(n_shards),
              [&](std::size_t s) {
                auto& sh = shards_[s];
                sh.policy.set_flat_params(master_params_);
                sh.policy.zero_grad();
                // const access on the master nets: the non-const params()
                // bumps weight_version_, which all shards would race on
                sh.value_e.net().params() =
                    std::as_const(*value_e_).net().params();
                sh.value_e.zero_grad();
                if (use_intrinsic) {
                  sh.value_i.net().params() =
                      std::as_const(*value_i_).net().params();
                  sh.value_i.zero_grad();
                }
                const std::size_t sb =
                    start + s * bs / static_cast<std::size_t>(n_shards);
                const std::size_t se =
                    start + (s + 1) * bs / static_cast<std::size_t>(n_shards);
                sh.partial = process_range(
                    sh.policy, sh.value_e,
                    use_intrinsic ? &sh.value_i : nullptr, buf, order, sb, se,
                    adv, gae_e, use_intrinsic ? &gae_i : nullptr, inv_bs,
                    sh.scratch);
                sh.policy.flat_grads_into(sh.pol_grads);
              },
              /*grain=*/1);
        }

        const auto ns = static_cast<std::size_t>(n_shards);
        tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
          return shards_[i].pol_grads;
        });
        tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
          return shards_[i].value_e.grads();
        });
        if (use_intrinsic)
          tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
            return shards_[i].value_i.grads();
          });

        policy_->zero_grad();
        policy_->accumulate_flat_grads(shards_[0].pol_grads);
        value_e_->zero_grad();
        value_e_->grads() = shards_[0].value_e.grads();
        if (use_intrinsic) {
          value_i_->zero_grad();
          value_i_->grads() = shards_[0].value_i.grads();
        }
        for (const auto& sh : shards_) {
          pol_loss_acc += sh.partial.pol_loss;
          val_loss_acc += sh.partial.val_loss;
          epoch_kl += sh.partial.kl;
          epoch_samples += sh.partial.samples;
          loss_count += sh.partial.samples;
        }
      }

      if (opts_.ent_coef > 0.0) policy_->backward_entropy(-opts_.ent_coef);
      if (reg_) {
        reg_batch_.assign(
            order.begin() + static_cast<std::ptrdiff_t>(start),
            order.begin() + static_cast<std::ptrdiff_t>(end));
        reg_(*policy_, buf, reg_batch_);
      }

      policy_->flat_params_into(flat_p_);
      policy_->flat_grads_into(flat_g_);
      policy_opt_.step(flat_p_, flat_g_);
      policy_->set_flat_params(flat_p_);
      policy_->clamp_log_std();

      value_e_opt_.step(value_e_->params(), value_e_->grads());
      if (use_intrinsic) value_i_opt_.step(value_i_->params(), value_i_->grads());
    }

    const double mean_kl =
        epoch_samples ? epoch_kl / static_cast<double>(epoch_samples) : 0.0;
    kl_acc = mean_kl;
    if (opts_.target_kl > 0.0 && mean_kl > opts_.target_kl) break;
  }

  for (auto& g : grad_fleet) {
    const int rc = g.proc.join();
    IMAP_CHECK_MSG(rc == 0, "gradient worker exited with status " << rc);
  }

  stats.policy_loss =
      loss_count ? pol_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.value_loss =
      loss_count ? val_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.approx_kl = kl_acc;
  stats.entropy = policy_->entropy();
}

void PpoTrainer::grad_shard_body(proc::Channel& ch, const RolloutBuffer& buf,
                                 const std::vector<double>& adv,
                                 const GaeResult& gae_e,
                                 const GaeResult* gae_i, int s_lo, int s_hi,
                                 int n_shards) const {
  // Runs in a forked child for one update(): buf / adv / gae_* are the
  // parent's frozen copies; only params and the minibatch order arrive per
  // request.
  const bool use_intrinsic = gae_i != nullptr;
  std::vector<ShardScratch> sh;
  sh.reserve(static_cast<std::size_t>(s_hi - s_lo));
  for (int s = s_lo; s < s_hi; ++s)
    sh.push_back(ShardScratch{*policy_, *value_e_, *value_i_, {}, {}, {}});

  ArchiveReader req;
  std::vector<double> pparams;
  std::vector<double> veparams;
  std::vector<double> viparams;
  std::vector<std::size_t> mbord;
  while (ch.recv(req)) {
    auto pr = req.section("grad/pol");
    pparams = pr.read_vec();
    auto ver = req.section("grad/ve");
    veparams = ver.read_vec();
    if (use_intrinsic) {
      auto vir = req.section("grad/vi");
      viparams = vir.read_vec();
    }
    auto mr = req.section("grad/mb");
    const double inv_bs = mr.read_f64();
    const std::size_t bs = mr.read_u64();
    mbord.resize(bs);
    for (std::size_t i = 0; i < bs; ++i)
      mbord[i] = static_cast<std::size_t>(mr.read_u64());

    ArchiveWriter rep;
    for (int s = s_lo; s < s_hi; ++s) {
      auto& shard = sh[static_cast<std::size_t>(s - s_lo)];
      shard.policy.set_flat_params(pparams);
      shard.policy.zero_grad();
      shard.value_e.net().params() = veparams;
      shard.value_e.zero_grad();
      if (use_intrinsic) {
        shard.value_i.net().params() = viparams;
        shard.value_i.zero_grad();
      }
      // Same slice map as the in-process branch: mbord is order[start, end),
      // so the relative slice [s·bs/S, (s+1)·bs/S) addresses the exact
      // samples the in-process shard s would process.
      const std::size_t sb = static_cast<std::size_t>(s) * bs /
                             static_cast<std::size_t>(n_shards);
      const std::size_t se = static_cast<std::size_t>(s + 1) * bs /
                             static_cast<std::size_t>(n_shards);
      shard.partial = process_range(
          shard.policy, shard.value_e,
          use_intrinsic ? &shard.value_i : nullptr, buf, mbord, sb, se, adv,
          gae_e, gae_i, inv_bs, shard.scratch);
      shard.policy.flat_grads_into(shard.pol_grads);
      auto& out = rep.section("grad/s" + std::to_string(s));
      out.write_vec(shard.pol_grads);
      out.write_vec(shard.value_e.grads());
      if (use_intrinsic) out.write_vec(shard.value_i.grads());
      out.write_f64(shard.partial.pol_loss);
      out.write_f64(shard.partial.val_loss);
      out.write_f64(shard.partial.kl);
      out.write_u64(shard.partial.samples);
    }
    if (!ch.send(rep)) break;
  }
}

IterStats PpoTrainer::iterate() {
  collect(rollout_);

  double tau = 0.0;
  if (intrinsic_) tau = intrinsic_(rollout_);

  IterStats stats;
  stats.iter = iter_++;
  stats.total_steps = steps_done_;
  stats.mean_return = mean(rollout_.episode_returns);
  stats.mean_surrogate = mean(rollout_.episode_surrogate);
  stats.episodes = static_cast<int>(rollout_.episode_returns.size());
  stats.success_rate =
      stats.episodes
          ? static_cast<double>(ep_successes_) / stats.episodes
          : 0.0;
  stats.mean_intrinsic = mean(rollout_.rew_i);
  stats.tau = tau;

  update(rollout_, tau, stats);
  return stats;
}

std::vector<IterStats> PpoTrainer::train(long long total_steps) {
  std::vector<IterStats> out;
  while (steps_done_ < total_steps) out.push_back(iterate());
  return out;
}

namespace {
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}
}  // namespace

void PpoTrainer::save_state(ArchiveWriter& a) const {
  auto& meta = a.section("ppo/meta");
  meta.write_u64(env_->obs_dim());
  meta.write_u64(env_->act_dim());
  meta.write_u64(policy_->n_params());
  meta.write_u64(value_e_->n_params());
  meta.write_u64(value_i_->n_params());
  meta.write_i64(opts_.num_workers);
  meta.write_i64(opts_.envs_per_worker);
  meta.write_i64(opts_.steps_per_iter);
  meta.write_i64(opts_.minibatch);
  meta.write_i64(opts_.epochs);

  auto& nets = a.section("ppo/nets");
  policy_->save_state(nets);
  value_e_->save_state(nets);
  value_i_->save_state(nets);

  auto& opt = a.section("ppo/opt");
  policy_opt_.save_state(opt);
  value_e_opt_.save_state(opt);
  value_i_opt_.save_state(opt);

  rng_.save_state(a.section("ppo/rng"));

  auto& loop = a.section("ppo/loop");
  loop.write_i64(steps_done_);
  loop.write_i64(iter_);

  auto& ep = a.section("ppo/episode");
  ep.write_bool(need_reset_);
  ep.write_vec(cur_obs_);
  ep.write_f64(ep_return_);
  ep.write_f64(ep_surrogate_);
  ep.write_i64(ep_len_);
  replay_.save_state(ep);

  // Worker slots only exist once a vectorized collect has run; an un-built
  // fleet is rebuilt deterministically from the restored Rng seed instead.
  // With a live collector fabric the children hold the authoritative slot
  // state — splice the VecEnv images from their last replies verbatim
  // (byte-for-byte what each worker's save_state would write).
  if (!workers_.empty()) {
    auto& ws = a.section("ppo/workers");
    ws.write_u64(workers_.size());
    if (fabric_ && fabric_->states_fresh) {
      for (const auto& blob : fabric_->worker_state)
        ws.append_raw(blob.data(), blob.size());
    } else {
      for (const auto& w : workers_) w.save_state(ws);
    }
  }
}

void PpoTrainer::load_state(const ArchiveReader& a) {
  // Any live collectors hold pre-restore slot state; discard it (no sync)
  // and let the next sharded collect respawn them from the restored state.
  if (fabric_) {
    fabric_->states_fresh = false;
    shutdown_fabric();
  }
  auto meta = a.section("ppo/meta");
  IMAP_CHECK_MSG(meta.read_u64() == env_->obs_dim() &&
                     meta.read_u64() == env_->act_dim(),
                 "PPO checkpoint was trained on a different environment");
  IMAP_CHECK_MSG(meta.read_u64() == policy_->n_params() &&
                     meta.read_u64() == value_e_->n_params() &&
                     meta.read_u64() == value_i_->n_params(),
                 "PPO checkpoint has a different network architecture");
  IMAP_CHECK_MSG(meta.read_i64() == opts_.num_workers &&
                     meta.read_i64() == opts_.envs_per_worker &&
                     meta.read_i64() == opts_.steps_per_iter &&
                     meta.read_i64() == opts_.minibatch &&
                     meta.read_i64() == opts_.epochs,
                 "PPO checkpoint was written under different options");

  auto nets = a.section("ppo/nets");
  policy_->load_state(nets);
  value_e_->load_state(nets);
  value_i_->load_state(nets);

  auto opt = a.section("ppo/opt");
  policy_opt_.load_state(opt);
  value_e_opt_.load_state(opt);
  value_i_opt_.load_state(opt);

  auto rng_r = a.section("ppo/rng");
  rng_.load_state(rng_r);

  auto loop = a.section("ppo/loop");
  steps_done_ = loop.read_i64();
  iter_ = static_cast<int>(loop.read_i64());

  auto ep = a.section("ppo/episode");
  need_reset_ = ep.read_bool();
  cur_obs_ = ep.read_vec();
  ep_return_ = ep.read_f64();
  ep_surrogate_ = ep.read_f64();
  ep_len_ = static_cast<int>(ep.read_i64());
  replay_.load_state(ep);
  if (!need_reset_ && replay_.valid()) {
    const auto obs = replay_.rebuild(*env_);
    IMAP_CHECK_MSG(same_bits(obs, cur_obs_),
                   "episode replay diverged from checkpoint — environment "
                   "prototype does not match");
  }

  if (a.has("ppo/workers")) {
    ensure_workers();
    auto ws = a.section("ppo/workers");
    IMAP_CHECK_MSG(ws.read_u64() == workers_.size(),
                   "checkpoint has wrong rollout-worker count");
    for (auto& w : workers_) w.load_state(ws);
  } else {
    workers_.clear();
  }
}

bool PpoTrainer::snapshot(const std::string& path) const {
  ArchiveWriter a;
  save_state(a);
  return a.save(path);
}

bool PpoTrainer::restore(const std::string& path) {
  ArchiveReader a;
  if (!ArchiveReader::load(path, a)) return false;
  load_state(a);
  return true;
}

}  // namespace imap::rl
