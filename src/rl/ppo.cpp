#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace imap::rl {

PpoTrainer::PpoTrainer(const Env& proto, PpoOptions opts, Rng rng)
    : opts_(opts),
      env_(proto.clone()),
      rng_(rng),
      policy_(std::make_unique<nn::GaussianPolicy>(
          proto.obs_dim(), proto.act_dim(), opts.hidden, rng_,
          opts.init_log_std)),
      value_e_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      value_i_(std::make_unique<nn::ValueNet>(proto.obs_dim(), opts.hidden,
                                              rng_)),
      policy_opt_(policy_->n_params(),
                  {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_e_opt_(value_e_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}),
      value_i_opt_(value_i_->n_params(),
                   {.lr = opts.lr, .max_grad_norm = opts.max_grad_norm}) {
  IMAP_CHECK(opts_.steps_per_iter > 0);
  IMAP_CHECK(opts_.minibatch > 0);
  IMAP_CHECK(opts_.num_workers >= 1);
  IMAP_CHECK(opts_.envs_per_worker >= 1);
  IMAP_CHECK(opts_.grad_shards >= 0);
}

void PpoTrainer::set_env(const Env& proto) {
  IMAP_CHECK(proto.obs_dim() == env_->obs_dim());
  IMAP_CHECK(proto.act_dim() == env_->act_dim());
  env_ = proto.clone();
  need_reset_ = true;
  replay_.invalidate();
  for (auto& w : workers_) w.set_env(proto);
}

void PpoTrainer::ensure_workers() {
  const auto k = static_cast<std::size_t>(opts_.num_workers);
  const auto e = static_cast<std::size_t>(opts_.envs_per_worker);
  if (workers_.size() == k && workers_[0].size() == e) return;
  workers_.clear();
  workers_.resize(k);
  std::vector<Rng> streams(e);
  for (std::size_t w = 0; w < k; ++w) {
    // Global slot g = w·E + i draws child stream g of the trainer seed —
    // the trace depends only on the global slot index (so any K × E
    // factorization of the same total merges bit-identically), never on
    // the thread count.
    for (std::size_t i = 0; i < e; ++i)
      streams[i] = rng_.split(0x6b1dc0deULL +
                              static_cast<std::uint64_t>(w * e + i));
    workers_[w].configure(*env_, streams);
  }
}

void PpoTrainer::collect(RolloutBuffer& buf) {
  const int total = opts_.num_workers * opts_.envs_per_worker;
  if (total <= 1) {
    collect_serial(buf);
    return;
  }
  ensure_workers();
  // Per-global-slot budgets: steps/N each, remainder to the FIRST slots —
  // non-increasing, so every worker's live slots form a prefix.
  slot_budgets_.assign(static_cast<std::size_t>(total),
                       opts_.steps_per_iter / total);
  for (int g = 0; g < opts_.steps_per_iter % total; ++g) ++slot_budgets_[g];

  // Workers touch disjoint state (own slots: env, rng, buffer) and their
  // own batching scratch; the policy and value nets are read-only during
  // sampling (caller-owned workspaces, see VecEnv).
  const auto e = static_cast<std::size_t>(opts_.envs_per_worker);
  parallel_for(
      workers_.size(),
      [&](std::size_t w) {
        if (opts_.vectorized_rollout)
          workers_[w].collect(*policy_, *value_e_, *value_i_, slot_budgets_,
                              w * e);
        else
          workers_[w].collect_serial(*policy_, *value_e_, *value_i_,
                                     slot_budgets_, w * e);
      },
      /*grain=*/1);

  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  buf.reserve_step(env_->obs_dim(), env_->act_dim());
  ep_successes_ = 0;
  for (auto& w : workers_) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      buf.append(w.slot(i).buf);
      ep_successes_ += w.slot(i).ep_successes;
    }
  }
  steps_done_ += opts_.steps_per_iter;
}

void PpoTrainer::collect_serial(RolloutBuffer& buf) {
  buf.clear();
  buf.reserve(static_cast<std::size_t>(opts_.steps_per_iter));
  buf.reserve_step(env_->obs_dim(), env_->act_dim());
  ep_successes_ = 0;

  if (need_reset_) {
    replay_.on_reset(rng_);
    cur_obs_ = env_->reset(rng_);
    ep_return_ = ep_surrogate_ = 0.0;
    ep_len_ = 0;
    need_reset_ = false;
  }

  // Per-step buffers hoisted out of the collection loop (act_into reuses
  // their capacity; the loop is allocation-free in steady state).
  std::vector<double> action;
  std::vector<double> act_scratch;
  for (int t = 0; t < opts_.steps_per_iter; ++t) {
    policy_->act_into(cur_obs_, rng_, action, act_scratch);
    const double lp = policy_->log_prob(cur_obs_, action);
    const double ve = value_e_->value(cur_obs_);
    replay_.on_step(action.data(), action.size());
    StepResult sr = env_->step(env_->action_space().clamp(action));

    buf.add(cur_obs_, action, lp, sr.reward, ve);
    ep_return_ += sr.reward;
    ep_surrogate_ += sr.surrogate;
    ++ep_len_;

    const bool boundary = sr.done || sr.truncated;
    if (boundary) {
      buf.done.back() = sr.done ? 1 : 0;
      buf.boundary.back() = 1;
      // Bootstrap with the value of the post-step state (ignored if done).
      buf.last_val_e.push_back(sr.done ? 0.0 : value_e_->value(sr.obs));
      buf.last_val_i.push_back(sr.done ? 0.0 : value_i_->value(sr.obs));
      buf.episode_returns.push_back(ep_return_);
      buf.episode_surrogate.push_back(ep_surrogate_);
      buf.episode_lengths.push_back(ep_len_);
      if (sr.task_completed) ++ep_successes_;
      replay_.on_reset(rng_);
      cur_obs_ = env_->reset(rng_);
      ep_return_ = ep_surrogate_ = 0.0;
      ep_len_ = 0;
    } else {
      // Swap instead of copy (see collect_worker).
      std::swap(cur_obs_, sr.obs);
    }
  }

  // Close the rollout: the last segment bootstraps from the current state.
  if (!buf.boundary.back()) {
    buf.boundary.back() = 1;
    buf.last_val_e.push_back(value_e_->value(cur_obs_));
    buf.last_val_i.push_back(value_i_->value(cur_obs_));
  }
  steps_done_ += opts_.steps_per_iter;
}

int PpoTrainer::shard_count() const {
  if (opts_.grad_shards > 0) return opts_.grad_shards;
  // Auto: one shard per ~16 samples, capped — derived from the minibatch
  // option only, never from the thread count (determinism contract).
  return std::clamp(opts_.minibatch / 16, 1, 16);
}

void PpoTrainer::ensure_shards(int n_shards) {
  if (shards_.size() == static_cast<std::size_t>(n_shards)) return;
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(
        ShardScratch{*policy_, *value_e_, *value_i_, {}, {}, {}});
}

PpoTrainer::BatchPartial PpoTrainer::process_range(
    nn::GaussianPolicy& pol, nn::ValueNet& ve, nn::ValueNet* vi,
    const RolloutBuffer& buf, const std::vector<std::size_t>& order,
    std::size_t b, std::size_t e, const std::vector<double>& adv,
    const GaeResult& gae_e, const GaeResult* gae_i, double inv_bs,
    UpdateScratch& scratch) const {
  BatchPartial out;
  if (e <= b) return out;

  if (opts_.batched_update) {
    // Batched path: one gather plus one batched forward/backward per
    // network instead of per-sample tapes. Inactive (clipped-out) samples
    // keep coefficient 0.0, which flows through the fixed-summation-order
    // kernels as exact bitwise no-ops, so the accumulated gradients match
    // the per-sample branch below bit for bit (see DESIGN.md, Kernel layer).
    const std::size_t bs = e - b;
    scratch.obs.gather(buf.obs, order, b, e);
    scratch.act.gather(buf.act, order, b, e);
    const nn::Batch& mean = pol.mean_batch(scratch.obs);
    const std::size_t adim = pol.act_dim();
    scratch.coeff.resize(bs);
    for (std::size_t n = 0; n < bs; ++n) {
      const std::size_t idx = order[b + n];
      const double lp_new = nn::diag_gaussian::log_prob(
          scratch.act.row(n), mean.row(n), pol.log_std().data(), adim);
      const double ratio = std::exp(lp_new - buf.logp[idx]);
      IMAP_NCHECK_FINITE(ratio, "ppo.ratio");
      const double a = adv[idx];
      const bool active =
          (a >= 0.0) ? (ratio < 1.0 + opts_.clip) : (ratio > 1.0 - opts_.clip);
      scratch.coeff[n] = active ? -a * ratio * inv_bs : 0.0;
      out.pol_loss += -std::min(ratio * a,
                                std::clamp(ratio, 1.0 - opts_.clip,
                                           1.0 + opts_.clip) *
                                    a);
      out.kl += buf.logp[idx] - lp_new;
      ++out.samples;
    }
    pol.backward_logp_batch(scratch.act, scratch.coeff);

    // Extrinsic critic regression. vcoeff mirrors the per-sample
    // expression opts_.vf_coef * verr * inv_bs (left-associated).
    ve.value_batch(scratch.obs, scratch.vals);
    scratch.vcoeff.resize(bs);
    for (std::size_t n = 0; n < bs; ++n) {
      const std::size_t idx = order[b + n];
      const double verr = scratch.vals[n] - gae_e.returns[idx];
      scratch.vcoeff[n] = opts_.vf_coef * verr * inv_bs;
      out.val_loss += 0.5 * verr * verr;
    }
    ve.backward_batch(scratch.vcoeff);

    if (vi) {
      vi->value_batch(scratch.obs, scratch.vals);
      for (std::size_t n = 0; n < bs; ++n) {
        const std::size_t idx = order[b + n];
        const double vierr = scratch.vals[n] - gae_i->returns[idx];
        scratch.vcoeff[n] = opts_.vf_coef * vierr * inv_bs;
      }
      vi->backward_batch(scratch.vcoeff);
    }

    IMAP_NCHECK_FINITE(out.pol_loss, "ppo.pol_loss");
    IMAP_NCHECK_FINITE(out.val_loss, "ppo.val_loss");
    IMAP_NCHECK_FINITE(out.kl, "ppo.kl");
    return out;
  }

  // Per-sample baseline (batched_update = false): one tape per sample.
  for (std::size_t i = b; i < e; ++i) {
    const std::size_t idx = order[i];
    nn::Mlp::Tape tape;
    pol.mean_tape(buf.obs[idx], tape);
    const double lp_new = nn::diag_gaussian::log_prob(
        buf.act[idx], tape.post.back(), pol.log_std());
    const double ratio = std::exp(lp_new - buf.logp[idx]);
    IMAP_NCHECK_FINITE(ratio, "ppo.ratio");
    const double a = adv[idx];

    // Clipped surrogate (Eq. 1): gradient flows only through the
    // unclipped branch when it is the active minimum.
    const bool active =
        (a >= 0.0) ? (ratio < 1.0 + opts_.clip) : (ratio > 1.0 - opts_.clip);
    if (active) {
      const double coeff = -a * ratio * inv_bs;  // dL/dlogπ
      pol.backward_logp(tape, buf.act[idx], coeff);
    }
    out.pol_loss += -std::min(ratio * a,
                              std::clamp(ratio, 1.0 - opts_.clip,
                                         1.0 + opts_.clip) *
                                  a);
    out.kl += buf.logp[idx] - lp_new;
    ++out.samples;

    // Extrinsic critic regression.
    nn::Mlp::Tape vtape;
    const double v = ve.value_tape(buf.obs[idx], vtape);
    const double verr = v - gae_e.returns[idx];
    ve.backward(vtape, opts_.vf_coef * verr * inv_bs);
    out.val_loss += 0.5 * verr * verr;

    if (vi) {
      nn::Mlp::Tape vitape;
      const double viv = vi->value_tape(buf.obs[idx], vitape);
      const double vierr = viv - gae_i->returns[idx];
      vi->backward(vitape, opts_.vf_coef * vierr * inv_bs);
    }
  }
  IMAP_NCHECK_FINITE(out.pol_loss, "ppo.pol_loss");
  IMAP_NCHECK_FINITE(out.val_loss, "ppo.val_loss");
  IMAP_NCHECK_FINITE(out.kl, "ppo.kl");
  return out;
}

namespace {

/// In-place pairwise tree reduction of per-shard vectors, in a fixed order
/// that depends only on the shard count: identical for any thread count.
template <class Get>
void tree_reduce(std::size_t n_shards, const Get& vec_of) {
  for (std::size_t stride = 1; stride < n_shards; stride <<= 1) {
    for (std::size_t i = 0; i + stride < n_shards; i += 2 * stride) {
      auto& dst = vec_of(i);
      const auto& src = vec_of(i + stride);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    }
  }
}

}  // namespace

void PpoTrainer::update(RolloutBuffer& buf, double tau, IterStats& stats) {
  const std::size_t n = buf.size();

  // Intrinsic values are only needed when the bonus channel is active.
  const bool use_intrinsic = intrinsic_ != nullptr;
  if (use_intrinsic) {
    if (opts_.batched_update) {
      // Chunked batched refresh through the critic's workspace — the
      // batched kernel beats the per-sample parallel loop at these sizes
      // and the values are bit-identical to per-sample value() calls.
      constexpr std::size_t kChunk = 1024;
      for (std::size_t b = 0; b < n; b += kChunk) {
        const std::size_t e = std::min(n, b + kChunk);
        scratch_.obs.gather_range(buf.obs, b, e);
        value_i_->value_batch(scratch_.obs, scratch_.vals);
        for (std::size_t i = b; i < e; ++i)
          buf.val_i[i] = scratch_.vals[i - b];
      }
    } else {
      parallel_for_chunked(n, 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          buf.val_i[i] = value_i_->value(buf.obs[i]);
      });
    }
  }

  auto gae_e = compute_gae(buf.rew_e, buf.val_e, buf.done, buf.boundary,
                           buf.last_val_e, opts_.gamma, opts_.gae_lambda);
  normalize_advantages(gae_e.advantages);

  GaeResult gae_i;
  if (use_intrinsic) {
    gae_i = compute_gae(buf.rew_i, buf.val_i, buf.done, buf.boundary,
                        buf.last_val_i, opts_.gamma, opts_.gae_lambda);
    normalize_advantages(gae_i.advantages);
  }

  // Combined advantage Â_E + τ·Â_I (Eq. 14).
  std::vector<double> adv(n);
  for (std::size_t i = 0; i < n; ++i) {
    adv[i] = gae_e.advantages[i];
    if (use_intrinsic) adv[i] += tau * gae_i.advantages[i];
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const int n_shards = shard_count();
  if (n_shards > 1) ensure_shards(n_shards);

  double pol_loss_acc = 0.0, val_loss_acc = 0.0, kl_acc = 0.0;
  std::size_t loss_count = 0;

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    // Fisher–Yates with our Rng for reproducibility.
    for (std::size_t i = n; i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(rng_.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }

    double epoch_kl = 0.0;
    std::size_t epoch_samples = 0;

    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(opts_.minibatch)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(opts_.minibatch));
      const std::size_t bs = end - start;
      const double inv_bs = 1.0 / static_cast<double>(bs);

      if (n_shards <= 1) {
        // Legacy serial accumulation on the master networks.
        policy_->zero_grad();
        value_e_->zero_grad();
        if (use_intrinsic) value_i_->zero_grad();
        const BatchPartial p = process_range(
            *policy_, *value_e_, use_intrinsic ? value_i_.get() : nullptr,
            buf, order, start, end, adv, gae_e,
            use_intrinsic ? &gae_i : nullptr, inv_bs, scratch_);
        pol_loss_acc += p.pol_loss;
        val_loss_acc += p.val_loss;
        epoch_kl += p.kl;
        epoch_samples += p.samples;
        loss_count += p.samples;
      } else {
        // Sharded accumulation: shard s owns batch slice
        // [s·bs/S, (s+1)·bs/S) and its own gradient buffers; shard buffers
        // are then tree-reduced in a fixed order. The slice map and the
        // reduction tree depend only on (bs, S) — never the thread count.
        policy_->flat_params_into(master_params_);
        parallel_for(
            static_cast<std::size_t>(n_shards),
            [&](std::size_t s) {
              auto& sh = shards_[s];
              sh.policy.set_flat_params(master_params_);
              sh.policy.zero_grad();
              // const access on the master nets: the non-const params()
              // bumps weight_version_, which all shards would race on
              sh.value_e.net().params() =
                  std::as_const(*value_e_).net().params();
              sh.value_e.zero_grad();
              if (use_intrinsic) {
                sh.value_i.net().params() =
                    std::as_const(*value_i_).net().params();
                sh.value_i.zero_grad();
              }
              const std::size_t sb =
                  start + s * bs / static_cast<std::size_t>(n_shards);
              const std::size_t se =
                  start + (s + 1) * bs / static_cast<std::size_t>(n_shards);
              sh.partial = process_range(
                  sh.policy, sh.value_e,
                  use_intrinsic ? &sh.value_i : nullptr, buf, order, sb, se,
                  adv, gae_e, use_intrinsic ? &gae_i : nullptr, inv_bs,
                  sh.scratch);
              sh.policy.flat_grads_into(sh.pol_grads);
            },
            /*grain=*/1);

        const auto ns = static_cast<std::size_t>(n_shards);
        tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
          return shards_[i].pol_grads;
        });
        tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
          return shards_[i].value_e.grads();
        });
        if (use_intrinsic)
          tree_reduce(ns, [&](std::size_t i) -> std::vector<double>& {
            return shards_[i].value_i.grads();
          });

        policy_->zero_grad();
        policy_->accumulate_flat_grads(shards_[0].pol_grads);
        value_e_->zero_grad();
        value_e_->grads() = shards_[0].value_e.grads();
        if (use_intrinsic) {
          value_i_->zero_grad();
          value_i_->grads() = shards_[0].value_i.grads();
        }
        for (const auto& sh : shards_) {
          pol_loss_acc += sh.partial.pol_loss;
          val_loss_acc += sh.partial.val_loss;
          epoch_kl += sh.partial.kl;
          epoch_samples += sh.partial.samples;
          loss_count += sh.partial.samples;
        }
      }

      if (opts_.ent_coef > 0.0) policy_->backward_entropy(-opts_.ent_coef);
      if (reg_) {
        reg_batch_.assign(
            order.begin() + static_cast<std::ptrdiff_t>(start),
            order.begin() + static_cast<std::ptrdiff_t>(end));
        reg_(*policy_, buf, reg_batch_);
      }

      policy_->flat_params_into(flat_p_);
      policy_->flat_grads_into(flat_g_);
      policy_opt_.step(flat_p_, flat_g_);
      policy_->set_flat_params(flat_p_);
      policy_->clamp_log_std();

      value_e_opt_.step(value_e_->params(), value_e_->grads());
      if (use_intrinsic) value_i_opt_.step(value_i_->params(), value_i_->grads());
    }

    const double mean_kl =
        epoch_samples ? epoch_kl / static_cast<double>(epoch_samples) : 0.0;
    kl_acc = mean_kl;
    if (opts_.target_kl > 0.0 && mean_kl > opts_.target_kl) break;
  }

  stats.policy_loss =
      loss_count ? pol_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.value_loss =
      loss_count ? val_loss_acc / static_cast<double>(loss_count) : 0.0;
  stats.approx_kl = kl_acc;
  stats.entropy = policy_->entropy();
}

IterStats PpoTrainer::iterate() {
  collect(rollout_);

  double tau = 0.0;
  if (intrinsic_) tau = intrinsic_(rollout_);

  IterStats stats;
  stats.iter = iter_++;
  stats.total_steps = steps_done_;
  stats.mean_return = mean(rollout_.episode_returns);
  stats.mean_surrogate = mean(rollout_.episode_surrogate);
  stats.episodes = static_cast<int>(rollout_.episode_returns.size());
  stats.success_rate =
      stats.episodes
          ? static_cast<double>(ep_successes_) / stats.episodes
          : 0.0;
  stats.mean_intrinsic = mean(rollout_.rew_i);
  stats.tau = tau;

  update(rollout_, tau, stats);
  return stats;
}

std::vector<IterStats> PpoTrainer::train(long long total_steps) {
  std::vector<IterStats> out;
  while (steps_done_ < total_steps) out.push_back(iterate());
  return out;
}

namespace {
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}
}  // namespace

void PpoTrainer::save_state(ArchiveWriter& a) const {
  auto& meta = a.section("ppo/meta");
  meta.write_u64(env_->obs_dim());
  meta.write_u64(env_->act_dim());
  meta.write_u64(policy_->n_params());
  meta.write_u64(value_e_->n_params());
  meta.write_u64(value_i_->n_params());
  meta.write_i64(opts_.num_workers);
  meta.write_i64(opts_.envs_per_worker);
  meta.write_i64(opts_.steps_per_iter);
  meta.write_i64(opts_.minibatch);
  meta.write_i64(opts_.epochs);

  auto& nets = a.section("ppo/nets");
  policy_->save_state(nets);
  value_e_->save_state(nets);
  value_i_->save_state(nets);

  auto& opt = a.section("ppo/opt");
  policy_opt_.save_state(opt);
  value_e_opt_.save_state(opt);
  value_i_opt_.save_state(opt);

  rng_.save_state(a.section("ppo/rng"));

  auto& loop = a.section("ppo/loop");
  loop.write_i64(steps_done_);
  loop.write_i64(iter_);

  auto& ep = a.section("ppo/episode");
  ep.write_bool(need_reset_);
  ep.write_vec(cur_obs_);
  ep.write_f64(ep_return_);
  ep.write_f64(ep_surrogate_);
  ep.write_i64(ep_len_);
  replay_.save_state(ep);

  // Worker slots only exist once a vectorized collect has run; an un-built
  // fleet is rebuilt deterministically from the restored Rng seed instead.
  if (!workers_.empty()) {
    auto& ws = a.section("ppo/workers");
    ws.write_u64(workers_.size());
    for (const auto& w : workers_) w.save_state(ws);
  }
}

void PpoTrainer::load_state(const ArchiveReader& a) {
  auto meta = a.section("ppo/meta");
  IMAP_CHECK_MSG(meta.read_u64() == env_->obs_dim() &&
                     meta.read_u64() == env_->act_dim(),
                 "PPO checkpoint was trained on a different environment");
  IMAP_CHECK_MSG(meta.read_u64() == policy_->n_params() &&
                     meta.read_u64() == value_e_->n_params() &&
                     meta.read_u64() == value_i_->n_params(),
                 "PPO checkpoint has a different network architecture");
  IMAP_CHECK_MSG(meta.read_i64() == opts_.num_workers &&
                     meta.read_i64() == opts_.envs_per_worker &&
                     meta.read_i64() == opts_.steps_per_iter &&
                     meta.read_i64() == opts_.minibatch &&
                     meta.read_i64() == opts_.epochs,
                 "PPO checkpoint was written under different options");

  auto nets = a.section("ppo/nets");
  policy_->load_state(nets);
  value_e_->load_state(nets);
  value_i_->load_state(nets);

  auto opt = a.section("ppo/opt");
  policy_opt_.load_state(opt);
  value_e_opt_.load_state(opt);
  value_i_opt_.load_state(opt);

  auto rng_r = a.section("ppo/rng");
  rng_.load_state(rng_r);

  auto loop = a.section("ppo/loop");
  steps_done_ = loop.read_i64();
  iter_ = static_cast<int>(loop.read_i64());

  auto ep = a.section("ppo/episode");
  need_reset_ = ep.read_bool();
  cur_obs_ = ep.read_vec();
  ep_return_ = ep.read_f64();
  ep_surrogate_ = ep.read_f64();
  ep_len_ = static_cast<int>(ep.read_i64());
  replay_.load_state(ep);
  if (!need_reset_ && replay_.valid()) {
    const auto obs = replay_.rebuild(*env_);
    IMAP_CHECK_MSG(same_bits(obs, cur_obs_),
                   "episode replay diverged from checkpoint — environment "
                   "prototype does not match");
  }

  if (a.has("ppo/workers")) {
    ensure_workers();
    auto ws = a.section("ppo/workers");
    IMAP_CHECK_MSG(ws.read_u64() == workers_.size(),
                   "checkpoint has wrong rollout-worker count");
    for (auto& w : workers_) w.load_state(ws);
  } else {
    workers_.clear();
  }
}

bool PpoTrainer::snapshot(const std::string& path) const {
  ArchiveWriter a;
  save_state(a);
  return a.save(path);
}

bool PpoTrainer::restore(const std::string& path) {
  ArchiveReader a;
  if (!ArchiveReader::load(path, a)) return false;
  load_state(a);
  return true;
}

}  // namespace imap::rl
