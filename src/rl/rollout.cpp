#include "rl/rollout.h"

namespace imap::rl {

void RolloutBuffer::clear() {
  obs.clear();
  act.clear();
  logp.clear();
  rew_e.clear();
  rew_i.clear();
  val_e.clear();
  val_i.clear();
  done.clear();
  boundary.clear();
  last_val_e.clear();
  last_val_i.clear();
  boundary_at.clear();
  episode_returns.clear();
  episode_surrogate.clear();
  episode_lengths.clear();
}

void RolloutBuffer::reserve(std::size_t n) {
  obs.reserve(n);
  act.reserve(n);
  logp.reserve(n);
  rew_e.reserve(n);
  rew_i.reserve(n);
  val_e.reserve(n);
  val_i.reserve(n);
  done.reserve(n);
  boundary.reserve(n);
}

void RolloutBuffer::add(std::vector<double> o, std::vector<double> a,
                        double lp, double re, double ve) {
  obs.push_back(std::move(o));
  act.push_back(std::move(a));
  logp.push_back(lp);
  rew_e.push_back(re);
  rew_i.push_back(0.0);
  val_e.push_back(ve);
  val_i.push_back(0.0);
  done.push_back(0);
  boundary.push_back(0);
}

}  // namespace imap::rl
