#include "rl/rollout.h"

#include "common/serialize.h"

namespace imap::rl {

void RolloutBuffer::clear() {
  // obs/act keep their rows (and row capacity); n_ marks the valid prefix.
  n_ = 0;
  logp.clear();
  rew_e.clear();
  rew_i.clear();
  val_e.clear();
  val_i.clear();
  done.clear();
  boundary.clear();
  last_val_e.clear();
  last_val_i.clear();
  boundary_at.clear();
  episode_returns.clear();
  episode_surrogate.clear();
  episode_lengths.clear();
}

void RolloutBuffer::reserve(std::size_t n) {
  obs.reserve(n);
  act.reserve(n);
  logp.reserve(n);
  rew_e.reserve(n);
  rew_i.reserve(n);
  val_e.reserve(n);
  val_i.reserve(n);
  done.reserve(n);
  boundary.reserve(n);
}

void RolloutBuffer::reserve_step(std::size_t dim_obs, std::size_t dim_act) {
  dim_obs_ = dim_obs;
  dim_act_ = dim_act;
}

void RolloutBuffer::add(const std::vector<double>& o,
                        const std::vector<double>& a, double lp, double re,
                        double ve) {
  add(o.data(), o.size(), a.data(), a.size(), lp, re, ve);
}

void RolloutBuffer::add(const double* o, std::size_t no, const double* a,
                        std::size_t na, double lp, double re, double ve) {
  if (n_ == obs.size()) {
    obs.emplace_back();
    if (dim_obs_) obs.back().reserve(dim_obs_);
  }
  if (n_ == act.size()) {
    act.emplace_back();
    if (dim_act_) act.back().reserve(dim_act_);
  }
  obs[n_].assign(o, o + no);
  act[n_].assign(a, a + na);
  ++n_;
  logp.push_back(lp);
  rew_e.push_back(re);
  rew_i.push_back(0.0);
  val_e.push_back(ve);
  val_i.push_back(0.0);
  done.push_back(0);
  boundary.push_back(0);
}

void RolloutBuffer::append(const RolloutBuffer& other) {
  // Reserve the destination once per source: merging K·E slot buffers then
  // proceeds without a single mid-append reallocation.
  reserve(n_ + other.size());
  last_val_e.reserve(last_val_e.size() + other.last_val_e.size());
  last_val_i.reserve(last_val_i.size() + other.last_val_i.size());
  episode_returns.reserve(episode_returns.size() +
                          other.episode_returns.size());
  episode_surrogate.reserve(episode_surrogate.size() +
                            other.episode_surrogate.size());
  episode_lengths.reserve(episode_lengths.size() +
                          other.episode_lengths.size());
  for (std::size_t i = 0; i < other.size(); ++i) {
    add(other.obs[i], other.act[i], other.logp[i], other.rew_e[i],
        other.val_e[i]);
    rew_i.back() = other.rew_i[i];
    val_i.back() = other.val_i[i];
    done.back() = other.done[i];
    boundary.back() = other.boundary[i];
  }
  last_val_e.insert(last_val_e.end(), other.last_val_e.begin(),
                    other.last_val_e.end());
  last_val_i.insert(last_val_i.end(), other.last_val_i.begin(),
                    other.last_val_i.end());
  episode_returns.insert(episode_returns.end(), other.episode_returns.begin(),
                         other.episode_returns.end());
  episode_surrogate.insert(episode_surrogate.end(),
                           other.episode_surrogate.begin(),
                           other.episode_surrogate.end());
  episode_lengths.insert(episode_lengths.end(), other.episode_lengths.begin(),
                         other.episode_lengths.end());
}

void RolloutBuffer::save_state(BinaryWriter& w) const {
  w.write_u64(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    w.write_vec(obs[i]);
    w.write_vec(act[i]);
  }
  w.write_vec(logp);
  w.write_vec(rew_e);
  w.write_vec(rew_i);
  w.write_vec(val_e);
  w.write_vec(val_i);
  w.write_u64(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) w.write_bool(done[i] != 0);
  w.write_u64(boundary.size());
  for (std::size_t i = 0; i < boundary.size(); ++i)
    w.write_bool(boundary[i] != 0);
  w.write_vec(last_val_e);
  w.write_vec(last_val_i);
  w.write_u64(boundary_at.size());
  for (std::size_t i = 0; i < boundary_at.size(); ++i)
    w.write_u64(boundary_at[i]);
  w.write_vec(episode_returns);
  w.write_vec(episode_surrogate);
  w.write_u64(episode_lengths.size());
  for (std::size_t i = 0; i < episode_lengths.size(); ++i)
    w.write_i64(episode_lengths[i]);
}

void RolloutBuffer::load_state(BinaryReader& r) {
  clear();
  const std::uint64_t n = r.read_u64();
  // Rows beyond n stay allocated (same spare-row reuse as clear()/add()).
  if (obs.size() < n) obs.resize(n);
  if (act.size() < n) act.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs[i] = r.read_vec();
    act[i] = r.read_vec();
  }
  n_ = n;
  logp = r.read_vec();
  rew_e = r.read_vec();
  rew_i = r.read_vec();
  val_e = r.read_vec();
  val_i = r.read_vec();
  const std::uint64_t nd = r.read_u64();
  done.resize(nd);
  for (std::size_t i = 0; i < nd; ++i) done[i] = r.read_bool() ? 1 : 0;
  const std::uint64_t nbound = r.read_u64();
  boundary.resize(nbound);
  for (std::size_t i = 0; i < nbound; ++i)
    boundary[i] = r.read_bool() ? 1 : 0;
  last_val_e = r.read_vec();
  last_val_i = r.read_vec();
  const std::uint64_t nat = r.read_u64();
  boundary_at.resize(nat);
  for (std::size_t i = 0; i < nat; ++i)
    boundary_at[i] = static_cast<std::size_t>(r.read_u64());
  episode_returns = r.read_vec();
  episode_surrogate = r.read_vec();
  const std::uint64_t nlen = r.read_u64();
  episode_lengths.resize(nlen);
  for (std::size_t i = 0; i < nlen; ++i)
    episode_lengths[i] = static_cast<int>(r.read_i64());
}

}  // namespace imap::rl
