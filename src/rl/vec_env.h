#pragma once

#include <memory>
#include <vector>

#include "common/serialize.h"
#include "nn/batch.h"
#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/normalizer.h"
#include "rl/replay.h"
#include "rl/rollout.h"
#include "rl/split_step.h"

namespace imap::rl {

/// One environment slot of a VecEnv: its own env clone, Rng stream, episode
/// state and rollout buffer. Slots are fully independent — a slot's trace is
/// a pure function of its env prototype, its stream and the (frozen) policy
/// parameters, never of E or of its neighbours.
struct EnvSlot {
  std::unique_ptr<Env> env;
  SplitStepEnv* split = nullptr;  ///< cached cast; null if not splittable
  Rng rng{0};
  std::vector<double> cur_obs;
  double ep_return = 0.0;
  double ep_surrogate = 0.0;
  int ep_len = 0;
  bool need_reset = true;
  int ep_successes = 0;
  RolloutBuffer buf;
  EpisodeReplay replay;  ///< in-flight episode history for snapshot/resume
};

/// Vectorized rollout engine: E environment slots stepped in lockstep so one
/// collection tick performs ONE batched policy-mean forward, ONE batched
/// critic forward and — when every slot is a SplitStepEnv over the same
/// network-backed frozen victim — ONE batched victim forward, instead of E
/// per-sample calls of each.
///
/// Determinism contract: slot i draws only from its own stream and
/// auto-resets in place, and the batched kernels are bit-identical per row
/// to their per-sample counterparts, so collect() fills exactly the buffers
/// that E independent serial collections (collect_serial) would — for any E
/// and any IMAP_THREADS. Budgets must be non-increasing across the slot
/// range so the live slots always form a prefix (shorter budgets retire
/// from the back).
///
/// One VecEnv is in flight per worker thread; the policy/critics stay
/// read-only and all mutable scratch (workspaces, stacking batches) is owned
/// by the VecEnv itself.
class VecEnv {
 public:
  /// (Re)build one slot per entry of `streams`, each a clone of `proto`
  /// seeded with its stream.
  void configure(const Env& proto, const std::vector<Rng>& streams);

  /// Swap every slot's environment for a clone of `proto` (same spaces);
  /// episode state restarts on the next collect.
  void set_env(const Env& proto);

  std::size_t size() const { return slots_.size(); }
  EnvSlot& slot(std::size_t i) { return slots_[i]; }
  const EnvSlot& slot(std::size_t i) const { return slots_[i]; }

  /// Optional running observation tracker: when set, collect() folds all
  /// live observations of a tick with one update_batch call and
  /// collect_serial() feeds the same observations one update() at a time
  /// (telemetry only — neither path feeds normalized values back into the
  /// rollout, so the buffers stay bit-identical with or without it).
  void set_obs_normalizer(VecNormalizer* norm) { obs_norm_ = norm; }

  /// Lockstep vectorized collection. Slot i runs budgets[offset+i] steps
  /// into its own buffer (bit-identical to collect_serial on the same
  /// state). Episode state persists across calls.
  void collect(const nn::GaussianPolicy& policy, const nn::ValueNet& value_e,
               const nn::ValueNet& value_i, const std::vector<int>& budgets,
               std::size_t offset);

  /// Reference per-sample collection: each slot in turn runs the legacy
  /// serial loop (act / log_prob / value / step per timestep). The
  /// bit-identity baseline for collect() and the benches' serial arm.
  void collect_serial(const nn::GaussianPolicy& policy,
                      const nn::ValueNet& value_e, const nn::ValueNet& value_i,
                      const std::vector<int>& budgets, std::size_t offset);

  /// Serialize every slot's persistent state (stream, episode scalars,
  /// in-flight episode history). load_state rebuilds each slot's env by
  /// replaying its episode into the current clone and checks the replayed
  /// observation against the snapshotted one bit for bit.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  void refresh_split_cache();
  void begin_round(EnvSlot& s, int budget);
  void record_step(EnvSlot& s, const double* act, std::size_t na, double lp,
                   double ve, StepResult&& sr, const nn::ValueNet& value_e,
                   const nn::ValueNet& value_i);
  void close_round(EnvSlot& s, const nn::ValueNet& value_e,
                   const nn::ValueNet& value_i);

  std::vector<EnvSlot> slots_;
  /// All slots split their step around the SAME network-backed frozen
  /// policy, so their per-tick victim queries merge into one batch.
  bool victim_batchable_ = false;
  VecNormalizer* obs_norm_ = nullptr;

  // Per-engine scratch (grows to the high-water mark once, then reused).
  nn::Mlp::Workspace ws_policy_, ws_value_, ws_victim_;
  nn::Batch obs_b_, act_b_, query_b_;
  std::vector<double> logp_, vals_, action_, victim_out_;
};

}  // namespace imap::rl
