#include "rl/normalizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::rl {

VecNormalizer::VecNormalizer(std::size_t dim, double clip)
    : mean_(dim, 0.0), m2_(dim, 0.0), clip_(clip) {}

void VecNormalizer::update(const std::vector<double>& x) {
  IMAP_CHECK(x.size() == mean_.size());
  ++n_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(n_);
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

void VecNormalizer::update_batch(const nn::Batch& x) {
  IMAP_CHECK(x.dim() == mean_.size());
  const std::size_t nb = x.rows();
  if (nb == 0) return;
  if (nb == 1) {
    // One row degenerates to the streaming update — keep it bitwise equal.
    ++n_;
    const double* r = x.row(0);
    for (std::size_t i = 0; i < mean_.size(); ++i) {
      const double delta = r[i] - mean_[i];
      mean_[i] += delta / static_cast<double>(n_);
      m2_[i] += delta * (r[i] - mean_[i]);
    }
    return;
  }

  // Welford over the batch rows into scratch moments...
  batch_mean_.assign(mean_.size(), 0.0);
  batch_m2_.assign(mean_.size(), 0.0);
  for (std::size_t r = 0; r < nb; ++r) {
    const double* row = x.row(r);
    for (std::size_t i = 0; i < mean_.size(); ++i) {
      const double delta = row[i] - batch_mean_[i];
      batch_mean_[i] += delta / static_cast<double>(r + 1);
      batch_m2_[i] += delta * (row[i] - batch_mean_[i]);
    }
  }

  // ...then one Chan parallel merge into the running moments:
  //   δ = μ_B − μ_A,  μ ← μ_A + δ·n_B/n,  M2 ← M2_A + M2_B + δ²·n_A·n_B/n.
  const double na = static_cast<double>(n_);
  const double nbd = static_cast<double>(nb);
  const double n = na + nbd;
  for (std::size_t i = 0; i < mean_.size(); ++i) {
    const double delta = batch_mean_[i] - mean_[i];
    mean_[i] += delta * nbd / n;
    m2_[i] += batch_m2_[i] + delta * delta * na * nbd / n;
  }
  n_ += nb;
}

std::vector<double> VecNormalizer::variance() const {
  std::vector<double> v(mean_.size(), 0.0);
  if (n_ == 0) return v;
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = m2_[i] / static_cast<double>(n_);
  return v;
}

std::vector<double> VecNormalizer::normalize(
    const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == mean_.size());
  std::vector<double> y(x.size());
  const auto var = variance();
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = (x[i] - mean_[i]) / std::sqrt(var[i] + 1e-8);
    y[i] = std::clamp(y[i], -clip_, clip_);
  }
  return y;
}

void ScalarScaler::update(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double ScalarScaler::stddev() const {
  if (n_ == 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

double ScalarScaler::scale(double x) const { return x / (stddev() + 1e-8); }

void VecNormalizer::save_state(BinaryWriter& w) const {
  w.write_u64(n_);
  w.write_f64(clip_);
  w.write_vec(mean_);
  w.write_vec(m2_);
}

void VecNormalizer::load_state(BinaryReader& r) {
  n_ = r.read_u64();
  clip_ = r.read_f64();
  auto mean = r.read_vec();
  auto m2 = r.read_vec();
  IMAP_CHECK_MSG(mean.size() == mean_.size() && m2.size() == m2_.size(),
                 "normalizer checkpoint has wrong dimension");
  mean_ = std::move(mean);
  m2_ = std::move(m2);
}

void ScalarScaler::save_state(BinaryWriter& w) const {
  w.write_u64(n_);
  w.write_f64(mean_);
  w.write_f64(m2_);
}

void ScalarScaler::load_state(BinaryReader& r) {
  n_ = r.read_u64();
  mean_ = r.read_f64();
  m2_ = r.read_f64();
}

}  // namespace imap::rl
