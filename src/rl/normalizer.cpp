#include "rl/normalizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::rl {

VecNormalizer::VecNormalizer(std::size_t dim, double clip)
    : mean_(dim, 0.0), m2_(dim, 0.0), clip_(clip) {}

void VecNormalizer::update(const std::vector<double>& x) {
  IMAP_CHECK(x.size() == mean_.size());
  ++n_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(n_);
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

std::vector<double> VecNormalizer::variance() const {
  std::vector<double> v(mean_.size(), 0.0);
  if (n_ == 0) return v;
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = m2_[i] / static_cast<double>(n_);
  return v;
}

std::vector<double> VecNormalizer::normalize(
    const std::vector<double>& x) const {
  IMAP_CHECK(x.size() == mean_.size());
  std::vector<double> y(x.size());
  const auto var = variance();
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = (x[i] - mean_[i]) / std::sqrt(var[i] + 1e-8);
    y[i] = std::clamp(y[i], -clip_, clip_);
  }
  return y;
}

void ScalarScaler::update(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double ScalarScaler::stddev() const {
  if (n_ == 0) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

double ScalarScaler::scale(double x) const { return x / (stddev() + 1e-8); }

}  // namespace imap::rl
