#pragma once

#include <vector>

#include "common/rng.h"

namespace imap::rl {

/// Axis-aligned box in R^n — action spaces for all environments here.
class BoxSpace {
 public:
  BoxSpace() = default;

  /// Symmetric box [-bound, bound]^dim.
  BoxSpace(std::size_t dim, double bound);

  BoxSpace(std::vector<double> low, std::vector<double> high);

  std::size_t dim() const { return low_.size(); }
  const std::vector<double>& low() const { return low_; }
  const std::vector<double>& high() const { return high_; }

  /// Project a point into the box (componentwise clamp).
  std::vector<double> clamp(std::vector<double> x) const;

  bool contains(const std::vector<double>& x, double tol = 1e-9) const;

  std::vector<double> sample(Rng& rng) const;

 private:
  std::vector<double> low_;
  std::vector<double> high_;
};

}  // namespace imap::rl
