#include "rl/policy_handle.h"

#include "common/check.h"

namespace imap::rl {

PolicyHandle::PolicyHandle(std::shared_ptr<const nn::GaussianPolicy> net)
    : net_(std::move(net)) {
  // Serving mode is decided here, once: the quantization is built from the
  // frozen weights at handle-construction time and never refreshed (the
  // handle's whole contract is that the victim does not change). Training
  // code paths never construct handles with the toggle on.
  if (net_ != nullptr && nn::victim_quant_enabled())
    qnet_ = std::make_shared<const nn::QuantizedMlp>(net_->net());
}

PolicyHandle PolicyHandle::snapshot(const nn::GaussianPolicy& policy) {
  return PolicyHandle(std::make_shared<const nn::GaussianPolicy>(policy));
}

PolicyHandle PolicyHandle::serving(
    std::shared_ptr<const nn::GaussianPolicy> net, bool quantized) {
  IMAP_CHECK_MSG(net != nullptr, "serving handle needs a network");
  PolicyHandle h;
  h.net_ = std::move(net);
  if (quantized)
    h.qnet_ = std::make_shared<const nn::QuantizedMlp>(h.net_->net());
  return h;
}

std::vector<double> PolicyHandle::query(const std::vector<double>& obs) const {
  if (qnet_) return qnet_->forward(obs);
  return net_ ? net_->mean_action(obs) : fn_(obs);
}

const nn::Batch& PolicyHandle::query_batch(const nn::Batch& obs,
                                           nn::Mlp::Workspace& ws) const {
  IMAP_CHECK_MSG(net_ != nullptr, "query_batch on a non-batchable handle");
  if (qnet_) return qnet_->forward_batch(obs, ws);
  return net_->mean_batch(obs, ws);
}

}  // namespace imap::rl
