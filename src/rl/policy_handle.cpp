#include "rl/policy_handle.h"

#include "common/check.h"

namespace imap::rl {

PolicyHandle PolicyHandle::snapshot(const nn::GaussianPolicy& policy) {
  return PolicyHandle(std::make_shared<const nn::GaussianPolicy>(policy));
}

const nn::Batch& PolicyHandle::query_batch(const nn::Batch& obs,
                                           nn::Mlp::Workspace& ws) const {
  IMAP_CHECK_MSG(net_ != nullptr, "query_batch on a non-batchable handle");
  return net_->mean_batch(obs, ws);
}

}  // namespace imap::rl
