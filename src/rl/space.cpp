#include "rl/space.h"

#include <algorithm>

#include "common/check.h"

namespace imap::rl {

BoxSpace::BoxSpace(std::size_t dim, double bound)
    : low_(dim, -bound), high_(dim, bound) {
  IMAP_CHECK(bound >= 0.0);
}

BoxSpace::BoxSpace(std::vector<double> low, std::vector<double> high)
    : low_(std::move(low)), high_(std::move(high)) {
  IMAP_CHECK(low_.size() == high_.size());
  for (std::size_t i = 0; i < low_.size(); ++i) IMAP_CHECK(low_[i] <= high_[i]);
}

std::vector<double> BoxSpace::clamp(std::vector<double> x) const {
  IMAP_CHECK(x.size() == dim());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], low_[i], high_[i]);
  return x;
}

bool BoxSpace::contains(const std::vector<double>& x, double tol) const {
  if (x.size() != dim()) return false;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] < low_[i] - tol || x[i] > high_[i] + tol) return false;
  return true;
}

std::vector<double> BoxSpace::sample(Rng& rng) const {
  std::vector<double> x(dim());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = rng.uniform(low_[i], high_[i]);
  return x;
}

}  // namespace imap::rl
