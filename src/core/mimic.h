#pragma once

#include <memory>

#include "common/serialize.h"
#include "nn/adam.h"
#include "nn/gaussian.h"
#include "rl/rollout.h"

namespace imap::core {

/// The adversarial mimic policy π^{α,m} of the D-driven regularizer
/// (Sec. 5.2.4): a behaviour-cloned imitator of the AP's *past* policies.
/// Each iteration it takes a few supervised steps toward the latest rollout
/// (state, action) pairs, so it always lags the live policy — an exponential
/// moving summary of {π_i^α}. The bonus KL(π^α ‖ π^{α,m}) then rewards the
/// AP for deviating from where it used to be.
class MimicPolicy {
 public:
  MimicPolicy(std::size_t obs_dim, std::size_t act_dim,
              std::vector<std::size_t> hidden, Rng rng, double lr = 1e-3);

  /// Behaviour-clone toward the rollout (maximum-likelihood on the sampled
  /// actions) for `epochs` passes over minibatches of size `minibatch`.
  void update(const rl::RolloutBuffer& buf, int epochs = 2,
              int minibatch = 128);

  /// KL(π(·|obs) ‖ π_m(·|obs)) in closed form (both diagonal Gaussians).
  double kl_from(const nn::GaussianPolicy& policy,
                 const std::vector<double>& obs) const;

  const nn::GaussianPolicy& policy() const { return mimic_; }

  /// Serialize the mimic weights, its Adam moments and its sampling stream.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  nn::GaussianPolicy mimic_;
  nn::Adam opt_;
  Rng rng_;
};

}  // namespace imap::core
