#pragma once

#include <memory>

#include "common/serialize.h"
#include "nn/adam.h"
#include "nn/batch.h"
#include "nn/mlp.h"
#include "rl/rollout.h"

namespace imap::core {

/// Random Network Distillation (Burda et al. 2018) — the prediction-error
/// state-novelty estimator the paper considers and *rejects* in favour of
/// KNN (Sec. 5.2: "these methods suffer from forgetting problems"). It is
/// implemented here so the choice can be ablated (bench_ablation): a frozen
/// random target network f(s) and a trained predictor g(s); the bonus is the
/// prediction error ‖g(s) − f(s)‖², which decays as regions become familiar
/// — and, characteristically, *re-inflates* for regions the predictor has
/// forgotten.
class RndNovelty {
 public:
  RndNovelty(std::size_t obs_dim, std::size_t embed_dim, Rng rng,
             double lr = 1e-3);

  /// Prediction-error novelty of one state.
  double novelty(const std::vector<double>& s) const;

  /// Train the predictor toward the frozen target on the rollout states
  /// (one pass of minibatch SGD per call). Runs through the batched nn
  /// kernels; bit-identical to the historical per-sample loop.
  void update(const rl::RolloutBuffer& buf, int minibatch = 128);

  /// Convenience: fill buf.rew_i with novelty then update — the same
  /// contract as an adversarial intrinsic regularizer's compute step.
  /// The novelty sweep is chunk-batched, bit-identical to per-state
  /// novelty() calls.
  void compute(rl::RolloutBuffer& buf);

  std::size_t embed_dim() const { return target_.out_dim(); }

  /// Serialize both networks (the frozen target too, for safety against
  /// init-order drift), the predictor's Adam moments and the stream.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  nn::Mlp target_;     ///< frozen random features
  nn::Mlp predictor_;  ///< distilled copy, trained online
  nn::Adam opt_;
  Rng rng_;
  nn::Batch obs_b_;    ///< reusable gathered-observation rows
  nn::Batch grad_b_;   ///< reusable dL/d(pred) rows
};

}  // namespace imap::core
