#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/proc.h"
#include "nn/gaussian.h"
#include "rl/evaluate.h"
#include "rl/policy_handle.h"

namespace imap::core {

/// Victim model zoo: trains every (task × defense) victim on demand —
/// deterministically from the experiment seed — and caches the resulting
/// policy checkpoints on disk so all benches share them. This stands in for
/// the paper's released pre-trained victim agents.
class Zoo {
 public:
  /// `snapshot_every` > 0 writes a resumable mid-training snapshot
  /// (`<checkpoint>.snap`) every N advance units while a victim trains; an
  /// interrupted run picks up from it on the next request and the snapshot
  /// is removed once the finished checkpoint lands.
  Zoo(std::string dir, double scale, std::uint64_t seed,
      int snapshot_every = 0);

  /// Single-agent victim for `env_name`, trained with `defense`
  /// ("PPO", "ATLA", "SA", "ATLA-SA", "RADIAL", "WocaR"). Sparse tasks train
  /// on their dense counterparts (see env::make_training_env). Any scenario
  /// string is accepted and resolves to its BASE env's victim — the
  /// checkpoint is a property of the task, not the threat model, so every
  /// scenario over one env shares one artifact and plain env names keep
  /// their pre-scenario keys.
  nn::GaussianPolicy victim(const std::string& env_name,
                            const std::string& defense = "PPO");

  /// Competitive-game victim (runner / kicker), trained by PPO against the
  /// scripted opponent pool.
  nn::GaussianPolicy game_victim(const std::string& game_name);

  /// Shared-ownership variants backed by the in-memory memo: a warm lookup
  /// (checkpoint already verified, file unchanged on disk) costs one stat()
  /// and a shared_ptr copy — no archive re-read, no CRC re-check, no weight
  /// copy. This is the lookup the serving daemon's model cache rides.
  std::shared_ptr<const nn::GaussianPolicy> victim_shared(
      const std::string& env_name, const std::string& defense = "PPO");
  std::shared_ptr<const nn::GaussianPolicy> game_victim_shared(
      const std::string& game_name);

  /// On-disk checkpoint path a (deploy env × defense) victim is cached
  /// under. Public so the serving layer can fingerprint (stat + CRC) the
  /// artifact it is holding in memory; sparse tasks map to their dense
  /// training counterpart's path, games to their PPO checkpoint.
  std::string checkpoint_path(const std::string& env_name,
                              const std::string& defense) const;

  /// Archive parses performed so far (cold loads + post-training loads).
  /// Warm memoized lookups do not advance it — pinned by tests.
  std::uint64_t full_loads() const;

  /// Wrap a policy as the deployed black-box ActionFn (deterministic mean).
  static rl::ActionFn as_fn(const nn::GaussianPolicy& policy);

  /// Wrap a policy as a network-backed frozen handle: per-sample queries are
  /// bit-identical to as_fn, and the vectorized rollout engine can
  /// additionally answer them batched (one victim forward per lockstep
  /// tick). Preferred for attack-trainer construction.
  static rl::PolicyHandle as_policy(const nn::GaussianPolicy& policy);

  /// Training budget (environment steps) for a task, after scaling.
  long long victim_steps(const std::string& env_name) const;

  const std::string& dir() const { return dir_; }
  double scale() const { return scale_; }

 private:
  /// Checkpoint path; carries the archive format version so a zoo directory
  /// written by an older format is retrained, never misread.
  std::string path_for(const std::string& env_name,
                       const std::string& defense) const;

  /// One memoized, CRC-verified parse per distinct on-disk state of a
  /// checkpoint. The stat signature taken at verification time guards the
  /// entry: a lookup whose fresh stat matches returns the cached network
  /// without touching the file contents; a mismatch (artifact rewritten by
  /// a retrain or another fabric process) re-reads and re-verifies. Returns
  /// nullptr when the file does not exist.
  std::shared_ptr<const nn::GaussianPolicy> load_memoized(
      const std::string& path);
  /// Install a just-trained policy under `path`'s current signature so the
  /// next lookup is warm.
  std::shared_ptr<const nn::GaussianPolicy> remember(
      const std::string& path, nn::GaussianPolicy policy);

  struct Memo {
    proc::FileSig sig;
    std::shared_ptr<const nn::GaussianPolicy> policy;
  };

  std::string dir_;
  double scale_;
  std::uint64_t seed_;
  int snapshot_every_;
  mutable std::mutex memo_m_;  ///< victim() is called from serving threads
  std::unordered_map<std::string, Memo> memo_;
  std::uint64_t full_loads_ = 0;
};

}  // namespace imap::core
