#pragma once

#include <memory>
#include <string>

#include "common/config.h"
#include "nn/gaussian.h"
#include "rl/evaluate.h"
#include "rl/policy_handle.h"

namespace imap::core {

/// Victim model zoo: trains every (task × defense) victim on demand —
/// deterministically from the experiment seed — and caches the resulting
/// policy checkpoints on disk so all benches share them. This stands in for
/// the paper's released pre-trained victim agents.
class Zoo {
 public:
  /// `snapshot_every` > 0 writes a resumable mid-training snapshot
  /// (`<checkpoint>.snap`) every N advance units while a victim trains; an
  /// interrupted run picks up from it on the next request and the snapshot
  /// is removed once the finished checkpoint lands.
  Zoo(std::string dir, double scale, std::uint64_t seed,
      int snapshot_every = 0);

  /// Single-agent victim for `env_name`, trained with `defense`
  /// ("PPO", "ATLA", "SA", "ATLA-SA", "RADIAL", "WocaR"). Sparse tasks train
  /// on their dense counterparts (see env::make_training_env).
  nn::GaussianPolicy victim(const std::string& env_name,
                            const std::string& defense = "PPO");

  /// Competitive-game victim (runner / kicker), trained by PPO against the
  /// scripted opponent pool.
  nn::GaussianPolicy game_victim(const std::string& game_name);

  /// Wrap a policy as the deployed black-box ActionFn (deterministic mean).
  static rl::ActionFn as_fn(const nn::GaussianPolicy& policy);

  /// Wrap a policy as a network-backed frozen handle: per-sample queries are
  /// bit-identical to as_fn, and the vectorized rollout engine can
  /// additionally answer them batched (one victim forward per lockstep
  /// tick). Preferred for attack-trainer construction.
  static rl::PolicyHandle as_policy(const nn::GaussianPolicy& policy);

  /// Training budget (environment steps) for a task, after scaling.
  long long victim_steps(const std::string& env_name) const;

  const std::string& dir() const { return dir_; }
  double scale() const { return scale_; }

 private:
  /// Checkpoint path; carries the archive format version so a zoo directory
  /// written by an older format is retrained, never misread.
  std::string path_for(const std::string& env_name,
                       const std::string& defense) const;

  std::string dir_;
  double scale_;
  std::uint64_t seed_;
  int snapshot_every_;
};

}  // namespace imap::core
