#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/knn.h"
#include "core/mimic.h"
#include "nn/gaussian.h"
#include "rl/rollout.h"

namespace imap::core {

/// The four adversarial intrinsic regularizers (Sec. 5.2).
enum class RegularizerType { SC, PC, R, D };

std::string to_string(RegularizerType t);
RegularizerType regularizer_from_string(const std::string& s);

/// Projection Π_Z of the full (adversary-side) observation onto a
/// contiguous index range — identity when `end == 0`. Multi-agent tasks use
/// the victim / adversary ranges of the joint state (Eq. 7 / Eq. 9).
struct ObsSlice {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< 0 ⇒ whole observation

  bool whole() const { return end == 0; }
  std::size_t dim(std::size_t full_dim) const {
    return whole() ? full_dim : end - begin;
  }
  std::vector<double> project(const std::vector<double>& s) const;
};

struct RegularizerOptions {
  RegularizerType type = RegularizerType::PC;
  std::size_t knn_k = 3;
  std::size_t pc_capacity = 4096;  ///< reservoir size of the union buffer B

  /// Multi-agent mixing ξ between the adversary-marginal and the
  /// victim-marginal terms (Eq. 7 / Eq. 9). Ignored when victim_slice is
  /// whole (single-agent case).
  double xi = 0.5;
  ObsSlice adversary_slice;  ///< Π_{S^α}
  ObsSlice victim_slice;     ///< Π_{S^ν}

  /// R-driven: the adversarial state s^{ν(α)} (defaults to s₀^ν — "a natural
  /// choice", Sec. 5.2.3). In the victim-slice frame.
  std::vector<double> risk_target;
};

/// Interface: consume a fresh rollout, fill `buf.rew_i` with the intrinsic
/// bonus r_I^α = ∇J_I (Eq. 13), and update any internal knowledge (union
/// buffers, mimic policies). `policy` is the AP that generated the rollout —
/// only the D-driven regularizer reads it.
class AdversarialRegularizer {
 public:
  virtual ~AdversarialRegularizer() = default;
  virtual void compute(rl::RolloutBuffer& buf,
                       const nn::GaussianPolicy& policy) = 0;
  virtual RegularizerType type() const = 0;
  virtual std::string name() const { return to_string(type()); }

  /// Persist internal knowledge (union buffers, mimic nets, streams) so a
  /// restored regularizer produces bit-identical bonuses. Default no-op for
  /// stateless regularizers (R-driven).
  virtual void save_state(BinaryWriter& w) const { (void)w; }
  virtual void load_state(BinaryReader& r) { (void)r; }
};

/// Factory. `obs_dim` is the adversary observation width; `rng` seeds the
/// reservoir buffers and the mimic.
std::unique_ptr<AdversarialRegularizer> make_regularizer(
    const RegularizerOptions& opts, std::size_t obs_dim, std::size_t act_dim,
    Rng rng);

}  // namespace imap::core
