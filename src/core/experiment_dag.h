#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "core/experiment.h"

namespace imap::core {

/// One node of the experiment dependency DAG. The paper's grid factors as
/// victim training (per checkpoint identity: training env × defense, or
/// game) → attack training → evaluation; attack cells of the same victim
/// are independent once its checkpoint exists, so they parallelise freely.
struct DagNode {
  enum class Kind { Victim, GameVictim, Attack };
  Kind kind = Kind::Attack;
  std::string env_name;  ///< victims: env the zoo request names; attacks: task
  std::string defense;   ///< single-agent victim nodes only
  AttackPlan plan;       ///< attack nodes only
  std::vector<std::size_t> deps;  ///< node indices that must finish first
};

struct DagOptions {
  /// Worker processes. 0 = IMAP_PROCS; <= 1 runs every node inline.
  int procs = 0;
  /// Crash drill: the Nth Attack dispatch is marked so its worker halts the
  /// cell after one training iteration (leaving the run's usual resumable
  /// snapshot and its stale cell lockfile) and dies without replying. The
  /// scheduler must detect the death, respawn the worker and re-dispatch
  /// the cell, which steals the lock and resumes from the snapshot. 0 = off.
  int crash_nth_attack = 0;
  /// Dispatch budget per node; a node failing this many times is fatal.
  int max_attempts = 3;
};

struct DagStats {
  int nodes = 0;
  int dispatched = 0;     ///< requests sent, including re-dispatches
  int re_dispatched = 0;  ///< dispatches that replaced a dead worker's cell
  int worker_deaths = 0;
  int procs = 1;
};

/// Build the dependency DAG for `plans`: one victim node per checkpoint
/// identity (training env × defense; sparse tasks share their dense
/// counterpart's victim), one attack node per unique cache key, and each
/// attack depending on its victim. `node_of_plan[i]` maps plan i to its
/// (possibly shared) attack node.
std::vector<DagNode> build_experiment_dag(
    ExperimentRunner& runner, const std::vector<AttackPlan>& plans,
    std::vector<std::size_t>& node_of_plan);

/// Topological scheduler over a pool of forked cell workers.
///
/// Ready nodes sit in one queue and any idle worker pulls the next one
/// (pull-based work stealing), so a slow cell never blocks unrelated ready
/// work. Each worker runs one ExperimentRunner over the shared zoo/result
/// store; per-cell file locks plus atomic tmp+rename writes make concurrent
/// artifact access safe, and every finished cell is cached under its
/// cache_key, so the scheduler's unit of crash recovery is the cell: a dead
/// worker's cell is re-dispatched and resumes from the zoo / snapshot /
/// cache state the crashed attempt left on disk.
class DagScheduler {
 public:
  DagScheduler(BenchConfig cfg, DagOptions opts);

  /// Run every plan's cell (victims first); outcomes in plan order.
  /// Identical results to running the plans serially through
  /// ExperimentRunner::run — cells derive randomness from plan_rng only.
  std::vector<AttackOutcome> run(const std::vector<AttackPlan>& plans);

  const DagStats& stats() const { return stats_; }
  /// The DAG of the last run() and its per-node wall-clock (victim nodes
  /// included), for bench reporting.
  const std::vector<DagNode>& nodes() const { return nodes_; }
  const std::vector<double>& node_seconds() const { return node_seconds_; }

 private:
  void run_pool(std::vector<AttackOutcome>& node_out, int procs);

  BenchConfig cfg_;
  DagOptions opts_;
  DagStats stats_;
  ExperimentRunner runner_;  ///< key computation + the inline procs<=1 path
  std::vector<DagNode> nodes_;
  std::vector<double> node_seconds_;
};

}  // namespace imap::core
