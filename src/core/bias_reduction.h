#pragma once

#include "common/serialize.h"

namespace imap::core {

/// Bias-Reduction (Sec. 5.4, Eq. 15–17): an adaptive temperature schedule
/// enforcing the approximate adversarial-optimality constraint
/// J_AP(π_{k+1}) ≥ J_AP(π_k) via a Lagrangian dual ascent:
///
///   τ_k       = 1 / (1 + λ_k)                         (Eq. 16)
///   λ_{k+1}   = max(0, λ_k − η·(J_AP(π_{k+1}) − J_AP(π_k)))   (Eq. 17)
///
/// λ_0 = 0 ⇒ τ_0 = 1: early training explores at full intrinsic strength;
/// whenever the adversary's objective J_AP *degrades* (the regularizer is
/// distracting the AP), λ grows and τ shrinks, shifting the AP toward pure
/// exploitation. When disabled, τ stays at the fixed value `tau_fixed`.
class BiasReduction {
 public:
  BiasReduction(bool enabled, double eta, double tau_fixed = 1.0);

  /// Temperature for the upcoming iteration.
  double tau() const;

  /// Feed the latest measured J_AP (e.g. −mean episode surrogate). The first
  /// observation only initialises the baseline.
  void observe(double j_ap);

  double lambda() const { return lambda_; }
  bool enabled() const { return enabled_; }

  /// Serialize the dual state (λ_k and the J_AP baseline).
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  bool enabled_;
  double eta_;
  double tau_fixed_;
  double lambda_ = 0.0;
  bool has_prev_ = false;
  double prev_j_ = 0.0;
};

}  // namespace imap::core
