#include "core/bias_reduction.h"

#include <algorithm>

#include "common/check.h"

namespace imap::core {

BiasReduction::BiasReduction(bool enabled, double eta, double tau_fixed)
    : enabled_(enabled), eta_(eta), tau_fixed_(tau_fixed) {
  IMAP_CHECK(eta_ >= 0.0);
  IMAP_CHECK(tau_fixed_ >= 0.0);
}

double BiasReduction::tau() const {
  if (!enabled_) return tau_fixed_;
  return 1.0 / (1.0 + lambda_);
}

void BiasReduction::observe(double j_ap) {
  if (!enabled_) return;
  if (!has_prev_) {
    prev_j_ = j_ap;
    has_prev_ = true;
    return;
  }
  const double delta = j_ap - prev_j_;
  lambda_ = std::max(0.0, lambda_ - eta_ * delta);
  prev_j_ = j_ap;
}

void BiasReduction::save_state(BinaryWriter& w) const {
  w.write_f64(lambda_);
  w.write_bool(has_prev_);
  w.write_f64(prev_j_);
}

void BiasReduction::load_state(BinaryReader& r) {
  lambda_ = r.read_f64();
  has_prev_ = r.read_bool();
  prev_j_ = r.read_f64();
}

}  // namespace imap::core
