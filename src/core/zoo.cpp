#include "core/zoo.h"

#include <algorithm>
#include <filesystem>

#include "common/check.h"
#include "common/proc.h"
#include "defense/victim_trainer.h"
#include "env/multiagent.h"
#include "env/registry.h"
#include "nn/checkpoint.h"
#include "scenario/spec.h"

namespace imap::core {

namespace {

/// Scenario strings resolve to their BASE env's victim: the checkpoint is a
/// property of the task the victim was trained on, never of the threat model
/// it is later attacked under — so every scenario over one env shares one
/// artifact, and plain env names (trivial scenarios) keep the exact keys and
/// paths they had before the scenario layer existed.
std::string base_env(const std::string& name) {
  if (const auto canon = scenario::try_canonical(name))
    return scenario::parse(*canon).env;
  return name;  // not a scenario string; let the registry reject it
}

}  // namespace

Zoo::Zoo(std::string dir, double scale, std::uint64_t seed,
         int snapshot_every)
    : dir_(std::move(dir)),
      scale_(scale),
      seed_(seed),
      snapshot_every_(snapshot_every) {
  std::filesystem::create_directories(dir_);
}

std::string Zoo::path_for(const std::string& env_name,
                          const std::string& defense) const {
  std::string tag = defense;
  std::replace(tag.begin(), tag.end(), '-', '_');
  return dir_ + "/" + env_name + "_" + tag + "_s" + std::to_string(seed_) +
         "_v" + std::to_string(kFormatVersion) + ".pol";
}

long long Zoo::victim_steps(const std::string& scenario_or_env) const {
  const std::string env_name = base_env(scenario_or_env);
  long long base = 500'000;
  const auto& s = env::spec(env_name);
  // The cheetah's termination-free deployment semantics make it the slowest
  // learner of the family; give it more of a budget.
  if (env_name == "HalfCheetah" || env_name == "SparseHalfCheetah" ||
      env_name == "Ant" || env_name == "SparseAnt")
    return std::max<long long>(4096, static_cast<long long>(700'000 * scale_));
  switch (s.type) {
    case env::TaskType::DenseLocomotion:
    case env::TaskType::SparseLocomotion: base = 500'000; break;
    case env::TaskType::Navigation: base = 240'000; break;
    case env::TaskType::Manipulation: base = 200'000; break;
    case env::TaskType::MultiAgent: base = 350'000; break;
  }
  return std::max<long long>(
      4096, static_cast<long long>(static_cast<double>(base) * scale_));
}

rl::ActionFn Zoo::as_fn(const nn::GaussianPolicy& policy) {
  auto snapshot = std::make_shared<nn::GaussianPolicy>(policy);
  return [snapshot](const std::vector<double>& obs) {
    return snapshot->mean_action(obs);
  };
}

rl::PolicyHandle Zoo::as_policy(const nn::GaussianPolicy& policy) {
  return rl::PolicyHandle::snapshot(policy);
}

std::string Zoo::checkpoint_path(const std::string& scenario_or_env,
                                 const std::string& defense) const {
  const std::string env_name = base_env(scenario_or_env);
  if (env::spec(env_name).type == env::TaskType::MultiAgent)
    return path_for(env_name, "PPO");
  return path_for(env::make_training_env(env_name)->name(), defense);
}

std::uint64_t Zoo::full_loads() const {
  std::lock_guard<std::mutex> lk(memo_m_);
  return full_loads_;
}

std::shared_ptr<const nn::GaussianPolicy> Zoo::load_memoized(
    const std::string& path) {
  // One stat decides everything: absent file -> miss (and the memo entry,
  // if any, is stale); signature match -> the previous parse+CRC check of
  // these exact bytes still stands, reuse it without reopening the file.
  const auto sig = proc::file_sig(path);
  std::lock_guard<std::mutex> lk(memo_m_);
  if (!sig) {
    memo_.erase(path);
    return nullptr;
  }
  const auto it = memo_.find(path);
  if (it != memo_.end() && it->second.sig == *sig) return it->second.policy;
  auto loaded = nn::load_policy(path);
  if (!loaded) return nullptr;  // vanished between stat and open
  ++full_loads_;
  auto policy =
      std::make_shared<const nn::GaussianPolicy>(std::move(*loaded));
  memo_[path] = Memo{*sig, policy};
  return policy;
}

std::shared_ptr<const nn::GaussianPolicy> Zoo::remember(
    const std::string& path, nn::GaussianPolicy policy) {
  auto sp = std::make_shared<const nn::GaussianPolicy>(std::move(policy));
  const auto sig = proc::file_sig(path);
  IMAP_CHECK_MSG(sig.has_value(), "checkpoint missing after save: " << path);
  std::lock_guard<std::mutex> lk(memo_m_);
  memo_[path] = Memo{*sig, sp};
  return sp;
}

nn::GaussianPolicy Zoo::victim(const std::string& env_name,
                               const std::string& defense) {
  return *victim_shared(env_name, defense);
}

std::shared_ptr<const nn::GaussianPolicy> Zoo::victim_shared(
    const std::string& scenario_or_env, const std::string& defense) {
  const std::string env_name = base_env(scenario_or_env);
  const auto training_env = env::make_training_env(env_name);
  // Key the cache by the TRAINING env so sparse tasks reuse the victim of
  // their dense counterpart (SparseHopper deploys the Hopper victim, etc.).
  const auto path = path_for(training_env->name(), defense);
  if (auto cached = load_memoized(path)) return cached;
  // Concurrent fabric processes wanting the same victim serialize here; the
  // loser of the race finds the winner's finished checkpoint on re-check
  // instead of training a duplicate. The re-check is memoized: when the
  // file state is unchanged since the pre-lock stat it costs one stat, not
  // an archive re-read.
  proc::FileLock lock(path + ".lock");
  if (auto cached = load_memoized(path)) return cached;
  defense::DefenseOptions opts;
  opts.eps = env::spec(env_name).epsilon;
  opts.reg_coef = 1.0;

  // Deterministic per-(training-env, defense) seed from the base seed.
  Rng seeder(seed_);
  std::uint64_t stream = 0;
  for (const char c : training_env->name() + "|" + defense)
    stream = stream * 131 + static_cast<unsigned char>(c);
  Rng rng = seeder.split(stream);

  defense::VictimTrainSession session(*training_env,
                                      defense::defense_from_string(defense),
                                      victim_steps(env_name), opts, rng);
  // Resume a run this process (or a previous one) left unfinished.
  const std::string snap = path + ".snap";
  session.restore(snap);
  int since_snapshot = 0;
  while (!session.done()) {
    session.advance();
    if (snapshot_every_ > 0 && ++since_snapshot >= snapshot_every_ &&
        !session.done()) {
      IMAP_CHECK_MSG(session.snapshot(snap),
                     "failed to write snapshot " << snap);
      since_snapshot = 0;
    }
  }
  auto policy = session.policy();
  IMAP_CHECK_MSG(nn::save_policy(path, policy),
                 "failed to write checkpoint " << path);
  std::filesystem::remove(snap);  // the finished checkpoint supersedes it
  return remember(path, std::move(policy));
}

nn::GaussianPolicy Zoo::game_victim(const std::string& game_name) {
  return *game_victim_shared(game_name);
}

std::shared_ptr<const nn::GaussianPolicy> Zoo::game_victim_shared(
    const std::string& game_name) {
  const auto path = path_for(game_name, "PPO");
  if (auto cached = load_memoized(path)) return cached;
  proc::FileLock lock(path + ".lock");
  if (auto cached = load_memoized(path)) return cached;

  const auto game = env::make_multiagent_env(game_name);
  env::VictimSideEnv training_env(*game,
                                  env::victim_training_pool(game_name));

  Rng seeder(seed_);
  std::uint64_t stream = 0;
  for (const char c : game_name) stream = stream * 131 + static_cast<unsigned char>(c);
  Rng rng = seeder.split(stream);

  // Competitive-game victims need wider exploration to discover the
  // multi-stage skill (reach ball → dribble → score / dodge → sprint).
  rl::PpoOptions ppo;
  ppo.ent_coef = 0.01;
  ppo.init_log_std = -0.2;
  rl::PpoTrainer trainer(training_env, ppo, rng);
  const std::string snap = path + ".snap";
  trainer.restore(snap);
  const long long steps = victim_steps(game_name);
  int since_snapshot = 0;
  while (trainer.steps_done() < steps) {
    trainer.iterate();
    if (snapshot_every_ > 0 && ++since_snapshot >= snapshot_every_ &&
        trainer.steps_done() < steps) {
      IMAP_CHECK_MSG(trainer.snapshot(snap),
                     "failed to write snapshot " << snap);
      since_snapshot = 0;
    }
  }
  auto policy = trainer.policy();
  IMAP_CHECK_MSG(nn::save_policy(path, policy),
                 "failed to write checkpoint " << path);
  std::filesystem::remove(snap);
  return remember(path, std::move(policy));
}

}  // namespace imap::core
