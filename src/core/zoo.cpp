#include "core/zoo.h"

#include <algorithm>
#include <filesystem>

#include "common/check.h"
#include "common/proc.h"
#include "defense/victim_trainer.h"
#include "env/multiagent.h"
#include "env/registry.h"
#include "nn/checkpoint.h"

namespace imap::core {

Zoo::Zoo(std::string dir, double scale, std::uint64_t seed,
         int snapshot_every)
    : dir_(std::move(dir)),
      scale_(scale),
      seed_(seed),
      snapshot_every_(snapshot_every) {
  std::filesystem::create_directories(dir_);
}

std::string Zoo::path_for(const std::string& env_name,
                          const std::string& defense) const {
  std::string tag = defense;
  std::replace(tag.begin(), tag.end(), '-', '_');
  return dir_ + "/" + env_name + "_" + tag + "_s" + std::to_string(seed_) +
         "_v" + std::to_string(kFormatVersion) + ".pol";
}

long long Zoo::victim_steps(const std::string& env_name) const {
  long long base = 500'000;
  const auto& s = env::spec(env_name);
  // The cheetah's termination-free deployment semantics make it the slowest
  // learner of the family; give it more of a budget.
  if (env_name == "HalfCheetah" || env_name == "SparseHalfCheetah" ||
      env_name == "Ant" || env_name == "SparseAnt")
    return std::max<long long>(4096, static_cast<long long>(700'000 * scale_));
  switch (s.type) {
    case env::TaskType::DenseLocomotion:
    case env::TaskType::SparseLocomotion: base = 500'000; break;
    case env::TaskType::Navigation: base = 240'000; break;
    case env::TaskType::Manipulation: base = 200'000; break;
    case env::TaskType::MultiAgent: base = 350'000; break;
  }
  return std::max<long long>(
      4096, static_cast<long long>(static_cast<double>(base) * scale_));
}

rl::ActionFn Zoo::as_fn(const nn::GaussianPolicy& policy) {
  auto snapshot = std::make_shared<nn::GaussianPolicy>(policy);
  return [snapshot](const std::vector<double>& obs) {
    return snapshot->mean_action(obs);
  };
}

rl::PolicyHandle Zoo::as_policy(const nn::GaussianPolicy& policy) {
  return rl::PolicyHandle::snapshot(policy);
}

nn::GaussianPolicy Zoo::victim(const std::string& env_name,
                               const std::string& defense) {
  const auto training_env = env::make_training_env(env_name);
  // Key the cache by the TRAINING env so sparse tasks reuse the victim of
  // their dense counterpart (SparseHopper deploys the Hopper victim, etc.).
  const auto path = path_for(training_env->name(), defense);
  if (auto cached = nn::load_policy(path)) return std::move(*cached);
  // Concurrent fabric processes wanting the same victim serialize here; the
  // loser of the race finds the winner's finished checkpoint on re-check
  // instead of training a duplicate.
  proc::FileLock lock(path + ".lock");
  if (auto cached = nn::load_policy(path)) return std::move(*cached);
  defense::DefenseOptions opts;
  opts.eps = env::spec(env_name).epsilon;
  opts.reg_coef = 1.0;

  // Deterministic per-(training-env, defense) seed from the base seed.
  Rng seeder(seed_);
  std::uint64_t stream = 0;
  for (const char c : training_env->name() + "|" + defense)
    stream = stream * 131 + static_cast<unsigned char>(c);
  Rng rng = seeder.split(stream);

  defense::VictimTrainSession session(*training_env,
                                      defense::defense_from_string(defense),
                                      victim_steps(env_name), opts, rng);
  // Resume a run this process (or a previous one) left unfinished.
  const std::string snap = path + ".snap";
  session.restore(snap);
  int since_snapshot = 0;
  while (!session.done()) {
    session.advance();
    if (snapshot_every_ > 0 && ++since_snapshot >= snapshot_every_ &&
        !session.done()) {
      IMAP_CHECK_MSG(session.snapshot(snap),
                     "failed to write snapshot " << snap);
      since_snapshot = 0;
    }
  }
  auto policy = session.policy();
  IMAP_CHECK_MSG(nn::save_policy(path, policy),
                 "failed to write checkpoint " << path);
  std::filesystem::remove(snap);  // the finished checkpoint supersedes it
  return policy;
}

nn::GaussianPolicy Zoo::game_victim(const std::string& game_name) {
  const auto path = path_for(game_name, "PPO");
  if (auto cached = nn::load_policy(path)) return std::move(*cached);
  proc::FileLock lock(path + ".lock");
  if (auto cached = nn::load_policy(path)) return std::move(*cached);

  const auto game = env::make_multiagent_env(game_name);
  env::VictimSideEnv training_env(*game,
                                  env::victim_training_pool(game_name));

  Rng seeder(seed_);
  std::uint64_t stream = 0;
  for (const char c : game_name) stream = stream * 131 + static_cast<unsigned char>(c);
  Rng rng = seeder.split(stream);

  // Competitive-game victims need wider exploration to discover the
  // multi-stage skill (reach ball → dribble → score / dodge → sprint).
  rl::PpoOptions ppo;
  ppo.ent_coef = 0.01;
  ppo.init_log_std = -0.2;
  rl::PpoTrainer trainer(training_env, ppo, rng);
  const std::string snap = path + ".snap";
  trainer.restore(snap);
  const long long steps = victim_steps(game_name);
  int since_snapshot = 0;
  while (trainer.steps_done() < steps) {
    trainer.iterate();
    if (snapshot_every_ > 0 && ++since_snapshot >= snapshot_every_ &&
        trainer.steps_done() < steps) {
      IMAP_CHECK_MSG(trainer.snapshot(snap),
                     "failed to write snapshot " << snap);
      since_snapshot = 0;
    }
  }
  auto policy = trainer.policy();
  IMAP_CHECK_MSG(nn::save_policy(path, policy),
                 "failed to write checkpoint " << path);
  std::filesystem::remove(snap);
  return policy;
}

}  // namespace imap::core
