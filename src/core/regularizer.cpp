#include "core/regularizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace imap::core {

std::string to_string(RegularizerType t) {
  switch (t) {
    case RegularizerType::SC: return "SC";
    case RegularizerType::PC: return "PC";
    case RegularizerType::R: return "R";
    case RegularizerType::D: return "D";
  }
  return "?";
}

RegularizerType regularizer_from_string(const std::string& s) {
  if (s == "SC") return RegularizerType::SC;
  if (s == "PC") return RegularizerType::PC;
  if (s == "R") return RegularizerType::R;
  if (s == "D") return RegularizerType::D;
  IMAP_CHECK_MSG(false, "unknown regularizer: " << s);
  return RegularizerType::SC;  // unreachable
}

std::vector<double> ObsSlice::project(const std::vector<double>& s) const {
  if (whole()) return s;
  IMAP_CHECK(end <= s.size() && begin < end);
  return {s.begin() + static_cast<std::ptrdiff_t>(begin),
          s.begin() + static_cast<std::ptrdiff_t>(end)};
}

namespace {

double finite_or_zero(double x) { return std::isfinite(x) ? x : 0.0; }

/// One marginal of the SC-driven bonus: the KNN form of the entropy
/// gradient, log(1 + ‖s − s*_{D_k}‖), over the rollout's own states.
void add_sc_term(rl::RolloutBuffer& buf, const ObsSlice& slice, double weight,
                 std::size_t obs_dim, std::size_t k, Rng& rng) {
  const std::size_t d = slice.dim(obs_dim);
  KnnBuffer dk(d, buf.size(), k, rng.split(rng.next_u64()));
  std::vector<std::vector<double>> proj(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    proj[i] = slice.project(buf.obs[i]);
    dk.add(proj[i]);
  }
  // Queries are independent and each writes only its own rew_i slot.
  parallel_for_chunked(buf.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const double dist = dk.knn_distance(proj[i]);
      buf.rew_i[i] += weight * finite_or_zero(std::log1p(dist));
    }
  });
  IMAP_NCHECK_FINITE_VEC(buf.rew_i, "regularizer.sc_bonus");
}

class ScRegularizer final : public AdversarialRegularizer {
 public:
  ScRegularizer(RegularizerOptions opts, std::size_t obs_dim, Rng rng)
      : opts_(std::move(opts)), obs_dim_(obs_dim), rng_(rng) {}

  void compute(rl::RolloutBuffer& buf, const nn::GaussianPolicy&) override {
    std::fill(buf.rew_i.begin(), buf.rew_i.end(), 0.0);
    if (buf.size() == 0) return;
    if (opts_.victim_slice.whole()) {
      // Single-agent: J_I^SC over the full state (Eq. 6).
      add_sc_term(buf, opts_.adversary_slice, 1.0, obs_dim_, opts_.knn_k,
                  rng_);
    } else {
      // Multi-agent: (1−ξ)·SC(S^α) + ξ·SC(S^ν)  (Eq. 7).
      add_sc_term(buf, opts_.adversary_slice, 1.0 - opts_.xi, obs_dim_,
                  opts_.knn_k, rng_);
      add_sc_term(buf, opts_.victim_slice, opts_.xi, obs_dim_, opts_.knn_k,
                  rng_);
    }
  }

  RegularizerType type() const override { return RegularizerType::SC; }

  void save_state(BinaryWriter& w) const override { rng_.save_state(w); }
  void load_state(BinaryReader& r) override { rng_.load_state(r); }

 private:
  RegularizerOptions opts_;
  std::size_t obs_dim_;
  Rng rng_;
};

/// One PC marginal with its persistent union buffer B.
class PcMarginal {
 public:
  PcMarginal(const ObsSlice& slice, std::size_t obs_dim, std::size_t k,
             std::size_t capacity, Rng rng)
      : slice_(slice),
        k_(k),
        union_buffer_(slice.dim(obs_dim), capacity, k, rng),
        rng_(rng.split(0x9c9c9c9cULL)) {}

  void add_bonus(rl::RolloutBuffer& buf, double weight, std::size_t obs_dim) {
    const std::size_t d = slice_.dim(obs_dim);
    KnnBuffer dk(d, buf.size(), k_, rng_.split(rng_.next_u64()));
    std::vector<std::vector<double>> proj(buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      proj[i] = slice_.project(buf.obs[i]);
      dk.add(proj[i]);
    }
    // Queries are independent and each writes only its own rew_i slot; the
    // union buffer is read-only until the fold below.
    parallel_for_chunked(buf.size(), 0, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const double dist_dk = dk.knn_distance(proj[i]);
        // ∇ of Σ√(d/ρ) with d ≈ 1/dist_{D_k}, ρ ≈ 1/dist_B gives a bonus
        // ∝ √(dist_{D_k} · dist_B): large where BOTH the fresh policy and the
        // whole explored region ρ^α are thin — novelty beyond the frontier.
        const double dist_b = union_buffer_.size() >= k_
                                  ? union_buffer_.knn_distance(proj[i])
                                  : dist_dk;
        buf.rew_i[i] += weight * finite_or_zero(
                                     std::sqrt(std::max(0.0, dist_dk) *
                                               std::max(0.0, dist_b)));
      }
    });
    IMAP_NCHECK_FINITE_VEC(buf.rew_i, "regularizer.pc_bonus");
    // Only now fold the fresh trajectories into B (they represent π_k).
    for (std::size_t i = 0; i < buf.size(); ++i) union_buffer_.add(proj[i]);
  }

  void save_state(BinaryWriter& w) const {
    union_buffer_.save_state(w);
    rng_.save_state(w);
  }
  void load_state(BinaryReader& r) {
    union_buffer_.load_state(r);
    rng_.load_state(r);
  }

 private:
  ObsSlice slice_;
  std::size_t k_;
  KnnBuffer union_buffer_;
  Rng rng_;
};

class PcRegularizer final : public AdversarialRegularizer {
 public:
  PcRegularizer(RegularizerOptions opts, std::size_t obs_dim, Rng rng)
      : opts_(opts),
        obs_dim_(obs_dim),
        adv_marginal_(opts.adversary_slice, obs_dim, opts.knn_k,
                      opts.pc_capacity, rng.split(1)),
        victim_marginal_(opts.victim_slice, obs_dim, opts.knn_k,
                         opts.pc_capacity, rng.split(2)) {}

  void compute(rl::RolloutBuffer& buf, const nn::GaussianPolicy&) override {
    std::fill(buf.rew_i.begin(), buf.rew_i.end(), 0.0);
    if (buf.size() == 0) return;
    if (opts_.victim_slice.whole()) {
      adv_marginal_.add_bonus(buf, 1.0, obs_dim_);  // Eq. 8
    } else {
      adv_marginal_.add_bonus(buf, 1.0 - opts_.xi, obs_dim_);  // Eq. 9
      victim_marginal_.add_bonus(buf, opts_.xi, obs_dim_);
    }
  }

  RegularizerType type() const override { return RegularizerType::PC; }

  void save_state(BinaryWriter& w) const override {
    adv_marginal_.save_state(w);
    victim_marginal_.save_state(w);
  }
  void load_state(BinaryReader& r) override {
    adv_marginal_.load_state(r);
    victim_marginal_.load_state(r);
  }

 private:
  RegularizerOptions opts_;
  std::size_t obs_dim_;
  PcMarginal adv_marginal_;
  PcMarginal victim_marginal_;
};

class RiskRegularizer final : public AdversarialRegularizer {
 public:
  RiskRegularizer(RegularizerOptions opts, std::size_t obs_dim)
      : opts_(std::move(opts)), obs_dim_(obs_dim) {
    IMAP_CHECK_MSG(!opts_.risk_target.empty(),
                   "R-driven regularizer needs a risk_target (s₀^ν)");
    IMAP_CHECK(opts_.risk_target.size() ==
               opts_.victim_slice.dim(obs_dim_));
  }

  void compute(rl::RolloutBuffer& buf, const nn::GaussianPolicy&) override {
    // J_I^R = −Σ_s d(s)·‖Π_{S^ν}(s) − s^{ν(α)}‖  (Eq. 10): lure the victim
    // toward the adversarially chosen state.
    for (std::size_t i = 0; i < buf.size(); ++i) {
      const auto v = opts_.victim_slice.project(buf.obs[i]);
      double sq = 0.0;
      for (std::size_t c = 0; c < v.size(); ++c) {
        const double d = v[c] - opts_.risk_target[c];
        sq += d * d;
      }
      buf.rew_i[i] = -std::sqrt(sq);
    }
  }

  RegularizerType type() const override { return RegularizerType::R; }

 private:
  RegularizerOptions opts_;
  std::size_t obs_dim_;
};

class DivergenceRegularizer final : public AdversarialRegularizer {
 public:
  DivergenceRegularizer(const RegularizerOptions& opts, std::size_t obs_dim,
                        std::size_t act_dim, Rng rng)
      : opts_(opts),
        mimic_(obs_dim, act_dim, {32, 32}, rng.split(0xd1d1ULL)) {}

  void compute(rl::RolloutBuffer& buf,
               const nn::GaussianPolicy& policy) override {
    // J_I^D = Σ_s d(s)·KL(π^α ‖ π^{α,m})  (Eq. 11), then pull the mimic
    // toward the freshly observed behaviour so it keeps summarising the past.
    for (std::size_t i = 0; i < buf.size(); ++i)
      buf.rew_i[i] = std::min(mimic_.kl_from(policy, buf.obs[i]), 50.0);
    mimic_.update(buf);
  }

  RegularizerType type() const override { return RegularizerType::D; }

  void save_state(BinaryWriter& w) const override { mimic_.save_state(w); }
  void load_state(BinaryReader& r) override { mimic_.load_state(r); }

  const MimicPolicy& mimic() const { return mimic_; }

 private:
  RegularizerOptions opts_;
  MimicPolicy mimic_;
};

}  // namespace

std::unique_ptr<AdversarialRegularizer> make_regularizer(
    const RegularizerOptions& opts, std::size_t obs_dim, std::size_t act_dim,
    Rng rng) {
  switch (opts.type) {
    case RegularizerType::SC:
      return std::make_unique<ScRegularizer>(opts, obs_dim, rng);
    case RegularizerType::PC:
      return std::make_unique<PcRegularizer>(opts, obs_dim, rng);
    case RegularizerType::R:
      return std::make_unique<RiskRegularizer>(opts, obs_dim);
    case RegularizerType::D:
      return std::make_unique<DivergenceRegularizer>(opts, obs_dim, act_dim,
                                                     rng);
  }
  IMAP_CHECK_MSG(false, "unreachable regularizer type");
  return nullptr;
}

}  // namespace imap::core
