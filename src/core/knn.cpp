#include "core/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace imap::core {

namespace {

/// Rows scanned per parallel chunk; below one chunk the scan stays serial.
constexpr std::size_t kParallelRowChunk = 512;

constexpr std::size_t kMaxK = 16;

/// Scan rows [rb, re) and fold their squared distances to `s` into the
/// sorted top-k buffer `best` (ascending, size k).
void scan_rows(const double* data, std::size_t dim, std::size_t rb,
               std::size_t re, const double* s, std::size_t k, double* best) {
  for (std::size_t r = rb; r < re; ++r) {
    const double* row = data + r * dim;
    double sq = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double d = row[c] - s[c];
      sq += d * d;
    }
    if (sq < best[k - 1]) {
      // Insertion into the sorted top-k.
      std::size_t pos = k - 1;
      while (pos > 0 && best[pos - 1] > sq) {
        best[pos] = best[pos - 1];
        --pos;
      }
      best[pos] = sq;
    }
  }
}

}  // namespace

KnnBuffer::KnnBuffer(std::size_t dim, std::size_t capacity, std::size_t k,
                     Rng rng)
    : dim_(dim), capacity_(capacity), k_(k), rng_(rng) {
  IMAP_CHECK(dim_ > 0);
  IMAP_CHECK(capacity_ >= k_ && k_ >= 1);
  IMAP_CHECK(k_ <= kMaxK);
  data_.reserve(capacity_ * dim_);
}

void KnnBuffer::add(const double* s) {
  ++total_;
  if (size_ < capacity_) {
    data_.insert(data_.end(), s, s + dim_);
    ++size_;
    return;
  }
  // Reservoir sampling: replace a uniform slot with probability cap/total.
  const auto j = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(total_) - 1));
  if (j < capacity_) std::copy(s, s + dim_, data_.begin() +
                                   static_cast<std::ptrdiff_t>(j * dim_));
}

void KnnBuffer::add(const std::vector<double>& s) {
  IMAP_CHECK(s.size() == dim_);
  IMAP_NCHECK_FINITE_VEC(s, "KnnBuffer::add state");
  add(s.data());
}

double KnnBuffer::knn_distance_sq(const double* s) const {
  if (size_ < k_) return std::numeric_limits<double>::infinity();

  if (size_ < 2 * kParallelRowChunk || effective_concurrency() <= 1) {
    double best[kMaxK];
    std::fill(best, best + k_, std::numeric_limits<double>::infinity());
    scan_rows(data_.data(), dim_, 0, size_, s, k_, best);
    IMAP_NCHECK_BOUNDS(best[k_ - 1], 0.0,
                       std::numeric_limits<double>::infinity(),
                       "knn.distance_sq");
    return best[k_ - 1];
  }

  // Parallel scan: each chunk keeps its own exact top-k over its row range,
  // then the per-chunk lists are merged. The global k-th smallest distance
  // is exact regardless of how the rows were partitioned, so the result is
  // identical to the serial scan (and to any thread count).
  const std::size_t nchunks = (size_ + kParallelRowChunk - 1) /
                              kParallelRowChunk;
  std::vector<double> chunk_best(nchunks * k_,
                                 std::numeric_limits<double>::infinity());
  parallel_for(
      nchunks,
      [&](std::size_t i) {
        const std::size_t rb = i * size_ / nchunks;
        const std::size_t re = (i + 1) * size_ / nchunks;
        scan_rows(data_.data(), dim_, rb, re, s, k_,
                  chunk_best.data() + i * k_);
      },
      /*grain=*/1);

  double best[kMaxK];
  std::fill(best, best + k_, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < nchunks * k_; ++i) {
    const double sq = chunk_best[i];
    if (sq < best[k_ - 1]) {
      std::size_t pos = k_ - 1;
      while (pos > 0 && best[pos - 1] > sq) {
        best[pos] = best[pos - 1];
        --pos;
      }
      best[pos] = sq;
    }
  }
  // +Inf is the legitimate "fewer than k neighbours" sentinel, so the guard
  // only excludes NaN and negative distances.
  IMAP_NCHECK_BOUNDS(best[k_ - 1], 0.0,
                     std::numeric_limits<double>::infinity(),
                     "knn.distance_sq");
  return best[k_ - 1];
}

double KnnBuffer::knn_distance(const double* s) const {
  return std::sqrt(knn_distance_sq(s));
}

double KnnBuffer::knn_distance(const std::vector<double>& s) const {
  IMAP_CHECK(s.size() == dim_);
  return knn_distance(s.data());
}

double KnnBuffer::knn_distance_sq(const std::vector<double>& s) const {
  IMAP_CHECK(s.size() == dim_);
  return knn_distance_sq(s.data());
}

double KnnBuffer::density(const std::vector<double>& s) const {
  const double sq = knn_distance_sq(s);
  if (!std::isfinite(sq)) return 0.0;
  // One scalar sqrt per query; the row scan itself stays sqrt-free.
  return 1.0 / (std::sqrt(sq) + 1e-6);
}

void KnnBuffer::clear() {
  data_.clear();
  size_ = 0;
  total_ = 0;
}

void KnnBuffer::save_state(BinaryWriter& w) const {
  w.write_u64(dim_);
  w.write_u64(capacity_);
  w.write_u64(k_);
  rng_.save_state(w);
  w.write_u64(size_);
  w.write_u64(total_);
  w.write_vec(data_);
}

void KnnBuffer::load_state(BinaryReader& r) {
  IMAP_CHECK_MSG(r.read_u64() == dim_ && r.read_u64() == capacity_ &&
                     r.read_u64() == k_,
                 "KNN checkpoint has wrong geometry");
  rng_.load_state(r);
  size_ = r.read_u64();
  total_ = r.read_u64();
  data_ = r.read_vec();
  IMAP_CHECK_MSG(data_.size() == size_ * dim_, "corrupt KNN checkpoint");
  data_.reserve(capacity_ * dim_);
}

}  // namespace imap::core
