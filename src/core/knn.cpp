#include "core/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace imap::core {

KnnBuffer::KnnBuffer(std::size_t dim, std::size_t capacity, std::size_t k,
                     Rng rng)
    : dim_(dim), capacity_(capacity), k_(k), rng_(rng) {
  IMAP_CHECK(dim_ > 0);
  IMAP_CHECK(capacity_ >= k_ && k_ >= 1);
  data_.reserve(capacity_ * dim_);
}

void KnnBuffer::add(const double* s) {
  ++total_;
  if (size_ < capacity_) {
    data_.insert(data_.end(), s, s + dim_);
    ++size_;
    return;
  }
  // Reservoir sampling: replace a uniform slot with probability cap/total.
  const auto j = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<int>(total_) - 1));
  if (j < capacity_) std::copy(s, s + dim_, data_.begin() +
                                   static_cast<std::ptrdiff_t>(j * dim_));
}

void KnnBuffer::add(const std::vector<double>& s) {
  IMAP_CHECK(s.size() == dim_);
  add(s.data());
}

double KnnBuffer::knn_distance(const double* s) const {
  if (size_ < k_) return std::numeric_limits<double>::infinity();
  // Track the k smallest squared distances with a tiny insertion buffer —
  // k is small (≤ 8), so this beats a heap or nth_element.
  constexpr std::size_t kMaxK = 16;
  IMAP_CHECK(k_ <= kMaxK);
  double best[kMaxK];
  std::fill(best, best + k_, std::numeric_limits<double>::infinity());

  for (std::size_t r = 0; r < size_; ++r) {
    const double* row = data_.data() + r * dim_;
    double sq = 0.0;
    for (std::size_t c = 0; c < dim_; ++c) {
      const double d = row[c] - s[c];
      sq += d * d;
    }
    if (sq < best[k_ - 1]) {
      // Insertion into the sorted top-k.
      std::size_t pos = k_ - 1;
      while (pos > 0 && best[pos - 1] > sq) {
        best[pos] = best[pos - 1];
        --pos;
      }
      best[pos] = sq;
    }
  }
  return std::sqrt(best[k_ - 1]);
}

double KnnBuffer::knn_distance(const std::vector<double>& s) const {
  IMAP_CHECK(s.size() == dim_);
  return knn_distance(s.data());
}

double KnnBuffer::density(const std::vector<double>& s) const {
  const double d = knn_distance(s);
  if (!std::isfinite(d)) return 0.0;
  return 1.0 / (d + 1e-6);
}

void KnnBuffer::clear() {
  data_.clear();
  size_ = 0;
  total_ = 0;
}

}  // namespace imap::core
