#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"

namespace imap::core {

/// K-nearest-neighbour state-density estimator (Sec. 5.2, "State Density
/// Approximation"): d(s) ≈ 1 / ‖s − s*_D‖ where s*_D is the k-th nearest
/// stored state. Nonparametric and forgetting-free, unlike RND/ICM-style
/// prediction-error estimators — which is why the paper uses it.
///
/// Capacity is bounded; once full, *reservoir sampling* keeps the stored set
/// a uniform subsample of everything ever added, so the union buffer B still
/// represents the full historical mixture ρ^α = Σ_i d^{π_i^α}.
class KnnBuffer {
 public:
  KnnBuffer(std::size_t dim, std::size_t capacity, std::size_t k, Rng rng);

  void add(const double* s);
  void add(const std::vector<double>& s);

  /// Euclidean distance from `s` to its k-th nearest stored neighbour.
  /// Returns +inf when fewer than k states are stored. Large buffers are
  /// scanned in parallel chunks with an exact per-chunk top-k merge, so the
  /// result is identical to the serial scan for any thread count.
  double knn_distance(const double* s) const;
  double knn_distance(const std::vector<double>& s) const;

  /// Squared k-th-neighbour distance — the sqrt-free inner kernel behind
  /// knn_distance(); preferred where the caller applies its own transform
  /// (density() uses this to keep the row scan sqrt-free).
  double knn_distance_sq(const double* s) const;
  double knn_distance_sq(const std::vector<double>& s) const;

  /// KNN density estimate 1 / (knn_distance + eps); 0 when under-filled.
  double density(const std::vector<double>& s) const;

  std::size_t size() const { return size_; }
  std::size_t dim() const { return dim_; }
  std::size_t k() const { return k_; }
  std::size_t total_added() const { return total_; }
  bool empty() const { return size_ == 0; }
  void clear();

  /// Serialize the stored rows, reservoir counters and sampling stream so a
  /// restored buffer continues the exact reservoir sequence.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  std::size_t dim_;
  std::size_t capacity_;
  std::size_t k_;
  Rng rng_;
  std::vector<double> data_;  ///< row-major, size_ rows of dim_
  std::size_t size_ = 0;
  std::size_t total_ = 0;
};

}  // namespace imap::core
