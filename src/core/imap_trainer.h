#pragma once

#include <memory>

#include "attack/threat_model.h"
#include "core/bias_reduction.h"
#include "core/regularizer.h"
#include "rl/ppo.h"

namespace imap::core {

/// Configuration of one IMAP attack (Algorithm 1).
struct ImapOptions {
  RegularizerOptions reg;
  bool bias_reduction = false;
  double eta = 5.0;    ///< BR dual step size (Eq. 17)
  double tau0 = 1.0;   ///< fixed temperature when BR is off; τ_0 otherwise
  /// Episode surrogates are divided by this before feeding J_AP to BR so the
  /// dual step size η means the same thing on dense tasks (per-step success
  /// indicators summing to hundreds) as on sparse ones (0/1 per episode).
  double surrogate_scale = 1.0;
  rl::PpoOptions ppo;
};

/// IMAP: Intrinsically Motivated Adversarial Policy learning — the paper's
/// core contribution. A PPO adversary over the black-box threat-model MDP,
/// augmented with an adversarial intrinsic regularizer (SC/PC/R/D) entering
/// as a second advantage stream Â_E + τ_k·Â_I (Eq. 14), with τ_k scheduled
/// by Bias-Reduction (Eq. 15–17) when enabled.
class ImapTrainer {
 public:
  /// Single-agent form: state-perturbation attack within ‖a^α‖∞ ≤ ε. If the
  /// R regularizer is selected and no risk_target is set, s₀^ν is estimated
  /// from a handful of environment resets. A network-backed victim handle
  /// lets the vectorized rollout engine batch victim queries.
  ImapTrainer(const rl::Env& deploy_env, rl::PolicyHandle victim, double eps,
              ImapOptions opts, Rng rng);

  /// Multi-agent form: opponent-control attack on a Markov game; the
  /// regularizer marginals default to the game's Π_{S^ν}/Π_{S^α} ranges.
  ImapTrainer(const env::MultiAgentEnv& game, rl::PolicyHandle victim,
              ImapOptions opts, Rng rng);

  /// Pre-built attack-view env (e.g. a scenario::ScenarioEnv in Adversary
  /// mode). Rng split discipline matches the single-agent ctor exactly:
  /// split(0x5eed) for R-target estimation, split(0x4e67) for the
  /// regularizer, split(1) for the PPO trainer — so a trivial scenario spec
  /// reproduces the classic ctor bit-for-bit.
  ImapTrainer(const rl::Env& attack_env, ImapOptions opts, Rng rng);

  rl::IterStats iterate() { return trainer_->iterate(); }
  std::vector<rl::IterStats> train(long long steps) {
    return trainer_->train(steps);
  }

  /// Frozen deterministic adversary for evaluation.
  rl::ActionFn adversary() const;

  rl::PpoTrainer& trainer() { return *trainer_; }
  const BiasReduction& bias_reduction() const { return br_; }
  const AdversarialRegularizer& regularizer() const { return *reg_; }
  double tau() const { return br_.tau(); }

  /// Snapshot the full attack state: the PPO trainer plus the BR dual state
  /// and the regularizer's knowledge (union buffers / mimic). Restoring into
  /// an ImapTrainer built with identical ctor arguments resumes training
  /// bit-identically.
  void save_state(ArchiveWriter& a) const;
  void load_state(const ArchiveReader& a);
  bool snapshot(const std::string& path) const;
  bool restore(const std::string& path);

 private:
  void finish_setup(const rl::Env& attack_env, ImapOptions opts, Rng rng);

  ImapOptions opts_;
  BiasReduction br_;
  std::unique_ptr<AdversarialRegularizer> reg_;
  std::unique_ptr<rl::PpoTrainer> trainer_;
};

/// Estimate the canonical initial victim state s₀^ν (mean of `n` resets,
/// projected through `slice`) — the default R-driven adversarial state.
std::vector<double> estimate_initial_state(const rl::Env& env,
                                           const RegularizerOptions& opts,
                                           int n, Rng& rng);

}  // namespace imap::core
