#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/proc.h"
#include "core/imap_trainer.h"
#include "core/zoo.h"
#include "rl/evaluate.h"

namespace imap::core {

/// The attack columns of Tables 1–3.
enum class AttackKind {
  None,
  Random,
  SaRl,    ///< single-agent baseline (Zhang et al.)
  ApMarl,  ///< multi-agent baseline (Gleave et al.)
  ImapSC,
  ImapPC,
  ImapR,
  ImapD,
};

std::string to_string(AttackKind kind);
bool is_imap(AttackKind kind);
RegularizerType regularizer_of(AttackKind kind);

/// IMAP attack variants in Table 1/2 column order.
std::vector<AttackKind> imap_attacks();

struct AttackPlan {
  std::string env_name;        ///< task (single- or multi-agent)
  /// Optional scenario string (scenario::parse grammar). Empty = the classic
  /// threat model on env_name. Non-empty and non-trivial = the attack runs
  /// through the scenario layer's channel pipeline, and the CANONICAL
  /// scenario string replaces env_name as the cell's identity in cache keys
  /// and rng streams. A trivial scenario ("hopper") normalizes back to the
  /// empty-scenario plan, so paper-grid baselines keep their existing keys.
  std::string scenario;
  std::string defense = "PPO"; ///< victim training method (single-agent)
  AttackKind attack = AttackKind::ImapPC;
  bool bias_reduction = false;
  double eta = 5.0;   ///< BR dual step size (Fig. 6 sweeps this; larger = better per the paper)
  double xi = 0.5;    ///< multi-agent marginal mixing (Fig. 7 sweeps this)
  double tau0 = 1.0;
  long long attack_steps = 0;  ///< 0 ⇒ runner default for the task type
  int eval_episodes = 0;       ///< 0 ⇒ runner default
};

/// One point of a learning curve (Figs. 4–7): adversary training steps vs
/// the victim's training-time surrogate performance.
struct CurvePoint {
  long long steps = 0;
  double victim_success = 0.0;  ///< mean per-episode surrogate (victim PoV)
  double tau = 0.0;
};

struct AttackOutcome {
  AttackPlan plan;
  rl::EvalStats victim_eval;  ///< victim TRUE rewards / success under attack
  std::vector<CurvePoint> curve;
  /// False when BenchConfig::halt_after_iters stopped attack training early;
  /// the run left a resumable snapshot and victim_eval is unset. Halted
  /// outcomes are never cached.
  bool completed = true;

  /// Multi-agent attacking success rate (ASR = 1 − victim win rate).
  double asr() const { return 1.0 - victim_eval.success_rate; }
};

/// Shared harness behind all bench binaries: owns the zoo, derives budgets
/// from BenchConfig, trains the requested attack and evaluates it against
/// the deployed victim.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(BenchConfig cfg);

  AttackOutcome run(const AttackPlan& plan);

  Zoo& zoo() { return zoo_; }
  const BenchConfig& config() const { return cfg_; }

  long long default_attack_steps(const std::string& env_name) const;
  int default_eval_episodes(const std::string& env_name) const;

  /// PPO options shared by all attacks (baselines and IMAP).
  rl::PpoOptions attack_ppo_options() const;

  /// Attack outcomes are cached under <zoo_dir>/results keyed by the full
  /// plan + budgets + seed + archive format version, so the bench binaries
  /// share runs (Table 3 reuses Table 2's grid, Fig. 4 reuses the
  /// sparse-task curves) and interrupted sweeps resume where they stopped.
  /// halt_after_iters and snapshot_every never enter the key — they change
  /// when a run pauses, not what it computes.
  std::string cache_key(const AttackPlan& plan, long long steps,
                        int episodes) const;

  /// Canonicalize a plan's scenario field: parse + validate, resolve
  /// env_name from the spec, collapse trivial scenarios onto the classic
  /// empty-scenario plan, and make the implicit default threat explicit
  /// (obs_perturb at the registry ε) when an attack needs a controlled
  /// channel the scenario doesn't name. run() and the DAG builder apply
  /// this before any key is derived, so equal scenarios share one cell
  /// however they were spelled.
  AttackPlan normalize_plan(AttackPlan plan) const;

 private:
  AttackOutcome run_single_agent(const AttackPlan& plan,
                                 const std::string& key);
  AttackOutcome run_multi_agent(const AttackPlan& plan,
                                const std::string& key);
  /// Non-trivial scenario plans: channel-pipeline attack env + evaluation.
  AttackOutcome run_scenario(const AttackPlan& plan, const std::string& key);
  /// Mid-training snapshot file for one cached run (under
  /// <zoo_dir>/snapshots; the directory is created on first write).
  std::string snapshot_path(const std::string& key) const;
  ImapOptions imap_options(const AttackPlan& plan,
                           const std::string& env_name) const;
  Rng plan_rng(const AttackPlan& plan) const;
  /// Result-cache read with a stat-signature memo in front: a result file
  /// already parsed by this process is reused as long as its on-disk
  /// signature is unchanged, so the post-lock re-check in run() (and every
  /// warm repeat lookup, e.g. Table 3 revisiting Table 2's grid or the
  /// serving daemon polling a finished attack job) costs one stat instead
  /// of a full archive read + CRC pass.
  bool load_cached(const std::string& key, AttackOutcome& out) const;
  void store_cached(const std::string& key, const AttackOutcome& out) const;
  std::string results_path(const std::string& key) const;

  struct CachedResult {
    proc::FileSig sig;
    rl::EvalStats victim_eval;
    std::vector<CurvePoint> curve;
  };

  BenchConfig cfg_;
  Zoo zoo_;
  mutable std::mutex result_memo_m_;
  mutable std::unordered_map<std::string, CachedResult> result_memo_;
};

}  // namespace imap::core
