#include "core/rnd.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace imap::core {

RndNovelty::RndNovelty(std::size_t obs_dim, std::size_t embed_dim, Rng rng,
                       double lr)
    : target_({obs_dim, 32, embed_dim}, rng, /*init_scale=*/1.0),
      predictor_({obs_dim, 32, embed_dim}, rng, /*init_scale=*/1.0),
      opt_(predictor_.params().size(), {.lr = lr, .max_grad_norm = 1.0}),
      rng_(rng.split(0x9dULL)) {
  // The target's output layer keeps full-scale weights (the policy-head
  // shrink in Mlp would make every embedding ≈ 0 and the bonus vacuous).
  Rng wrng = rng.split(0xfeedULL);
  auto& p = target_.params();
  for (std::size_t i = p.size() - (32 * embed_dim + embed_dim); i < p.size();
       ++i)
    p[i] = wrng.normal(0.0, 0.3);
}

double RndNovelty::novelty(const std::vector<double>& s) const {
  const auto t = target_.forward(s);
  const auto g = predictor_.forward(s);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sq += (g[i] - t[i]) * (g[i] - t[i]);
  return sq;
}

void RndNovelty::update(const rl::RolloutBuffer& buf, int minibatch) {
  const std::size_t n = buf.size();
  if (n == 0) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  for (std::size_t start = 0; start < n;
       start += static_cast<std::size_t>(minibatch)) {
    const std::size_t end =
        std::min(n, start + static_cast<std::size_t>(minibatch));
    const double inv_bs = 1.0 / static_cast<double>(end - start);
    predictor_.zero_grad();
    for (std::size_t t = start; t < end; ++t) {
      const auto& s = buf.obs[order[t]];
      const auto tgt = target_.forward(s);
      nn::Mlp::Tape tape;
      const auto pred = predictor_.forward_tape(s, tape);
      std::vector<double> grad(pred.size());
      for (std::size_t i = 0; i < pred.size(); ++i)
        grad[i] = 2.0 * inv_bs * (pred[i] - tgt[i]);
      predictor_.backward(tape, grad);
    }
    opt_.step(predictor_.params(), predictor_.grads());
  }
}

void RndNovelty::compute(rl::RolloutBuffer& buf) {
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf.rew_i[i] = novelty(buf.obs[i]);
  update(buf);
}

}  // namespace imap::core
