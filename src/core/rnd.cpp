#include "core/rnd.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace imap::core {

RndNovelty::RndNovelty(std::size_t obs_dim, std::size_t embed_dim, Rng rng,
                       double lr)
    : target_({obs_dim, 32, embed_dim}, rng, /*init_scale=*/1.0),
      predictor_({obs_dim, 32, embed_dim}, rng, /*init_scale=*/1.0),
      opt_(predictor_.params().size(), {.lr = lr, .max_grad_norm = 1.0}),
      rng_(rng.split(0x9dULL)) {
  // The target's output layer keeps full-scale weights (the policy-head
  // shrink in Mlp would make every embedding ≈ 0 and the bonus vacuous).
  Rng wrng = rng.split(0xfeedULL);
  auto& p = target_.params();
  for (std::size_t i = p.size() - (32 * embed_dim + embed_dim); i < p.size();
       ++i)
    p[i] = wrng.normal(0.0, 0.3);
}

double RndNovelty::novelty(const std::vector<double>& s) const {
  const auto t = target_.forward(s);
  const auto g = predictor_.forward(s);
  double sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sq += (g[i] - t[i]) * (g[i] - t[i]);
  return sq;
}

void RndNovelty::update(const rl::RolloutBuffer& buf, int minibatch) {
  const std::size_t n = buf.size();
  if (n == 0) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  for (std::size_t start = 0; start < n;
       start += static_cast<std::size_t>(minibatch)) {
    const std::size_t end =
        std::min(n, start + static_cast<std::size_t>(minibatch));
    const std::size_t bs = end - start;
    const double inv_bs = 1.0 / static_cast<double>(bs);
    predictor_.zero_grad();
    // Batched distillation step — gradients are bit-identical to the
    // per-sample loop (same grad expression, fixed summation order).
    obs_b_.gather(buf.obs, order, start, end);
    const nn::Batch& tgt = target_.forward_batch(obs_b_);
    const nn::Batch& pred = predictor_.forward_batch(obs_b_);
    const std::size_t ed = embed_dim();
    grad_b_.resize(bs, ed);
    for (std::size_t r = 0; r < bs; ++r) {
      const double* t = tgt.row(r);
      const double* p = pred.row(r);
      double* g = grad_b_.row(r);
      for (std::size_t i = 0; i < ed; ++i)
        g[i] = 2.0 * inv_bs * (p[i] - t[i]);
    }
    predictor_.backward_batch(grad_b_);
    opt_.step(predictor_.params(), predictor_.grads());
  }
}

void RndNovelty::compute(rl::RolloutBuffer& buf) {
  // Chunk-batched novelty sweep: ‖g(s) − f(s)‖² per row, summed in the
  // same ascending-dim order as novelty(), so rew_i matches it bit for bit.
  const std::size_t n = buf.size();
  constexpr std::size_t kChunk = 1024;
  for (std::size_t b = 0; b < n; b += kChunk) {
    const std::size_t e = std::min(n, b + kChunk);
    obs_b_.gather_range(buf.obs, b, e);
    const nn::Batch& tgt = target_.forward_batch(obs_b_);
    const nn::Batch& pred = predictor_.forward_batch(obs_b_);
    const std::size_t ed = embed_dim();
    for (std::size_t r = 0; r < e - b; ++r) {
      const double* t = tgt.row(r);
      const double* g = pred.row(r);
      double sq = 0.0;
      for (std::size_t i = 0; i < ed; ++i) sq += (g[i] - t[i]) * (g[i] - t[i]);
      buf.rew_i[b + r] = sq;
    }
  }
  update(buf);
}

void RndNovelty::save_state(BinaryWriter& w) const {
  target_.save_state(w);
  predictor_.save_state(w);
  opt_.save_state(w);
  rng_.save_state(w);
}

void RndNovelty::load_state(BinaryReader& r) {
  target_.load_state(r);
  predictor_.load_state(r);
  opt_.load_state(r);
  rng_.load_state(r);
}

}  // namespace imap::core
