#include "core/experiment_dag.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/proc.h"
#include "common/serialize.h"
#include "env/registry.h"

namespace imap::core {

namespace {

// Request/reply payloads ride the same framed-Archive wire format as the
// rollout fabric (see proc::Channel): one section per logical field group,
// CRC-verified end to end.
constexpr std::uint64_t kKindVictim = 0;
constexpr std::uint64_t kKindGameVictim = 1;
constexpr std::uint64_t kKindAttack = 2;

std::uint64_t kind_code(DagNode::Kind k) {
  switch (k) {
    case DagNode::Kind::Victim: return kKindVictim;
    case DagNode::Kind::GameVictim: return kKindGameVictim;
    case DagNode::Kind::Attack: return kKindAttack;
  }
  return kKindAttack;
}

void write_plan(BinaryWriter& w, const AttackPlan& p) {
  w.write_string(p.env_name);
  w.write_string(p.scenario);
  w.write_string(p.defense);
  w.write_i64(static_cast<long long>(p.attack));
  w.write_bool(p.bias_reduction);
  w.write_f64(p.eta);
  w.write_f64(p.xi);
  w.write_f64(p.tau0);
  w.write_i64(p.attack_steps);
  w.write_i64(p.eval_episodes);
}

AttackPlan read_plan(BinaryReader& r) {
  AttackPlan p;
  p.env_name = r.read_string();
  p.scenario = r.read_string();
  p.defense = r.read_string();
  p.attack = static_cast<AttackKind>(r.read_i64());
  p.bias_reduction = r.read_bool();
  p.eta = r.read_f64();
  p.xi = r.read_f64();
  p.tau0 = r.read_f64();
  p.attack_steps = r.read_i64();
  p.eval_episodes = static_cast<int>(r.read_i64());
  return p;
}

// Mirrors ExperimentRunner's result-cache field order so a wire outcome and
// a cached outcome decode identically.
void write_outcome(BinaryWriter& w, const AttackOutcome& out) {
  w.write_bool(out.completed);
  w.write_f64(out.victim_eval.returns.mean);
  w.write_f64(out.victim_eval.returns.stddev);
  w.write_u64(out.victim_eval.returns.episodes);
  w.write_f64(out.victim_eval.success_rate);
  w.write_f64(out.victim_eval.mean_length);
  w.write_vec(out.victim_eval.episode_returns);
  w.write_u64(out.curve.size());
  for (const auto& p : out.curve) {
    w.write_i64(p.steps);
    w.write_f64(p.victim_success);
    w.write_f64(p.tau);
  }
}

AttackOutcome read_outcome(BinaryReader& r) {
  AttackOutcome out;
  out.completed = r.read_bool();
  out.victim_eval.returns.mean = r.read_f64();
  out.victim_eval.returns.stddev = r.read_f64();
  out.victim_eval.returns.episodes = r.read_u64();
  out.victim_eval.success_rate = r.read_f64();
  out.victim_eval.mean_length = r.read_f64();
  out.victim_eval.episode_returns = r.read_vec();
  out.curve.resize(r.read_u64());
  for (auto& p : out.curve) {
    p.steps = r.read_i64();
    p.victim_success = r.read_f64();
    p.tau = r.read_f64();
  }
  return out;
}

/// One cell worker: a persistent ExperimentRunner executing whichever node
/// the coordinator sends next. Victim/attack artifacts land in the shared
/// zoo under file locks, so any worker can execute any node.
void dag_worker_body(proc::Channel& ch, const BenchConfig& cfg) {
  // A cell must not spawn a nested rollout fabric inside a fabric worker —
  // that would oversubscribe the machine procs² ways. Pin children to the
  // in-process path; the DAG layer owns the process budget.
  ::setenv("IMAP_PROCS", "1", 1);
  ExperimentRunner runner(cfg);
  ArchiveReader req;
  while (ch.recv(req)) {
    auto r = req.section("dag/req");
    const std::uint64_t kind = r.read_u64();
    const bool crash = r.read_bool();
    const AttackPlan plan = read_plan(r);
    // Wall-clock telemetry only (per-node seconds for bench reports); it
    // never feeds results or control flow.
    const auto t0 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
    ArchiveWriter rep;
    if (kind == kKindAttack) {
      if (crash) {
        // Crash drill: halt the cell after one training iteration (leaving
        // its resumable snapshot on disk) and die without replying — the
        // coordinator must detect the death and re-dispatch the cell.
        BenchConfig crash_cfg = cfg;
        crash_cfg.halt_after_iters = 1;
        ExperimentRunner doomed(crash_cfg);
        doomed.run(plan);
        std::fflush(nullptr);
        ::_exit(42);
      }
      const AttackOutcome out = runner.run(plan);
      write_outcome(rep.section("dag/out"), out);
    } else if (kind == kKindGameVictim) {
      runner.zoo().game_victim(plan.env_name);
    } else {
      runner.zoo().victim(plan.env_name, plan.defense);
    }
    const auto t1 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
    rep.section("dag/ok").write_f64(
        std::chrono::duration<double>(t1 - t0).count());
    if (!ch.send(rep)) break;  // coordinator is gone; shut down
  }
}

}  // namespace

std::vector<DagNode> build_experiment_dag(
    ExperimentRunner& runner, const std::vector<AttackPlan>& plans,
    std::vector<std::size_t>& node_of_plan) {
  std::vector<DagNode> nodes;
  std::unordered_map<std::string, std::size_t> victim_of;  // identity → node
  std::unordered_map<std::string, std::size_t> attack_of;  // cache key → node
  node_of_plan.assign(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    // Canonicalize before any key is derived: equal scenarios share one
    // attack node however they were spelled, and a scenario cell's victim
    // node is the BASE env's victim (shared with the baseline cells).
    const AttackPlan plan = runner.normalize_plan(plans[i]);
    const bool multi =
        env::spec(plan.env_name).type == env::TaskType::MultiAgent;
    // Victim checkpoint identity: the game for multi-agent tasks, the
    // TRAINING env × defense for single-agent ones (sparse tasks deploy
    // their dense counterpart's victim — see Zoo::victim).
    const std::string vkey =
        multi ? "game|" + plan.env_name
              : env::make_training_env(plan.env_name)->name() + "|" +
                    plan.defense;
    auto vit = victim_of.find(vkey);
    if (vit == victim_of.end()) {
      DagNode v;
      v.kind = multi ? DagNode::Kind::GameVictim : DagNode::Kind::Victim;
      v.env_name = plan.env_name;
      v.defense = plan.defense;
      vit = victim_of.emplace(vkey, nodes.size()).first;
      nodes.push_back(std::move(v));
    }
    const long long steps = plan.attack_steps
                                ? plan.attack_steps
                                : runner.default_attack_steps(plan.env_name);
    const int episodes = plan.eval_episodes
                             ? plan.eval_episodes
                             : runner.default_eval_episodes(plan.env_name);
    const auto akey = runner.cache_key(plan, steps, episodes);
    auto ait = attack_of.find(akey);
    if (ait == attack_of.end()) {
      DagNode a;
      a.kind = DagNode::Kind::Attack;
      a.env_name = plan.env_name;
      a.plan = plan;
      a.deps.push_back(vit->second);
      ait = attack_of.emplace(akey, nodes.size()).first;
      nodes.push_back(std::move(a));
    }
    node_of_plan[i] = ait->second;
  }
  return nodes;
}

DagScheduler::DagScheduler(BenchConfig cfg, DagOptions opts)
    : cfg_(cfg), opts_(opts), runner_(cfg) {}

std::vector<AttackOutcome> DagScheduler::run(
    const std::vector<AttackPlan>& plans) {
  std::vector<std::size_t> node_of_plan;
  nodes_ = build_experiment_dag(runner_, plans, node_of_plan);
  node_seconds_.assign(nodes_.size(), 0.0);
  stats_ = DagStats{};
  stats_.nodes = static_cast<int>(nodes_.size());
  const int procs =
      opts_.procs > 0 ? opts_.procs : proc::configured_procs();
  stats_.procs = procs;

  std::vector<AttackOutcome> node_out(nodes_.size());
  if (procs <= 1) {
    // Inline path: nodes are already topologically ordered by construction
    // (each plan appends its victim before its attack).
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      const auto& node = nodes_[n];
      const auto t0 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
      switch (node.kind) {
        case DagNode::Kind::Victim:
          runner_.zoo().victim(node.env_name, node.defense);
          break;
        case DagNode::Kind::GameVictim:
          runner_.zoo().game_victim(node.env_name);
          break;
        case DagNode::Kind::Attack:
          node_out[n] = runner_.run(node.plan);
          break;
      }
      const auto t1 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
      node_seconds_[n] = std::chrono::duration<double>(t1 - t0).count();
      ++stats_.dispatched;
    }
  } else {
    run_pool(node_out, procs);
  }

  std::vector<AttackOutcome> out(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    out[i] = node_out[node_of_plan[i]];
    out[i].plan = plans[i];
  }
  return out;
}

void DagScheduler::run_pool(std::vector<AttackOutcome>& node_out, int procs) {
  const std::size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<std::size_t>> rdeps(n);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = static_cast<int>(nodes_[i].deps.size());
    for (const auto d : nodes_[i].deps) rdeps[d].push_back(i);
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);

  struct Slot {
    proc::WorkerProcess proc;
    bool busy = false;
    std::size_t node = 0;
  };
  const BenchConfig cfg = cfg_;
  const auto spawn = [&cfg]() {
    return proc::WorkerProcess::spawn(
        [cfg](proc::Channel& ch) { dag_worker_body(ch, cfg); });
  };
  const int pool = std::min<int>(procs, static_cast<int>(n));
  std::vector<Slot> slots(static_cast<std::size_t>(pool));
  for (auto& s : slots) s.proc = spawn();

  std::vector<int> attempts(n, 0);
  int attack_dispatches = 0;
  std::size_t done = 0;

  // A dead worker surfaces in two ways: send() to an idle one fails, or
  // recv() from a busy one returns false / throws on a torn frame. Either
  // way the slot is respawned; a busy slot's node goes back to the FRONT of
  // the ready queue (it may be a dependency bottleneck) and the replacement
  // attempt resumes from whatever snapshot/cache state the crashed run left.
  const auto note_death = [&](Slot& s) {
    s.proc.join();  // reap; nonzero exit is expected here
    ++stats_.worker_deaths;
    if (s.busy) {
      s.busy = false;
      IMAP_CHECK_MSG(attempts[s.node] < opts_.max_attempts,
                     "DAG node " << s.node << " failed "
                                 << attempts[s.node] << " attempts");
      ready.push_front(s.node);
      ++stats_.re_dispatched;
    }
    s.proc = spawn();
  };

  std::vector<int> poll_fds;
  std::vector<std::size_t> poll_slots;
  while (done < n) {
    // Hand every ready node to an idle worker (pull-based: the queue is
    // shared, so a slow cell never strands ready work on one process).
    for (auto& s : slots) {
      if (s.busy || ready.empty()) continue;
      const std::size_t node = ready.front();
      ready.pop_front();
      ArchiveWriter req;
      auto& w = req.section("dag/req");
      w.write_u64(kind_code(nodes_[node].kind));
      bool crash = false;
      if (nodes_[node].kind == DagNode::Kind::Attack) {
        ++attack_dispatches;
        crash = opts_.crash_nth_attack > 0 &&
                attack_dispatches == opts_.crash_nth_attack;
      }
      w.write_bool(crash);
      AttackPlan plan = nodes_[node].plan;
      if (nodes_[node].kind != DagNode::Kind::Attack) {
        plan.env_name = nodes_[node].env_name;
        plan.defense = nodes_[node].defense;
      }
      write_plan(w, plan);
      while (!s.proc.channel().send(req)) note_death(s);
      s.busy = true;
      s.node = node;
      ++attempts[node];
      ++stats_.dispatched;
    }

    poll_fds.clear();
    poll_slots.clear();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].busy) continue;
      poll_fds.push_back(slots[i].proc.channel().read_fd());
      poll_slots.push_back(i);
    }
    IMAP_CHECK_MSG(!poll_fds.empty(), "DAG deadlock: no busy worker but "
                                          << (n - done) << " nodes pending");
    for (const auto p : proc::poll_readable(poll_fds)) {
      Slot& s = slots[poll_slots[p]];
      ArchiveReader rep;
      bool ok = false;
      try {
        ok = s.proc.channel().recv(rep);
      } catch (const CheckError&) {
        ok = false;  // torn frame from a mid-write death
      }
      if (!ok) {
        note_death(s);
        continue;
      }
      const std::size_t node = s.node;
      node_seconds_[node] = rep.section("dag/ok").read_f64();
      if (nodes_[node].kind == DagNode::Kind::Attack) {
        auto r = rep.section("dag/out");
        node_out[node] = read_outcome(r);
      }
      s.busy = false;
      ++done;
      for (const auto rd : rdeps[node])
        if (--indeg[rd] == 0) ready.push_back(rd);
    }
  }

  for (auto& s : slots) {
    const int rc = s.proc.join();
    IMAP_CHECK_MSG(rc == 0, "DAG worker exited with status " << rc);
  }
}

}  // namespace imap::core
