#include "core/experiment.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/serialize.h"

#include "attack/ap_marl.h"
#include "attack/random_attack.h"
#include "attack/sa_rl.h"
#include "common/check.h"
#include "common/proc.h"
#include "env/registry.h"
#include "scenario/scenario_env.h"
#include "scenario/spec.h"

namespace imap::core {

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::None: return "No Attack";
    case AttackKind::Random: return "Random";
    case AttackKind::SaRl: return "SA-RL";
    case AttackKind::ApMarl: return "AP-MARL";
    case AttackKind::ImapSC: return "IMAP-SC";
    case AttackKind::ImapPC: return "IMAP-PC";
    case AttackKind::ImapR: return "IMAP-R";
    case AttackKind::ImapD: return "IMAP-D";
  }
  return "?";
}

bool is_imap(AttackKind kind) {
  return kind == AttackKind::ImapSC || kind == AttackKind::ImapPC ||
         kind == AttackKind::ImapR || kind == AttackKind::ImapD;
}

RegularizerType regularizer_of(AttackKind kind) {
  switch (kind) {
    case AttackKind::ImapSC: return RegularizerType::SC;
    case AttackKind::ImapPC: return RegularizerType::PC;
    case AttackKind::ImapR: return RegularizerType::R;
    case AttackKind::ImapD: return RegularizerType::D;
    default: break;
  }
  IMAP_CHECK_MSG(false, to_string(kind) << " is not an IMAP attack");
  return RegularizerType::SC;  // unreachable
}

std::vector<AttackKind> imap_attacks() {
  return {AttackKind::ImapSC, AttackKind::ImapPC, AttackKind::ImapR,
          AttackKind::ImapD};
}

ExperimentRunner::ExperimentRunner(BenchConfig cfg)
    : cfg_(cfg),
      zoo_(cfg.zoo_dir, cfg.scale, cfg.seed, cfg.snapshot_every) {}

std::string ExperimentRunner::snapshot_path(const std::string& key) const {
  return cfg_.zoo_dir + "/snapshots/" + key + ".snap";
}

long long ExperimentRunner::default_attack_steps(
    const std::string& env_name) const {
  long long base = 80'000;
  switch (env::spec(env_name).type) {
    case env::TaskType::DenseLocomotion: base = 120'000; break;
    case env::TaskType::SparseLocomotion: base = 160'000; break;
    case env::TaskType::Navigation: base = 160'000; break;
    case env::TaskType::Manipulation: base = 80'000; break;
    case env::TaskType::MultiAgent: base = 120'000; break;
  }
  return std::max<long long>(
      4096, static_cast<long long>(static_cast<double>(base) * cfg_.scale));
}

int ExperimentRunner::default_eval_episodes(
    const std::string& env_name) const {
  // Paper: 300 episodes (Table 1), 1000 (Table 2), game win rates (Fig. 5).
  int base = 100;
  switch (env::spec(env_name).type) {
    case env::TaskType::DenseLocomotion: base = 100; break;
    case env::TaskType::MultiAgent: base = 200; break;
    default: base = 200; break;
  }
  return std::max(10, static_cast<int>(base * std::min(1.0, cfg_.scale * 2)));
}

rl::PpoOptions ExperimentRunner::attack_ppo_options() const {
  return rl::PpoOptions{};  // library defaults, shared by every attack

}

Rng ExperimentRunner::plan_rng(const AttackPlan& plan) const {
  Rng seeder(cfg_.seed);
  std::uint64_t stream = 0;
  // The canonical scenario string IS the cell identity when present; plans
  // without one keep the historical env_name stream bit-for-bit.
  const std::string& identity =
      plan.scenario.empty() ? plan.env_name : plan.scenario;
  const std::string key = identity + "|" + plan.defense + "|" +
                          to_string(plan.attack) +
                          (plan.bias_reduction ? "|BR" : "");
  for (const char c : key) stream = stream * 131 + static_cast<unsigned char>(c);
  return seeder.split(stream ^ 0xa77ac4ULL);
}

ImapOptions ExperimentRunner::imap_options(const AttackPlan& plan,
                                           const std::string& env_name) const {
  ImapOptions opts;
  opts.reg.type = regularizer_of(plan.attack);
  opts.reg.xi = plan.xi;
  opts.bias_reduction = plan.bias_reduction;
  opts.eta = plan.eta;
  opts.tau0 = plan.tau0;
  opts.ppo = attack_ppo_options();
  // Dense tasks: per-step surrogate indicators sum to O(max_steps) per
  // episode; normalise so BR's η has a task-independent meaning.
  if (env::spec(env_name).type == env::TaskType::DenseLocomotion)
    opts.surrogate_scale = env::make_env(env_name)->max_steps();
  return opts;
}

namespace {

void write_curve(BinaryWriter& w, const std::vector<CurvePoint>& curve) {
  w.write_u64(curve.size());
  for (const auto& p : curve) {
    w.write_i64(p.steps);
    w.write_f64(p.victim_success);
    w.write_f64(p.tau);
  }
}

std::vector<CurvePoint> read_curve(BinaryReader& r) {
  std::vector<CurvePoint> curve(r.read_u64());
  for (auto& p : curve) {
    p.steps = r.read_i64();
    p.victim_success = r.read_f64();
    p.tau = r.read_f64();
  }
  return curve;
}

/// Snapshot/halt policy for one attack-training run.
struct ResumeCfg {
  std::string snap;          ///< snapshot file ("" disables persistence)
  int every = 0;             ///< iterations between periodic snapshots
  long long halt_after = 0;  ///< stop after N iterations this process
};

/// Drive `attacker` (SaRl / ApMarl / ImapTrainer) to `steps`, resuming from
/// and periodically writing a snapshot that carries the trainer state plus
/// the learning curve so far. Returns false if halted early by halt_after.
template <typename Attacker>
bool train_attacker(Attacker& attacker, long long steps, const ResumeCfg& rc,
                    std::vector<CurvePoint>& curve) {
  ArchiveReader a;
  if (!rc.snap.empty() && ArchiveReader::load(rc.snap, a)) {
    attacker.load_state(a);
    auto r = a.section("runner/curve");
    curve = read_curve(r);
  }
  long long iters = 0;
  while (attacker.trainer().steps_done() < steps) {
    const auto s = attacker.iterate();
    curve.push_back({s.total_steps, s.mean_surrogate, s.tau});
    ++iters;
    const bool more = attacker.trainer().steps_done() < steps;
    const bool halting = rc.halt_after > 0 && iters >= rc.halt_after && more;
    const bool periodic = rc.every > 0 && iters % rc.every == 0 && more;
    if (!rc.snap.empty() && (halting || periodic)) {
      std::filesystem::create_directories(
          std::filesystem::path(rc.snap).parent_path());
      ArchiveWriter w;
      attacker.save_state(w);
      auto& c = w.section("runner/curve");
      write_curve(c, curve);
      IMAP_CHECK_MSG(w.save(rc.snap),
                     "failed to write snapshot " << rc.snap);
    }
    if (halting) return false;
  }
  if (!rc.snap.empty()) std::filesystem::remove(rc.snap);
  return true;
}

}  // namespace

AttackOutcome ExperimentRunner::run_single_agent(const AttackPlan& plan,
                                                 const std::string& key) {
  const auto deploy_env = env::make_env(plan.env_name);
  const auto victim_policy = zoo_.victim(plan.env_name, plan.defense);
  // Network-backed handle: per-sample queries are bit-identical to the old
  // as_fn closure, and vectorized attack rollouts can batch the victim.
  const auto victim = Zoo::as_policy(victim_policy);
  const double eps = env::spec(plan.env_name).epsilon;

  Rng rng = plan_rng(plan);
  const long long steps =
      plan.attack_steps ? plan.attack_steps
                        : default_attack_steps(plan.env_name);
  const int episodes = plan.eval_episodes
                           ? plan.eval_episodes
                           : default_eval_episodes(plan.env_name);

  AttackOutcome out;
  out.plan = plan;
  Rng eval_rng = rng.split(0xe7a1ULL);

  switch (plan.attack) {
    case AttackKind::None: {
      out.victim_eval = attack::evaluate_attack(
          *deploy_env, victim, attack::make_null_attack(deploy_env->obs_dim()),
          eps, episodes, eval_rng);
      return out;
    }
    case AttackKind::Random: {
      out.victim_eval = attack::evaluate_attack(
          *deploy_env, victim,
          attack::make_random_attack(deploy_env->obs_dim(), rng.split(3)),
          eps, episodes, eval_rng);
      return out;
    }
    case AttackKind::SaRl: {
      attack::SaRl attacker(*deploy_env, victim, eps, attack_ppo_options(),
                            rng);
      out.completed = train_attacker(
          attacker, steps,
          {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
          out.curve);
      if (!out.completed) return out;
      out.victim_eval = attack::evaluate_attack(
          *deploy_env, victim, attacker.adversary(), eps, episodes, eval_rng);
      return out;
    }
    case AttackKind::ApMarl:
      IMAP_CHECK_MSG(false, "AP-MARL is a multi-agent attack");
      return out;
    default: {
      ImapTrainer attacker(*deploy_env, victim, eps,
                           imap_options(plan, plan.env_name), rng);
      out.completed = train_attacker(
          attacker, steps,
          {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
          out.curve);
      if (!out.completed) return out;
      out.victim_eval = attack::evaluate_attack(
          *deploy_env, victim, attacker.adversary(), eps, episodes, eval_rng);
      return out;
    }
  }
}

AttackOutcome ExperimentRunner::run_scenario(const AttackPlan& plan,
                                             const std::string& key) {
  const auto spec = scenario::parse(plan.scenario);
  const auto victim_policy = zoo_.victim(spec.env, plan.defense);
  const auto victim = Zoo::as_policy(victim_policy);

  Rng rng = plan_rng(plan);
  const long long steps =
      plan.attack_steps ? plan.attack_steps
                        : default_attack_steps(plan.env_name);
  const int episodes = plan.eval_episodes
                           ? plan.eval_episodes
                           : default_eval_episodes(plan.env_name);

  AttackOutcome out;
  out.plan = plan;
  Rng eval_rng = rng.split(0xe7a1ULL);

  // Deployment view: the victim's TRUE reward under the full channel stack
  // (delay/dropout/noise/dr hit the victim even when no adversary acts).
  const auto eval_env = scenario::make_scenario_env(
      spec, victim, attack::RewardMode::VictimTrue);

  switch (plan.attack) {
    case AttackKind::None: {
      out.victim_eval = rl::evaluate(
          *eval_env, attack::make_null_attack(eval_env->act_dim()), episodes,
          eval_rng);
      return out;
    }
    case AttackKind::Random: {
      out.victim_eval = rl::evaluate(
          *eval_env,
          attack::make_random_attack(eval_env->act_dim(), rng.split(3)),
          episodes, eval_rng);
      return out;
    }
    case AttackKind::SaRl: {
      const auto attack_env = scenario::make_scenario_env(
          spec, victim, attack::RewardMode::Adversary);
      attack::SaRl attacker(*attack_env, attack_ppo_options(), rng);
      out.completed = train_attacker(
          attacker, steps,
          {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
          out.curve);
      if (!out.completed) return out;
      out.victim_eval =
          rl::evaluate(*eval_env, attacker.adversary(), episodes, eval_rng);
      return out;
    }
    case AttackKind::ApMarl:
      IMAP_CHECK_MSG(false, "AP-MARL has no scenario-layer threat model");
      return out;
    default: {
      ImapTrainer attacker(
          *scenario::make_scenario_env(spec, victim,
                                       attack::RewardMode::Adversary),
          imap_options(plan, plan.env_name), rng);
      out.completed = train_attacker(
          attacker, steps,
          {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
          out.curve);
      if (!out.completed) return out;
      out.victim_eval =
          rl::evaluate(*eval_env, attacker.adversary(), episodes, eval_rng);
      return out;
    }
  }
}

AttackOutcome ExperimentRunner::run_multi_agent(const AttackPlan& plan,
                                                const std::string& key) {
  const auto game = env::make_multiagent_env(plan.env_name);
  const auto victim_policy = zoo_.game_victim(plan.env_name);
  const auto victim = Zoo::as_policy(victim_policy);

  Rng rng = plan_rng(plan);
  const long long steps =
      plan.attack_steps ? plan.attack_steps
                        : default_attack_steps(plan.env_name);
  const int episodes = plan.eval_episodes
                           ? plan.eval_episodes
                           : default_eval_episodes(plan.env_name);

  AttackOutcome out;
  out.plan = plan;
  Rng eval_rng = rng.split(0xe7a1ULL);

  if (plan.attack == AttackKind::ApMarl) {
    attack::ApMarl attacker(*game, victim, attack_ppo_options(), rng);
    out.completed = train_attacker(
        attacker, steps,
        {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
        out.curve);
    if (!out.completed) return out;
    out.victim_eval = attack::evaluate_opponent_attack(
        *game, victim, attacker.adversary(), episodes, eval_rng);
    return out;
  }
  IMAP_CHECK_MSG(is_imap(plan.attack),
                 to_string(plan.attack) << " unsupported in multi-agent");
  ImapTrainer attacker(*game, victim, imap_options(plan, plan.env_name), rng);
  out.completed = train_attacker(
      attacker, steps,
      {snapshot_path(key), cfg_.snapshot_every, cfg_.halt_after_iters},
      out.curve);
  if (!out.completed) return out;
  out.victim_eval = attack::evaluate_opponent_attack(
      *game, victim, attacker.adversary(), episodes, eval_rng);
  return out;
}

AttackPlan ExperimentRunner::normalize_plan(AttackPlan plan) const {
  if (plan.scenario.empty()) return plan;
  auto spec = scenario::parse(plan.scenario);
  // An attack needs an adversary-controlled channel; when the scenario names
  // none, the registry-ε obs_perturb default becomes explicit so the cell's
  // identity string says exactly what ran.
  if (!spec.trivial() && plan.attack != AttackKind::None &&
      !spec.attackable())
    spec = scenario::with_default_threat(std::move(spec));
  plan.env_name = spec.env;
  plan.scenario = spec.trivial() ? std::string() : spec.canonical();
  return plan;
}

std::string ExperimentRunner::cache_key(const AttackPlan& plan,
                                        long long steps, int episodes) const {
  const std::string& identity =
      plan.scenario.empty() ? plan.env_name : plan.scenario;
  std::ostringstream os;
  os << identity << '|' << plan.defense << '|' << to_string(plan.attack)
     << '|' << (plan.bias_reduction ? 1 : 0) << '|' << plan.eta << '|'
     << plan.xi << '|' << plan.tau0 << '|' << steps << '|' << episodes << '|'
     << cfg_.seed << '|' << cfg_.scale << "|v" << kFormatVersion;
  // FNV-1a over the readable key keeps filenames short and portable.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : os.str()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::ostringstream name;
  name << plan.env_name << '_' << to_string(plan.attack)
       << (plan.bias_reduction ? "_BR" : "") << '_' << std::hex << h;
  std::string key = name.str();
  for (auto& c : key)
    if (c == ' ' || c == '/') c = '-';
  return key;
}

std::string ExperimentRunner::results_path(const std::string& key) const {
  return cfg_.zoo_dir + "/results/" + key + ".res";
}

bool ExperimentRunner::load_cached(const std::string& key,
                                   AttackOutcome& out) const {
  const auto path = results_path(key);
  // One stat decides the shape of the lookup: a missing file is a miss (and
  // invalidates any stale memo entry); an unchanged signature replays the
  // already-verified parse; only a new or rewritten file pays the full
  // archive read + CRC pass.
  const auto sig = proc::file_sig(path);
  std::lock_guard<std::mutex> lk(result_memo_m_);
  if (!sig) {
    result_memo_.erase(key);
    return false;
  }
  const auto it = result_memo_.find(key);
  if (it != result_memo_.end() && it->second.sig == *sig) {
    out.victim_eval = it->second.victim_eval;
    out.curve = it->second.curve;
    return true;
  }
  BinaryReader r;
  if (!BinaryReader::load(path, r)) return false;
  out.victim_eval.returns.mean = r.read_f64();
  out.victim_eval.returns.stddev = r.read_f64();
  out.victim_eval.returns.episodes = r.read_u64();
  out.victim_eval.success_rate = r.read_f64();
  out.victim_eval.mean_length = r.read_f64();
  out.victim_eval.episode_returns = r.read_vec();
  const auto n = r.read_u64();
  out.curve.resize(n);
  for (auto& p : out.curve) {
    p.steps = r.read_i64();
    p.victim_success = r.read_f64();
    p.tau = r.read_f64();
  }
  result_memo_[key] = CachedResult{*sig, out.victim_eval, out.curve};
  return true;
}

void ExperimentRunner::store_cached(const std::string& key,
                                    const AttackOutcome& out) const {
  std::filesystem::create_directories(cfg_.zoo_dir + "/results");
  BinaryWriter w;
  w.write_f64(out.victim_eval.returns.mean);
  w.write_f64(out.victim_eval.returns.stddev);
  w.write_u64(out.victim_eval.returns.episodes);
  w.write_f64(out.victim_eval.success_rate);
  w.write_f64(out.victim_eval.mean_length);
  w.write_vec(out.victim_eval.episode_returns);
  w.write_u64(out.curve.size());
  for (const auto& p : out.curve) {
    w.write_i64(p.steps);
    w.write_f64(p.victim_success);
    w.write_f64(p.tau);
  }
  const auto path = results_path(key);
  w.save(path);
  // Pre-warm the memo: the process that computed a cell answers later
  // lookups of it (repeat grids, serving-daemon job polls) from memory.
  if (const auto sig = proc::file_sig(path)) {
    std::lock_guard<std::mutex> lk(result_memo_m_);
    result_memo_[key] = CachedResult{*sig, out.victim_eval, out.curve};
  }
}

AttackOutcome ExperimentRunner::run(const AttackPlan& raw_plan) {
  const AttackPlan plan = normalize_plan(raw_plan);
  const long long steps = plan.attack_steps
                              ? plan.attack_steps
                              : default_attack_steps(plan.env_name);
  const int episodes = plan.eval_episodes
                           ? plan.eval_episodes
                           : default_eval_episodes(plan.env_name);
  const auto key = cache_key(plan, steps, episodes);
  AttackOutcome cached;
  cached.plan = plan;
  if (load_cached(key, cached)) return cached;

  // Per-cell lock: two fabric processes racing on the same plan serialize,
  // and the second finds the first's cached result on re-check. Held for
  // the whole run — a crashed holder's lock is stolen (see proc::FileLock)
  // and the replacement resumes from the crashed run's snapshot. Locks live
  // in their own directory: results/ existing means a result was cached.
  std::filesystem::create_directories(cfg_.zoo_dir + "/locks");
  proc::FileLock lock(cfg_.zoo_dir + "/locks/" + key + ".lock");
  if (load_cached(key, cached)) return cached;

  AttackOutcome out =
      !plan.scenario.empty() ? run_scenario(plan, key)
      : env::spec(plan.env_name).type == env::TaskType::MultiAgent
          ? run_multi_agent(plan, key)
          : run_single_agent(plan, key);
  // A halted run left a snapshot, not a result — resume before caching.
  if (out.completed) store_cached(key, out);
  return out;
}

}  // namespace imap::core
