#include "core/imap_trainer.h"

#include "common/check.h"
#include "common/stats.h"

namespace imap::core {

std::vector<double> estimate_initial_state(const rl::Env& env,
                                           const RegularizerOptions& opts,
                                           int n, Rng& rng) {
  auto clone = env.clone();
  std::vector<double> acc;
  for (int i = 0; i < n; ++i) {
    const auto obs = opts.victim_slice.project(clone->reset(rng));
    if (acc.empty()) acc.assign(obs.size(), 0.0);
    for (std::size_t c = 0; c < obs.size(); ++c) acc[c] += obs[c];
  }
  for (auto& x : acc) x /= n;
  return acc;
}

ImapTrainer::ImapTrainer(const rl::Env& deploy_env, rl::PolicyHandle victim,
                         double eps, ImapOptions opts, Rng rng)
    : opts_(opts), br_(opts.bias_reduction, opts.eta, opts.tau0) {
  attack::StatePerturbationEnv attack_env(deploy_env, std::move(victim), eps,
                                          attack::RewardMode::Adversary);
  if (opts_.reg.type == RegularizerType::R && opts_.reg.risk_target.empty()) {
    Rng init_rng = rng.split(0x5eedULL);
    opts_.reg.risk_target =
        estimate_initial_state(attack_env, opts_.reg, 16, init_rng);
  }
  finish_setup(attack_env, opts_, rng);
}

ImapTrainer::ImapTrainer(const env::MultiAgentEnv& game,
                         rl::PolicyHandle victim, ImapOptions opts, Rng rng)
    : opts_(opts), br_(opts.bias_reduction, opts.eta, opts.tau0) {
  attack::OpponentEnv attack_env(game, std::move(victim));
  // Default marginals: the game's joint-state projections (Eq. 7 / Eq. 9).
  if (opts_.reg.victim_slice.whole()) {
    const auto [vb, ve] = attack_env.victim_obs_range();
    const auto [ab, ae] = attack_env.adversary_obs_range();
    opts_.reg.victim_slice = {vb, ve};
    opts_.reg.adversary_slice = {ab, ae};
  }
  if (opts_.reg.type == RegularizerType::R && opts_.reg.risk_target.empty()) {
    Rng init_rng = rng.split(0x5eedULL);
    opts_.reg.risk_target =
        estimate_initial_state(attack_env, opts_.reg, 16, init_rng);
  }
  finish_setup(attack_env, opts_, rng);
}

ImapTrainer::ImapTrainer(const rl::Env& attack_env, ImapOptions opts, Rng rng)
    : opts_(opts), br_(opts.bias_reduction, opts.eta, opts.tau0) {
  if (opts_.reg.type == RegularizerType::R && opts_.reg.risk_target.empty()) {
    Rng init_rng = rng.split(0x5eedULL);
    opts_.reg.risk_target =
        estimate_initial_state(attack_env, opts_.reg, 16, init_rng);
  }
  finish_setup(attack_env, opts_, rng);
}

void ImapTrainer::finish_setup(const rl::Env& attack_env, ImapOptions opts,
                               Rng rng) {
  reg_ = make_regularizer(opts.reg, attack_env.obs_dim(),
                          attack_env.act_dim(), rng.split(0x4e67ULL));
  trainer_ =
      std::make_unique<rl::PpoTrainer>(attack_env, opts.ppo, rng.split(1));

  IMAP_CHECK(opts_.surrogate_scale > 0.0);
  // Algorithm 1's optimizing stage: bonuses from the chosen regularizer,
  // then the BR temperature for this iteration.
  trainer_->set_intrinsic_hook([this](rl::RolloutBuffer& buf) {
    reg_->compute(buf, trainer_->policy());
    if (!buf.episode_surrogate.empty()) {
      const double j_ap =
          -mean(buf.episode_surrogate) / opts_.surrogate_scale;
      br_.observe(j_ap);
    }
    return br_.tau();
  });
}

rl::ActionFn ImapTrainer::adversary() const {
  auto snapshot = std::make_shared<nn::GaussianPolicy>(trainer_->policy());
  return [snapshot](const std::vector<double>& obs) {
    return snapshot->mean_action(obs);
  };
}

void ImapTrainer::save_state(ArchiveWriter& a) const {
  trainer_->save_state(a);
  auto& br = a.section("imap/br");
  br_.save_state(br);
  auto& reg = a.section("imap/reg");
  reg.write_string(reg_->name());
  reg_->save_state(reg);
}

void ImapTrainer::load_state(const ArchiveReader& a) {
  trainer_->load_state(a);
  auto br = a.section("imap/br");
  br_.load_state(br);
  auto reg = a.section("imap/reg");
  IMAP_CHECK_MSG(reg.read_string() == reg_->name(),
                 "IMAP checkpoint was written with a different regularizer");
  reg_->load_state(reg);
}

bool ImapTrainer::snapshot(const std::string& path) const {
  ArchiveWriter a;
  save_state(a);
  return a.save(path);
}

bool ImapTrainer::restore(const std::string& path) {
  ArchiveReader a;
  if (!ArchiveReader::load(path, a)) return false;
  load_state(a);
  return true;
}

}  // namespace imap::core
