#include "core/mimic.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace imap::core {

MimicPolicy::MimicPolicy(std::size_t obs_dim, std::size_t act_dim,
                         std::vector<std::size_t> hidden, Rng rng, double lr)
    : mimic_(obs_dim, act_dim, std::move(hidden), rng),
      opt_(mimic_.n_params(), {.lr = lr, .max_grad_norm = 1.0}),
      rng_(rng.split(0x6d696d6963ULL)) {}

void MimicPolicy::update(const rl::RolloutBuffer& buf, int epochs,
                         int minibatch) {
  const std::size_t n = buf.size();
  if (n == 0) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (int e = 0; e < epochs; ++e) {
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<int>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(minibatch)) {
      const std::size_t end =
          std::min(n, start + static_cast<std::size_t>(minibatch));
      const double inv_bs = 1.0 / static_cast<double>(end - start);
      mimic_.zero_grad();
      for (std::size_t t = start; t < end; ++t) {
        const auto idx = order[t];
        nn::Mlp::Tape tape;
        mimic_.mean_tape(buf.obs[idx], tape);
        // NLL minimisation: accumulate −∇ log π_m(a|s).
        mimic_.backward_logp(tape, buf.act[idx], -inv_bs);
      }
      auto p = mimic_.flat_params();
      opt_.step(p, mimic_.flat_grads());
      mimic_.set_flat_params(p);
      mimic_.clamp_log_std();
    }
  }
}

double MimicPolicy::kl_from(const nn::GaussianPolicy& policy,
                            const std::vector<double>& obs) const {
  IMAP_CHECK(obs.size() == mimic_.obs_dim());
  return nn::diag_gaussian::kl(policy.mean_action(obs), policy.log_std(),
                               mimic_.mean_action(obs), mimic_.log_std());
}

void MimicPolicy::save_state(BinaryWriter& w) const {
  mimic_.save_state(w);
  opt_.save_state(w);
  rng_.save_state(w);
}

void MimicPolicy::load_state(BinaryReader& r) {
  mimic_.load_state(r);
  opt_.load_state(r);
  rng_.load_state(r);
}

}  // namespace imap::core
