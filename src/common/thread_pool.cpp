#include "common/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

namespace imap {

namespace {

// Per-thread dispatch state. Pool workers install themselves as the default
// target so nested parallel regions drain on the pool that spawned them.
thread_local int t_serial_depth = 0;
thread_local ThreadPool* t_pool_override = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t concurrency)
    : concurrency_(concurrency == 0 ? 1 : concurrency) {
  deques_.reserve(concurrency_);
  for (std::size_t i = 0; i < concurrency_; ++i)
    deques_.push_back(std::make_unique<Deque>());
  // The submitting/waiting thread is participant 0; spawn the rest.
  workers_.reserve(concurrency_ - 1);
  for (std::size_t i = 1; i < concurrency_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t idx =
      next_.fetch_add(1, std::memory_order_relaxed) % concurrency_;
  {
    std::lock_guard<std::mutex> lk(deques_[idx]->m);
    deques_[idx]->q.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_from(std::size_t idx, std::function<void()>& task,
                          bool steal) {
  Deque& d = *deques_[idx];
  std::lock_guard<std::mutex> lk(d.m);
  if (d.q.empty()) return false;
  if (steal) {
    task = std::move(d.q.back());
    d.q.pop_back();
  } else {
    task = std::move(d.q.front());
    d.q.pop_front();
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  for (std::size_t i = 0; i < concurrency_; ++i) {
    if (pop_from(i, task, /*steal=*/i != 0)) {
      task();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_pool_override = this;
  std::function<void()> task;
  while (true) {
    bool ran = false;
    // Own deque first (FIFO keeps chunk order roughly sequential), then
    // steal from the busiest-looking victims in index order.
    if (pop_from(self, task, /*steal=*/false)) {
      ran = true;
    } else {
      for (std::size_t off = 1; off < concurrency_ && !ran; ++off)
        ran = pop_from((self + off) % concurrency_, task, /*steal=*/true);
    }
    if (ran) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_m_);
    sleep_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

std::size_t ThreadPool::configured_threads() {
  const char* v = std::getenv("IMAP_THREADS");
  if (v && *v) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_threads());
  return pool;
}

ScopedSerial::ScopedSerial() { ++t_serial_depth; }
ScopedSerial::~ScopedSerial() { --t_serial_depth; }

ScopedPool::ScopedPool(ThreadPool& pool) : prev_(t_pool_override) {
  t_pool_override = &pool;
}
ScopedPool::~ScopedPool() { t_pool_override = prev_; }

std::size_t effective_concurrency() {
  if (t_serial_depth > 0) return 1;
  return t_pool_override ? t_pool_override->size()
                         : ThreadPool::configured_threads();
}

namespace {

/// Completion latch shared by one parallel_for call's tasks.
struct ForLatch {
  std::atomic<std::size_t> remaining;
  std::mutex m;
  std::condition_variable cv;
  std::mutex err_m;
  std::exception_ptr err;
};

void run_range(const std::function<void(std::size_t, std::size_t)>& body,
               std::size_t b, std::size_t e, ForLatch& latch) {
  try {
    body(b, e);
  } catch (...) {
    std::lock_guard<std::mutex> lk(latch.err_m);
    if (!latch.err) latch.err = std::current_exception();
  }
  if (latch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(latch.m);
    latch.cv.notify_all();
  }
}

}  // namespace

void parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool* pool = t_pool_override ? t_pool_override : &ThreadPool::global();
  if (t_serial_depth > 0 || pool->size() <= 1 || n <= 1) {
    body(0, n);
    return;
  }
  if (grain == 0) grain = std::max<std::size_t>(1, n / (pool->size() * 4));
  const std::size_t nchunks =
      std::min((n + grain - 1) / grain, std::max<std::size_t>(1, n));
  if (nchunks <= 1) {
    body(0, n);
    return;
  }

  auto latch = std::make_shared<ForLatch>();
  latch->remaining.store(nchunks, std::memory_order_relaxed);
  // Chunk i covers [i·n/nchunks, (i+1)·n/nchunks): a fixed, gap-free split.
  for (std::size_t i = 1; i < nchunks; ++i) {
    const std::size_t b = i * n / nchunks;
    const std::size_t e = (i + 1) * n / nchunks;
    pool->submit([&body, b, e, latch] { run_range(body, b, e, *latch); });
  }
  // The caller takes the first chunk, then helps drain the pool while the
  // rest finish — this is also what keeps nested parallel_for deadlock-free.
  run_range(body, 0, n / nchunks, *latch);
  while (latch->remaining.load(std::memory_order_acquire) != 0) {
    if (pool->try_run_one()) continue;
    std::unique_lock<std::mutex> lk(latch->m);
    latch->cv.wait_for(lk, std::chrono::milliseconds(1), [&] {
      return latch->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (latch->err) std::rethrow_exception(latch->err);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_chunked(n, grain, [&body](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) body(i);
  });
}

}  // namespace imap
