#include "common/proc.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <set>

#include "common/check.h"
#include "common/thread_pool.h"

namespace imap::proc {

namespace {

/// Frames larger than this are treated as stream corruption, not messages.
constexpr std::uint64_t kMaxFrameBytes = 1ull << 32;

/// Registry of every live parent-side channel descriptor. A freshly forked
/// child closes all of them except its own channel's, so no worker ever
/// holds an inherited duplicate of a sibling's pipe end (which would defeat
/// EOF-based shutdown of that sibling).
std::mutex g_fds_mutex;
std::set<int> g_channel_fds;

void register_fd(int fd) {
  if (fd < 0) return;
  std::lock_guard<std::mutex> lk(g_fds_mutex);
  g_channel_fds.insert(fd);
}

void unregister_fd(int fd) {
  if (fd < 0) return;
  std::lock_guard<std::mutex> lk(g_fds_mutex);
  g_channel_fds.erase(fd);
}

/// Writing to a pipe whose reader died must surface as send() == false, not
/// process death: the fabric handles worker loss by re-dispatching.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

/// Full write loop (EINTR-safe). Returns false on EPIPE, throws otherwise.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return false;
      IMAP_CHECK_MSG(false, "channel write failed: " << std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Full read loop. Returns bytes read (< n only at end-of-stream).
std::size_t read_upto(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      IMAP_CHECK_MSG(false, "channel read failed: " << std::strerror(errno));
    }
    if (r == 0) break;
    off += static_cast<std::size_t>(r);
  }
  return off;
}

void encode_u64le(std::uint64_t v, std::array<std::uint8_t, 8>& out) {
  for (std::size_t i = 0; i < 8; ++i)
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t decode_u64le(const std::array<std::uint8_t, 8>& in) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

int configured_procs() {
  const char* v = std::getenv("IMAP_PROCS");
  if (!v || !*v) return 1;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || parsed < 1) return 1;
  return static_cast<int>(parsed);
}

Channel::Channel(int read_fd, int write_fd) : rfd_(read_fd), wfd_(write_fd) {
  ignore_sigpipe_once();
  register_fd(rfd_);
  register_fd(wfd_);
}

Channel::~Channel() { close_both(); }

Channel::Channel(Channel&& other) noexcept
    : rfd_(other.rfd_), wfd_(other.wfd_) {
  other.rfd_ = other.wfd_ = -1;
}

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close_both();
    rfd_ = other.rfd_;
    wfd_ = other.wfd_;
    other.rfd_ = other.wfd_ = -1;
  }
  return *this;
}

void Channel::close_read() {
  if (rfd_ >= 0) {
    unregister_fd(rfd_);
    ::close(rfd_);
    rfd_ = -1;
  }
}

void Channel::close_write() {
  if (wfd_ >= 0) {
    unregister_fd(wfd_);
    ::close(wfd_);
    wfd_ = -1;
  }
}

void Channel::close_both() {
  close_read();
  close_write();
}

bool Channel::send(const ArchiveWriter& msg) const {
  IMAP_CHECK_MSG(wfd_ >= 0, "send on a closed channel");
  const std::vector<std::uint8_t> bytes = msg.bytes();
  std::array<std::uint8_t, 8> hdr;
  encode_u64le(bytes.size(), hdr);
  if (!write_all(wfd_, hdr.data(), hdr.size())) return false;
  return write_all(wfd_, bytes.data(), bytes.size());
}

bool Channel::recv(ArchiveReader& out) const {
  IMAP_CHECK_MSG(rfd_ >= 0, "recv on a closed channel");
  std::array<std::uint8_t, 8> hdr;
  const std::size_t got = read_upto(rfd_, hdr.data(), hdr.size());
  if (got == 0) return false;  // clean end-of-stream between frames
  IMAP_CHECK_MSG(got == hdr.size(),
                 "channel frame header truncated (" << got << "/8 bytes)");
  const std::uint64_t len = decode_u64le(hdr);
  IMAP_CHECK_MSG(len <= kMaxFrameBytes,
                 "channel frame length " << len << " exceeds sanity bound");
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
  const std::size_t body = read_upto(rfd_, payload.data(), payload.size());
  IMAP_CHECK_MSG(body == payload.size(), "channel frame payload truncated ("
                                             << body << "/" << len
                                             << " bytes)");
  out = ArchiveReader::parse(std::move(payload), "channel frame");
  return true;
}

WorkerProcess::~WorkerProcess() {
  if (valid() && !reaped_) {
    ch_.close_both();
    reap_blocking();
  }
}

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_),
      status_(other.status_),
      reaped_(other.reaped_),
      ch_(std::move(other.ch_)) {
  other.pid_ = -1;
  other.reaped_ = false;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    if (valid() && !reaped_) {
      ch_.close_both();
      reap_blocking();
    }
    pid_ = other.pid_;
    status_ = other.status_;
    reaped_ = other.reaped_;
    ch_ = std::move(other.ch_);
    other.pid_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

WorkerProcess WorkerProcess::spawn(const Body& body) {
  ignore_sigpipe_once();
  int to_child[2];   // parent writes, child reads
  int to_parent[2];  // child writes, parent reads
  IMAP_CHECK_MSG(::pipe(to_child) == 0 && ::pipe(to_parent) == 0,
                 "pipe() failed: " << std::strerror(errno));

  const pid_t pid = ::fork();
  IMAP_CHECK_MSG(pid >= 0, "fork() failed: " << std::strerror(errno));

  if (pid == 0) {
    // Child. Close the parent halves, then every inherited sibling-channel
    // descriptor; the parent's pool threads did not survive the fork, so
    // all parallel helpers run inline for the life of this process.
    ::close(to_child[1]);
    ::close(to_parent[0]);
    {
      std::lock_guard<std::mutex> lk(g_fds_mutex);
      for (const int fd : g_channel_fds) ::close(fd);
      g_channel_fds.clear();
    }
    int rc = 0;
    {
      Channel ch(to_child[0], to_parent[1]);
      ScopedSerial serial;
      try {
        body(ch);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "imap worker %d: %s\n",
                     static_cast<int>(::getpid()), e.what());
        rc = 1;
      } catch (...) {
        std::fprintf(stderr, "imap worker %d: unknown exception\n",
                     static_cast<int>(::getpid()));
        rc = 1;
      }
    }
    std::fflush(nullptr);
    ::_exit(rc);
  }

  // Parent.
  ::close(to_child[0]);
  ::close(to_parent[1]);
  WorkerProcess w;
  w.pid_ = pid;
  w.ch_ = Channel(to_parent[0], to_child[1]);
  return w;
}

bool WorkerProcess::running() {
  if (!valid() || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    status_ = status;
    reaped_ = true;
    return false;
  }
  return true;
}

void WorkerProcess::reap_blocking() {
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  status_ = status;
  reaped_ = true;
}

int WorkerProcess::join() {
  IMAP_CHECK_MSG(valid(), "join on an empty WorkerProcess");
  ch_.close_write();  // child's next recv() returns false -> clean exit
  if (!reaped_) reap_blocking();
  ch_.close_both();
  if (WIFEXITED(status_)) return WEXITSTATUS(status_);
  if (WIFSIGNALED(status_)) return -WTERMSIG(status_);
  return -1;
}

void WorkerProcess::terminate() {
  if (!valid() || reaped_) return;
  ::kill(pid_, SIGKILL);
  reap_blocking();
  ch_.close_both();
}

std::optional<FileSig> file_sig(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT || errno == ENOTDIR) return std::nullopt;
    IMAP_CHECK_MSG(false,
                   "stat(" << path << ") failed: " << std::strerror(errno));
  }
  FileSig sig;
  sig.mtime_ns = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1'000'000'000ull +
                 static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
  sig.size = static_cast<std::uint64_t>(st.st_size);
  sig.inode = static_cast<std::uint64_t>(st.st_ino);
  return sig;
}

std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                       int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> index_of;
  pfds.reserve(fds.size());
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i] < 0) continue;
    pfds.push_back(pollfd{fds[i], POLLIN, 0});
    index_of.push_back(i);
  }
  std::vector<std::size_t> ready;
  if (pfds.empty()) return ready;
  int r;
  do {
    r = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (r < 0 && errno == EINTR);
  IMAP_CHECK_MSG(r >= 0, "poll() failed: " << std::strerror(errno));
  for (std::size_t i = 0; i < pfds.size(); ++i)
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR))
      ready.push_back(index_of[i]);
  return ready;
}

FileLock::FileLock(std::string path) : path_(std::move(path)) {
  ignore_sigpipe_once();
  timespec backoff{0, 2'000'000};  // 2 ms, doubled up to ~128 ms
  while (true) {
    const int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      char buf[32];
      const int n =
          std::snprintf(buf, sizeof buf, "%d\n", static_cast<int>(::getpid()));
      if (n > 0)
        write_all(fd, reinterpret_cast<const std::uint8_t*>(buf),
                  static_cast<std::size_t>(n));
      ::close(fd);
      held_ = true;
      return;
    }
    IMAP_CHECK_MSG(errno == EEXIST,
                   "lockfile " << path_ << ": " << std::strerror(errno));
    // Steal the lock if its owner is gone (crashed mid-critical-section;
    // the guarded writes are tmp+rename atomic, so stealing is safe).
    std::FILE* f = std::fopen(path_.c_str(), "r");
    if (f) {
      int owner = 0;
      const bool parsed = std::fscanf(f, "%d", &owner) == 1;
      std::fclose(f);
      if (parsed && owner > 0 && ::kill(owner, 0) != 0 && errno == ESRCH) {
        std::remove(path_.c_str());
        continue;  // retry the O_EXCL create immediately
      }
    }
    ::nanosleep(&backoff, nullptr);
    if (backoff.tv_nsec < 128'000'000) backoff.tv_nsec *= 2;
  }
}

FileLock::~FileLock() {
  if (held_) std::remove(path_.c_str());
}

}  // namespace imap::proc
