#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace imap {

/// Error type thrown by IMAP_CHECK failures; carries the failing expression
/// and the caller-provided message.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Error type thrown by the IMAP_NCHECK_* numeric guards; distinct from
/// CheckError so callers (and tests) can tell a numeric-health failure from
/// an ordinary contract violation.
class NumericError : public CheckError {
 public:
  explicit NumericError(const std::string& what) : CheckError(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

[[noreturn]] inline void numeric_check_failed(const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << "numeric check failed at " << file << ":" << line << " — " << msg;
  throw NumericError(os.str());
}

inline void ncheck_finite(double x, const char* what, const char* file,
                          int line) {
  if (!std::isfinite(x)) {
    std::ostringstream os;
    os << what << " is not finite (value = " << x << ")";
    numeric_check_failed(file, line, os.str());
  }
}

template <typename Range>
inline void ncheck_finite_range(const Range& v, const char* what,
                                const char* file, int line) {
  std::size_t i = 0;
  for (const auto& x : v) {
    if (!std::isfinite(static_cast<double>(x))) {
      std::ostringstream os;
      os << what << "[" << i << "] is not finite (value = " << x << ")";
      numeric_check_failed(file, line, os.str());
    }
    ++i;
  }
}

inline void ncheck_shape(std::size_t actual, std::size_t expected,
                         const char* what, const char* file, int line) {
  if (actual != expected) {
    std::ostringstream os;
    os << what << " has size " << actual << ", expected " << expected;
    numeric_check_failed(file, line, os.str());
  }
}

inline void ncheck_bounds(double x, double lo, double hi, const char* what,
                          const char* file, int line) {
  if (!(x >= lo && x <= hi)) {
    std::ostringstream os;
    os << what << " = " << x << " is outside [" << lo << ", " << hi << "]";
    numeric_check_failed(file, line, os.str());
  }
}
}  // namespace detail

}  // namespace imap

/// Precondition / invariant check. Always on (these guard library contracts,
/// not hot inner loops), throws imap::CheckError on failure.
#define IMAP_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::imap::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                              std::string{});              \
  } while (false)

#define IMAP_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::imap::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                      \
  } while (false)

// ---------------------------------------------------------------------------
// Numeric-guard layer (IMAP_CHECK_NUMERICS).
//
// Cheap finite-value / shape / bounds assertions placed at layer boundaries:
// nn forward/backward outputs, GAE advantages, PPO ratios and losses, KNN
// distances, and regularizer bonuses. They exist to catch silent NaN/Inf
// corruption the moment it appears instead of 10k updates later.
//
// Enabled with the CMake option -DIMAP_CHECK_NUMERICS=ON (which defines the
// IMAP_CHECK_NUMERICS preprocessor symbol). When disabled the macros expand
// to a no-op that does NOT evaluate its arguments, so guarded hot paths pay
// zero cost in release builds. On failure they throw imap::NumericError.
// ---------------------------------------------------------------------------

#ifdef IMAP_CHECK_NUMERICS

/// Assert a scalar is finite (no NaN / ±Inf).
#define IMAP_NCHECK_FINITE(x, what) \
  ::imap::detail::ncheck_finite((x), (what), __FILE__, __LINE__)

/// Assert every element of a range (vector, span, array) is finite.
#define IMAP_NCHECK_FINITE_VEC(v, what) \
  ::imap::detail::ncheck_finite_range((v), (what), __FILE__, __LINE__)

/// Assert a container size matches the expected shape.
#define IMAP_NCHECK_SHAPE(actual, expected, what)                        \
  ::imap::detail::ncheck_shape(static_cast<std::size_t>(actual),         \
                               static_cast<std::size_t>(expected),       \
                               (what), __FILE__, __LINE__)

/// Assert a scalar lies in [lo, hi] (and implicitly that it is not NaN).
#define IMAP_NCHECK_BOUNDS(x, lo, hi, what) \
  ::imap::detail::ncheck_bounds((x), (lo), (hi), (what), __FILE__, __LINE__)

#else  // !IMAP_CHECK_NUMERICS — no-ops; arguments are never evaluated.

#define IMAP_NCHECK_FINITE(x, what) ((void)0)
#define IMAP_NCHECK_FINITE_VEC(v, what) ((void)0)
#define IMAP_NCHECK_SHAPE(actual, expected, what) ((void)0)
#define IMAP_NCHECK_BOUNDS(x, lo, hi, what) ((void)0)

#endif  // IMAP_CHECK_NUMERICS
