#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace imap {

/// Error type thrown by IMAP_CHECK failures; carries the failing expression
/// and the caller-provided message.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace imap

/// Precondition / invariant check. Always on (these guard library contracts,
/// not hot inner loops), throws imap::CheckError on failure.
#define IMAP_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::imap::detail::check_failed(#expr, __FILE__, __LINE__,   \
                                              std::string{});              \
  } while (false)

#define IMAP_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::imap::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                      \
  } while (false)
