#include "common/rng.h"

#include <sstream>

#include "common/check.h"
#include "common/serialize.h"

namespace imap {

namespace {
// SplitMix64 — used to decorrelate seeds before feeding the Mersenne twister
// and to derive child streams.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), gen_(splitmix64(seed)) {}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(gen_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(gen_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(gen_);
}

std::vector<double> Rng::uniform_vec(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<double> Rng::normal_vec(std::size_t n, double mean,
                                    double stddev) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal(mean, stddev);
  return v;
}

Rng Rng::split(std::uint64_t stream) {
  return Rng(splitmix64(seed_ ^ splitmix64(stream + 0x5851f42d4c957f2dULL)));
}

std::uint64_t Rng::next_u64() { return gen_(); }

void Rng::save_state(BinaryWriter& w) const {
  w.write_u64(seed_);
  // The standard guarantees operator<</>> round-trip the engine exactly
  // (textual dump of the Mersenne state + position).
  std::ostringstream os;
  os << gen_;
  w.write_string(os.str());
}

void Rng::load_state(BinaryReader& r) {
  seed_ = r.read_u64();
  std::istringstream is(r.read_string());
  is >> gen_;
  IMAP_CHECK_MSG(!is.fail(), "corrupt Rng engine state in checkpoint");
}

}  // namespace imap
