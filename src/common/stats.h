#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace imap {

/// Mean of a sample (0 for empty input).
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Streaming mean/variance (Welford). Numerically stable; O(1) per update.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Summary of a set of episode returns, as reported in the paper's tables
/// ("average episode rewards ± standard deviation").
struct ReturnSummary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t episodes = 0;
};

ReturnSummary summarize(const std::vector<double>& returns);

/// Monotonic event counter with a lock-free (relaxed-atomic) fast path.
/// Increments from any thread never block and never fence each other; reads
/// are eventually consistent totals, which is all a metrics export needs.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Lock-free log2-bucketed histogram of non-negative integer samples
/// (latencies in microseconds, coalesced batch sizes, ...).
///
/// Bucket b counts samples whose bit width is b, i.e. values in
/// [2^(b-1), 2^b); bucket 0 counts zeros. record() is one relaxed
/// fetch_add per sample plus two for sum/count — no locks, no allocation —
/// so it can sit on a serving hot path. Percentiles are read-side estimates:
/// the cumulative bucket walk resolves the target bucket exactly and
/// interpolates linearly inside it (error bounded by the bucket's span,
/// i.e. at most 2x at the bucket's upper edge).
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;  ///< covers values < 2^39

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.get(); }
  std::uint64_t sum() const { return sum_.get(); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Estimated p-th percentile (p in [0, 100]); 0 when empty.
  double percentile(double p) const;

  /// Count in bucket b (samples with bit width b; see class comment).
  std::uint64_t bucket(std::size_t b) const { return buckets_[b].get(); }

  /// Inclusive upper bound of bucket b (2^b - 1; 0 for bucket 0).
  static std::uint64_t bucket_bound(std::size_t b);

 private:
  std::array<Counter, kBuckets> buckets_;
  Counter count_;
  Counter sum_;
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace imap
