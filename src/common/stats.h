#pragma once

#include <cstddef>
#include <vector>

namespace imap {

/// Mean of a sample (0 for empty input).
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Streaming mean/variance (Welford). Numerically stable; O(1) per update.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Summary of a set of episode returns, as reported in the paper's tables
/// ("average episode rewards ± standard deviation").
struct ReturnSummary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t episodes = 0;
};

ReturnSummary summarize(const std::vector<double>& returns);

}  // namespace imap
