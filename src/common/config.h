#pragma once

#include <string>

namespace imap {

/// Runtime knobs shared by the bench harnesses, read once from the
/// environment:
///   IMAP_BENCH_SCALE — multiplies all training-step and eval-episode budgets
///                      (default 1.0; use e.g. 0.1 for a smoke run).
///   IMAP_ZOO_DIR     — directory for cached victim checkpoints
///                      (default "./zoo").
///   IMAP_SEED        — base experiment seed (default 7).
///   IMAP_SNAPSHOT_EVERY — write a resumable training snapshot every N
///                      iterations/rounds (0 = off). Interrupted victim
///                      training and attack runs pick up from the snapshot.
///   IMAP_HALT_AFTER_ITERS — stop attack training after N iterations this
///                      process (0 = off), leaving a snapshot behind. A
///                      debugging/testing knob; never part of cache keys.
struct BenchConfig {
  double scale = 1.0;
  std::string zoo_dir = "./zoo";
  std::uint64_t seed = 7;
  int snapshot_every = 0;
  long long halt_after_iters = 0;

  /// Scale a step/episode budget, clamped to at least `min_value`.
  int scaled(int base, int min_value = 1) const;

  static BenchConfig from_env();
};

/// Read a double env var with default.
double env_double(const char* name, double fallback);

/// Read a string env var with default.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace imap
