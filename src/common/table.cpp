#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace imap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  IMAP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  IMAP_CHECK_MSG(row.size() == header_.size(),
                 "row width " << row.size() << " != header width "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pm(double mean, double stddev, int precision) {
  return num(mean, precision) + " ± " + num(stddev, precision);
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Quote cells containing commas.
      if (row[c].find(',') != std::string::npos)
        os << '"' << row[c] << '"';
      else
        os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace imap
