#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace imap {

class BinaryWriter;
class BinaryReader;

/// Deterministic random source used everywhere in the library.
///
/// Every stochastic component (environments, policies, trainers) takes an
/// explicit seed so that experiments are reproducible run-to-run. `split`
/// derives an independent child stream, which lets a single experiment seed
/// fan out to many components without correlated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (optionally scaled / shifted).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Vector of iid uniform draws.
  std::vector<double> uniform_vec(std::size_t n, double lo, double hi);

  /// Vector of iid normal draws.
  std::vector<double> normal_vec(std::size_t n, double mean = 0.0,
                                 double stddev = 1.0);

  /// Derive an independent child generator. Children with distinct `stream`
  /// ids are decorrelated from each other and from the parent.
  Rng split(std::uint64_t stream);

  /// Raw 64-bit draw (for hashing / stream derivation).
  std::uint64_t next_u64();

  std::uint64_t seed() const { return seed_; }

  /// Serialize the exact stream state (seed + engine position) so a restored
  /// Rng continues bit-identically from where the saved one stopped.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  std::uint64_t seed_;
  std::mt19937_64 gen_;
};

}  // namespace imap
