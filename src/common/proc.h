#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace imap::proc {

/// Fabric process count requested via the IMAP_PROCS environment variable
/// (>= 1; unset/invalid falls back to 1, the in-process path).
int configured_procs();

/// One bidirectional pipe-pair endpoint of a coordinator <-> worker link.
///
/// Every cross-process message is a complete Archive image (so magic, format
/// version and CRC-32 come for free) framed by a little-endian u64 byte
/// length. A frame is either delivered whole and CRC-verified or rejected
/// with CheckError — a torn or interleaved write can never be half-read.
/// This is the only sanctioned way to move bytes between fabric processes;
/// the imap_check `ipc-framing` rule rejects raw struct writes to fds.
class Channel {
 public:
  Channel() = default;
  /// Takes ownership of both descriptors (either may be -1 for one-way use).
  Channel(int read_fd, int write_fd);
  ~Channel();

  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool valid() const { return rfd_ >= 0 || wfd_ >= 0; }
  int read_fd() const { return rfd_; }

  /// Send one framed archive. Returns false when the peer is gone (EPIPE /
  /// closed pipe); throws CheckError on any other I/O failure.
  bool send(const ArchiveWriter& msg) const;

  /// Receive one framed archive. Returns false on clean end-of-stream
  /// (peer closed or exited before the next frame header); throws
  /// CheckError on a truncated frame or a corrupt archive payload.
  bool recv(ArchiveReader& out) const;

  void close_read();
  void close_write();
  void close_both();

 private:
  int rfd_ = -1;
  int wfd_ = -1;
};

/// A forked worker process executing `body(channel)`.
///
/// The child runs the body with parallel helpers forced serial (the parent's
/// pool threads do not survive fork) and with every *other* registered
/// channel descriptor closed, so EOF-based shutdown of sibling workers is
/// never defeated by an inherited duplicate of their pipe ends. The body's
/// normal return maps to exit code 0; an escaped exception prints to stderr
/// and exits 1. The child always leaves via _exit, never via exit(), so it
/// cannot replay the parent's atexit handlers or flush its stdio buffers.
class WorkerProcess {
 public:
  using Body = std::function<void(Channel&)>;

  WorkerProcess() = default;
  ~WorkerProcess();

  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  /// Fork a child running `body` over the worker half of a fresh pipe pair.
  static WorkerProcess spawn(const Body& body);

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  Channel& channel() { return ch_; }
  const Channel& channel() const { return ch_; }

  /// Non-blocking liveness probe (false once the child has been reaped).
  bool running();

  /// Close our write end (the child's recv() returns false and it exits),
  /// then reap. Returns the exit code, or -signal for a killed child.
  int join();

  /// SIGKILL the child and reap it — crash drills and hard shutdown.
  void terminate();

 private:
  void reap_blocking();

  pid_t pid_ = -1;
  int status_ = 0;
  bool reaped_ = false;
  Channel ch_;
};

/// Cheap identity signature of a file's current on-disk state: nanosecond
/// mtime plus byte size from one stat() call. Two equal signatures mean the
/// file was not rewritten in between (every artifact writer in this codebase
/// goes through tmp+rename, which always refreshes the mtime), so a cached
/// parse+CRC verification of the same path can be reused without re-reading
/// the bytes. Used to memoize warm zoo / result-cache lookups and to
/// revalidate TTL-expired serving-cache entries with a single stat.
struct FileSig {
  std::uint64_t mtime_ns = 0;
  std::uint64_t size = 0;
  std::uint64_t inode = 0;

  friend bool operator==(const FileSig& a, const FileSig& b) {
    return a.mtime_ns == b.mtime_ns && a.size == b.size && a.inode == b.inode;
  }
  friend bool operator!=(const FileSig& a, const FileSig& b) {
    return !(a == b);
  }
};

/// Signature of `path`, or nullopt when it does not exist (other stat
/// failures throw CheckError — a permission error is not a cache miss).
std::optional<FileSig> file_sig(const std::string& path);

/// Indices of `fds` that are readable or hung up; blocks until at least one
/// is (timeout_ms < 0 waits forever). Entries of -1 are skipped.
std::vector<std::size_t> poll_readable(const std::vector<int>& fds,
                                       int timeout_ms = -1);

/// Coarse cross-process mutex backed by an O_CREAT|O_EXCL lockfile holding
/// the owner pid. Acquisition blocks with backoff; a lockfile whose owner no
/// longer exists (crashed worker) is stolen. Guards the zoo checkpoint and
/// result-cache writers so concurrent fabric processes never duplicate a
/// training run or observe a torn cache entry.
class FileLock {
 public:
  /// Blocks until the lock at `path` is held.
  explicit FileLock(std::string path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  std::string path_;
  bool held_ = false;
};

}  // namespace imap::proc
