#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  IMAP_CHECK(!xs.empty());
  IMAP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

ReturnSummary summarize(const std::vector<double>& returns) {
  return ReturnSummary{mean(returns), stddev(returns), returns.size()};
}

}  // namespace imap
