#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  IMAP_CHECK(!xs.empty());
  IMAP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

ReturnSummary summarize(const std::vector<double>& returns) {
  return ReturnSummary{mean(returns), stddev(returns), returns.size()};
}

namespace {

std::size_t bucket_of(std::uint64_t value) {
  std::size_t b = 0;
  while (value != 0 && b + 1 < LogHistogram::kBuckets) {
    value >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LogHistogram::record(std::uint64_t value) {
  buckets_[bucket_of(value)].inc();
  count_.inc();
  sum_.inc(value);
  // Monotonic max via CAS; contended updates only retry while racing a
  // *larger* concurrent sample, so this stays wait-free in practice.
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double LogHistogram::mean() const {
  const std::uint64_t n = count();
  return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

std::uint64_t LogHistogram::bucket_bound(std::size_t b) {
  if (b == 0) return 0;
  return (std::uint64_t{1} << b) - 1;
}

double LogHistogram::percentile(double p) const {
  IMAP_CHECK(p >= 0.0 && p <= 100.0);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b].get();
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Interpolate inside [lo, hi] by the rank fraction within the bucket.
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(bucket_bound(b - 1) + 1);
      const double hi = static_cast<double>(bucket_bound(b));
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max());
}

}  // namespace imap
