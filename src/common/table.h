#pragma once

#include <string>
#include <vector>

namespace imap {

/// Plain-text table printer used by the bench harnesses to emit the paper's
/// tables, plus a CSV sink so results can be post-processed.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Fixed-precision formatting helper for numeric cells.
  static std::string num(double v, int precision = 2);

  /// "mean ± std" cell, as the paper prints.
  static std::string pm(double mean, double stddev, int precision = 0);

  /// Render with aligned columns.
  std::string to_string() const;

  /// Comma-separated dump (header + rows).
  std::string to_csv() const;

  /// Write CSV to a file; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace imap
