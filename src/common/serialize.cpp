#include "common/serialize.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace imap {

namespace {
constexpr std::uint8_t kMagic[4] = {'I', 'M', 'A', 'P'};
constexpr std::uint64_t kVersion = 1;

template <class T>
void append_pod(std::vector<std::uint8_t>& buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}
}  // namespace

void BinaryWriter::write_u64(std::uint64_t v) { append_pod(buf_, v); }
void BinaryWriter::write_i64(std::int64_t v) { append_pod(buf_, v); }
void BinaryWriter::write_f64(double v) { append_pod(buf_, v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::write_vec(const std::vector<double>& v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

bool BinaryWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(reinterpret_cast<const char*>(kMagic), sizeof(kMagic));
  std::uint64_t ver = kVersion;
  f.write(reinterpret_cast<const char*>(&ver), sizeof(ver));
  f.write(reinterpret_cast<const char*>(buf_.data()),
          static_cast<std::streamsize>(buf_.size()));
  return static_cast<bool>(f);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> data)
    : buf_(std::move(data)) {}

bool BinaryReader::load(const std::string& path, BinaryReader& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(f)),
                                 std::istreambuf_iterator<char>());
  IMAP_CHECK_MSG(data.size() >= sizeof(kMagic) + sizeof(std::uint64_t),
                 "checkpoint file too short: " << path);
  IMAP_CHECK_MSG(std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0,
                 "bad checkpoint magic in " << path);
  std::uint64_t ver = 0;
  std::memcpy(&ver, data.data() + sizeof(kMagic), sizeof(ver));
  IMAP_CHECK_MSG(ver == kVersion, "unsupported checkpoint version " << ver);
  out = BinaryReader(std::vector<std::uint8_t>(
      data.begin() + sizeof(kMagic) + sizeof(std::uint64_t), data.end()));
  return true;
}

void BinaryReader::need(std::size_t n) const {
  IMAP_CHECK_MSG(pos_ + n <= buf_.size(), "checkpoint truncated");
}

std::uint64_t BinaryReader::read_u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, buf_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double BinaryReader::read_f64() {
  need(sizeof(double));
  double v = 0;
  std::memcpy(&v, buf_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::read_vec() {
  const auto n = read_u64();
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64();
  return v;
}

}  // namespace imap
