#include "common/serialize.h"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"

namespace imap {

namespace {

constexpr std::uint8_t kMagic[4] = {'I', 'M', 'A', 'P'};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// resize+memcpy rather than range-insert: identical effect, but GCC's
// -Wstringop-overflow misjudges grow-from-empty vector::insert at -O3.
void append_bytes(std::vector<std::uint8_t>& buf, const void* p,
                  std::size_t n) {
  const std::size_t off = buf.size();
  buf.resize(off + n);
  if (n != 0) std::memcpy(buf.data() + off, p, n);
}

template <class T>
void append_pod(std::vector<std::uint8_t>& buf, T v) {
  append_bytes(buf, &v, sizeof(T));
}

void append_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  append_pod(buf, v);
}

/// Write `bytes` to a pid-unique `<path>.tmp.<pid>`, then atomically rename
/// onto `path`, so a crash mid-write can only ever leave the old file (or a
/// stray tmp), never a torn checkpoint. The pid suffix keeps concurrent
/// fabric processes racing on the same artifact from scribbling over each
/// other's temporary — last rename wins with a complete file either way.
bool write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file_bytes(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  out.assign((std::istreambuf_iterator<char>(f)),
             std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void BinaryWriter::write_u64(std::uint64_t v) { append_pod(buf_, v); }
void BinaryWriter::write_i64(std::int64_t v) { append_pod(buf_, v); }
void BinaryWriter::write_f64(double v) { append_pod(buf_, v); }

void BinaryWriter::write_bool(bool v) {
  buf_.push_back(v ? std::uint8_t{1} : std::uint8_t{0});
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::write_vec(const std::vector<double>& v) {
  write_u64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
}

void BinaryWriter::append_raw(const std::uint8_t* p, std::size_t n) {
  append_bytes(buf_, p, n);
}

bool BinaryWriter::save(const std::string& path) const {
  ArchiveWriter archive;
  archive.section("data") = *this;
  return archive.save(path);
}

BinaryReader::BinaryReader(std::vector<std::uint8_t> data)
    : buf_(std::move(data)) {}

bool BinaryReader::load(const std::string& path, BinaryReader& out) {
  ArchiveReader archive;
  if (!ArchiveReader::load(path, archive)) return false;
  out = archive.section("data");
  return true;
}

void BinaryReader::need(std::size_t n) const {
  IMAP_CHECK_MSG(pos_ + n <= buf_.size(), "checkpoint truncated");
}

std::uint64_t BinaryReader::read_u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v = 0;
  std::memcpy(&v, buf_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double BinaryReader::read_f64() {
  need(sizeof(double));
  double v = 0;
  std::memcpy(&v, buf_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

bool BinaryReader::read_bool() {
  need(1);
  const std::uint8_t v = buf_[pos_++];
  IMAP_CHECK_MSG(v <= 1, "corrupt bool in checkpoint");
  return v != 0;
}

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> BinaryReader::read_vec() {
  const auto n = read_u64();
  need(n * sizeof(double));
  std::vector<double> v(n);
  std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return v;
}

BinaryWriter& ArchiveWriter::section(const std::string& name) {
  for (auto& [sec_name, writer] : sections_)
    if (sec_name == name) return writer;
  sections_.emplace_back(name, BinaryWriter{});
  return sections_.back().second;
}

std::vector<std::uint8_t> ArchiveWriter::bytes() const {
  std::vector<std::uint8_t> out;
  // Exact-size reserve: one allocation for the whole archive (and GCC's
  // -Wstringop-overflow can otherwise misjudge the grow-from-empty insert).
  std::size_t total = sizeof(kMagic) + 2 * sizeof(std::uint64_t) +
                      sizeof(std::uint32_t);
  for (const auto& [name, writer] : sections_)
    total += 2 * sizeof(std::uint64_t) + name.size() + writer.buffer().size();
  out.reserve(total);
  append_bytes(out, kMagic, sizeof(kMagic));
  append_u64(out, kFormatVersion);
  append_u64(out, sections_.size());
  for (const auto& [name, writer] : sections_) {
    append_u64(out, name.size());
    append_bytes(out, name.data(), name.size());
    const auto& payload = writer.buffer();
    append_u64(out, payload.size());
    append_bytes(out, payload.data(), payload.size());
  }
  append_pod(out, crc32(out.data(), out.size()));
  return out;
}

bool ArchiveWriter::save(const std::string& path) const {
  return write_file_atomic(path, bytes());
}

bool ArchiveReader::load(const std::string& path, ArchiveReader& out) {
  std::vector<std::uint8_t> data;
  if (!read_file_bytes(path, data)) return false;
  out = parse(std::move(data), path);
  return true;
}

ArchiveReader ArchiveReader::parse(std::vector<std::uint8_t> data,
                                   const std::string& what) {
  constexpr std::size_t kHeader = sizeof(kMagic) + 2 * sizeof(std::uint64_t);
  IMAP_CHECK_MSG(data.size() >= kHeader + sizeof(std::uint32_t),
                 "checkpoint file too short: " << what);
  IMAP_CHECK_MSG(std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0,
                 "bad checkpoint magic in " << what);

  // CRC trailer first: a torn / bit-flipped file must fail closed before any
  // structural field is trusted.
  const std::size_t body = data.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, data.data() + body, sizeof(stored));
  IMAP_CHECK_MSG(crc32(data.data(), body) == stored,
                 "checkpoint CRC mismatch (torn or corrupt file): " << what);

  ArchiveReader out;
  std::memcpy(&out.version_, data.data() + sizeof(kMagic),
              sizeof(out.version_));
  IMAP_CHECK_MSG(out.version_ == kFormatVersion,
                 "unsupported checkpoint format version "
                     << out.version_ << " (expected " << kFormatVersion
                     << ") in " << what);

  std::uint64_t count = 0;
  std::memcpy(&count, data.data() + sizeof(kMagic) + sizeof(std::uint64_t),
              sizeof(count));
  std::size_t pos = kHeader;
  const auto take_u64 = [&](const char* field) {
    IMAP_CHECK_MSG(pos + sizeof(std::uint64_t) <= body,
                   "checkpoint truncated at " << field << ": " << what);
    std::uint64_t v = 0;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = take_u64("section name length");
    IMAP_CHECK_MSG(pos + name_len <= body,
                   "checkpoint truncated at section name: " << what);
    std::string name(reinterpret_cast<const char*>(data.data() + pos),
                     name_len);
    pos += name_len;
    const std::uint64_t payload_len = take_u64("section payload length");
    IMAP_CHECK_MSG(pos + payload_len <= body,
                   "checkpoint truncated at section payload: " << what);
    out.sections_.emplace_back(
        std::move(name),
        std::vector<std::uint8_t>(data.begin() + static_cast<long>(pos),
                                  data.begin() +
                                      static_cast<long>(pos + payload_len)));
    pos += payload_len;
  }
  IMAP_CHECK_MSG(pos == body,
                 "checkpoint has trailing bytes after sections: " << what);
  return out;
}

bool ArchiveReader::has(const std::string& name) const {
  for (const auto& [sec_name, payload] : sections_)
    if (sec_name == name) return true;
  return false;
}

BinaryReader ArchiveReader::section(const std::string& name) const {
  for (const auto& [sec_name, payload] : sections_)
    if (sec_name == name) return BinaryReader(payload);
  IMAP_CHECK_MSG(false, "checkpoint is missing section '" << name << "'");
  return BinaryReader{};
}

std::vector<std::string> ArchiveReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [sec_name, payload] : sections_)
    names.push_back(sec_name);
  return names;
}

}  // namespace imap
