#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace imap {

/// On-disk checkpoint format version. Bumping this invalidates every zoo /
/// result-cache artifact: `Zoo::path_for` and `ExperimentRunner::cache_key`
/// fold it into their names, and `ArchiveReader::load` rejects files written
/// under any other version with a CheckError (never a silent mis-read).
constexpr std::uint64_t kFormatVersion = 2;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes, continuing from
/// `seed` (pass the previous return value to checksum in chunks).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0);

/// Minimal binary value codec used for all checkpoint payloads.
///
/// Format: little-endian PODs, vectors length-prefixed with uint64, strings
/// likewise. A BinaryWriter only accumulates bytes; on-disk framing (magic,
/// version, sections, CRC trailer) is the Archive layer's job. `save` is a
/// convenience that wraps the buffer in a single-section archive.
class BinaryWriter {
 public:
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_bool(bool v);
  void write_string(const std::string& s);
  void write_vec(const std::vector<double>& v);

  /// Splice pre-encoded bytes produced by another BinaryWriter verbatim (no
  /// length prefix). Used to forward opaque state blobs between fabric
  /// processes without decoding them; the blob's own layout must be readable
  /// by whoever consumes this section.
  void append_raw(const std::uint8_t* p, std::size_t n);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }

  /// Write the accumulated buffer to `path` as a one-section archive
  /// (section name "data"). Crash-safe: writes `<path>.tmp`, then renames.
  /// Returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  BinaryReader() = default;
  explicit BinaryReader(std::vector<std::uint8_t> data);

  /// Load a file written by BinaryWriter::save: returns false on a missing
  /// file, throws CheckError on a corrupt / foreign / wrong-version one.
  static bool load(const std::string& path, BinaryReader& out);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_vec();

  bool exhausted() const { return pos_ == buf_.size(); }

  /// The full underlying payload (ignores the read cursor). Lets a fabric
  /// coordinator stash a section's bytes as an opaque blob for later
  /// re-splicing via BinaryWriter::append_raw.
  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Section-tagged, versioned checkpoint container.
///
/// File layout (all integers little-endian):
///
///   magic "IMAP" | u64 format version | u64 section count
///   repeated:  u64 name_len | name bytes | u64 payload_len | payload bytes
///   trailer:   u32 CRC-32 of every preceding byte
///
/// Readers look sections up by name, so adding a section is
/// backward-compatible at the container level (old readers skip unknown
/// names); any change to a section's *payload* layout must bump
/// kFormatVersion instead.
class ArchiveWriter {
 public:
  /// Writer for the named section; created empty on first use. Repeated
  /// calls with the same name append to the same section.
  BinaryWriter& section(const std::string& name);

  /// Serialize header + sections + CRC trailer into a byte buffer.
  std::vector<std::uint8_t> bytes() const;

  /// Crash-safe save: serialize to `<path>.tmp`, then atomically rename onto
  /// `path`. Returns false on I/O failure (never leaves a torn `path`).
  bool save(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, BinaryWriter>> sections_;
};

class ArchiveReader {
 public:
  /// Load and verify an archive: returns false on a missing file, throws
  /// CheckError on bad magic, wrong format version, truncation, or a CRC
  /// mismatch (a torn write is rejected up front, never half-read).
  static bool load(const std::string& path, ArchiveReader& out);

  /// Parse an in-memory image (same checks as `load`; `what` names the
  /// source in error messages).
  static ArchiveReader parse(std::vector<std::uint8_t> data,
                             const std::string& what);

  bool has(const std::string& name) const;

  /// Reader positioned at the start of the named section's payload; throws
  /// CheckError if absent.
  BinaryReader section(const std::string& name) const;

  /// Section names in file order (unknown names are simply never asked for —
  /// that is the skip-unknown-section rule).
  std::vector<std::string> section_names() const;

  std::uint64_t version() const { return version_; }

 private:
  std::uint64_t version_ = 0;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

}  // namespace imap
