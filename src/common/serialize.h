#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace imap {

/// Minimal binary serialisation used for model checkpoints (the "zoo").
///
/// Format: little-endian PODs, vectors length-prefixed with uint64, strings
/// likewise. A 4-byte magic + version header guards against reading foreign
/// files as checkpoints.
class BinaryWriter {
 public:
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_vec(const std::vector<double>& v);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }

  /// Write the accumulated buffer to a file (with header). Returns false on
  /// I/O failure.
  bool save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> data);

  /// Load a file written by BinaryWriter::save; throws CheckError on a bad
  /// header and returns nullopt-like empty reader on missing file.
  static bool load(const std::string& path, BinaryReader& out);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_f64();
  std::string read_string();
  std::vector<double> read_vec();

  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace imap
