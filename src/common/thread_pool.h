#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace imap {

/// Work-stealing thread pool behind every parallel code path in the library.
///
/// A pool of concurrency N owns N−1 worker threads; the thread that submits
/// work always participates, so `ThreadPool(1)` degenerates to fully inline
/// execution. Each worker drains its own deque first and steals from the
/// others when idle. Threads that wait on a batch of tasks (see
/// `parallel_for`) run pending tasks while they wait, which is what makes
/// *nested* parallel regions deadlock-free: an inner `parallel_for` issued
/// from a pool worker is simply drained by the threads already blocked on
/// the outer one.
///
/// Determinism contract: the pool itself never reorders *results* — every
/// parallel helper in this codebase assigns work to fixed index ranges and
/// merges per-range results in index order, so numeric output is identical
/// for any thread count (including the inline N=1 path).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t concurrency);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the participating caller).
  std::size_t size() const { return concurrency_; }

  /// Enqueue one task. Tasks submitted from a pool worker go to that
  /// worker's own deque (LIFO, cache-friendly); external submissions are
  /// distributed round-robin.
  void submit(std::function<void()> task);

  /// Run one pending task on the calling thread, if any. Returns false when
  /// every deque is empty.
  bool try_run_one();

  /// Process-wide pool, created on first use with `configured_threads()`.
  static ThreadPool& global();

  /// Thread count requested via the IMAP_THREADS environment variable;
  /// falls back to std::thread::hardware_concurrency() when unset.
  static std::size_t configured_threads();

 private:
  struct Deque {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  void worker_loop(std::size_t self);
  bool pop_from(std::size_t idx, std::function<void()>& task, bool steal);

  std::size_t concurrency_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> stop_{false};
};

/// Force every parallel helper in the current thread's scope to run inline
/// (the serial reference path). Used by benchmarks to time the serial
/// baseline and by tests to compare serial vs threaded execution bit-wise.
class ScopedSerial {
 public:
  ScopedSerial();
  ~ScopedSerial();
  ScopedSerial(const ScopedSerial&) = delete;
  ScopedSerial& operator=(const ScopedSerial&) = delete;
};

/// Route parallel helpers in the current thread's scope onto `pool` instead
/// of the global one. Lets tests exercise a real multi-thread pool
/// regardless of IMAP_THREADS or the machine's core count.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* prev_;
};

/// Effective concurrency `parallel_for` would use right now on this thread
/// (1 under ScopedSerial; the override pool's size under ScopedPool).
std::size_t effective_concurrency();

/// Run body(i) for every i in [0, n), distributed over the pool. Blocks
/// until all indices completed; the calling thread participates. `grain` is
/// the minimum number of consecutive indices per task (0 = pick
/// automatically; pass 1 for heavy, uneven items such as bench grid cells).
/// The first exception thrown by any invocation is rethrown on the caller.
///
/// Safe to nest. Results must not depend on execution order across indices
/// — each index must write only its own outputs.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain = 0);

/// Chunked form: body(begin, end) over disjoint subranges covering [0, n).
/// Chunk boundaries depend only on `n`, `grain` and the *configured* pool
/// size — never on runtime scheduling.
void parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace imap
