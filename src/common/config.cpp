#include "common/config.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace imap {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

int BenchConfig::scaled(int base, int min_value) const {
  const double s = static_cast<double>(base) * scale;
  return std::max(min_value, static_cast<int>(s));
}

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  cfg.scale = env_double("IMAP_BENCH_SCALE", 1.0);
  cfg.zoo_dir = env_string("IMAP_ZOO_DIR", "./zoo");
  cfg.seed = static_cast<std::uint64_t>(env_double("IMAP_SEED", 7.0));
  cfg.snapshot_every =
      static_cast<int>(env_double("IMAP_SNAPSHOT_EVERY", 0.0));
  cfg.halt_after_iters =
      static_cast<long long>(env_double("IMAP_HALT_AFTER_ITERS", 0.0));
  return cfg;
}

}  // namespace imap
