#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace imap::serve {

/// One parsed HTTP/1.1 request. The daemon speaks a deliberately small
/// dialect: request line + headers + optional Content-Length body,
/// keep-alive connections, no chunked encoding, no continuation lines.
/// Query parameters are split on '&'/'=' without percent-decoding — every
/// value the API accepts (env names, defenses, integers) is URL-safe as is.
struct HttpRequest {
  std::string method;  ///< "GET" / "POST"
  std::string path;    ///< target without the query string, e.g. "/infer"
  std::map<std::string, std::string> params;  ///< parsed query string
  std::string body;

  /// Query parameter by name, or `fallback` when absent.
  std::string param(const std::string& name,
                    const std::string& fallback = "") const;
  long long param_ll(const std::string& name, long long fallback) const;
};

enum class ParseStatus {
  Incomplete,  ///< need more bytes
  Ok,          ///< one request consumed from the front of the buffer
  Bad,         ///< malformed — the connection should answer 400 and close
};

/// Maximum accepted request size (request line + headers + body). A client
/// exceeding it is malformed by definition — the bound keeps one connection
/// from growing an unbounded buffer.
inline constexpr std::size_t kMaxRequestBytes = 8u << 20;

/// Try to consume one complete request from the front of `buf` (bytes
/// accumulated from the socket so far; consumed bytes are erased, pipelined
/// followers stay in place).
ParseStatus parse_request(std::string& buf, HttpRequest& out);

/// Serialize a response with Content-Length and keep-alive headers.
std::string format_response(int status, const std::string& content_type,
                            const std::string& body);

/// Reason phrase for the handful of status codes the daemon emits.
const char* status_text(int status);

/// Loopback listening socket (SO_REUSEADDR, non-blocking accepts). Pass
/// port 0 for an ephemeral port; `bound_port` reports the actual one.
/// Throws CheckError on failure.
int listen_on(std::uint16_t port);
std::uint16_t bound_port(int listen_fd);

/// Accept one pending connection, or -1 when none is pending.
int accept_connection(int listen_fd);

/// Append whatever is currently readable on `fd` to `buf`. Returns false on
/// EOF or a hard error (the connection is dead), true otherwise.
bool recv_available(int fd, std::string& buf);

/// Write all of `data`, looping over partial writes. Returns false when the
/// peer is gone (EPIPE / reset) — the torn-request case the serving loop
/// must absorb without disturbing other connections.
bool send_all(int fd, const std::string& data);

}  // namespace imap::serve
