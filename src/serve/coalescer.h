#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/metrics.h"
#include "serve/model_cache.h"

namespace imap::serve {

/// Cross-connection request coalescer.
///
/// Concurrent /infer requests for the SAME resident victim are gathered into
/// one `PolicyHandle::query_batch` call — the first arrival becomes the
/// batch leader and waits up to `max_wait_us` for followers (or until
/// `max_batch` rows are pending, whichever is first), issues the single
/// forward, and scatters rows back to each waiting connection. Requests for
/// different victims never share a batch.
///
/// Correctness rides the PolicyHandle contract: every query_batch output row
/// is bit-identical to a per-sample query() of that row, in fp64 and int8
/// modes alike. Coalescing therefore changes only *when* the kernel runs,
/// never *what* any connection receives.
///
/// A taken batch is detached from the group map before its forward runs, so
/// late arrivals start forming the next batch immediately — under sustained
/// load several batches for one victim can be in flight at once, which is
/// exactly the pipelining that buys the throughput win.
class Coalescer {
 public:
  struct Options {
    int max_batch = 32;        ///< rows per forward (<= 1 disables gathering)
    long long max_wait_us = 200;  ///< leader's wait for followers
    bool enabled = true;       ///< off: every request is its own forward
  };

  explicit Coalescer(Options opts, ServeMetrics* metrics = nullptr);

  /// Answer one observation through `model`, riding a coalesced batch when
  /// possible. Blocks the calling (pool worker) thread until its row is
  /// computed. Throws CheckError when `obs` does not match the model width.
  std::vector<double> infer(const std::shared_ptr<const ServedModel>& model,
                            const std::vector<double>& obs);

  const Options& options() const { return opts_; }

 private:
  /// One pending request: where to read the observation, where the leader
  /// scatters the action row.
  struct Slot {
    const std::vector<double>* obs = nullptr;
    std::vector<double> out;
    bool done = false;
  };

  /// An open batch for one victim. Members rendezvous on the group's own
  /// condition variable; the leader holds a shared_ptr across the forward,
  /// so detaching the group from the map never invalidates it.
  struct Group {
    std::shared_ptr<const ServedModel> model;
    std::vector<Slot*> slots;
    std::condition_variable cv;
  };

  /// Gather rows, run the one forward, scatter rows. Called outside m_.
  void compute(const ServedModel& model, std::vector<Slot*>& batch);

  Options opts_;
  ServeMetrics* metrics_;
  std::mutex m_;
  /// Open (not yet taken) batch per resident model. Keyed by snapshot
  /// identity, not (env, defense): a hot-swapped victim must never share a
  /// batch with rows bound for its predecessor.
  std::map<const ServedModel*, std::shared_ptr<Group>> groups_;
};

}  // namespace imap::serve
