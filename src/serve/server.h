#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/thread_pool.h"
#include "core/zoo.h"
#include "serve/coalescer.h"
#include "serve/http.h"
#include "serve/jobs.h"
#include "serve/metrics.h"
#include "serve/model_cache.h"

namespace imap::serve {

/// Daemon configuration — the env-var surface of tools/imap_serve.
struct ServeOptions {
  std::uint16_t port = 0;  ///< 0 binds an ephemeral port (see Server::port)
  int threads = 8;         ///< request-handler workers
  Coalescer::Options coalesce;
  ModelCache::Options cache;
  int job_procs = 0;       ///< attack-job fabric processes (0 = IMAP_PROCS)
  int job_runners = 1;     ///< concurrently training jobs
  BenchConfig bench;       ///< zoo directory / scale / seed behind the API
};

/// The robustness-evaluation serving daemon.
///
/// One process loads the victim zoo once and keeps hot models resident; a
/// poll-driven connection loop (proc::poll_readable over the listen socket,
/// a self-pipe and every idle connection) parses requests and hands each to
/// the worker pool, so a slow handler never blocks the loop and a client
/// disconnect mid-response (torn request) costs exactly one connection.
///
/// Routes:
///   POST /infer?env=E&defense=D   body: one observation per line
///                                 -> one action row per line (shortest
///                                 round-trip doubles, bit-identical to
///                                 PolicyHandle::query)
///   POST /attack/train?env=E&attack=IMAP-PC&...  -> {"id": N}  (202)
///   GET  /attack/status?id=N      -> job state / outcome JSON
///   GET  /models                  -> resident-model listing
///   POST /models/invalidate[?env=E&defense=D]
///   GET  /health, GET /metrics
///
/// Single-row /infer requests ride the cross-connection Coalescer;
/// multi-row bodies are already a batch and go straight to query_batch.
class Server {
 public:
  explicit Server(ServeOptions opts);
  ~Server();

  /// Bind and start serving (the loop runs on the server's own pool).
  void start();
  /// Stop accepting, drain in-flight handlers and close every connection.
  /// Idempotent; the destructor calls it.
  void stop();

  std::uint16_t port() const { return port_; }
  const ServeOptions& options() const { return opts_; }
  ServeMetrics& metrics() { return metrics_; }
  ModelCache& model_cache() { return cache_; }
  core::Zoo& zoo() { return zoo_; }
  JobRegistry& jobs() { return jobs_; }

 private:
  struct Conn {
    std::string buf;
    bool busy = false;  ///< a handler owns this fd until it reports back
  };

  void loop();
  /// Pool task: route, respond, report the fd back to the loop.
  void handle_request(int fd, HttpRequest req);
  std::string dispatch(const HttpRequest& req, int& status,
                       std::string& content_type);

  std::string route_infer(const HttpRequest& req, int& status);
  std::string route_attack_train(const HttpRequest& req, int& status);
  std::string route_attack_status(const HttpRequest& req, int& status);

  /// Parse complete requests buffered on an idle connection; dispatch the
  /// first and keep the rest (HTTP/1.1: one in-flight request per
  /// connection). Returns false when the connection turned bad (400 sent).
  bool pump_conn(int fd, Conn& conn);
  void wake_loop();

  ServeOptions opts_;
  ServeMetrics metrics_;
  core::Zoo zoo_;
  ModelCache cache_;
  Coalescer coalescer_;
  JobRegistry jobs_;
  std::unique_ptr<ThreadPool> pool_;

  int listen_fd_ = -1;
  int wake_r_ = -1;  ///< self-pipe: handlers/stop() poke the poll loop
  int wake_w_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  std::mutex done_m_;
  std::condition_variable done_cv_;
  bool loop_exited_ = false;

  std::mutex comp_m_;
  /// (fd, response delivered) pairs reported by finished handlers.
  std::vector<std::pair<int, bool>> completed_;

  std::map<int, Conn> conns_;  ///< owned by the loop thread only
};

}  // namespace imap::serve
