#include "serve/coalescer.h"

#include <chrono>

#include "common/check.h"
#include "nn/batch.h"

namespace imap::serve {

Coalescer::Coalescer(Options opts, ServeMetrics* metrics)
    : opts_(opts), metrics_(metrics) {}

void Coalescer::compute(const ServedModel& model, std::vector<Slot*>& batch) {
  const std::size_t n = batch.size();
  const std::size_t act = model.handle.act_dim();
  // Workspace and gather buffer are thread_local: after warm-up a worker
  // thread issues forwards with zero steady-state allocations.
  thread_local nn::Mlp::Workspace ws;
  thread_local nn::Batch in;
  in.resize(n, model.handle.obs_dim());
  for (std::size_t i = 0; i < n; ++i) in.set_row(i, *batch[i]->obs);
  const nn::Batch& out = model.handle.query_batch(in, ws);
  for (std::size_t i = 0; i < n; ++i)
    batch[i]->out.assign(out.row(i), out.row(i) + act);
  if (metrics_ != nullptr) {
    metrics_->coalesced_batches.inc();
    metrics_->batch_size.record(n);
  }
}

std::vector<double> Coalescer::infer(
    const std::shared_ptr<const ServedModel>& model,
    const std::vector<double>& obs) {
  IMAP_CHECK_MSG(model != nullptr && model->handle.batched(),
                 "coalescer needs a network-backed model");
  IMAP_CHECK_MSG(obs.size() == model->handle.obs_dim(),
                 "observation width " << obs.size() << " != model width "
                                      << model->handle.obs_dim());

  const std::size_t max_batch =
      opts_.max_batch > 1 ? static_cast<std::size_t>(opts_.max_batch) : 1;
  if (!opts_.enabled || max_batch <= 1) {
    // Baseline path: one forward per request, same metrics accounting.
    Slot slot;
    slot.obs = &obs;
    std::vector<Slot*> batch{&slot};
    compute(*model, batch);
    return std::move(slot.out);
  }

  Slot slot;
  slot.obs = &obs;

  std::unique_lock<std::mutex> lk(m_);
  auto& open = groups_[model.get()];
  // A full-but-not-yet-taken group is closed to newcomers: start the next
  // batch instead of growing past max_batch under the leader.
  if (open == nullptr || open->slots.size() >= max_batch) {
    open = std::make_shared<Group>();
    open->model = model;
  }
  const std::shared_ptr<Group> group = open;
  group->slots.push_back(&slot);

  if (group->slots.size() == 1) {
    // Leader: wait for followers, bounded by the batching deadline.
    if (opts_.max_wait_us > 0) {
      group->cv.wait_for(lk, std::chrono::microseconds(opts_.max_wait_us),
                         [&] { return group->slots.size() >= max_batch; });
    }
    // Detach the batch so late arrivals form the next one while this
    // forward runs.
    const auto it = groups_.find(model.get());
    if (it != groups_.end() && it->second == group) groups_.erase(it);
    std::vector<Slot*> batch = std::move(group->slots);
    lk.unlock();

    compute(*model, batch);

    lk.lock();
    for (Slot* s : batch) s->done = true;
    group->cv.notify_all();
    return std::move(slot.out);
  }

  // Follower: wake the leader early when the batch just filled, then wait
  // for the scatter.
  if (group->slots.size() >= max_batch) group->cv.notify_all();
  group->cv.wait(lk, [&] { return slot.done; });
  return std::move(slot.out);
}

}  // namespace imap::serve
