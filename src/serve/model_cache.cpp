#include "serve/model_cache.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/serialize.h"
#include "scenario/spec.h"

namespace imap::serve {

namespace {

/// Canonical cache identity for a lookup name: the canonical scenario string
/// when the name parses, the raw name verbatim otherwise (injected synthetic
/// victims bypass the grammar instead of faulting residency lookups).
std::string cache_ident(const std::string& name) {
  const auto canon = scenario::try_canonical(name);
  return canon ? *canon : name;
}

/// Fill a model's scenario identity fields from `ident`; resolves the base
/// env the checkpoint lives under.
void fill_scenario(ServedModel& model, const std::string& ident) {
  model.scenario = ident;
  model.env = ident;
  if (scenario::try_canonical(ident)) {
    const auto spec = scenario::parse(ident);
    model.env = spec.env;
    model.epsilon = spec.epsilon();
    model.budget = spec.budget();
  }
}

/// CRC-32 over the checkpoint's payload — the content half of the cache
/// key. Archive files end in a 4-byte crc32(payload) trailer, and CRC-32 of
/// any message with its own CRC appended is the fixed residue 0x2144DF1C —
/// a whole-file CRC would "fingerprint" every well-formed archive
/// identically. Checksumming the payload (everything before the trailer)
/// yields the archive's own stored CRC: distinct per content, and exactly
/// the value ckpt_inspect reports. Returns false when the file cannot be
/// read.
bool crc_of_file(const std::string& path, std::uint32_t& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::size_t payload = bytes.size() >= 4 ? bytes.size() - 4 : 0;
  out = crc32(reinterpret_cast<const std::uint8_t*>(bytes.data()), payload);
  return true;
}

}  // namespace

ModelCache::ModelCache(core::Zoo& zoo, Options opts, ServeMetrics* metrics)
    : zoo_(zoo), opts_(opts), metrics_(metrics) {
  IMAP_CHECK_MSG(opts_.capacity > 0, "model cache capacity must be positive");
}

std::shared_ptr<const ServedModel> ModelCache::build(
    const std::string& ident, const std::string& defense) {
  auto model = std::make_shared<ServedModel>();
  fill_scenario(*model, ident);
  model->defense = defense;
  // The checkpoint is the BASE env's victim — every scenario over that env
  // serves the same bytes; the scenario only changes the reported threat
  // model (and what the client wraps around the victim's answers).
  model->path = zoo_.checkpoint_path(model->env, defense);
  // The zoo call loads the checkpoint (training it first on a cold zoo) and
  // CRC-verifies the archive trailer during the parse; the file-level CRC
  // below is this cache's own fingerprint of the exact bytes served.
  model->policy = zoo_.victim_shared(model->env, defense);
  model->archive_version = kFormatVersion;
  IMAP_CHECK_MSG(crc_of_file(model->path, model->content_crc),
                 "checkpoint vanished after load: " << model->path);
  const auto sig = proc::file_sig(model->path);
  IMAP_CHECK_MSG(sig.has_value(),
                 "checkpoint vanished after load: " << model->path);
  model->sig = *sig;
  model->quantized = opts_.quant;
  model->handle = rl::PolicyHandle::serving(model->policy, opts_.quant);
  return model;
}

std::shared_ptr<const ServedModel> ModelCache::get(const std::string& env,
                                                   const std::string& defense) {
  const std::string ident = cache_ident(env);
  const std::string key = ident + "|" + defense;
  const auto ttl = std::chrono::milliseconds(opts_.ttl_ms);

  bool reload = false;  // expired entry whose bytes changed on disk
  {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        const auto now = Clock::now();
        if (opts_.ttl_ms > 0 && now - it->second.loaded_at < ttl) {
          it->second.last_used = now;
          if (metrics_ != nullptr) metrics_->cache_hits.inc();
          return it->second.model;
        }
        // TTL expired: one stat() decides between re-arm and rebuild. An
        // injected entry has no backing file to drift from — re-arm it.
        const auto& model = *it->second.model;
        const auto sig =
            model.path.empty() ? std::optional<proc::FileSig>(model.sig)
                               : proc::file_sig(model.path);
        if (sig.has_value() && *sig == model.sig) {
          it->second.loaded_at = now;
          it->second.last_used = now;
          if (metrics_ != nullptr) {
            metrics_->cache_revalidations.inc();
            metrics_->cache_hits.inc();
          }
          return it->second.model;
        }
        reload = true;
      }
      if (loading_.insert(key).second) break;  // we build it
      cv_.wait(lk);  // someone else is building this key — wait for them
    }
  }

  // Slow path, outside the lock: other keys keep serving while this one
  // loads (possibly training a victim from scratch on a cold zoo).
  std::shared_ptr<const ServedModel> model;
  try {
    model = build(ident, defense);
  } catch (...) {
    std::lock_guard<std::mutex> lk(m_);
    loading_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lk(m_);
  loading_.erase(key);
  const auto now = Clock::now();
  entries_[key] = Entry{model, now, now};
  evict_over_capacity_locked();
  if (metrics_ != nullptr) {
    if (reload)
      metrics_->cache_reloads.inc();
    else
      metrics_->cache_misses.inc();
  }
  cv_.notify_all();
  return model;
}

void ModelCache::invalidate(const std::string& env,
                            const std::string& defense) {
  std::lock_guard<std::mutex> lk(m_);
  entries_.erase(cache_ident(env) + "|" + defense);
}

void ModelCache::invalidate_all() {
  std::lock_guard<std::mutex> lk(m_);
  entries_.clear();
}

std::shared_ptr<const ServedModel> ModelCache::put(
    const std::string& env, const std::string& defense,
    std::shared_ptr<const nn::GaussianPolicy> policy) {
  auto model = std::make_shared<ServedModel>();
  fill_scenario(*model, cache_ident(env));
  model->defense = defense;
  model->archive_version = kFormatVersion;
  model->quantized = opts_.quant;
  model->policy = std::move(policy);
  model->handle = rl::PolicyHandle::serving(model->policy, opts_.quant);

  std::lock_guard<std::mutex> lk(m_);
  const auto now = Clock::now();
  entries_[model->key()] = Entry{model, now, now};
  evict_over_capacity_locked();
  return model;
}

void ModelCache::evict_over_capacity_locked() {
  while (entries_.size() > static_cast<std::size_t>(opts_.capacity)) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    entries_.erase(victim);
    if (metrics_ != nullptr) metrics_->cache_evictions.inc();
  }
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return entries_.size();
}

std::string ModelCache::render_json() const {
  std::lock_guard<std::mutex> lk(m_);
  const auto now = Clock::now();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    const auto& m = *entry.model;
    const auto age =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - entry.loaded_at)
            .count();
    if (!first) os << ",";
    first = false;
    os << "{\"env\":\"" << m.env << "\",\"scenario\":\"" << m.scenario
       << "\",\"defense\":\"" << m.defense
       << "\",\"archive_version\":" << m.archive_version
       << ",\"content_crc\":" << m.content_crc
       << ",\"quantized\":" << (m.quantized ? "true" : "false")
       << ",\"epsilon\":" << scenario::format_number(m.epsilon)
       << ",\"budget\":" << scenario::format_number(m.budget)
       << ",\"age_ms\":" << age << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace imap::serve
