#include "serve/jobs.h"

#include <exception>
#include <sstream>

#include "common/check.h"
#include "core/experiment_dag.h"

namespace imap::serve {

JobRegistry::JobRegistry(BenchConfig cfg, int procs, int runners,
                         ServeMetrics* metrics)
    : cfg_(std::move(cfg)), procs_(procs), metrics_(metrics) {
  IMAP_CHECK_MSG(runners >= 1, "job registry needs at least one runner");
  // ThreadPool(N) owns N-1 workers (the submitter participates); jobs are
  // fire-and-forget, so size runners+1 to get `runners` dedicated threads.
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(runners) + 1);
}

JobRegistry::~JobRegistry() { drain(); }

std::uint64_t JobRegistry::enqueue(const core::AttackPlan& plan) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    id = next_id_++;
    jobs_[id] = Job{plan, State::Queued, ""};
    ++active_;
  }
  if (metrics_ != nullptr) metrics_->jobs_enqueued.inc();
  pool_->submit([this, id] { run_job(id); });
  return id;
}

void JobRegistry::run_job(std::uint64_t id) {
  core::AttackPlan plan;
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = jobs_.find(id);
    IMAP_CHECK_MSG(it != jobs_.end(), "job " << id << " vanished");
    it->second.state = State::Running;
    plan = it->second.plan;
  }

  State final_state = State::Done;
  std::string detail;
  try {
    core::DagOptions dag;
    dag.procs = procs_;
    core::DagScheduler sched(cfg_, dag);
    const auto outcomes = sched.run({plan});
    IMAP_CHECK_MSG(outcomes.size() == 1, "one plan, one outcome");
    const auto& o = outcomes[0];
    std::ostringstream os;
    os << "{\"completed\":" << (o.completed ? "true" : "false")
       << ",\"victim_mean_reward\":" << o.victim_eval.returns.mean
       << ",\"victim_success_rate\":" << o.victim_eval.success_rate
       << ",\"curve_points\":" << o.curve.size()
       << ",\"worker_procs\":" << sched.stats().procs << "}";
    detail = os.str();
  } catch (const std::exception& e) {
    final_state = State::Failed;
    detail = e.what();
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.state = final_state;
      it->second.detail = detail;
    }
    --active_;
  }
  if (metrics_ != nullptr) {
    if (final_state == State::Done)
      metrics_->jobs_finished.inc();
    else
      metrics_->jobs_failed.inc();
  }
  cv_.notify_all();
}

std::string JobRegistry::state_name(State s) {
  switch (s) {
    case State::Queued: return "queued";
    case State::Running: return "running";
    case State::Done: return "done";
    case State::Failed: return "failed";
  }
  return "unknown";
}

std::string JobRegistry::status_json(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return "";
  const Job& job = it->second;
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"state\":\"" << state_name(job.state)
     << "\",\"env\":\"" << job.plan.env_name << "\",\"attack\":\""
     << core::to_string(job.plan.attack) << "\"";
  if (job.state == State::Done) os << ",\"outcome\":" << job.detail;
  if (job.state == State::Failed) {
    os << ",\"error\":\"";
    for (const char c : job.detail)  // keep the JSON well-formed
      if (c == '"' || c == '\\' || c == '\n')
        os << ' ';
      else
        os << c;
    os << "\"";
  }
  os << "}";
  return os.str();
}

void JobRegistry::drain() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] { return active_ == 0; });
}

std::size_t JobRegistry::total() const {
  std::lock_guard<std::mutex> lk(m_);
  return jobs_.size();
}

}  // namespace imap::serve
