#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/config.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "serve/metrics.h"

namespace imap::serve {

/// Asynchronous IMAP attack-training jobs behind POST /attack/train.
///
/// A job is one AttackPlan pushed through the PR-8 experiment fabric: the
/// runner thread builds a DagScheduler (victim node → attack node) with
/// IMAP_PROCS worker processes and runs the plan's cell exactly as the bench
/// binaries would, so a finished job lands in the shared result cache under
/// the same cache key, and re-submitting a finished plan returns instantly
/// from that cache. Per-cell file locks keep concurrent jobs — and external
/// bench runs — from colliding on the same artifacts.
///
/// Enqueue returns a job id immediately; GET /attack/status?id=N polls the
/// registry. The registry owns a small dedicated pool so a long training run
/// never starves the request-serving workers.
class JobRegistry {
 public:
  enum class State { Queued, Running, Done, Failed };

  /// `procs` mirrors DagOptions::procs (0 = IMAP_PROCS, <= 1 inline);
  /// `runners` is how many jobs may train concurrently.
  JobRegistry(BenchConfig cfg, int procs, int runners = 1,
              ServeMetrics* metrics = nullptr);
  ~JobRegistry();

  /// Enqueue a plan; returns its job id. Never blocks on training.
  std::uint64_t enqueue(const core::AttackPlan& plan);

  /// JSON status document for one job, or nullopt-equivalent "" when the id
  /// is unknown. Finished jobs carry the outcome (victim reward under
  /// attack, success rate, curve length).
  std::string status_json(std::uint64_t id) const;

  /// Block until every enqueued job left the Queued/Running states — the
  /// daemon's clean-shutdown barrier.
  void drain();

  std::size_t total() const;

 private:
  struct Job {
    core::AttackPlan plan;
    State state = State::Queued;
    std::string detail;  ///< outcome JSON (Done) or error text (Failed)
  };

  void run_job(std::uint64_t id);
  static std::string state_name(State s);

  BenchConfig cfg_;
  int procs_;
  ServeMetrics* metrics_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::uint64_t next_id_ = 1;
  std::size_t active_ = 0;
  std::unique_ptr<ThreadPool> pool_;  ///< dedicated job runners
};

}  // namespace imap::serve
