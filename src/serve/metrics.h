#pragma once

#include <string>

#include "common/stats.h"

namespace imap::serve {

/// Counters and histograms for the serving daemon, exported on /metrics.
///
/// Every member is lock-free (relaxed atomics, see common/stats.h), so the
/// request hot path records without ever contending: one relaxed add per
/// counter bump, a handful per histogram sample. Export is a read-side
/// snapshot — eventually consistent totals, which is what a scrape needs.
struct ServeMetrics {
  Counter requests_total;        ///< HTTP requests parsed (any route)
  Counter infer_requests;        ///< /infer requests
  Counter infer_rows;            ///< observation rows answered
  Counter bad_requests;          ///< 4xx answers
  Counter write_errors;          ///< responses lost to a dead client
  Counter connections_opened;
  Counter connections_closed;

  Counter cache_hits;            ///< model served from a live cache entry
  Counter cache_misses;          ///< entry built (cold or after invalidate)
  Counter cache_revalidations;   ///< TTL-expired entry re-armed by stat
  Counter cache_reloads;         ///< TTL-expired entry rebuilt (CRC changed)
  Counter cache_evictions;       ///< capacity-bound LRU evictions

  Counter coalesced_batches;     ///< query_batch calls issued
  LogHistogram batch_size;       ///< rows per issued batch
  LogHistogram infer_latency_us; ///< request parse -> response ready

  Counter jobs_enqueued;
  Counter jobs_finished;
  Counter jobs_failed;

  /// Prometheus-style text exposition (counters as `imap_serve_*_total`,
  /// histograms as `_bucket{le=...}` plus `_sum`/`_count`, and the p50/p99
  /// latency estimates the acceptance bench tracks).
  std::string render() const;
};

}  // namespace imap::serve
