#include "serve/metrics.h"

#include <sstream>

namespace imap::serve {

namespace {

void counter_line(std::ostringstream& os, const char* name, const Counter& c,
                  const char* help) {
  os << "# HELP imap_serve_" << name << ' ' << help << '\n'
     << "# TYPE imap_serve_" << name << " counter\n"
     << "imap_serve_" << name << ' ' << c.get() << '\n';
}

void histogram_lines(std::ostringstream& os, const char* name,
                     const LogHistogram& h, const char* help) {
  os << "# HELP imap_serve_" << name << ' ' << help << '\n'
     << "# TYPE imap_serve_" << name << " histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < LogHistogram::kBuckets; ++b) {
    const std::uint64_t n = h.bucket(b);
    if (n == 0) continue;
    cum += n;
    os << "imap_serve_" << name << "_bucket{le=\""
       << LogHistogram::bucket_bound(b) << "\"} " << cum << '\n';
  }
  os << "imap_serve_" << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
     << "imap_serve_" << name << "_sum " << h.sum() << '\n'
     << "imap_serve_" << name << "_count " << h.count() << '\n';
}

}  // namespace

std::string ServeMetrics::render() const {
  std::ostringstream os;
  counter_line(os, "requests_total", requests_total, "HTTP requests parsed");
  counter_line(os, "infer_requests_total", infer_requests,
               "/infer requests answered");
  counter_line(os, "infer_rows_total", infer_rows,
               "observation rows answered");
  counter_line(os, "bad_requests_total", bad_requests, "4xx responses");
  counter_line(os, "write_errors_total", write_errors,
               "responses lost to a disconnected client");
  counter_line(os, "connections_opened_total", connections_opened,
               "connections accepted");
  counter_line(os, "connections_closed_total", connections_closed,
               "connections closed");
  counter_line(os, "cache_hits_total", cache_hits,
               "model lookups served from a live cache entry");
  counter_line(os, "cache_misses_total", cache_misses,
               "model cache entries built");
  counter_line(os, "cache_revalidations_total", cache_revalidations,
               "TTL-expired entries re-armed by an unchanged stat signature");
  counter_line(os, "cache_reloads_total", cache_reloads,
               "TTL-expired entries rebuilt after the checkpoint changed");
  counter_line(os, "cache_evictions_total", cache_evictions,
               "capacity-bound LRU evictions");
  counter_line(os, "coalesced_batches_total", coalesced_batches,
               "victim forward batches issued");
  counter_line(os, "jobs_enqueued_total", jobs_enqueued,
               "attack-training jobs enqueued");
  counter_line(os, "jobs_finished_total", jobs_finished,
               "attack-training jobs finished");
  counter_line(os, "jobs_failed_total", jobs_failed,
               "attack-training jobs failed");
  histogram_lines(os, "batch_size", batch_size,
                  "rows per coalesced victim forward");
  histogram_lines(os, "infer_latency_us", infer_latency_us,
                  "per-request /infer latency in microseconds");
  os << "imap_serve_infer_latency_us_p50 " << infer_latency_us.percentile(50.0)
     << '\n'
     << "imap_serve_infer_latency_us_p99 " << infer_latency_us.percentile(99.0)
     << '\n'
     << "imap_serve_batch_size_max " << batch_size.max() << '\n';
  return os.str();
}

}  // namespace imap::serve
