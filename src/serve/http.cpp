#include "serve/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace imap::serve {

std::string HttpRequest::param(const std::string& name,
                               const std::string& fallback) const {
  const auto it = params.find(name);
  return it == params.end() ? fallback : it->second;
}

long long HttpRequest::param_ll(const std::string& name,
                                long long fallback) const {
  const auto it = params.find(name);
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

namespace {

void parse_query(const std::string& query,
                 std::map<std::string, std::string>& params) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq == std::string::npos || eq > amp) {
      if (amp > pos) params[query.substr(pos, amp - pos)] = "";
    } else {
      params[query.substr(pos, eq - pos)] =
          query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
}

/// Case-insensitive match of buf[begin, end) against a lowercase name —
/// header names compare without slicing a per-header std::string off the
/// connection buffer.
bool header_name_is(const std::string& buf, std::size_t begin,
                    std::size_t end, const char* lower) {
  std::size_t i = begin;
  for (; *lower != '\0' && i < end; ++i, ++lower)
    if (std::tolower(static_cast<unsigned char>(buf[i])) != *lower)
      return false;
  return *lower == '\0' && i == end;
}

}  // namespace

ParseStatus parse_request(std::string& buf, HttpRequest& out) {
  const std::size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string::npos)
    return buf.size() > kMaxRequestBytes ? ParseStatus::Bad
                                         : ParseStatus::Incomplete;

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.compare(sp2 + 1, 5, "HTTP/") != 0)
    return ParseStatus::Bad;

  out = HttpRequest{};
  out.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = target.find('?');
  if (q == std::string::npos) {
    out.path = target;
  } else {
    out.path = target.substr(0, q);
    parse_query(target.substr(q + 1), out.params);
  }
  if (out.path.empty() || out.path[0] != '/') return ParseStatus::Bad;

  // Headers: only Content-Length matters to this dialect.
  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    const std::size_t colon = buf.find(':', pos);
    if (colon != std::string::npos && colon < eol &&
        header_name_is(buf, pos, colon, "content-length")) {
      std::size_t v = colon + 1;
      while (v < eol && buf[v] == ' ') ++v;
      char* end = nullptr;
      // strtoull stops at the '\r' terminating the header line.
      const unsigned long long n = std::strtoull(buf.c_str() + v, &end, 10);
      if (end == buf.c_str() + v) return ParseStatus::Bad;
      content_length = static_cast<std::size_t>(n);
    }
    pos = eol + 2;
  }

  const std::size_t total = head_end + 4 + content_length;
  if (total > kMaxRequestBytes) return ParseStatus::Bad;
  if (buf.size() < total) return ParseStatus::Incomplete;
  out.body = buf.substr(head_end + 4, content_length);
  buf.erase(0, total);
  return ParseStatus::Ok;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string format_response(int status, const std::string& content_type,
                            const std::string& body) {
  std::string r;
  r.reserve(body.size() + 128);
  r += "HTTP/1.1 ";
  r += std::to_string(status);
  r += ' ';
  r += status_text(status);
  r += "\r\nContent-Type: ";
  r += content_type;
  r += "\r\nContent-Length: ";
  r += std::to_string(body.size());
  r += "\r\nConnection: keep-alive\r\n\r\n";
  r += body;
  return r;
}

int listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  IMAP_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
               static_cast<socklen_t>(sizeof one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             static_cast<socklen_t>(sizeof addr)) != 0) {
    const int e = errno;
    ::close(fd);
    IMAP_CHECK_MSG(false, "bind(127.0.0.1:" << port
                          << ") failed: " << std::strerror(e));
  }
  if (::listen(fd, 128) != 0) {
    const int e = errno;
    ::close(fd);
    IMAP_CHECK_MSG(false, "listen() failed: " << std::strerror(e));
  }
  // Non-blocking accepts: a connection that vanishes between poll() and
  // accept() must not wedge the loop.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  IMAP_CHECK_MSG(::getsockname(listen_fd,
                               reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                 "getsockname() failed: " << std::strerror(errno));
  return ntohs(addr.sin_port);
}

int accept_connection(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
               static_cast<socklen_t>(sizeof one));
  // Reads are poll-driven; non-blocking guards against a spurious readiness
  // wedging the connection loop on one socket.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

bool recv_available(int fd, std::string& buf) {
  constexpr std::size_t kChunk = 16384;
  const std::size_t old = buf.size();
  buf.resize(old + kChunk);
  const ssize_t n = ::recv(fd, buf.data() + old, kChunk, 0);
  if (n <= 0) {
    buf.resize(old);
    // Spurious wakeup (readiness consumed elsewhere) is not a dead peer.
    return n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  }
  buf.resize(old + static_cast<std::size_t>(n));
  return true;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer closed mid-response — the torn-request case
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace imap::serve
