#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/proc.h"
#include "core/zoo.h"
#include "rl/policy_handle.h"
#include "serve/metrics.h"

namespace imap::serve {

/// One resident victim: an immutable snapshot of a zoo checkpoint plus its
/// serving handle. Identity is (archive format version, content CRC-32 of
/// the checkpoint file) — the same key discipline the PR-5 archive layer
/// uses on disk — so "did the victim change" is a byte-level question, never
/// a guess from names or timestamps. Request handlers hold a shared_ptr for
/// the duration of a request: a concurrent hot-swap publishes a new
/// ServedModel without invalidating rows already in flight on the old one.
struct ServedModel {
  std::string env;                ///< base registry env backing the victim
  /// Canonical scenario string this entry serves (= env for plain lookups;
  /// the raw name verbatim for injected synthetic victims that don't parse).
  /// Distinct scenarios over one base env are distinct residents, each
  /// reporting its own threat-model ε/budget, all loading the same
  /// checkpoint.
  std::string scenario;
  std::string defense;
  std::string path;               ///< checkpoint file ("" for injected nets)
  std::uint64_t archive_version = 0;
  std::uint32_t content_crc = 0;  ///< CRC-32 over the checkpoint bytes
  proc::FileSig sig;              ///< on-disk signature at verification time
  bool quantized = false;
  double epsilon = 0.0;           ///< scenario obs-perturbation ε
  double budget = 0.0;            ///< per-episode ε budget (0 = unbounded)
  std::shared_ptr<const nn::GaussianPolicy> policy;
  rl::PolicyHandle handle;        ///< int8 or fp64, fixed at build time

  std::string key() const { return scenario + "|" + defense; }
};

/// TTL'd, capacity-bounded cache of resident victims.
///
/// Lookup ladder (cheapest first):
///  1. live entry inside its TTL — shared_ptr copy, no syscalls;
///  2. TTL-expired entry whose checkpoint stat signature is unchanged —
///     one stat(), entry re-armed (the memoized CRC check: those bytes
///     were already verified);
///  3. signature changed — full reload + CRC, new ServedModel published
///     (hot swap); the old snapshot serves its in-flight requests out;
///  4. nothing on disk — the zoo trains the victim, then 3.
///
/// Capacity overflow evicts the least-recently-used entry. All loads happen
/// outside the cache mutex behind a per-key latch, so a slow (re)build of
/// one victim never blocks lookups of others.
class ModelCache {
 public:
  struct Options {
    int capacity = 16;
    long long ttl_ms = 60'000;  ///< <= 0: every lookup revalidates
    bool quant = true;          ///< serve int8 handles (fp64 otherwise)
  };

  ModelCache(core::Zoo& zoo, Options opts, ServeMetrics* metrics = nullptr);

  /// Resident model for (env-or-scenario, defense); loads/trains on miss,
  /// revalidates on TTL expiry. `env` may be any scenario string — it is
  /// canonicalized first so equal scenarios share one resident; names that
  /// don't parse (injected synthetic victims) key verbatim. Throws
  /// CheckError for unknown registry envs.
  std::shared_ptr<const ServedModel> get(const std::string& env,
                                         const std::string& defense);

  /// Drop one entry / every entry (in-flight requests keep their snapshot).
  void invalidate(const std::string& env, const std::string& defense);
  void invalidate_all();

  /// Inject an in-memory network as (env, defense) — benches and tests
  /// build synthetic victims without a zoo directory. Subject to the same
  /// TTL/capacity lifecycle; revalidation re-arms it (no backing file).
  std::shared_ptr<const ServedModel> put(
      const std::string& env, const std::string& defense,
      std::shared_ptr<const nn::GaussianPolicy> policy);

  std::size_t size() const;

  /// JSON array describing resident entries (the /models route).
  std::string render_json() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::shared_ptr<const ServedModel> model;
    Clock::time_point loaded_at;   ///< TTL anchor (reset by revalidation)
    Clock::time_point last_used;   ///< LRU anchor
  };

  /// Read + CRC + parse the checkpoint at its current on-disk state, train
  /// it first if absent. `ident` is the already-canonicalized scenario (or
  /// verbatim synthetic name). Called outside the mutex (slow path).
  std::shared_ptr<const ServedModel> build(const std::string& ident,
                                           const std::string& defense);
  void evict_over_capacity_locked();

  core::Zoo& zoo_;
  Options opts_;
  ServeMetrics* metrics_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::map<std::string, Entry> entries_;
  std::set<std::string> loading_;  ///< keys being built outside the lock
};

}  // namespace imap::serve
