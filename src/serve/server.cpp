#include "serve/server.h"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/proc.h"
#include "nn/batch.h"
#include "scenario/spec.h"

namespace imap::serve {

namespace {

/// Whitespace-separated doubles -> row. False on any non-numeric token.
/// std::from_chars, not strtod: several times faster on the hot /infer
/// parse (no locale machinery) with the same correctly-rounded result for
/// every token this server ever emits.
bool parse_row(const std::string& line, std::vector<double>& row) {
  row.clear();
  const char* p = line.data();
  const char* const last = p + line.size();
  for (;;) {
    while (p != last && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p == last) break;
    double v = 0.0;
    const auto res = std::from_chars(p, last, v);
    if (res.ec != std::errc{}) return false;
    row.push_back(v);
    p = res.ptr;
  }
  return true;
}

/// Append one action row as shortest-round-trip columns (std::to_chars):
/// the text parses back to the exact double, which is what makes an HTTP
/// response comparable bit-for-bit against a direct PolicyHandle::query —
/// at a fraction of the snprintf("%.17g") cost that used to dominate the
/// per-request overhead the coalescer cannot amortize.
void append_row(std::string& out, const double* a, std::size_t n) {
  char num[32];
  for (std::size_t i = 0; i < n; ++i) {
    const auto res = std::to_chars(num, num + sizeof num, a[i]);
    if (i > 0) out += ' ';
    out.append(num, static_cast<std::size_t>(res.ptr - num));
  }
  out += '\n';
}

bool attack_from_string(const std::string& s, core::AttackKind& out) {
  static const core::AttackKind kinds[] = {
      core::AttackKind::None,   core::AttackKind::Random,
      core::AttackKind::SaRl,   core::AttackKind::ApMarl,
      core::AttackKind::ImapSC, core::AttackKind::ImapPC,
      core::AttackKind::ImapR,  core::AttackKind::ImapD,
  };
  for (const auto kind : kinds) {
    if (core::to_string(kind) == s) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string json_error(const std::string& what) {
  std::string body = "{\"error\":\"";
  for (const char c : what)
    body += (c == '"' || c == '\\' || c == '\n') ? ' ' : c;
  body += "\"}";
  return body;
}

}  // namespace

Server::Server(ServeOptions opts)
    : opts_(opts),
      zoo_(opts.bench.zoo_dir, opts.bench.scale, opts.bench.seed,
           opts.bench.snapshot_every),
      cache_(zoo_, opts.cache, &metrics_),
      coalescer_(opts.coalesce, &metrics_),
      jobs_(opts.bench, opts.job_procs, opts.job_runners, &metrics_) {
  IMAP_CHECK_MSG(opts_.threads >= 1, "server needs at least one worker");
}

Server::~Server() { stop(); }

void Server::start() {
  IMAP_CHECK_MSG(!started_, "server already started");
  listen_fd_ = listen_on(opts_.port);
  port_ = bound_port(listen_fd_);

  int pipe_fds[2];
  IMAP_CHECK_MSG(::pipe(pipe_fds) == 0,
                 "pipe() failed: " << std::strerror(errno));
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  const int flags = ::fcntl(wake_r_, F_GETFL, 0);
  ::fcntl(wake_r_, F_SETFL, flags | O_NONBLOCK);

  // threads handler workers + one permanently occupied by the poll loop;
  // ThreadPool(N) spawns N-1 workers.
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(opts_.threads) + 2);
  started_ = true;
  pool_->submit([this] { loop(); });
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true);
  wake_loop();
  {
    std::unique_lock<std::mutex> lk(done_m_);
    done_cv_.wait(lk, [&] { return loop_exited_; });
  }
  // In-flight handlers finish inside the pool teardown; fds stay open until
  // every task that might write to one is gone.
  pool_.reset();
  jobs_.drain();
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_r_);
  ::close(wake_w_);
  listen_fd_ = wake_r_ = wake_w_ = -1;
}

void Server::wake_loop() {
  if (wake_w_ >= 0) {
    const ssize_t rc = ::write(wake_w_, "x", 1);
    (void)rc;  // pipe full means a wake-up is already pending
  }
}

void Server::loop() {
  std::vector<int> fds;
  std::vector<std::pair<int, bool>> done;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back(listen_fd_);
    fds.push_back(wake_r_);
    for (const auto& [fd, conn] : conns_)
      if (!conn.busy) fds.push_back(fd);
    const auto ready = proc::poll_readable(fds, 200);
    if (stop_.load(std::memory_order_relaxed)) break;

    for (const std::size_t idx : ready) {
      const int fd = fds[idx];
      if (fd == listen_fd_) {
        for (;;) {
          const int conn_fd = accept_connection(listen_fd_);
          if (conn_fd < 0) break;
          conns_.emplace(conn_fd, Conn{});
          metrics_.connections_opened.inc();
        }
      } else if (fd == wake_r_) {
        char drain[64];
        while (::read(wake_r_, drain, 64) > 0) {
        }
      } else {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier this round
        if (!recv_available(fd, it->second.buf)) {
          ::close(fd);
          conns_.erase(it);
          metrics_.connections_closed.inc();
        }
      }
    }

    // Handlers report (fd, delivered) when their response is out.
    done.clear();
    {
      std::lock_guard<std::mutex> lk(comp_m_);
      done.swap(completed_);
    }
    for (const auto& [fd, delivered] : done) {
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      it->second.busy = false;
      if (!delivered) {  // torn request: client died mid-response
        ::close(fd);
        conns_.erase(it);
        metrics_.connections_closed.inc();
      }
    }

    // Dispatch buffered requests on idle connections (covers both fresh
    // bytes and pipelined requests parked behind a finished one).
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (!it->second.busy && !pump_conn(it->first, it->second)) {
        ::close(it->first);
        it = conns_.erase(it);
        metrics_.connections_closed.inc();
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(done_m_);
    loop_exited_ = true;
  }
  done_cv_.notify_all();
}

bool Server::pump_conn(int fd, Conn& conn) {
  if (conn.buf.empty()) return true;
  HttpRequest req;
  switch (parse_request(conn.buf, req)) {
    case ParseStatus::Incomplete:
      return true;
    case ParseStatus::Bad:
      metrics_.requests_total.inc();
      metrics_.bad_requests.inc();
      send_all(fd, format_response(400, "application/json",
                                   json_error("malformed request")));
      return false;
    case ParseStatus::Ok:
      break;
  }
  conn.busy = true;
  pool_->submit(
      [this, fd, r = std::move(req)]() mutable {
        handle_request(fd, std::move(r));
      });
  return true;
}

void Server::handle_request(int fd, HttpRequest req) {
  // Wall clock feeds only the /metrics latency histogram — serving
  // telemetry, never simulation state, so seed-reproducibility is intact.
  const auto t0 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
  metrics_.requests_total.inc();
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  try {
    body = dispatch(req, status, content_type);
  } catch (const CheckError& e) {
    status = 400;
    content_type = "application/json";
    body = json_error(e.what());
  } catch (const std::exception& e) {
    status = 500;
    content_type = "application/json";
    body = json_error(e.what());
  }
  if (status >= 400 && status < 500) metrics_.bad_requests.inc();
  const bool delivered =
      send_all(fd, format_response(status, content_type, body));
  if (!delivered) metrics_.write_errors.inc();
  if (req.path == "/infer") {
    const auto t1 = std::chrono::steady_clock::now();  // imap-check: allow(nondet-source)
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count();
    metrics_.infer_latency_us.record(static_cast<std::uint64_t>(us));
  }
  {
    std::lock_guard<std::mutex> lk(comp_m_);
    completed_.emplace_back(fd, delivered);
  }
  wake_loop();
}

std::string Server::dispatch(const HttpRequest& req, int& status,
                             std::string& content_type) {
  if (req.path == "/health") {
    std::string body = "{\"status\":\"ok\",\"models\":";
    body += std::to_string(cache_.size());
    body += ",\"jobs\":";
    body += std::to_string(jobs_.total());
    body += "}";
    return body;
  }
  if (req.path == "/metrics") {
    content_type = "text/plain; version=0.0.4";
    return metrics_.render();
  }
  if (req.path == "/infer") {
    if (req.method != "POST") {
      status = 405;
      return json_error("POST only");
    }
    content_type = "text/plain";
    return route_infer(req, status);
  }
  if (req.path == "/attack/train") {
    if (req.method != "POST") {
      status = 405;
      return json_error("POST only");
    }
    return route_attack_train(req, status);
  }
  if (req.path == "/attack/status") return route_attack_status(req, status);
  if (req.path == "/models") return cache_.render_json();
  if (req.path == "/models/invalidate") {
    if (req.method != "POST") {
      status = 405;
      return json_error("POST only");
    }
    const std::string env = req.param("env");
    if (env.empty())
      cache_.invalidate_all();
    else
      cache_.invalidate(env, req.param("defense", "PPO"));
    return "{\"invalidated\":true}";
  }
  status = 404;
  return json_error("no such route");
}

std::string Server::route_infer(const HttpRequest& req, int& status) {
  metrics_.infer_requests.inc();
  // `scenario` names a full threat-model scenario string; `env` is the
  // historical spelling (and any env name IS a trivial scenario), so the two
  // share one lookup path and one residency key space.
  const std::string env =
      req.param("scenario").empty() ? req.param("env") : req.param("scenario");
  if (env.empty()) {
    status = 400;
    return json_error("missing env parameter");
  }
  const auto model = cache_.get(env, req.param("defense", "PPO"));

  // Body: one observation per line.
  std::vector<std::vector<double>> rows;
  std::vector<double> row;
  std::string line;  // hoisted: reuses capacity across body lines
  std::size_t pos = 0;
  const std::string& body = req.body;
  while (pos <= body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    line.assign(body, pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!parse_row(line, row)) {
      status = 400;
      return json_error("non-numeric observation");
    }
    if (row.size() != model->handle.obs_dim()) {
      status = 400;
      return json_error("observation width mismatch");
    }
    rows.push_back(row);
  }
  if (rows.empty()) {
    status = 400;
    return json_error("empty body");
  }
  metrics_.infer_rows.inc(rows.size());

  std::string out;
  const std::size_t act = model->handle.act_dim();
  if (rows.size() == 1) {
    // Single row: ride the cross-connection coalescer.
    const std::vector<double> action = coalescer_.infer(model, rows[0]);
    append_row(out, action.data(), act);
    return out;
  }
  // A multi-row body is already a batch — straight to the kernel.
  thread_local nn::Mlp::Workspace ws;
  thread_local nn::Batch in;
  in.resize(rows.size(), model->handle.obs_dim());
  for (std::size_t i = 0; i < rows.size(); ++i) in.set_row(i, rows[i]);
  const nn::Batch& actions = model->handle.query_batch(in, ws);
  metrics_.coalesced_batches.inc();
  metrics_.batch_size.record(rows.size());
  out.reserve(rows.size() * act * 20);
  for (std::size_t i = 0; i < rows.size(); ++i)
    append_row(out, actions.row(i), act);
  return out;
}

std::string Server::route_attack_train(const HttpRequest& req, int& status) {
  core::AttackPlan plan;
  plan.env_name = req.param("env");
  plan.scenario = req.param("scenario");
  if (plan.scenario.empty() && plan.env_name.empty()) {
    status = 400;
    return json_error("missing env parameter");
  }
  if (!plan.scenario.empty()) {
    // Validate eagerly so a malformed scenario is a 400 here, not a dead
    // job later; the runner canonicalizes again on its side.
    if (!scenario::try_canonical(plan.scenario)) {
      status = 400;
      return json_error("malformed scenario: " + plan.scenario);
    }
    if (plan.env_name.empty())
      plan.env_name = scenario::parse(plan.scenario).env;
  }
  plan.defense = req.param("defense", "PPO");
  const std::string attack = req.param("attack", "IMAP-PC");
  if (!attack_from_string(attack, plan.attack)) {
    status = 400;
    return json_error("unknown attack: " + attack);
  }
  plan.attack_steps = req.param_ll("steps", 0);
  plan.eval_episodes = static_cast<int>(req.param_ll("episodes", 0));
  const std::uint64_t id = jobs_.enqueue(plan);
  status = 202;
  return "{\"id\":" + std::to_string(id) + "}";
}

std::string Server::route_attack_status(const HttpRequest& req, int& status) {
  const long long id = req.param_ll("id", -1);
  if (id < 0) {
    status = 400;
    return json_error("missing id parameter");
  }
  std::string body = jobs_.status_json(static_cast<std::uint64_t>(id));
  if (body.empty()) {
    status = 404;
    return json_error("no such job");
  }
  return body;
}

}  // namespace imap::serve
