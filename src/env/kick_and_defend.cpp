#include "env/kick_and_defend.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::env {

using phys::Vec2;

KickAndDefendEnv::KickAndDefendEnv() : act_v_(2, 1.0), act_a_(2, 1.0) {
  kicker_.radius = 0.3;
  kicker_.mass = 1.0;
  kicker_.damping = 3.0;
  goalie_.radius = 0.35;
  goalie_.mass = 1.2;
  goalie_.damping = 3.0;
  ball_.radius = 0.15;
  ball_.mass = 0.2;
  ball_.damping = 0.3;  // slow roll: dribbling stays controllable
}

std::pair<std::vector<double>, std::vector<double>> KickAndDefendEnv::reset(
    Rng& rng) {
  kicker_.pos = {3.0, rng.uniform(-0.6, 0.6)};
  kicker_.vel = {};
  ball_.pos = {2.3, kicker_.pos.y + rng.uniform(-0.2, 0.2)};
  ball_.vel = {};
  goalie_.pos = {-3.4, rng.uniform(-0.8, 0.8)};
  goalie_.vel = {};
  t_ = 0;
  return {observe_victim(), observe_adversary()};
}

std::vector<double> KickAndDefendEnv::observe_victim() const {
  const Vec2 ball_rel = ball_.pos - kicker_.pos;
  const Vec2 goalie_rel = goalie_.pos - kicker_.pos;
  return {kicker_.pos.x / kFieldX, kicker_.pos.y / kFieldY,
          kicker_.vel.x / 5.0,     kicker_.vel.y / 5.0,
          ball_rel.x / kFieldX,    ball_rel.y / kFieldY,
          ball_.vel.x / 5.0,       ball_.vel.y / 5.0,
          goalie_rel.x / kFieldX,  goalie_rel.y / kFieldY};
}

std::vector<double> KickAndDefendEnv::observe_adversary() const {
  return {kicker_.pos.x / kFieldX, kicker_.pos.y / kFieldY,
          kicker_.vel.x / 5.0,     kicker_.vel.y / 5.0,
          ball_.pos.x / kFieldX,   ball_.pos.y / kFieldY,
          ball_.vel.x / 5.0,       ball_.vel.y / 5.0,
          goalie_.pos.x / kFieldX, goalie_.pos.y / kFieldY,
          goalie_.vel.x / 5.0,     goalie_.vel.y / 5.0};
}

bool KickAndDefendEnv::resolve_contact(phys::CircleBody& p,
                                       phys::CircleBody& q) {
  const Vec2 d = q.pos - p.pos;
  const double dist = d.norm();
  const double min_dist = p.radius + q.radius;
  if (dist >= min_dist) return false;
  const Vec2 n = dist > 1e-9 ? d / dist : Vec2{1.0, 0.0};
  const double overlap = min_dist - dist;
  const double tm = p.mass + q.mass;
  p.pos -= n * (overlap * q.mass / tm);
  q.pos += n * (overlap * p.mass / tm);
  const double rel_vn = (q.vel - p.vel).dot(n);
  if (rel_vn < 0.0) {
    // Slightly bouncy so kicks launch the ball.
    const double restitution = 0.4;
    const double impulse =
        -(1.0 + restitution) * rel_vn / (1.0 / p.mass + 1.0 / q.mass);
    p.vel -= n * (impulse / p.mass);
    q.vel += n * (impulse / q.mass);
  }
  return true;
}

MaStepResult KickAndDefendEnv::step(const std::vector<double>& act_v,
                                    const std::vector<double>& act_a) {
  IMAP_CHECK(act_v.size() == 2 && act_a.size() == 2);
  const double dt = 0.05;
  const Vec2 gate_center{kGateX, 0.0};
  const double prev_ball_gate = phys::distance(ball_.pos, gate_center);
  const double prev_kicker_ball = phys::distance(kicker_.pos, ball_.pos);

  const auto uv = act_v_.clamp(act_v);
  const auto ua = act_a_.clamp(act_a);
  kicker_.apply_force({uv[0] * 13.0, uv[1] * 13.0});
  goalie_.apply_force({ua[0] * 13.0, ua[1] * 13.0});

  kicker_.integrate(dt);
  goalie_.integrate(dt);
  ball_.integrate(dt);

  resolve_contact(kicker_, ball_);  // the kick
  const bool save = resolve_contact(goalie_, ball_);
  resolve_contact(kicker_, goalie_);

  // Field walls for the agents; goalie additionally confined to its box.
  auto wall_clamp = [](phys::CircleBody& b, double xmin, double xmax,
                       double ymin, double ymax) {
    if (b.pos.x < xmin) { b.pos.x = xmin; b.vel.x = std::max(0.0, b.vel.x); }
    if (b.pos.x > xmax) { b.pos.x = xmax; b.vel.x = std::min(0.0, b.vel.x); }
    if (b.pos.y < ymin) { b.pos.y = ymin; b.vel.y = std::max(0.0, b.vel.y); }
    if (b.pos.y > ymax) { b.pos.y = ymax; b.vel.y = std::min(0.0, b.vel.y); }
  };
  wall_clamp(kicker_, -kFieldX, kFieldX, -kFieldY, kFieldY);
  wall_clamp(goalie_, kBoxXMin, kBoxXMax, -kBoxYMax, kBoxYMax);

  ++t_;
  const bool goal = ball_.pos.x <= kGateX &&
                    std::abs(ball_.pos.y) <= kGateHalfWidth;
  const bool out = !goal && (ball_.pos.x <= kGateX ||
                             std::abs(ball_.pos.y) > kFieldY ||
                             ball_.pos.x > kFieldX);
  const bool timeout = t_ >= max_steps();

  MaStepResult res;
  res.done = goal || out || save;
  res.truncated = !res.done && timeout;
  res.victim_won = goal;

  // Kicker training shaping: approach the ball, push it toward the gate
  // mouth, score. Timeouts are the worst outcome so the kicker always
  // prefers engaging the ball over idling.
  res.reward_v_train =
      2.0 * (prev_ball_gate - phys::distance(ball_.pos, gate_center)) +
      0.5 * (prev_kicker_ball - phys::distance(kicker_.pos, ball_.pos)) -
      0.01;
  if (goal) res.reward_v_train += 10.0;
  if (save) res.reward_v_train -= 2.0;
  if (out) res.reward_v_train -= 1.0;
  if (res.truncated) res.reward_v_train -= 5.0;

  res.obs_v = observe_victim();
  res.obs_a = observe_adversary();
  return res;
}

std::vector<ScriptedOpponent> KickAndDefendEnv::victim_training_pool() {
  // obs_a layout: kicker pos/vel (0..3), ball pos/vel (4..7), goalie (8..11).
  ScriptedOpponent stationary = [](const std::vector<double>&, Rng&) {
    return std::vector<double>{0.0, 0.0};
  };
  ScriptedOpponent ball_tracker = [](const std::vector<double>& o, Rng&) {
    const double ball_y = o[5] * kFieldY;
    const double goalie_y = o[9] * kFieldY;
    return std::vector<double>{0.0, ball_y > goalie_y ? 0.6 : -0.6};
  };
  ScriptedOpponent drifter = [](const std::vector<double>&, Rng& rng) {
    return std::vector<double>{rng.uniform(-0.5, 0.5),
                               rng.uniform(-1.0, 1.0)};
  };
  return {stationary, ball_tracker, drifter};
}

std::unique_ptr<MultiAgentEnv> make_kick_and_defend() {
  return std::make_unique<KickAndDefendEnv>();
}

}  // namespace imap::env
