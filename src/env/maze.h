#pragma once

#include <memory>
#include <string>
#include <vector>

#include "phys/world.h"
#include "rl/env.h"

namespace imap::env {

/// Maze layout: static walls plus start/goal positions, with a BFS distance
/// field over an inflated occupancy grid. The field gives the *path*
/// distance to the goal (not the straight-line distance), which is the
/// shaping potential used for victim training — this is what lets a PPO
/// victim solve the U-turn.
struct MazeLayout {
  std::string name;
  std::vector<phys::Segment> walls;
  phys::Vec2 start;
  phys::Vec2 goal;
  phys::Vec2 lo;  ///< bounding box
  phys::Vec2 hi;
};

MazeLayout u_maze_layout();
MazeLayout four_rooms_layout();

/// Grid BFS distance-to-goal field with wall inflation.
class DistanceField {
 public:
  DistanceField(const MazeLayout& layout, double cell = 0.25,
                double inflate = 0.3);

  /// Path distance (in world units) from `p` to the goal; large finite value
  /// for unreachable/in-wall queries.
  double distance(phys::Vec2 p) const;

  double cell_size() const { return cell_; }

 private:
  int idx(int ix, int iy) const { return iy * nx_ + ix; }
  bool blocked(int ix, int iy) const;

  double cell_;
  int nx_ = 0, ny_ = 0;
  phys::Vec2 lo_;
  std::vector<double> dist_;
  std::vector<unsigned char> occ_;
};

/// Ant navigation in a maze (AntUMaze / Ant4Rooms): a point-robot
/// abstraction of the MuJoCo Ant navigating walls toward a goal region.
/// Two reward modes as with the other sparse tasks:
///   Dense  — potential-based shaping on the BFS field (victim training),
///   Sparse — Table 2 semantics: success only on reaching the goal region.
///
/// Observation (10-D): position (2, scaled), velocity (2), goal-relative
/// vector (2, scaled), and 4 wall-clearance features (distance to the
/// nearest wall along ±x/±y, saturated) — giving the policy (and the
/// attacker) a local view of the geometry.
class MazeEnv : public rl::EnvBase<MazeEnv> {
 public:
  enum class Mode { Dense, Sparse };

  MazeEnv(MazeLayout layout, Mode mode);

  std::size_t obs_dim() const override { return 10; }
  std::size_t act_dim() const override { return 2; }
  int max_steps() const override { return 300; }
  std::string name() const override;
  const rl::BoxSpace& action_space() const override { return action_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  phys::Vec2 position() const;
  const MazeLayout& layout() const { return layout_; }
  const DistanceField& field() const { return field_; }

  static constexpr double kGoalRadius = 0.6;

 private:
  std::vector<double> observe() const;
  double wall_clearance(phys::Vec2 dir) const;

  MazeLayout layout_;
  Mode mode_;
  DistanceField field_;
  rl::BoxSpace action_space_;
  phys::World world_;
  std::size_t robot_ = 0;
  double prev_dist_ = 0.0;
  int t_ = 0;
};

std::unique_ptr<rl::Env> make_ant_u_maze();          ///< sparse (deployment)
std::unique_ptr<rl::Env> make_ant_u_maze_dense();    ///< victim training
std::unique_ptr<rl::Env> make_ant_4rooms();
std::unique_ptr<rl::Env> make_ant_4rooms_dense();

}  // namespace imap::env
