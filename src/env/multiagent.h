#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rl/env.h"

namespace imap::env {

/// One step of a two-player zero-sum Markov game (Sec. 3).
struct MaStepResult {
  std::vector<double> obs_v;  ///< victim observation
  std::vector<double> obs_a;  ///< adversary observation (the joint state)
  bool done = false;
  bool truncated = false;
  bool victim_won = false;     ///< valid when done || truncated
  double reward_v_train = 0.0; ///< dense victim *training* shaping (zoo only)
};

/// Two-player zero-sum competitive game. The adversary's observation is the
/// joint state (s^ν, s^α); `victim_obs_range` / `adversary_obs_range` expose
/// the projections Π_{S^ν} and Π_{S^α} used by the multi-agent regularizers
/// (Eq. 7 and Eq. 9).
class MultiAgentEnv {
 public:
  virtual ~MultiAgentEnv() = default;

  virtual std::size_t victim_obs_dim() const = 0;
  virtual std::size_t adversary_obs_dim() const = 0;
  virtual std::size_t victim_act_dim() const = 0;
  virtual std::size_t adversary_act_dim() const = 0;
  virtual int max_steps() const = 0;
  virtual std::string name() const = 0;
  virtual const rl::BoxSpace& victim_action_space() const = 0;
  virtual const rl::BoxSpace& adversary_action_space() const = 0;

  /// [begin, end) index ranges into the adversary observation.
  virtual std::pair<std::size_t, std::size_t> victim_obs_range() const = 0;
  virtual std::pair<std::size_t, std::size_t> adversary_obs_range() const = 0;

  /// Returns {obs_v, obs_a}.
  virtual std::pair<std::vector<double>, std::vector<double>> reset(
      Rng& rng) = 0;

  virtual MaStepResult step(const std::vector<double>& act_v,
                            const std::vector<double>& act_a) = 0;

  virtual std::unique_ptr<MultiAgentEnv> clone() const = 0;
};

template <class Derived>
class MultiAgentEnvBase : public MultiAgentEnv {
 public:
  std::unique_ptr<MultiAgentEnv> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Scripted opponent for victim training: maps the adversary-side
/// observation to an adversary action. A pool of these stands in for the
/// paper's self-play opponents ("victims trained against random old
/// versions of their opponents").
using ScriptedOpponent =
    std::function<std::vector<double>(const std::vector<double>& obs_a, Rng&)>;

/// Adapts a Markov game to a single-agent Env from the VICTIM's side: a
/// scripted opponent is drawn from the pool at each reset. Reward is the
/// game's dense victim shaping (training-time reward — never shown to
/// attackers).
class VictimSideEnv : public rl::EnvBase<VictimSideEnv> {
 public:
  VictimSideEnv(const MultiAgentEnv& proto,
                std::vector<ScriptedOpponent> pool);
  VictimSideEnv(const VictimSideEnv& other);
  VictimSideEnv& operator=(const VictimSideEnv&) = delete;

  std::size_t obs_dim() const override { return game_->victim_obs_dim(); }
  std::size_t act_dim() const override { return game_->victim_act_dim(); }
  int max_steps() const override { return game_->max_steps(); }
  std::string name() const override { return game_->name() + "VictimSide"; }
  const rl::BoxSpace& action_space() const override {
    return game_->victim_action_space();
  }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

 private:
  std::unique_ptr<MultiAgentEnv> game_;
  std::vector<ScriptedOpponent> pool_;
  std::size_t active_ = 0;
  std::vector<double> cur_obs_a_;
  Rng opp_rng_{0};
};

}  // namespace imap::env
