#include "env/multiagent.h"

#include "common/check.h"

namespace imap::env {

VictimSideEnv::VictimSideEnv(const MultiAgentEnv& proto,
                             std::vector<ScriptedOpponent> pool)
    : game_(proto.clone()), pool_(std::move(pool)) {
  IMAP_CHECK_MSG(!pool_.empty(), "need at least one scripted opponent");
}

VictimSideEnv::VictimSideEnv(const VictimSideEnv& other)
    : game_(other.game_->clone()),
      pool_(other.pool_),
      active_(other.active_),
      cur_obs_a_(other.cur_obs_a_),
      opp_rng_(other.opp_rng_) {}

std::vector<double> VictimSideEnv::reset(Rng& rng) {
  active_ = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(pool_.size()) - 1));
  opp_rng_ = rng.split(rng.next_u64());
  auto [obs_v, obs_a] = game_->reset(rng);
  cur_obs_a_ = std::move(obs_a);
  return obs_v;
}

rl::StepResult VictimSideEnv::step(const std::vector<double>& action) {
  const auto act_a = game_->adversary_action_space().clamp(
      pool_[active_](cur_obs_a_, opp_rng_));
  MaStepResult ma = game_->step(action, act_a);
  cur_obs_a_ = std::move(ma.obs_a);

  rl::StepResult sr;
  sr.obs = std::move(ma.obs_v);
  sr.reward = ma.reward_v_train;
  sr.done = ma.done;
  sr.truncated = ma.truncated;
  sr.task_completed = ma.victim_won;
  sr.surrogate = (ma.done || ma.truncated) && ma.victim_won ? 1.0 : 0.0;
  return sr;
}

}  // namespace imap::env
