#include "env/sparse.h"

#include "common/check.h"
#include "env/ant.h"
#include "env/half_cheetah.h"
#include "env/hopper.h"
#include "env/walker2d.h"

namespace imap::env {

SparseLocomotionEnv::SparseLocomotionEnv(LocomotorParams inner,
                                         double goal_distance, int max_steps,
                                         SparseSemantics sem)
    : inner_((inner.max_steps = max_steps + 1, inner)),
      name_("Sparse" + inner.name),
      goal_(goal_distance),
      max_steps_(max_steps),
      sem_(sem) {
  IMAP_CHECK(goal_ > 0.0);
  IMAP_CHECK(max_steps_ > 0);
}

std::vector<double> SparseLocomotionEnv::reset(Rng& rng) {
  t_ = 0;
  return inner_.reset(rng);
}

rl::StepResult SparseLocomotionEnv::step(const std::vector<double>& action) {
  rl::StepResult sr = inner_.step(action);
  ++t_;

  const bool crossed = inner_.forward_position() >= goal_;
  const bool fell = inner_.fallen();

  sr.surrogate = crossed ? 1.0 : 0.0;
  sr.task_completed = crossed;
  sr.fell = fell;
  if (crossed) {
    sr.reward =
        1.0 - sem_.time_penalty * static_cast<double>(t_) / max_steps_;
    sr.done = true;
    sr.truncated = false;
  } else if (fell) {
    sr.reward = -sem_.fall_penalty;
    sr.done = true;
    sr.truncated = false;
  } else {
    sr.reward = 0.0;
    sr.done = false;
    sr.truncated = t_ >= max_steps_;
  }
  return sr;
}

namespace {
std::unique_ptr<rl::Env> sparse_of(LocomotorParams p, double goal,
                                   int max_steps) {
  return std::make_unique<SparseLocomotionEnv>(std::move(p), goal, max_steps);
}
}  // namespace

std::unique_ptr<rl::Env> make_sparse_hopper() {
  return sparse_of(hopper_params(), 18.0, 300);
}
std::unique_ptr<rl::Env> make_sparse_walker2d() {
  return sparse_of(walker2d_params(), 18.0, 300);
}
std::unique_ptr<rl::Env> make_sparse_half_cheetah() {
  return sparse_of(half_cheetah_params(), 22.0, 300);
}
std::unique_ptr<rl::Env> make_sparse_ant() {
  return sparse_of(ant_params(), 18.0, 300);
}

}  // namespace imap::env
