#include "env/maze.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"

namespace imap::env {

using phys::Segment;
using phys::Vec2;

MazeLayout u_maze_layout() {
  // A U-shaped corridor: start bottom-left, goal top-left, central bar
  // forces the long way around on the right.
  MazeLayout m;
  m.name = "AntUMaze";
  m.lo = {0.0, 0.0};
  m.hi = {6.0, 6.0};
  auto wall = [&](double ax, double ay, double bx, double by) {
    m.walls.push_back(Segment{{ax, ay}, {bx, by}, 0.1});
  };
  // Outer box.
  wall(0, 0, 6, 0);
  wall(6, 0, 6, 6);
  wall(6, 6, 0, 6);
  wall(0, 6, 0, 0);
  // Central bar from the left wall, leaving a gap on the right.
  wall(0, 3, 4.2, 3);
  m.start = {1.0, 1.2};
  m.goal = {1.0, 4.8};
  return m;
}

MazeLayout four_rooms_layout() {
  MazeLayout m;
  m.name = "Ant4Rooms";
  m.lo = {0.0, 0.0};
  m.hi = {8.0, 8.0};
  auto wall = [&](double ax, double ay, double bx, double by) {
    m.walls.push_back(Segment{{ax, ay}, {bx, by}, 0.1});
  };
  wall(0, 0, 8, 0);
  wall(8, 0, 8, 8);
  wall(8, 8, 0, 8);
  wall(0, 8, 0, 0);
  // Vertical divider with two doorways.
  wall(4, 0, 4, 1.4);
  wall(4, 2.6, 4, 5.4);
  wall(4, 6.6, 4, 8);
  // Horizontal divider with two doorways.
  wall(0, 4, 1.4, 4);
  wall(2.6, 4, 5.4, 4);
  wall(6.6, 4, 8, 4);
  m.start = {1.2, 1.2};
  m.goal = {6.8, 6.8};  // diagonally opposite room
  return m;
}

DistanceField::DistanceField(const MazeLayout& layout, double cell,
                             double inflate)
    : cell_(cell), lo_(layout.lo) {
  nx_ = static_cast<int>(std::ceil((layout.hi.x - layout.lo.x) / cell_)) + 1;
  ny_ = static_cast<int>(std::ceil((layout.hi.y - layout.lo.y) / cell_)) + 1;
  occ_.assign(static_cast<std::size_t>(nx_ * ny_), 0);
  dist_.assign(static_cast<std::size_t>(nx_ * ny_),
               std::numeric_limits<double>::infinity());

  for (int iy = 0; iy < ny_; ++iy) {
    for (int ix = 0; ix < nx_; ++ix) {
      const Vec2 p{lo_.x + ix * cell_, lo_.y + iy * cell_};
      for (const auto& seg : layout.walls) {
        const Vec2 cp = phys::closest_point_on_segment(p, seg.a, seg.b);
        if (phys::distance(p, cp) < inflate + seg.thickness) {
          occ_[static_cast<std::size_t>(idx(ix, iy))] = 1;
          break;
        }
      }
    }
  }

  // Multi-source-free BFS from the goal cell (4-connected).
  const int gx = static_cast<int>(std::round((layout.goal.x - lo_.x) / cell_));
  const int gy = static_cast<int>(std::round((layout.goal.y - lo_.y) / cell_));
  IMAP_CHECK(gx >= 0 && gx < nx_ && gy >= 0 && gy < ny_);
  IMAP_CHECK_MSG(!occ_[static_cast<std::size_t>(idx(gx, gy))],
                 "goal cell is inside a wall");
  std::deque<std::pair<int, int>> frontier;
  dist_[static_cast<std::size_t>(idx(gx, gy))] = 0.0;
  frontier.emplace_back(gx, gy);
  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};
  while (!frontier.empty()) {
    auto [cx, cy] = frontier.front();
    frontier.pop_front();
    const double d = dist_[static_cast<std::size_t>(idx(cx, cy))];
    for (int k = 0; k < 4; ++k) {
      const int nx = cx + dx[k], ny = cy + dy[k];
      if (nx < 0 || nx >= nx_ || ny < 0 || ny >= ny_) continue;
      const auto ni = static_cast<std::size_t>(idx(nx, ny));
      if (occ_[ni]) continue;
      if (dist_[ni] <= d + cell_) continue;
      dist_[ni] = d + cell_;
      frontier.emplace_back(nx, ny);
    }
  }
}

bool DistanceField::blocked(int ix, int iy) const {
  if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_) return true;
  return occ_[static_cast<std::size_t>(idx(ix, iy))] != 0;
}

double DistanceField::distance(Vec2 p) const {
  const int ix = static_cast<int>(std::round((p.x - lo_.x) / cell_));
  const int iy = static_cast<int>(std::round((p.y - lo_.y) / cell_));
  // Fall back to the nearest free neighbour so in-wall queries stay finite.
  double best = std::numeric_limits<double>::infinity();
  for (int ddy = -1; ddy <= 1; ++ddy)
    for (int ddx = -1; ddx <= 1; ++ddx) {
      const int jx = ix + ddx, jy = iy + ddy;
      if (blocked(jx, jy)) continue;
      best = std::min(best, dist_[static_cast<std::size_t>(idx(jx, jy))]);
    }
  if (!std::isfinite(best)) return 1e3;
  return best;
}

MazeEnv::MazeEnv(MazeLayout layout, Mode mode)
    : layout_(std::move(layout)),
      mode_(mode),
      field_(layout_),
      action_space_(2, 1.0) {
  phys::CircleBody robot;
  robot.pos = layout_.start;
  robot.radius = 0.3;
  robot.damping = 2.0;
  robot_ = world_.add_body(robot);
  for (const auto& w : layout_.walls) world_.add_segment(w);
}

std::string MazeEnv::name() const {
  return layout_.name + (mode_ == Mode::Dense ? "Dense" : "");
}

phys::Vec2 MazeEnv::position() const { return world_.body(robot_).pos; }

double MazeEnv::wall_clearance(Vec2 dir) const {
  // March outward until a wall is closer than the robot radius; saturate.
  const Vec2 p0 = world_.body(robot_).pos;
  constexpr double kMax = 2.0;
  constexpr double kStep = 0.1;
  // Integer induction (cert-flp30-c): accumulating `r += 0.1` drifts by an
  // ulp per step and silently drops the final ring before kMax.
  for (int k = 1; kStep * k <= kMax; ++k) {
    const double r = kStep * k;
    const Vec2 p = p0 + dir * r;
    for (const auto& seg : world_.segments()) {
      const Vec2 cp = phys::closest_point_on_segment(p, seg.a, seg.b);
      if (phys::distance(p, cp) < 0.3 + seg.thickness) return r;
    }
  }
  return kMax;
}

std::vector<double> MazeEnv::observe() const {
  const auto& b = world_.body(robot_);
  const double sx = 0.25;  // position scale keeps features O(1)
  std::vector<double> o;
  o.reserve(obs_dim());
  o.push_back(b.pos.x * sx);
  o.push_back(b.pos.y * sx);
  o.push_back(b.vel.x * 0.5);
  o.push_back(b.vel.y * 0.5);
  o.push_back((layout_.goal.x - b.pos.x) * sx);
  o.push_back((layout_.goal.y - b.pos.y) * sx);
  o.push_back(wall_clearance({1, 0}) * 0.5);
  o.push_back(wall_clearance({-1, 0}) * 0.5);
  o.push_back(wall_clearance({0, 1}) * 0.5);
  o.push_back(wall_clearance({0, -1}) * 0.5);
  return o;
}

std::vector<double> MazeEnv::reset(Rng& rng) {
  auto& b = world_.body(robot_);
  b.pos = layout_.start +
          Vec2{rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)};
  b.vel = {};
  prev_dist_ = field_.distance(b.pos);
  t_ = 0;
  return observe();
}

rl::StepResult MazeEnv::step(const std::vector<double>& action) {
  IMAP_CHECK(action.size() == 2);
  auto u = action_space_.clamp(action);
  auto& b = world_.body(robot_);
  b.apply_force({u[0] * 8.0, u[1] * 8.0});
  world_.step(0.05);
  ++t_;

  const double d = field_.distance(b.pos);
  const bool reached = phys::distance(b.pos, layout_.goal) < kGoalRadius;

  rl::StepResult sr;
  sr.obs = observe();
  sr.surrogate = reached ? 1.0 : 0.0;
  sr.task_completed = reached;
  sr.fell = false;

  if (mode_ == Mode::Dense) {
    // Potential-based shaping on the BFS field + arrival bonus.
    sr.reward = 2.0 * (prev_dist_ - d) - 0.01 + (reached ? 5.0 : 0.0);
    sr.done = reached;
    sr.truncated = !sr.done && t_ >= max_steps();
  } else {
    sr.reward = reached
                    ? 1.0 - 0.05 * static_cast<double>(t_) / max_steps()
                    : 0.0;
    sr.done = reached;
    sr.truncated = !sr.done && t_ >= max_steps();
  }
  prev_dist_ = d;
  return sr;
}

std::unique_ptr<rl::Env> make_ant_u_maze() {
  return std::make_unique<MazeEnv>(u_maze_layout(), MazeEnv::Mode::Sparse);
}
std::unique_ptr<rl::Env> make_ant_u_maze_dense() {
  return std::make_unique<MazeEnv>(u_maze_layout(), MazeEnv::Mode::Dense);
}
std::unique_ptr<rl::Env> make_ant_4rooms() {
  return std::make_unique<MazeEnv>(four_rooms_layout(), MazeEnv::Mode::Sparse);
}
std::unique_ptr<rl::Env> make_ant_4rooms_dense() {
  return std::make_unique<MazeEnv>(four_rooms_layout(), MazeEnv::Mode::Dense);
}

}  // namespace imap::env
