#pragma once

#include <string>
#include <vector>

#include "rl/env.h"

namespace imap::env {

/// Parameters of the planar locomotor family (Hopper / Walker2d /
/// HalfCheetah / Ant / SparseHumanoid are instances).
///
/// The model is a reduced-order stand-in for the MuJoCo bodies (see
/// DESIGN.md): joints driven by bounded torques generate forward thrust, and
/// a posture variable θ is *actively unstable* (θ̈ ≈ instab·θ + d·u + noise),
/// so the policy must run a feedback loop to stay healthy. Because control
/// authority is bounded, there is a point of no return θ* = ‖d‖₁/instab: an
/// adversary that corrupts the observed posture enough to push θ past θ*
/// guarantees a fall — exactly the vulnerability class the paper's attacks
/// exploit (Fig. 1).
struct LocomotorParams {
  std::string name = "Locomotor";
  std::size_t n_joints = 3;
  double dt = 0.05;
  int max_steps = 500;

  // Thrust chain: forward acceleration = thrust_gain · (c·u) · eff − drag·v,
  // where eff = 1 − (θ/θ_max)² collapses when posture degrades.
  std::vector<double> c;
  double thrust_gain = 4.0;
  double drag = 1.0;

  // Posture (pitch for bipeds, roll for Ant). The effective instability
  // grows with forward speed: instab + instab_v·max(0, v). Running flat out
  // therefore demands a high-gain stabiliser (attackable through bounded
  // observation noise), while a conservative gait is inherently robust —
  // the trade-off robust training methods exploit (c.f. Fig. 1's WocaR
  // Walker that "learned to lower its body to be robust").
  std::vector<double> d;
  double instab = 3.0;
  double instab_v = 0.0;
  double omega_damp = 1.0;
  double posture_noise = 0.02;
  double theta_max = 0.5;

  // Torso height (hopping envs terminate when it collapses).
  bool uses_height = true;
  double h0 = 1.0;
  double h_min = 0.5;
  double spring = 8.0;
  double h_damp = 2.0;
  double fall_couple = 3.0;  ///< posture² drags the torso down

  // Joint dynamics.
  double act_gain = 6.0;
  double joint_damp = 2.0;
  double joint_stiff = 4.0;
  double q_max = 1.5;

  // Victim training-time reward r_E (dense): w_v·v + alive − w_ctrl·‖u‖².
  double w_v = 1.0;
  double alive_bonus = 1.0;
  double w_ctrl = 1e-3;

  // Surrogate success signal r̂_E per step: the degree to which the victim
  // is observably "running", clamp(v / v_full, 0, 1). Derived purely from
  // the environment state the attacker can see (never from the victim's
  // training reward), so it respects the black-box threat model; v_succ is
  // the "is running" threshold used for episode-level task completion.
  double v_succ = 0.5;
  double v_full = 3.0;

  double init_noise = 0.05;
  bool terminates = true;  ///< HalfCheetah never terminates

  std::size_t obs_dim() const {
    return 3 + (uses_height ? 2 : 0) + 2 * n_joints;
  }
};

/// The planar locomotor environment.
class LocomotorEnv : public rl::EnvBase<LocomotorEnv> {
 public:
  explicit LocomotorEnv(LocomotorParams params);

  std::size_t obs_dim() const override { return params_.obs_dim(); }
  std::size_t act_dim() const override { return params_.n_joints; }
  int max_steps() const override { return params_.max_steps; }
  std::string name() const override { return params_.name; }
  const rl::BoxSpace& action_space() const override { return action_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  /// Procedural family support: mass divides every control-driven
  /// acceleration (thrust and joint actuation), gain multiplies actuator
  /// authority (thrust, actuation and the posture coupling d·u). Always
  /// derived from the PRISTINE constructor parameters, so repeated
  /// application never compounds.
  bool apply_dynamics(const rl::DynamicsScales& scales) override;

  /// Canonical (noise-free) initial observation — the R-driven regularizer's
  /// default adversarial state s₀^ν (Sec. 5.2.3).
  std::vector<double> canonical_initial_obs() const;

  // Introspection for wrappers and tests.
  double forward_position() const { return x_; }
  double forward_velocity() const { return v_; }
  double posture() const { return theta_; }
  double height() const { return h_; }
  bool fallen() const { return fallen_; }
  int steps() const { return t_; }
  const LocomotorParams& params() const { return params_; }

 private:
  std::vector<double> observe() const;
  bool unhealthy() const;

  LocomotorParams params_;
  LocomotorParams base_params_;  ///< pristine copy apply_dynamics scales from
  rl::BoxSpace action_space_;
  Rng noise_rng_{0};

  double x_ = 0.0, v_ = 0.0;
  double theta_ = 0.0, omega_ = 0.0;
  double h_ = 1.0, hv_ = 0.0;
  std::vector<double> q_, qd_;
  int t_ = 0;
  bool fallen_ = false;
};

}  // namespace imap::env
