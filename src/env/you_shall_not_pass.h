#pragma once

#include <memory>
#include <vector>

#include "env/multiagent.h"
#include "phys/body.h"

namespace imap::env {

/// YouShallNotPass: the victim (runner) must cross the finish line within
/// the step budget; the adversary (blocker) wins otherwise. 2-D reduction of
/// the MuJoCo humanoid game with a *momentum contest* standing in for the
/// humanoids' balance: on a hard contact the body with less momentum along
/// the collision normal falls over and stays down. A fallen runner can never
/// finish (adversary wins immediately); a fallen blocker leaves the track
/// open. The blocker is heavier but slower than the runner, so winning
/// requires positional play (holding the line, mirroring, braced
/// interception) rather than chasing — the skill IMAP-PC discovers in the
/// paper (Fig. 2).
class YouShallNotPassEnv : public MultiAgentEnvBase<YouShallNotPassEnv> {
 public:
  YouShallNotPassEnv();

  std::size_t victim_obs_dim() const override { return 9; }
  std::size_t adversary_obs_dim() const override { return 11; }
  std::size_t victim_act_dim() const override { return 2; }
  std::size_t adversary_act_dim() const override { return 2; }
  int max_steps() const override { return 150; }
  std::string name() const override { return "YouShallNotPass"; }
  const rl::BoxSpace& victim_action_space() const override { return act_v_; }
  const rl::BoxSpace& adversary_action_space() const override {
    return act_a_;
  }

  std::pair<std::size_t, std::size_t> victim_obs_range() const override {
    return {0, 4};  // runner position + velocity
  }
  std::pair<std::size_t, std::size_t> adversary_obs_range() const override {
    return {4, 8};  // blocker position + velocity
  }

  std::pair<std::vector<double>, std::vector<double>> reset(Rng& rng) override;
  MaStepResult step(const std::vector<double>& act_v,
                    const std::vector<double>& act_a) override;

  // Introspection for tests / trajectory dumps.
  const phys::CircleBody& runner() const { return runner_; }
  const phys::CircleBody& blocker() const { return blocker_; }
  bool runner_fallen() const { return runner_fallen_; }
  bool blocker_fallen() const { return blocker_fallen_; }

  static constexpr double kFinishLine = -3.5;
  static constexpr double kFieldX = 5.0;
  static constexpr double kFieldY = 3.0;
  static constexpr double kFallImpactSpeed = 1.0;

  /// Scripted blockers the victim is trained against (stationary, chaser,
  /// drifter) — the stand-in for the paper's self-play opponent pool.
  static std::vector<ScriptedOpponent> victim_training_pool();

 private:
  std::vector<double> observe_victim() const;
  std::vector<double> observe_adversary() const;
  void resolve_walls(phys::CircleBody& b) const;

  rl::BoxSpace act_v_;
  rl::BoxSpace act_a_;
  phys::CircleBody runner_;
  phys::CircleBody blocker_;
  bool runner_fallen_ = false;
  bool blocker_fallen_ = false;
  int t_ = 0;
};

std::unique_ptr<MultiAgentEnv> make_you_shall_not_pass();

}  // namespace imap::env
