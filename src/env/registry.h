#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "env/multiagent.h"
#include "rl/env.h"

namespace imap::env {

enum class TaskType { DenseLocomotion, SparseLocomotion, Navigation,
                      Manipulation, MultiAgent };

/// Registry entry for one of the paper's 15 tasks.
struct EnvSpec {
  std::string name;
  TaskType type;
  /// Attack budget ε (ℓ∞ ball on the victim's observation) — the dense tasks
  /// use the paper's per-environment budgets (Table 1 left column).
  double epsilon = 0.1;
};

/// All single-agent task names (13, as in the paper).
std::vector<EnvSpec> single_agent_specs();
/// The two competitive games.
std::vector<EnvSpec> multi_agent_specs();

const EnvSpec& spec(const std::string& name);

/// Case-insensitive registry lookup: "hopper" -> "Hopper". nullopt for
/// unknown names. The scenario grammar resolves env components through this.
std::optional<std::string> resolve_name(const std::string& name);

/// Deployment-time environment (what the attacker faces). Throws CheckError
/// on unknown names.
std::unique_ptr<rl::Env> make_env(const std::string& name);

/// `count` independent instances of the task — the slot prototypes of a
/// vectorized rollout (rl::VecEnv). Instances are clones of one prototype,
/// so they share spaces and dynamics; behaviour differs only through the Rng
/// each slot is stepped with.
std::vector<std::unique_ptr<rl::Env>> make_env_batch(const std::string& name,
                                                     std::size_t count);

/// Victim-training environment for the task: dense counterparts for the
/// sparse tasks (the victim trains with its own shaped reward — which the
/// black-box attacker never sees), identity for the dense tasks.
std::unique_ptr<rl::Env> make_training_env(const std::string& name);

std::unique_ptr<MultiAgentEnv> make_multiagent_env(const std::string& name);

/// Scripted-opponent pool used to train the victim of a competitive game.
std::vector<ScriptedOpponent> victim_training_pool(const std::string& name);

}  // namespace imap::env
