#include "env/you_shall_not_pass.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::env {

using phys::Vec2;

YouShallNotPassEnv::YouShallNotPassEnv() : act_v_(2, 1.0), act_a_(2, 1.0) {
  runner_.radius = 0.3;
  runner_.mass = 1.0;
  runner_.damping = 3.0;
  blocker_.radius = 0.42;
  blocker_.mass = 1.4;
  blocker_.damping = 3.0;
}

std::pair<std::vector<double>, std::vector<double>> YouShallNotPassEnv::reset(
    Rng& rng) {
  runner_.pos = {3.0, rng.uniform(-1.0, 1.0)};
  runner_.vel = {};
  blocker_.pos = {0.0, rng.uniform(-1.0, 1.0)};
  blocker_.vel = {};
  runner_fallen_ = false;
  blocker_fallen_ = false;
  t_ = 0;
  return {observe_victim(), observe_adversary()};
}

std::vector<double> YouShallNotPassEnv::observe_victim() const {
  const Vec2 rel = blocker_.pos - runner_.pos;
  return {runner_.pos.x / kFieldX,
          runner_.pos.y / kFieldY,
          runner_.vel.x / 5.0,
          runner_.vel.y / 5.0,
          rel.x / kFieldX,
          rel.y / kFieldY,
          blocker_.vel.x / 5.0,
          blocker_.vel.y / 5.0,
          static_cast<double>(t_) / max_steps()};
}

std::vector<double> YouShallNotPassEnv::observe_adversary() const {
  const Vec2 rel = runner_.pos - blocker_.pos;
  return {runner_.pos.x / kFieldX,
          runner_.pos.y / kFieldY,
          runner_.vel.x / 5.0,
          runner_.vel.y / 5.0,
          blocker_.pos.x / kFieldX,
          blocker_.pos.y / kFieldY,
          blocker_.vel.x / 5.0,
          blocker_.vel.y / 5.0,
          rel.x / kFieldX,
          rel.y / kFieldY,
          static_cast<double>(t_) / max_steps()};
}

void YouShallNotPassEnv::resolve_walls(phys::CircleBody& b) const {
  if (b.pos.y > kFieldY - b.radius) {
    b.pos.y = kFieldY - b.radius;
    b.vel.y = std::min(0.0, b.vel.y);
  }
  if (b.pos.y < -kFieldY + b.radius) {
    b.pos.y = -kFieldY + b.radius;
    b.vel.y = std::max(0.0, b.vel.y);
  }
  if (b.pos.x > kFieldX - b.radius) {
    b.pos.x = kFieldX - b.radius;
    b.vel.x = std::min(0.0, b.vel.x);
  }
  if (b.pos.x < -kFieldX + b.radius) {
    b.pos.x = -kFieldX + b.radius;
    b.vel.x = std::max(0.0, b.vel.x);
  }
}

MaStepResult YouShallNotPassEnv::step(const std::vector<double>& act_v,
                                      const std::vector<double>& act_a) {
  IMAP_CHECK(act_v.size() == 2 && act_a.size() == 2);
  const double dt = 0.05;
  const double prev_runner_x = runner_.pos.x;

  const auto uv = act_v_.clamp(act_v);
  const auto ua = act_a_.clamp(act_a);
  // The runner is faster; the blocker heavier. Fallen bodies get no control.
  if (!runner_fallen_) runner_.apply_force({uv[0] * 13.0, uv[1] * 13.0});
  if (!blocker_fallen_) blocker_.apply_force({ua[0] * 16.0, ua[1] * 16.0});

  // Record pre-contact velocities for the momentum contest.
  runner_.integrate(dt);
  blocker_.integrate(dt);
  const Vec2 vr = runner_.vel;
  const Vec2 vb = blocker_.vel;

  // Circle-circle contact with inelastic impulse (same maths as phys::World,
  // kept local so the impact speed is observable for the fall rule).
  const Vec2 d = blocker_.pos - runner_.pos;
  const double dist = d.norm();
  const double min_dist = runner_.radius + blocker_.radius;
  if (dist < min_dist) {
    const Vec2 n = dist > 1e-9 ? d / dist : Vec2{1.0, 0.0};
    const double overlap = min_dist - dist;
    const double tm = runner_.mass + blocker_.mass;
    runner_.pos -= n * (overlap * blocker_.mass / tm);
    blocker_.pos += n * (overlap * runner_.mass / tm);
    const double rel_vn = (vb - vr).dot(n);
    if (rel_vn < 0.0) {
      const double impulse =
          -rel_vn / (1.0 / runner_.mass + 1.0 / blocker_.mass);
      runner_.vel -= n * (impulse / runner_.mass);
      blocker_.vel += n * (impulse / blocker_.mass);
    }

    // Momentum contest: on a hard impact, the body carrying less momentum
    // along the contact normal goes down. Near-ties floor both.
    const double impact_speed = std::abs(rel_vn);
    if (impact_speed > kFallImpactSpeed) {
      const double pr = runner_.mass * std::abs(vr.dot(n));
      const double pb = blocker_.mass * std::abs(vb.dot(n));
      if (pr > 1.25 * pb) {
        blocker_fallen_ = true;
      } else if (pb > 1.25 * pr) {
        runner_fallen_ = true;
      } else {
        runner_fallen_ = true;
        blocker_fallen_ = true;
      }
    }
  }

  resolve_walls(runner_);
  resolve_walls(blocker_);
  if (runner_fallen_) runner_.vel = {};
  if (blocker_fallen_) blocker_.vel = {};

  ++t_;
  const bool crossed = runner_.pos.x <= kFinishLine;
  const bool timeout = t_ >= max_steps();

  MaStepResult out;
  out.done = crossed || runner_fallen_;
  out.truncated = !out.done && timeout;
  out.victim_won = crossed;

  // Victim training shaping: forward progress toward the line + outcome.
  out.reward_v_train = 2.0 * (prev_runner_x - runner_.pos.x) - 0.01;
  if (crossed) out.reward_v_train += 10.0;
  if (runner_fallen_) out.reward_v_train -= 10.0;
  if (out.truncated) out.reward_v_train -= 5.0;

  out.obs_v = observe_victim();
  out.obs_a = observe_adversary();
  return out;
}

std::vector<ScriptedOpponent> YouShallNotPassEnv::victim_training_pool() {
  // obs_a layout: runner pos/vel (0..3), blocker pos/vel (4..7), rel (8..9).
  ScriptedOpponent stationary = [](const std::vector<double>&, Rng&) {
    return std::vector<double>{0.0, 0.0};
  };
  ScriptedOpponent chaser = [](const std::vector<double>& o, Rng&) {
    // Head straight for the runner's current position.
    return std::vector<double>{o[8] > 0 ? 1.0 : -1.0, o[9] > 0 ? 1.0 : -1.0};
  };
  ScriptedOpponent drifter = [](const std::vector<double>&, Rng& rng) {
    return std::vector<double>{rng.uniform(-1.0, 1.0),
                               rng.uniform(-1.0, 1.0)};
  };
  return {stationary, chaser, drifter};
}

std::unique_ptr<MultiAgentEnv> make_you_shall_not_pass() {
  return std::make_unique<YouShallNotPassEnv>();
}

}  // namespace imap::env
