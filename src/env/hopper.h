#pragma once

#include <memory>

#include "env/locomotor.h"

namespace imap::env {

/// Hopper: 3 actuated joints, 11-D observation (same dimensionality as the
/// MuJoCo Hopper the paper uses), fragile posture — the least stable of the
/// dense tasks, matching its role in Table 1.
LocomotorParams hopper_params();
std::unique_ptr<rl::Env> make_hopper();

}  // namespace imap::env
