#include "env/humanoid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::env {

HumanoidStandupEnv::HumanoidStandupEnv(Mode mode)
    : mode_(mode),
      action_space_(kJoints, 1.0),
      q_(kJoints, 0.0),
      qd_(kJoints, 0.0) {}

std::vector<double> HumanoidStandupEnv::reset(Rng& rng) {
  noise_rng_ = rng.split(rng.next_u64());
  h_ = 0.2 + rng.normal(0.0, 0.01);
  hv_ = 0.0;
  theta_ = rng.normal(0.0, 0.02);
  omega_ = 0.0;
  for (auto& q : q_) q = rng.normal(0.0, 0.02);
  for (auto& qd : qd_) qd = 0.0;
  t_ = 0;
  return observe();
}

std::vector<double> HumanoidStandupEnv::observe() const {
  std::vector<double> o;
  o.reserve(obs_dim());
  o.push_back(h_ - kGoalHeight);  // centred at the goal height
  o.push_back(hv_);
  o.push_back(theta_);
  o.push_back(omega_);
  o.insert(o.end(), q_.begin(), q_.end());
  o.insert(o.end(), qd_.begin(), qd_.end());
  return o;
}

rl::StepResult HumanoidStandupEnv::step(const std::vector<double>& action) {
  IMAP_CHECK(action.size() == kJoints);
  const double dt = 0.05;
  auto u = action_space_.clamp(action);

  double lift = 0.0, du = 0.0, usq = 0.0;
  static constexpr double kLift[kJoints] = {1.0, 0.8, 0.5, 0.3};
  static constexpr double kPosture[kJoints] = {0.5, -0.35, 0.25, -0.15};
  for (std::size_t j = 0; j < kJoints; ++j) {
    qd_[j] += dt * (6.0 * u[j] - 2.0 * qd_[j] - 4.0 * q_[j]);
    q_[j] = std::clamp(q_[j] + dt * qd_[j], -1.5, 1.5);
    lift += kLift[j] * u[j];
    du += kPosture[j] * u[j];
    usq += u[j] * u[j];
  }

  // Balance gets harder the higher the torso (inverted pendulum).
  const double eff = std::max(
      0.0, 1.0 - (theta_ / kThetaMax) * (theta_ / kThetaMax));
  const double gravity = 2.0;
  hv_ += dt * (3.5 * lift * eff - gravity - 2.0 * hv_);
  h_ = std::max(0.1, h_ + dt * hv_);

  const double instab = 1.5 + 2.5 * h_;
  omega_ += dt * (instab * theta_ + du - 1.0 * omega_) +
            std::sqrt(dt) * 0.02 * noise_rng_.normal();
  theta_ += dt * omega_;

  ++t_;
  const bool fell = std::abs(theta_) > kThetaMax;
  const bool stood = h_ >= kGoalHeight && !fell;

  rl::StepResult sr;
  sr.obs = observe();
  sr.fell = fell;
  sr.surrogate = stood ? 1.0 : 0.0;
  sr.task_completed = stood;

  if (mode_ == Mode::Dense) {
    sr.reward = 2.0 * h_ + (fell ? 0.0 : 0.5) - 1e-3 * usq;
    sr.done = fell || stood;
    sr.truncated = !sr.done && t_ >= max_steps();
  } else {
    if (stood) {
      sr.reward = 1.0 - sem_.time_penalty * static_cast<double>(t_) /
                            max_steps();
      sr.done = true;
    } else if (fell) {
      sr.reward = -sem_.fall_penalty;
      sr.done = true;
    } else {
      sr.reward = 0.0;
      sr.done = false;
      sr.truncated = t_ >= max_steps();
    }
  }
  return sr;
}

std::unique_ptr<rl::Env> make_sparse_humanoid_standup() {
  return std::make_unique<HumanoidStandupEnv>(HumanoidStandupEnv::Mode::Sparse);
}

std::unique_ptr<rl::Env> make_humanoid_standup_dense() {
  return std::make_unique<HumanoidStandupEnv>(HumanoidStandupEnv::Mode::Dense);
}

LocomotorParams humanoid_params() {
  LocomotorParams p;
  p.name = "Humanoid";
  p.n_joints = 6;  // obs: 3 + 2 + 12 = 17-D
  // d ⊥ c (see hopper.cpp). ‖d‖₁ = 1.7 → θ* = 0.43 < θ_max — tippy.
  p.c = {0.9, 0.6, 0.4, 0.9, 0.6, 0.4};
  p.d = {0.45, 0.3, 0.1, -0.45, -0.3, -0.1};
  p.instab = 1.4;
  p.instab_v = 0.65;
  p.theta_max = 0.45;
  p.posture_noise = 0.035;
  p.uses_height = true;
  p.fall_couple = 4.0;
  p.w_v = 1.5;
  p.alive_bonus = 1.0;
  p.v_succ = 1.0;
  p.max_steps = 500;
  return p;
}

std::unique_ptr<rl::Env> make_humanoid_dense() {
  return std::make_unique<LocomotorEnv>(humanoid_params());
}

std::unique_ptr<rl::Env> make_sparse_humanoid() {
  return std::make_unique<SparseLocomotionEnv>(humanoid_params(), 15.0, 300);
}

}  // namespace imap::env
