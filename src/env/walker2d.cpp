#include "env/walker2d.h"

namespace imap::env {

LocomotorParams walker2d_params() {
  LocomotorParams p;
  p.name = "Walker2d";
  p.n_joints = 6;  // obs: 3 + 2 + 12 = 17-D, as in the paper
  // d ⊥ c (see hopper.cpp). ‖d‖₁ = 1.6 → θ* = 0.47 < θ_max.
  p.c = {0.8, 0.6, 0.4, 0.8, 0.6, 0.4};
  p.d = {0.4, 0.2, 0.1, -0.3, -0.25, -0.35};
  p.instab = 1.2;
  p.instab_v = 0.45;
  p.theta_max = 0.5;
  p.posture_noise = 0.025;
  p.uses_height = true;
  p.fall_couple = 3.0;
  p.w_v = 2.0;
  p.alive_bonus = 1.0;
  p.v_succ = 1.0;
  p.max_steps = 500;
  return p;
}

std::unique_ptr<rl::Env> make_walker2d() {
  return std::make_unique<LocomotorEnv>(walker2d_params());
}

}  // namespace imap::env
