#include "env/half_cheetah.h"

namespace imap::env {

LocomotorParams half_cheetah_params() {
  LocomotorParams p;
  p.name = "HalfCheetah";
  p.n_joints = 6;  // obs: 3 + 12 = 15-D
  // d ⊥ c (see hopper.cpp).
  p.c = {1.0, 0.8, 0.5, 1.0, 0.8, 0.5};
  p.d = {0.5, 0.25, 0.1, -0.5, -0.25, -0.1};
  p.instab = 1.6;
  p.instab_v = 0.25;
  p.theta_max = 0.6;
  p.posture_noise = 0.02;
  p.uses_height = false;
  p.terminates = false;   // cheetah cannot "fall over" terminally
  p.w_v = 2.5;
  p.alive_bonus = 0.0;    // pure velocity reward
  p.v_succ = 1.0;
  p.max_steps = 500;
  return p;
}

std::unique_ptr<rl::Env> make_half_cheetah() {
  return std::make_unique<LocomotorEnv>(half_cheetah_params());
}

}  // namespace imap::env

namespace imap::env {

LocomotorParams half_cheetah_training_params() {
  LocomotorParams p = half_cheetah_params();
  p.name = "HalfCheetahTrain";
  p.terminates = true;
  p.alive_bonus = 1.0;
  return p;
}

std::unique_ptr<rl::Env> make_half_cheetah_trainer() {
  return std::make_unique<LocomotorEnv>(half_cheetah_training_params());
}

}  // namespace imap::env
