#include "env/registry.h"

#include <cctype>

#include "common/check.h"
#include "env/ant.h"
#include "env/fetch_reach.h"
#include "env/half_cheetah.h"
#include "env/hopper.h"
#include "env/humanoid.h"
#include "env/kick_and_defend.h"
#include "env/maze.h"
#include "env/sparse.h"
#include "env/walker2d.h"
#include "env/you_shall_not_pass.h"

namespace imap::env {

std::vector<EnvSpec> single_agent_specs() {
  return {
      // Dense locomotion — ε from Table 1.
      {"Hopper", TaskType::DenseLocomotion, 0.075},
      {"Walker2d", TaskType::DenseLocomotion, 0.05},
      {"HalfCheetah", TaskType::DenseLocomotion, 0.15},
      {"Ant", TaskType::DenseLocomotion, 0.15},
      // Sparse locomotion.
      {"SparseHopper", TaskType::SparseLocomotion, 0.075},
      {"SparseWalker2d", TaskType::SparseLocomotion, 0.05},
      {"SparseHalfCheetah", TaskType::SparseLocomotion, 0.15},
      {"SparseAnt", TaskType::SparseLocomotion, 0.15},
      {"SparseHumanoidStandup", TaskType::SparseLocomotion, 0.1},
      {"SparseHumanoid", TaskType::SparseLocomotion, 0.1},
      // Navigation.
      {"AntUMaze", TaskType::Navigation, 0.1},
      {"Ant4Rooms", TaskType::Navigation, 0.1},
      // Manipulation.
      {"FetchReach", TaskType::Manipulation, 0.1},
  };
}

std::vector<EnvSpec> multi_agent_specs() {
  return {
      {"YouShallNotPass", TaskType::MultiAgent, 0.0},
      {"KickAndDefend", TaskType::MultiAgent, 0.0},
  };
}

const EnvSpec& spec(const std::string& name) {
  static const std::vector<EnvSpec> all = [] {
    auto v = single_agent_specs();
    auto m = multi_agent_specs();
    v.insert(v.end(), m.begin(), m.end());
    return v;
  }();
  for (const auto& s : all)
    if (s.name == name) return s;
  IMAP_CHECK_MSG(false, "unknown environment: " << name);
  return all.front();  // unreachable
}

std::optional<std::string> resolve_name(const std::string& name) {
  const auto fold = [](const std::string& s) {
    std::string out = s;
    for (auto& c : out)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
  };
  const std::string needle = fold(name);
  for (const auto& s : single_agent_specs())
    if (fold(s.name) == needle) return s.name;
  for (const auto& s : multi_agent_specs())
    if (fold(s.name) == needle) return s.name;
  return std::nullopt;
}

std::unique_ptr<rl::Env> make_env(const std::string& name) {
  if (name == "Hopper") return make_hopper();
  if (name == "Walker2d") return make_walker2d();
  if (name == "HalfCheetah") return make_half_cheetah();
  if (name == "Ant") return make_ant();
  if (name == "SparseHopper") return make_sparse_hopper();
  if (name == "SparseWalker2d") return make_sparse_walker2d();
  if (name == "SparseHalfCheetah") return make_sparse_half_cheetah();
  if (name == "SparseAnt") return make_sparse_ant();
  if (name == "SparseHumanoidStandup") return make_sparse_humanoid_standup();
  if (name == "SparseHumanoid") return make_sparse_humanoid();
  if (name == "AntUMaze") return make_ant_u_maze();
  if (name == "Ant4Rooms") return make_ant_4rooms();
  if (name == "FetchReach") return make_fetch_reach();
  IMAP_CHECK_MSG(false, "unknown single-agent environment: " << name);
  return nullptr;  // unreachable
}

std::vector<std::unique_ptr<rl::Env>> make_env_batch(const std::string& name,
                                                     std::size_t count) {
  std::vector<std::unique_ptr<rl::Env>> batch;
  batch.reserve(count);
  if (count == 0) return batch;
  batch.push_back(make_env(name));
  for (std::size_t i = 1; i < count; ++i) batch.push_back(batch[0]->clone());
  return batch;
}

std::unique_ptr<rl::Env> make_training_env(const std::string& name) {
  // Sparse tasks: the victim is trained on the dense counterpart (shaped
  // training rewards are the victim's own knowledge; the attacker only ever
  // interacts with the sparse deployment env).
  if (name == "HalfCheetah") return make_half_cheetah_trainer();
  if (name == "SparseHopper") return make_hopper();
  if (name == "SparseWalker2d") return make_walker2d();
  if (name == "SparseHalfCheetah") return make_half_cheetah_trainer();
  if (name == "SparseAnt") return make_ant();
  if (name == "SparseHumanoidStandup") return make_humanoid_standup_dense();
  if (name == "SparseHumanoid") return make_humanoid_dense();
  if (name == "AntUMaze") return make_ant_u_maze_dense();
  if (name == "Ant4Rooms") return make_ant_4rooms_dense();
  if (name == "FetchReach") return make_fetch_reach_dense();
  return make_env(name);  // dense tasks train on themselves
}

std::unique_ptr<MultiAgentEnv> make_multiagent_env(const std::string& name) {
  if (name == "YouShallNotPass") return make_you_shall_not_pass();
  if (name == "KickAndDefend") return make_kick_and_defend();
  IMAP_CHECK_MSG(false, "unknown multi-agent environment: " << name);
  return nullptr;  // unreachable
}

std::vector<ScriptedOpponent> victim_training_pool(const std::string& name) {
  if (name == "YouShallNotPass")
    return YouShallNotPassEnv::victim_training_pool();
  if (name == "KickAndDefend")
    return KickAndDefendEnv::victim_training_pool();
  IMAP_CHECK_MSG(false, "no scripted pool for: " << name);
  return {};  // unreachable
}

}  // namespace imap::env
