#include "env/ant.h"

namespace imap::env {

LocomotorParams ant_params() {
  LocomotorParams p;
  p.name = "Ant";
  p.n_joints = 8;  // obs: 3 + 16 = 19-D
  // d ⊥ c (see hopper.cpp). ‖d‖₁ = 1.8.
  p.c = {0.7, 0.5, 0.7, 0.5, 0.7, 0.5, 0.7, 0.5};
  p.d = {0.25, -0.3, 0.2, -0.25, -0.2, 0.3, -0.15, 0.15};
  p.instab = 0.8;
  p.instab_v = 0.35;
  p.theta_max = 0.6;
  p.posture_noise = 0.018;
  p.uses_height = false;   // roll, not height, is the failure axis
  p.terminates = true;
  p.w_v = 2.5;
  p.alive_bonus = 1.0;
  p.v_succ = 1.0;
  p.max_steps = 500;
  return p;
}

std::unique_ptr<rl::Env> make_ant() {
  return std::make_unique<LocomotorEnv>(ant_params());
}

}  // namespace imap::env
