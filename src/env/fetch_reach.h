#pragma once

#include <array>
#include <memory>

#include "rl/env.h"

namespace imap::env {

/// FetchReach: a 3-joint planar arm must bring its end-effector to a random
/// target (the planar reduction of the Fetch robot's reach task). Joint
/// limits play the role of the "unhealthy" set: an attacker that corrupts
/// the observed joint state can drive the arm into its limits, which ends
/// the episode with the fall penalty (the paper's FetchReach rows bottom out
/// at −0.10 ± 0.00 — a deterministic failure).
///
/// Observation (8-D): q (3), q̇ (3), target − end-effector (2).
class FetchReachEnv : public rl::EnvBase<FetchReachEnv> {
 public:
  enum class Mode { Dense, Sparse };

  explicit FetchReachEnv(Mode mode);

  std::size_t obs_dim() const override { return 8; }
  std::size_t act_dim() const override { return 3; }
  int max_steps() const override { return 100; }
  std::string name() const override {
    return mode_ == Mode::Sparse ? "FetchReach" : "FetchReachDense";
  }
  const rl::BoxSpace& action_space() const override { return action_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  /// Forward kinematics of the current configuration.
  std::array<double, 2> end_effector() const;
  static std::array<double, 2> forward_kinematics(
      const std::array<double, 3>& q);

  static constexpr double kJointLimit = 2.4;
  static constexpr double kTol = 0.12;  ///< success radius

 private:
  std::vector<double> observe() const;

  Mode mode_;
  rl::BoxSpace action_space_;
  std::array<double, 3> q_{};
  std::array<double, 3> qd_{};
  std::array<double, 2> target_{};
  int t_ = 0;
};

std::unique_ptr<rl::Env> make_fetch_reach();        ///< sparse (deployment)
std::unique_ptr<rl::Env> make_fetch_reach_dense();  ///< victim training

}  // namespace imap::env
