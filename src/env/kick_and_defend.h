#pragma once

#include <memory>
#include <vector>

#include "env/multiagent.h"
#include "phys/body.h"

namespace imap::env {

/// KickAndDefend: a penalty shoot-out. The victim (kicker) must put the ball
/// through the gate; the adversary (goalie) is confined to a box in front of
/// the gate (as in the paper: "the game imposes constraints on the adversary
/// (the goalie), confining it to a square region before the gate") and wins
/// by touching the ball, by the ball going out, or by timeout.
class KickAndDefendEnv : public MultiAgentEnvBase<KickAndDefendEnv> {
 public:
  KickAndDefendEnv();

  std::size_t victim_obs_dim() const override { return 10; }
  std::size_t adversary_obs_dim() const override { return 12; }
  std::size_t victim_act_dim() const override { return 2; }
  std::size_t adversary_act_dim() const override { return 2; }
  int max_steps() const override { return 150; }
  std::string name() const override { return "KickAndDefend"; }
  const rl::BoxSpace& victim_action_space() const override { return act_v_; }
  const rl::BoxSpace& adversary_action_space() const override {
    return act_a_;
  }

  std::pair<std::size_t, std::size_t> victim_obs_range() const override {
    return {0, 8};  // kicker pos/vel + ball pos/vel (the task state)
  }
  std::pair<std::size_t, std::size_t> adversary_obs_range() const override {
    return {8, 12};  // goalie pos/vel
  }

  std::pair<std::vector<double>, std::vector<double>> reset(Rng& rng) override;
  MaStepResult step(const std::vector<double>& act_v,
                    const std::vector<double>& act_a) override;

  const phys::CircleBody& kicker() const { return kicker_; }
  const phys::CircleBody& goalie() const { return goalie_; }
  const phys::CircleBody& ball() const { return ball_; }

  static constexpr double kGateX = -4.0;
  static constexpr double kGateHalfWidth = 1.8;
  static constexpr double kFieldX = 4.5;
  static constexpr double kFieldY = 3.0;
  // Goalie confinement box.
  static constexpr double kBoxXMin = -3.9;
  static constexpr double kBoxXMax = -2.6;
  static constexpr double kBoxYMax = 1.6;

  static std::vector<ScriptedOpponent> victim_training_pool();

 private:
  std::vector<double> observe_victim() const;
  std::vector<double> observe_adversary() const;
  static bool resolve_contact(phys::CircleBody& p, phys::CircleBody& q);

  rl::BoxSpace act_v_;
  rl::BoxSpace act_a_;
  phys::CircleBody kicker_;
  phys::CircleBody goalie_;
  phys::CircleBody ball_;
  int t_ = 0;
};

std::unique_ptr<MultiAgentEnv> make_kick_and_defend();

}  // namespace imap::env
