#include "env/hopper.h"

namespace imap::env {

LocomotorParams hopper_params() {
  LocomotorParams p;
  p.name = "Hopper";
  p.n_joints = 3;  // obs: 3 + 2 + 6 = 11-D, as in the paper
  // d ⊥ c: thrust and posture control occupy different joint directions, so
  // the policy can run while stabilising. ‖d‖₁ = 1.35 → θ* = 0.34 < θ_max.
  p.c = {1.0, 0.7, 0.4};
  p.d = {0.5, -0.45, -0.4};
  p.instab = 1.2;
  p.instab_v = 0.8;
  p.theta_max = 0.35;
  p.posture_noise = 0.02;
  p.uses_height = true;
  p.fall_couple = 4.0;
  p.w_v = 2.0;
  p.alive_bonus = 1.0;
  p.v_succ = 1.0;
  p.max_steps = 500;
  return p;
}

std::unique_ptr<rl::Env> make_hopper() {
  return std::make_unique<LocomotorEnv>(hopper_params());
}

}  // namespace imap::env
