#pragma once

#include <memory>

#include "env/locomotor.h"
#include "env/sparse.h"

namespace imap::env {

/// HumanoidStandup: the torso starts collapsed (h ≈ 0.2) and the policy must
/// pump it up to the standing height while regulating an increasingly
/// unstable posture (the higher the torso, the harder the balance — the
/// inverted-pendulum effect). Two reward modes:
///   Dense  — victim training: height progress + alive bonus.
///   Sparse — deployment/evaluation: Table 2 semantics (success when
///            standing, −fall_penalty on falls).
class HumanoidStandupEnv : public rl::EnvBase<HumanoidStandupEnv> {
 public:
  enum class Mode { Dense, Sparse };

  explicit HumanoidStandupEnv(Mode mode);

  std::size_t obs_dim() const override { return 4 + 2 * kJoints; }
  std::size_t act_dim() const override { return kJoints; }
  int max_steps() const override { return 300; }
  std::string name() const override {
    return mode_ == Mode::Sparse ? "SparseHumanoidStandup" : "HumanoidStandup";
  }
  const rl::BoxSpace& action_space() const override { return action_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  double height() const { return h_; }
  double posture() const { return theta_; }

  static constexpr std::size_t kJoints = 4;
  static constexpr double kGoalHeight = 1.0;
  static constexpr double kThetaMax = 0.5;

 private:
  std::vector<double> observe() const;

  Mode mode_;
  rl::BoxSpace action_space_;
  Rng noise_rng_{0};
  SparseSemantics sem_;

  double h_ = 0.2, hv_ = 0.0;
  double theta_ = 0.0, omega_ = 0.0;
  std::vector<double> q_, qd_;
  int t_ = 0;
};

std::unique_ptr<rl::Env> make_sparse_humanoid_standup();
std::unique_ptr<rl::Env> make_humanoid_standup_dense();  ///< victim training

/// Humanoid locomotion parameters (6 joints, strong instability) and its
/// dense/sparse factories. The paper uses SparseHumanoid in Table 2.
LocomotorParams humanoid_params();
std::unique_ptr<rl::Env> make_humanoid_dense();
std::unique_ptr<rl::Env> make_sparse_humanoid();

}  // namespace imap::env
