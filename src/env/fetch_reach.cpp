#include "env/fetch_reach.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::env {

namespace {
constexpr double kLink[3] = {0.5, 0.4, 0.3};

double dist2d(const std::array<double, 2>& a, const std::array<double, 2>& b) {
  const double dx = a[0] - b[0], dy = a[1] - b[1];
  return std::sqrt(dx * dx + dy * dy);
}
}  // namespace

FetchReachEnv::FetchReachEnv(Mode mode)
    : mode_(mode), action_space_(3, 1.0) {}

std::array<double, 2> FetchReachEnv::forward_kinematics(
    const std::array<double, 3>& q) {
  double angle = 0.0, x = 0.0, y = 0.0;
  for (int i = 0; i < 3; ++i) {
    angle += q[i];
    x += kLink[i] * std::cos(angle);
    y += kLink[i] * std::sin(angle);
  }
  return {x, y};
}

std::array<double, 2> FetchReachEnv::end_effector() const {
  return forward_kinematics(q_);
}

std::vector<double> FetchReachEnv::observe() const {
  const auto ee = end_effector();
  return {q_[0],  q_[1],  q_[2],  qd_[0], qd_[1], qd_[2],
          target_[0] - ee[0], target_[1] - ee[1]};
}

std::vector<double> FetchReachEnv::reset(Rng& rng) {
  // Start from a slightly perturbed neutral pose.
  q_ = {0.5 + rng.normal(0.0, 0.05), -0.4 + rng.normal(0.0, 0.05),
        0.3 + rng.normal(0.0, 0.05)};
  qd_ = {0.0, 0.0, 0.0};
  // Target in a reachable annulus in the upper half-plane.
  const double r = rng.uniform(0.5, 1.0);
  const double a = rng.uniform(0.2, M_PI - 0.2);
  target_ = {r * std::cos(a), r * std::sin(a)};
  t_ = 0;
  return observe();
}

rl::StepResult FetchReachEnv::step(const std::vector<double>& action) {
  IMAP_CHECK(action.size() == 3);
  auto u = action_space_.clamp(action);
  const double dt = 0.05;

  bool limit_hit = false;
  for (int i = 0; i < 3; ++i) {
    // Velocity-command interface with first-order tracking.
    qd_[i] += dt * (10.0 * (2.0 * u[static_cast<std::size_t>(i)] - qd_[i]));
    q_[i] += dt * qd_[i];
    if (std::abs(q_[i]) > kJointLimit) {
      limit_hit = true;
      q_[i] = std::clamp(q_[i], -kJointLimit, kJointLimit);
    }
  }
  ++t_;

  const auto ee = end_effector();
  const double d = dist2d(ee, target_);
  const bool reached = d < kTol;

  rl::StepResult sr;
  sr.obs = observe();
  sr.surrogate = reached ? 1.0 : 0.0;
  sr.task_completed = reached;
  sr.fell = limit_hit;

  if (mode_ == Mode::Dense) {
    sr.reward = -d + (reached ? 5.0 : 0.0) - (limit_hit ? 1.0 : 0.0);
    sr.done = reached || limit_hit;
    sr.truncated = !sr.done && t_ >= max_steps();
  } else {
    if (reached) {
      sr.reward = 1.0 - 0.05 * static_cast<double>(t_) / max_steps();
      sr.done = true;
    } else if (limit_hit) {
      sr.reward = -0.1;
      sr.done = true;
    } else {
      sr.reward = 0.0;
      sr.done = false;
      sr.truncated = t_ >= max_steps();
    }
  }
  return sr;
}

std::unique_ptr<rl::Env> make_fetch_reach() {
  return std::make_unique<FetchReachEnv>(FetchReachEnv::Mode::Sparse);
}

std::unique_ptr<rl::Env> make_fetch_reach_dense() {
  return std::make_unique<FetchReachEnv>(FetchReachEnv::Mode::Dense);
}

}  // namespace imap::env
