#pragma once

#include <memory>

#include "env/locomotor.h"

namespace imap::env {

/// Walker2d: 6 actuated joints, 17-D observation (matching the MuJoCo
/// Walker2d dimensionality), moderately stable biped.
LocomotorParams walker2d_params();
std::unique_ptr<rl::Env> make_walker2d();

}  // namespace imap::env
