#pragma once

#include <memory>

#include "env/locomotor.h"

namespace imap::env {

/// HalfCheetah: 6 actuated joints, no height state and no termination — the
/// attack can only slow it down, never end the episode early, matching the
/// MuJoCo HalfCheetah semantics the paper relies on (its reward under attack
/// bottoms out at ~0 rather than at an early-termination value).
LocomotorParams half_cheetah_params();
std::unique_ptr<rl::Env> make_half_cheetah();

/// Victim-training variant: identical dynamics but with posture termination
/// and an alive bonus, which teaches the stabilising feedback loop (without
/// a failure signal PPO plateaus in a no-feedback local optimum — the same
/// curriculum role termination plays for the other locomotors). Deployment
/// always uses the termination-free env above.
LocomotorParams half_cheetah_training_params();
std::unique_ptr<rl::Env> make_half_cheetah_trainer();

}  // namespace imap::env
