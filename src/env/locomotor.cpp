#include "env/locomotor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace imap::env {

LocomotorEnv::LocomotorEnv(LocomotorParams params)
    : params_(std::move(params)),
      action_space_(params_.n_joints, 1.0),
      q_(params_.n_joints, 0.0),
      qd_(params_.n_joints, 0.0) {
  IMAP_CHECK(params_.n_joints > 0);
  if (params_.c.empty()) params_.c.assign(params_.n_joints, 1.0);
  if (params_.d.empty()) params_.d.assign(params_.n_joints, 0.0);
  IMAP_CHECK(params_.c.size() == params_.n_joints);
  IMAP_CHECK(params_.d.size() == params_.n_joints);
  IMAP_CHECK(params_.theta_max > 0.0);
  base_params_ = params_;
}

bool LocomotorEnv::apply_dynamics(const rl::DynamicsScales& scales) {
  IMAP_CHECK_MSG(scales.mass > 0.0 && scales.gain > 0.0,
                 name() << ": dynamics scales must be positive");
  const double authority = scales.gain / scales.mass;
  params_.thrust_gain = base_params_.thrust_gain * authority;
  params_.act_gain = base_params_.act_gain * authority;
  for (std::size_t j = 0; j < params_.n_joints; ++j)
    params_.d[j] = base_params_.d[j] * scales.gain;
  return true;
}

std::vector<double> LocomotorEnv::reset(Rng& rng) {
  noise_rng_ = rng.split(rng.next_u64());
  const double s = params_.init_noise;
  x_ = 0.0;
  v_ = rng.normal(0.0, s);
  theta_ = rng.normal(0.0, s);
  omega_ = rng.normal(0.0, s);
  h_ = params_.h0 + rng.normal(0.0, s * 0.5);
  hv_ = 0.0;
  for (auto& q : q_) q = rng.normal(0.0, s);
  for (auto& qd : qd_) qd = rng.normal(0.0, s);
  t_ = 0;
  fallen_ = false;
  return observe();
}

std::vector<double> LocomotorEnv::observe() const {
  std::vector<double> o;
  o.reserve(obs_dim());
  o.push_back(theta_);
  o.push_back(omega_);
  o.push_back(v_);
  if (params_.uses_height) {
    o.push_back(h_ - params_.h0);  // centred so the observation is O(1)
    o.push_back(hv_);
  }
  o.insert(o.end(), q_.begin(), q_.end());
  o.insert(o.end(), qd_.begin(), qd_.end());
  return o;
}

std::vector<double> LocomotorEnv::canonical_initial_obs() const {
  return std::vector<double>(obs_dim(), 0.0);
}

bool LocomotorEnv::unhealthy() const {
  if (!params_.terminates) return false;
  if (std::abs(theta_) > params_.theta_max) return true;
  if (params_.uses_height && h_ < params_.h_min) return true;
  return false;
}

rl::StepResult LocomotorEnv::step(const std::vector<double>& action) {
  IMAP_CHECK_MSG(action.size() == act_dim(),
                 name() << ": action dim " << action.size());
  IMAP_CHECK_MSG(!fallen_ || t_ < params_.max_steps,
                 "step() after terminal state; call reset()");
  const auto& p = params_;
  const double dt = p.dt;

  std::vector<double> u = action_space_.clamp(action);

  // Joint dynamics.
  for (std::size_t j = 0; j < p.n_joints; ++j) {
    qd_[j] += dt * (p.act_gain * u[j] - p.joint_damp * qd_[j] -
                    p.joint_stiff * q_[j]);
    q_[j] += dt * qd_[j];
    q_[j] = std::clamp(q_[j], -p.q_max, p.q_max);
  }

  // Thrust with posture efficiency.
  double cu = 0.0, du = 0.0, usq = 0.0;
  for (std::size_t j = 0; j < p.n_joints; ++j) {
    cu += p.c[j] * u[j];
    du += p.d[j] * u[j];
    usq += u[j] * u[j];
  }
  const double eff =
      std::max(0.0, 1.0 - (theta_ / p.theta_max) * (theta_ / p.theta_max));
  v_ += dt * (p.thrust_gain * cu * eff - p.drag * v_);
  x_ += dt * v_;

  // Unstable posture: the policy must regulate θ through d·u. Instability
  // grows with speed (see LocomotorParams::instab_v).
  const double instab_eff = p.instab + p.instab_v * std::max(0.0, v_);
  omega_ += dt * (instab_eff * theta_ + du - p.omega_damp * omega_) +
            std::sqrt(dt) * p.posture_noise * noise_rng_.normal();
  theta_ += dt * omega_;

  // Torso height, dragged down by posture failure.
  if (p.uses_height) {
    hv_ += dt * (-p.spring * (h_ - p.h0) - p.h_damp * hv_ -
                 p.fall_couple * theta_ * theta_);
    h_ += dt * hv_;
  }

  ++t_;
  fallen_ = unhealthy();

  rl::StepResult sr;
  sr.obs = observe();
  const bool healthy = !fallen_;
  sr.reward = p.w_v * v_ + (healthy ? p.alive_bonus : 0.0) - p.w_ctrl * usq;
  sr.done = fallen_;
  sr.truncated = !sr.done && t_ >= p.max_steps;
  sr.surrogate = healthy ? std::clamp(v_ / p.v_full, 0.0, 1.0) : 0.0;
  sr.fell = fallen_;
  // Dense locomotion "task completion" = survived the horizon while making
  // forward progress (used only for success-rate reporting).
  sr.task_completed =
      sr.truncated && x_ > 0.25 * p.v_succ * p.dt * p.max_steps;
  return sr;
}

}  // namespace imap::env
