#pragma once

#include <memory>

#include "env/locomotor.h"

namespace imap::env {

/// Ant: 8 actuated joints; the posture variable models torso roll — the Ant
/// terminates when it flips over, which is the failure mode the paper's
/// attacks induce.
LocomotorParams ant_params();
std::unique_ptr<rl::Env> make_ant();

}  // namespace imap::env
