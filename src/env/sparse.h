#pragma once

#include <memory>

#include "env/locomotor.h"

namespace imap::env {

/// Sparse-reward episode semantics shared by the nine sparse tasks, matching
/// the paper's Table 2 reward scale:
///   success (goal reached at step t):  1 − time_penalty · t / max_steps
///   unhealthy fall:                    −fall_penalty
///   timeout without success:           0
/// so the no-attack victim scores ≈ 0.95–0.99 and a perfect attack that
/// always induces a fall scores ≈ −fall_penalty (c.f. −0.03…−0.10 rows).
struct SparseSemantics {
  double time_penalty = 0.05;
  double fall_penalty = 0.05;
};

/// Sparse locomotion: the dense locomotor dynamics with the reward replaced
/// by a goal-crossing indicator. The episode ends at the crossing, at a fall,
/// or at the (shorter) step limit. The surrogate r̂ fires only on the
/// crossing step — the adversary's reward signal is genuinely sparse, which
/// is exactly the regime where the paper shows dithering exploration
/// (SA-RL) fails and intrinsic motivation wins (Fig. 4).
class SparseLocomotionEnv : public rl::EnvBase<SparseLocomotionEnv> {
 public:
  SparseLocomotionEnv(LocomotorParams inner, double goal_distance,
                      int max_steps, SparseSemantics sem = {});

  std::size_t obs_dim() const override { return inner_.obs_dim(); }
  std::size_t act_dim() const override { return inner_.act_dim(); }
  int max_steps() const override { return max_steps_; }
  std::string name() const override { return name_; }
  const rl::BoxSpace& action_space() const override {
    return inner_.action_space();
  }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  bool apply_dynamics(const rl::DynamicsScales& scales) override {
    return inner_.apply_dynamics(scales);
  }

  double goal_distance() const { return goal_; }
  const LocomotorEnv& inner() const { return inner_; }

 private:
  LocomotorEnv inner_;
  std::string name_;
  double goal_;
  int max_steps_;
  SparseSemantics sem_;
  int t_ = 0;
};

// Factories for the six sparse locomotion tasks of Table 2 (the Humanoid
// pair lives in humanoid.h).
std::unique_ptr<rl::Env> make_sparse_hopper();
std::unique_ptr<rl::Env> make_sparse_walker2d();
std::unique_ptr<rl::Env> make_sparse_half_cheetah();
std::unique_ptr<rl::Env> make_sparse_ant();

}  // namespace imap::env
