#pragma once

#include <memory>

#include "rl/evaluate.h"

namespace imap::attack {

/// The "Random" column of Table 1: uniform noise in the ε-ball on every
/// observation dimension — the weakest attack, a sanity baseline.
/// Returns a stateful ActionFn (it carries its own RNG).
rl::ActionFn make_random_attack(std::size_t obs_dim, Rng rng);

/// The "No Attack" column: the zero perturbation.
rl::ActionFn make_null_attack(std::size_t obs_dim);

}  // namespace imap::attack
