#pragma once

#include <memory>

#include "nn/gaussian.h"
#include "rl/evaluate.h"

namespace imap::attack {

/// White-box gradient-based evasion baselines (paper Sec. 2 / Appendix A:
/// the *other* class of attacks, which — unlike adversarial policies —
/// require access to the victim network's parameters).
///
/// MAD (Maximal Action Difference, Zhang et al. 2020): at every step choose
/// the ℓ∞-bounded perturbation that maximises ‖μ(s+δ) − μ(s)‖² by projected
/// gradient ascent on the victim's own network. Returned as an ActionFn that
/// emits the normalised perturbation *direction* (the threat-model wrapper
/// applies the ε scaling), so it plugs into the same evaluation harness as
/// the black-box attacks.
rl::ActionFn make_mad_attack(const nn::GaussianPolicy& victim, double eps,
                             int pgd_steps = 3);

/// One-shot FGSM flavour of the same objective (pgd_steps = 1, zero start):
/// δ = sign(∇_s ‖μ(s+δ) − μ(s)‖²)|_{δ=0}. Weaker but cheaper — the classic
/// first-order baseline.
rl::ActionFn make_fgsm_attack(const nn::GaussianPolicy& victim, double eps);

}  // namespace imap::attack
