#include "attack/gradient_attack.h"

#include <cmath>

#include "common/check.h"

namespace imap::attack {

namespace {

/// Shared PGD core: ascend ‖μ(s+δ) − μ(s)‖² over the ε-ball, return δ/ε
/// (the normalised direction the threat-model wrapper expects).
std::vector<double> mad_direction(const nn::Mlp& net,
                                  const std::vector<double>& s, double eps,
                                  int pgd_steps) {
  const auto mu_clean = net.forward(s);
  // Deterministic non-zero start: at δ = 0 the objective's gradient
  // vanishes identically, so seed with a small alternating pattern.
  std::vector<double> delta(s.size());
  for (std::size_t i = 0; i < delta.size(); ++i)
    delta[i] = (i % 2 ? 0.1 : -0.1) * eps;
  // All step buffers hoisted out of the PGD loop and reused: the tape keeps
  // its heap blocks across forward_tape_ref calls, g/g_scratch across
  // input_gradient_into calls — the loop is allocation-free in steady state.
  std::vector<double> adv = s;
  std::vector<double> grad_out;
  std::vector<double> g;
  std::vector<double> g_scratch;
  nn::Mlp::Tape tape;
  for (int step = 0; step < pgd_steps; ++step) {
    for (std::size_t i = 0; i < s.size(); ++i) adv[i] = s[i] + delta[i];
    const auto& mu = net.forward_tape_ref(adv, tape);
    grad_out.resize(mu.size());
    for (std::size_t i = 0; i < mu.size(); ++i)
      grad_out[i] = 2.0 * (mu[i] - mu_clean[i]);
    net.input_gradient_into(tape, grad_out, g, g_scratch);
    // FGSM step: jump to the sign corner (for the 1-step case this is the
    // standard FGSM; further steps can flip coordinates whose gradient sign
    // changed at the corner).
    for (std::size_t i = 0; i < delta.size(); ++i)
      delta[i] = (g[i] >= 0.0 ? eps : -eps);
  }
  for (auto& d : delta) d /= eps;  // direction in [−1, 1]^d
  return delta;
}

}  // namespace

rl::ActionFn make_mad_attack(const nn::GaussianPolicy& victim, double eps,
                             int pgd_steps) {
  IMAP_CHECK(eps > 0.0);
  IMAP_CHECK(pgd_steps >= 1);
  auto snapshot = std::make_shared<nn::GaussianPolicy>(victim);
  return [snapshot, eps, pgd_steps](const std::vector<double>& obs) {
    return mad_direction(snapshot->net(), obs, eps, pgd_steps);
  };
}

rl::ActionFn make_fgsm_attack(const nn::GaussianPolicy& victim, double eps) {
  return make_mad_attack(victim, eps, /*pgd_steps=*/1);
}

}  // namespace imap::attack
