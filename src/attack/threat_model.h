#pragma once

#include <memory>

#include "env/multiagent.h"
#include "rl/env.h"
#include "rl/evaluate.h"
#include "rl/policy_handle.h"
#include "rl/split_step.h"

namespace imap::attack {

/// Whose reward the wrapper reports. Attack TRAINING uses Adversary
/// (J_AP = −r̂, the black-box surrogate objective, Eq. 3); attack EVALUATION
/// uses VictimTrue so the harness can report the victim's real episode
/// rewards J_E^ν under attack (the paper's Table 1/2 metric).
/// AdversaryRelaxed is the ORIGINAL SA-RL threat model (paper Sec. 4.2:
/// "SA-RL relaxed the second assumption"): the adversary trains on the
/// negated TRUE victim reward −r_E^ν — information a black-box attacker
/// would not have. Kept for the ablation bench.
enum class RewardMode { Adversary, VictimTrue, AdversaryRelaxed };

/// Single-agent threat model (Sec. 4.3): the attacker observes the true
/// environment state s and injects a perturbation a^α with ‖a^α‖∞ ≤ ε into
/// the victim's observation; the frozen victim then acts on s + a^α.
///
/// As an rl::Env, the *agent* is the adversary: actions are normalised
/// perturbation directions in [−1,1]^obs_dim scaled by ε.
///
/// The victim query is exposed through rl::SplitStepEnv (begin_step returns
/// the perturbed observation, finish_step consumes the victim's raw output),
/// so the vectorized rollout engine can answer many wrapper instances with
/// one batched victim forward when the handle is network-backed.
class StatePerturbationEnv : public rl::EnvBase<StatePerturbationEnv>,
                             public rl::SplitStepEnv {
 public:
  StatePerturbationEnv(const rl::Env& inner, rl::PolicyHandle victim,
                       double eps, RewardMode mode);
  StatePerturbationEnv(const StatePerturbationEnv& other);
  StatePerturbationEnv& operator=(const StatePerturbationEnv&) = delete;

  std::size_t obs_dim() const override { return inner_->obs_dim(); }
  std::size_t act_dim() const override { return inner_->obs_dim(); }
  int max_steps() const override { return inner_->max_steps(); }
  std::string name() const override { return inner_->name() + "+StatePerturb"; }
  const rl::BoxSpace& action_space() const override { return act_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  // SplitStepEnv: step(a) == finish_step(victim.query(begin_step(a))).
  const std::vector<double>& begin_step(
      const std::vector<double>& action) override;
  rl::StepResult finish_step(const std::vector<double>& policy_out) override;
  std::size_t query_dim() const override { return inner_->obs_dim(); }
  const rl::PolicyHandle& frozen_policy() const override { return victim_; }

  double epsilon() const { return eps_; }
  const rl::Env& inner() const { return *inner_; }

 private:
  std::unique_ptr<rl::Env> inner_;
  rl::PolicyHandle victim_;
  double eps_;
  RewardMode mode_;
  rl::BoxSpace act_space_;
  std::vector<double> cur_obs_;
  std::vector<double> perturbed_;  ///< begin_step scratch (reused)
};

/// Multi-agent threat model (Sec. 4.3): the Markov game against a frozen
/// victim reduces to a single-player MDP M^α for the adversary. The
/// adversary observes the joint state; its terminal reward is −1 when the
/// victim wins and 0 otherwise (so J_AP = ASR − 1, matching the paper's
/// "ASR = J_AP + 1").
///
/// Also a rl::SplitStepEnv: begin_step banks the adversary action and
/// returns the victim-side observation, finish_step plays the joint step.
class OpponentEnv : public rl::EnvBase<OpponentEnv>, public rl::SplitStepEnv {
 public:
  OpponentEnv(const env::MultiAgentEnv& game, rl::PolicyHandle victim);
  OpponentEnv(const OpponentEnv& other);
  OpponentEnv& operator=(const OpponentEnv&) = delete;

  std::size_t obs_dim() const override { return game_->adversary_obs_dim(); }
  std::size_t act_dim() const override { return game_->adversary_act_dim(); }
  int max_steps() const override { return game_->max_steps(); }
  std::string name() const override { return game_->name() + "+Opponent"; }
  const rl::BoxSpace& action_space() const override {
    return game_->adversary_action_space();
  }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  // SplitStepEnv: step(a) == finish_step(victim.query(begin_step(a))).
  const std::vector<double>& begin_step(
      const std::vector<double>& action) override;
  rl::StepResult finish_step(const std::vector<double>& policy_out) override;
  std::size_t query_dim() const override { return game_->victim_obs_dim(); }
  const rl::PolicyHandle& frozen_policy() const override { return victim_; }

  /// Projections Π_{S^ν}, Π_{S^α} over the adversary observation, for the
  /// multi-agent regularizers.
  std::pair<std::size_t, std::size_t> victim_obs_range() const {
    return game_->victim_obs_range();
  }
  std::pair<std::size_t, std::size_t> adversary_obs_range() const {
    return game_->adversary_obs_range();
  }

 private:
  std::unique_ptr<env::MultiAgentEnv> game_;
  rl::PolicyHandle victim_;
  std::vector<double> cur_obs_v_;
  std::vector<double> pending_act_a_;  ///< begin_step scratch (reused)
};

/// Evaluate a single-agent attack: roll the deployment env under the frozen
/// victim while `adversary` perturbs its observations; reports the victim's
/// TRUE episode rewards and success rate.
rl::EvalStats evaluate_attack(const rl::Env& deploy_env,
                              rl::PolicyHandle victim,
                              const rl::ActionFn& adversary, double eps,
                              int episodes, Rng& rng);

/// Evaluate a multi-agent attack; `stats.success_rate` is the VICTIM's win
/// rate, so ASR = 1 − success_rate.
rl::EvalStats evaluate_opponent_attack(const env::MultiAgentEnv& game,
                                       rl::PolicyHandle victim,
                                       const rl::ActionFn& adversary,
                                       int episodes, Rng& rng);

}  // namespace imap::attack
