#include "attack/sa_rl.h"

namespace imap::attack {

SaRl::SaRl(const rl::Env& deploy_env, rl::PolicyHandle victim, double eps,
           rl::PpoOptions ppo, Rng rng, bool relaxed) {
  StatePerturbationEnv attack_env(
      deploy_env, std::move(victim), eps,
      relaxed ? RewardMode::AdversaryRelaxed : RewardMode::Adversary);
  trainer_ = std::make_unique<rl::PpoTrainer>(attack_env, ppo, rng);
}

SaRl::SaRl(const rl::Env& attack_env, rl::PpoOptions ppo, Rng rng) {
  trainer_ = std::make_unique<rl::PpoTrainer>(attack_env, ppo, rng);
}

rl::ActionFn SaRl::adversary() const {
  // Snapshot the current policy parameters so the returned adversary is a
  // frozen deployment artifact (training can continue independently).
  auto snapshot =
      std::make_shared<nn::GaussianPolicy>(trainer_->policy());
  return [snapshot](const std::vector<double>& obs) {
    return snapshot->mean_action(obs);
  };
}

}  // namespace imap::attack
