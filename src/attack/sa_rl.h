#pragma once

#include <memory>

#include "attack/threat_model.h"
#include "rl/ppo.h"

namespace imap::attack {

/// SA-RL (Zhang et al.): the optimal black-box state adversary learned by
/// plain PPO in the SA-MDP. This is the paper's single-agent baseline.
///
/// The original SA-RL trains on the victim's training-time reward r_E^ν —
/// a relaxation of the black-box model. As in the paper's experiments
/// (Sec. 6.2), our implementation uses the same surrogate −r̂_E^ν as IMAP so
/// the comparison is apples-to-apples; exploration is PPO's Gaussian
/// dithering and nothing else.
class SaRl {
 public:
  /// `relaxed` reproduces the ORIGINAL SA-RL threat model that trains on the
  /// victim's true (negated) training reward instead of the black-box
  /// surrogate — used only by the ablation bench. Network-backed victim
  /// handles additionally let the vectorized rollout engine batch the
  /// victim queries (rl::PolicyHandle converts implicitly from ActionFn).
  SaRl(const rl::Env& deploy_env, rl::PolicyHandle victim, double eps,
       rl::PpoOptions ppo, Rng rng, bool relaxed = false);

  /// Train against a pre-built attack-view env (e.g. a scenario::ScenarioEnv
  /// in Adversary mode). The env must already negate the victim's surrogate
  /// into the adversary's reward; the Rng goes straight to the PPO trainer,
  /// exactly as with the classic ctor above.
  SaRl(const rl::Env& attack_env, rl::PpoOptions ppo, Rng rng);

  rl::IterStats iterate() { return trainer_->iterate(); }
  std::vector<rl::IterStats> train(long long steps) {
    return trainer_->train(steps);
  }

  /// Deterministic adversary (mean policy) for evaluation.
  rl::ActionFn adversary() const;

  rl::PpoTrainer& trainer() { return *trainer_; }

  /// Attack state is exactly the PPO trainer's (the threat-model wrapper is
  /// rebuilt from ctor arguments; its inner env is replayed by the trainer).
  void save_state(ArchiveWriter& a) const { trainer_->save_state(a); }
  void load_state(const ArchiveReader& a) { trainer_->load_state(a); }
  bool snapshot(const std::string& path) const {
    return trainer_->snapshot(path);
  }
  bool restore(const std::string& path) { return trainer_->restore(path); }

 private:
  std::unique_ptr<rl::PpoTrainer> trainer_;
};

}  // namespace imap::attack
