#include "attack/ap_marl.h"

namespace imap::attack {

ApMarl::ApMarl(const env::MultiAgentEnv& game, rl::PolicyHandle victim,
               rl::PpoOptions ppo, Rng rng) {
  OpponentEnv attack_env(game, std::move(victim));
  trainer_ = std::make_unique<rl::PpoTrainer>(attack_env, ppo, rng);
}

rl::ActionFn ApMarl::adversary() const {
  auto snapshot =
      std::make_shared<nn::GaussianPolicy>(trainer_->policy());
  return [snapshot](const std::vector<double>& obs) {
    return snapshot->mean_action(obs);
  };
}

}  // namespace imap::attack
