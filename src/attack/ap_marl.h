#pragma once

#include <memory>

#include "attack/threat_model.h"
#include "rl/ppo.h"

namespace imap::attack {

/// AP-MARL (Gleave et al.): the multi-agent adversarial-policy baseline —
/// plain PPO on the adversary-side MDP with the sparse win/lose reward and
/// Gaussian dithering exploration. IMAP differs from this only by the
/// adversarial intrinsic regularizer and BR (Sec. 6.3.3).
class ApMarl {
 public:
  ApMarl(const env::MultiAgentEnv& game, rl::PolicyHandle victim,
         rl::PpoOptions ppo, Rng rng);

  rl::IterStats iterate() { return trainer_->iterate(); }
  std::vector<rl::IterStats> train(long long steps) {
    return trainer_->train(steps);
  }

  rl::ActionFn adversary() const;
  rl::PpoTrainer& trainer() { return *trainer_; }

  /// Attack state is exactly the PPO trainer's (the opponent-side wrapper is
  /// rebuilt from ctor arguments; its inner game is replayed by the trainer).
  void save_state(ArchiveWriter& a) const { trainer_->save_state(a); }
  void load_state(const ArchiveReader& a) { trainer_->load_state(a); }
  bool snapshot(const std::string& path) const {
    return trainer_->snapshot(path);
  }
  bool restore(const std::string& path) { return trainer_->restore(path); }

 private:
  std::unique_ptr<rl::PpoTrainer> trainer_;
};

}  // namespace imap::attack
