#include "attack/random_attack.h"

namespace imap::attack {

rl::ActionFn make_random_attack(std::size_t obs_dim, Rng rng) {
  auto shared_rng = std::make_shared<Rng>(rng);
  return [obs_dim, shared_rng](const std::vector<double>&) {
    return shared_rng->uniform_vec(obs_dim, -1.0, 1.0);
  };
}

rl::ActionFn make_null_attack(std::size_t obs_dim) {
  return [obs_dim](const std::vector<double>&) {
    return std::vector<double>(obs_dim, 0.0);
  };
}

}  // namespace imap::attack
