#include "attack/threat_model.h"

#include <algorithm>

#include "common/check.h"

namespace imap::attack {

StatePerturbationEnv::StatePerturbationEnv(const rl::Env& inner,
                                           rl::ActionFn victim, double eps,
                                           RewardMode mode)
    : inner_(inner.clone()),
      victim_(std::move(victim)),
      eps_(eps),
      mode_(mode),
      act_space_(inner.obs_dim(), 1.0) {
  IMAP_CHECK(eps_ >= 0.0);
  IMAP_CHECK(victim_ != nullptr);
}

StatePerturbationEnv::StatePerturbationEnv(const StatePerturbationEnv& other)
    : inner_(other.inner_->clone()),
      victim_(other.victim_),
      eps_(other.eps_),
      mode_(other.mode_),
      act_space_(other.act_space_),
      cur_obs_(other.cur_obs_) {}

std::vector<double> StatePerturbationEnv::reset(Rng& rng) {
  cur_obs_ = inner_->reset(rng);
  return cur_obs_;
}

rl::StepResult StatePerturbationEnv::step(const std::vector<double>& action) {
  IMAP_CHECK(action.size() == inner_->obs_dim());
  const auto a = act_space_.clamp(action);

  // Perturb the victim's view: s + ε·a^α (ℓ∞ budget by construction).
  std::vector<double> perturbed = cur_obs_;
  for (std::size_t i = 0; i < perturbed.size(); ++i)
    perturbed[i] += eps_ * a[i];

  const auto victim_action =
      inner_->action_space().clamp(victim_(perturbed));
  rl::StepResult sr = inner_->step(victim_action);
  cur_obs_ = sr.obs;

  if (mode_ == RewardMode::Adversary)
    sr.reward = -sr.surrogate;
  else if (mode_ == RewardMode::AdversaryRelaxed)
    sr.reward = -sr.reward;  // the original SA-RL's relaxed objective
  // VictimTrue keeps the inner reward untouched.
  return sr;
}

OpponentEnv::OpponentEnv(const env::MultiAgentEnv& game, rl::ActionFn victim)
    : game_(game.clone()), victim_(std::move(victim)) {
  IMAP_CHECK(victim_ != nullptr);
}

OpponentEnv::OpponentEnv(const OpponentEnv& other)
    : game_(other.game_->clone()),
      victim_(other.victim_),
      cur_obs_v_(other.cur_obs_v_) {}

std::vector<double> OpponentEnv::reset(Rng& rng) {
  auto [obs_v, obs_a] = game_->reset(rng);
  cur_obs_v_ = std::move(obs_v);
  return obs_a;
}

rl::StepResult OpponentEnv::step(const std::vector<double>& action) {
  const auto act_v =
      game_->victim_action_space().clamp(victim_(cur_obs_v_));
  const auto act_a = game_->adversary_action_space().clamp(action);
  env::MaStepResult ma = game_->step(act_v, act_a);
  cur_obs_v_ = std::move(ma.obs_v);

  rl::StepResult sr;
  sr.obs = std::move(ma.obs_a);
  sr.done = ma.done;
  sr.truncated = ma.truncated;
  const bool over = ma.done || ma.truncated;
  sr.task_completed = over && ma.victim_won;
  sr.surrogate = sr.task_completed ? 1.0 : 0.0;
  sr.reward = over ? (ma.victim_won ? -1.0 : 0.0) : 0.0;
  sr.fell = false;
  return sr;
}

rl::EvalStats evaluate_attack(const rl::Env& deploy_env,
                              const rl::ActionFn& victim,
                              const rl::ActionFn& adversary, double eps,
                              int episodes, Rng& rng) {
  StatePerturbationEnv env(deploy_env, victim, eps, RewardMode::VictimTrue);
  return rl::evaluate(env, adversary, episodes, rng);
}

rl::EvalStats evaluate_opponent_attack(const env::MultiAgentEnv& game,
                                       const rl::ActionFn& victim,
                                       const rl::ActionFn& adversary,
                                       int episodes, Rng& rng) {
  OpponentEnv env(game, victim);
  return rl::evaluate(env, adversary, episodes, rng);
}

}  // namespace imap::attack
