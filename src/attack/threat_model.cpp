#include "attack/threat_model.h"

#include <algorithm>

#include "common/check.h"
#include "scenario/channels.h"

namespace imap::attack {

StatePerturbationEnv::StatePerturbationEnv(const rl::Env& inner,
                                           rl::PolicyHandle victim, double eps,
                                           RewardMode mode)
    : inner_(inner.clone()),
      victim_(std::move(victim)),
      eps_(eps),
      mode_(mode),
      act_space_(inner.obs_dim(), 1.0) {
  IMAP_CHECK(eps_ >= 0.0);
  IMAP_CHECK(static_cast<bool>(victim_));
}

StatePerturbationEnv::StatePerturbationEnv(const StatePerturbationEnv& other)
    : inner_(other.inner_->clone()),
      victim_(other.victim_),
      eps_(other.eps_),
      mode_(other.mode_),
      act_space_(other.act_space_),
      cur_obs_(other.cur_obs_) {}

std::vector<double> StatePerturbationEnv::reset(Rng& rng) {
  cur_obs_ = inner_->reset(rng);
  return cur_obs_;
}

const std::vector<double>& StatePerturbationEnv::begin_step(
    const std::vector<double>& action) {
  IMAP_CHECK(action.size() == inner_->obs_dim());
  const auto a = act_space_.clamp(action);

  // Perturb the victim's view: s + ε·a^α (ℓ∞ budget by construction) — the
  // shared obs_perturb channel primitive, bit-identical to the historical
  // in-place loop.
  perturbed_ = cur_obs_;
  scenario::apply_obs_perturb(perturbed_, a.data(), eps_);
  return perturbed_;
}

rl::StepResult StatePerturbationEnv::finish_step(
    const std::vector<double>& policy_out) {
  const auto victim_action = inner_->action_space().clamp(policy_out);
  rl::StepResult sr = inner_->step(victim_action);
  cur_obs_ = sr.obs;

  if (mode_ == RewardMode::Adversary)
    sr.reward = -sr.surrogate;
  else if (mode_ == RewardMode::AdversaryRelaxed)
    sr.reward = -sr.reward;  // the original SA-RL's relaxed objective
  // VictimTrue keeps the inner reward untouched.
  return sr;
}

rl::StepResult StatePerturbationEnv::step(const std::vector<double>& action) {
  return finish_step(victim_.query(begin_step(action)));
}

OpponentEnv::OpponentEnv(const env::MultiAgentEnv& game,
                         rl::PolicyHandle victim)
    : game_(game.clone()), victim_(std::move(victim)) {
  IMAP_CHECK(static_cast<bool>(victim_));
}

OpponentEnv::OpponentEnv(const OpponentEnv& other)
    : game_(other.game_->clone()),
      victim_(other.victim_),
      cur_obs_v_(other.cur_obs_v_) {}

std::vector<double> OpponentEnv::reset(Rng& rng) {
  auto [obs_v, obs_a] = game_->reset(rng);
  cur_obs_v_ = std::move(obs_v);
  return obs_a;
}

const std::vector<double>& OpponentEnv::begin_step(
    const std::vector<double>& action) {
  pending_act_a_ = game_->adversary_action_space().clamp(action);
  return cur_obs_v_;
}

rl::StepResult OpponentEnv::finish_step(
    const std::vector<double>& policy_out) {
  const auto act_v = game_->victim_action_space().clamp(policy_out);
  env::MaStepResult ma = game_->step(act_v, pending_act_a_);
  cur_obs_v_ = std::move(ma.obs_v);

  rl::StepResult sr;
  sr.obs = std::move(ma.obs_a);
  sr.done = ma.done;
  sr.truncated = ma.truncated;
  const bool over = ma.done || ma.truncated;
  sr.task_completed = over && ma.victim_won;
  sr.surrogate = sr.task_completed ? 1.0 : 0.0;
  sr.reward = over ? (ma.victim_won ? -1.0 : 0.0) : 0.0;
  sr.fell = false;
  return sr;
}

rl::StepResult OpponentEnv::step(const std::vector<double>& action) {
  return finish_step(victim_.query(begin_step(action)));
}

rl::EvalStats evaluate_attack(const rl::Env& deploy_env,
                              rl::PolicyHandle victim,
                              const rl::ActionFn& adversary, double eps,
                              int episodes, Rng& rng) {
  StatePerturbationEnv env(deploy_env, std::move(victim), eps,
                           RewardMode::VictimTrue);
  return rl::evaluate(env, adversary, episodes, rng);
}

rl::EvalStats evaluate_opponent_attack(const env::MultiAgentEnv& game,
                                       rl::PolicyHandle victim,
                                       const rl::ActionFn& adversary,
                                       int episodes, Rng& rng) {
  OpponentEnv env(game, std::move(victim));
  return rl::evaluate(env, adversary, episodes, rng);
}

}  // namespace imap::attack
