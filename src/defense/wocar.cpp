#include "defense/wocar.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "defense/sa_regularizer.h"

namespace imap::defense {

rl::PpoTrainer::RegularizerHook make_wocar_hook(double eps, double coef,
                                                Rng rng) {
  return make_wocar_hook(eps, coef, std::make_shared<Rng>(rng));
}

rl::PpoTrainer::RegularizerHook make_wocar_hook(double eps, double coef,
                                                std::shared_ptr<Rng> rng) {
  // Worst-case-aware: a 3-step PGD inner maximisation (strictly stronger
  // than SA's single FGSM step) and a 1.5× coefficient. Everything else is
  // shared with the smoothness hook.
  return make_smoothness_hook(eps, 1.5 * coef, /*pgd_steps=*/3,
                              std::move(rng));
}

}  // namespace imap::defense
