#include "defense/atla.h"

#include <algorithm>

#include "attack/sa_rl.h"
#include "common/check.h"
#include "defense/sa_regularizer.h"

namespace imap::defense {

PerturbedVictimEnv::PerturbedVictimEnv(const rl::Env& inner,
                                       rl::ActionFn adversary, double eps)
    : inner_(inner.clone()), adversary_(std::move(adversary)), eps_(eps) {
  IMAP_CHECK(eps_ >= 0.0);
  IMAP_CHECK(adversary_ != nullptr);
}

PerturbedVictimEnv::PerturbedVictimEnv(const PerturbedVictimEnv& other)
    : inner_(other.inner_->clone()),
      adversary_(other.adversary_),
      eps_(other.eps_) {}

std::vector<double> PerturbedVictimEnv::perturb(
    const std::vector<double>& obs) const {
  auto a = adversary_(obs);
  IMAP_CHECK(a.size() == obs.size());
  std::vector<double> out = obs;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += eps_ * std::clamp(a[i], -1.0, 1.0);
  return out;
}

std::vector<double> PerturbedVictimEnv::reset(Rng& rng) {
  return perturb(inner_->reset(rng));
}

rl::StepResult PerturbedVictimEnv::step(const std::vector<double>& action) {
  rl::StepResult sr = inner_->step(action);
  sr.obs = perturb(sr.obs);
  return sr;
}

nn::GaussianPolicy train_victim_atla(const rl::Env& training_env,
                                     bool with_sa, long long steps,
                                     double eps, double reg_coef,
                                     rl::PpoOptions ppo, int rounds,
                                     double adversary_fraction, Rng rng) {
  IMAP_CHECK(rounds >= 1);
  IMAP_CHECK(adversary_fraction > 0.0 && adversary_fraction < 1.0);

  // Victim trainer persists across rounds; only its env changes.
  rl::PpoTrainer victim(training_env, ppo, rng.split(1));
  if (with_sa)
    victim.set_regularizer_hook(
        make_smoothness_hook(eps, reg_coef, /*pgd_steps=*/1, rng.split(2)));

  const long long victim_steps_total =
      static_cast<long long>(static_cast<double>(steps) *
                             (1.0 - adversary_fraction));
  const long long adv_steps_total = steps - victim_steps_total;
  const long long victim_per_round = std::max<long long>(
      ppo.steps_per_iter, victim_steps_total / rounds);
  const long long adv_per_round =
      std::max<long long>(ppo.steps_per_iter, adv_steps_total / rounds);

  // Round 0 warm-up: the victim first learns the task unattacked.
  victim.train(victim_per_round);

  for (int round = 1; round < rounds; ++round) {
    // (1) Train the RL adversary against the frozen victim snapshot.
    auto victim_snapshot =
        std::make_shared<nn::GaussianPolicy>(victim.policy());
    rl::ActionFn victim_fn = [victim_snapshot](const std::vector<double>& o) {
      return victim_snapshot->mean_action(o);
    };
    attack::SaRl adversary(training_env, victim_fn, eps, ppo,
                           rng.split(100 + static_cast<std::uint64_t>(round)));
    adversary.train(adversary.trainer().steps_done() + adv_per_round);

    // (2) Continue victim training under that adversary's perturbations.
    PerturbedVictimEnv perturbed(training_env, adversary.adversary(), eps);
    victim.set_env(perturbed);
    victim.train(victim.steps_done() + victim_per_round);
  }
  return victim.policy();
}

}  // namespace imap::defense
