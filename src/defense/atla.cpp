#include "defense/atla.h"

#include <algorithm>

#include "attack/sa_rl.h"
#include "common/check.h"
#include "defense/sa_regularizer.h"
#include "nn/checkpoint.h"
#include "scenario/channels.h"

namespace imap::defense {

PerturbedVictimEnv::PerturbedVictimEnv(const rl::Env& inner,
                                       rl::ActionFn adversary, double eps)
    : inner_(inner.clone()), adversary_(std::move(adversary)), eps_(eps) {
  IMAP_CHECK(eps_ >= 0.0);
  IMAP_CHECK(adversary_ != nullptr);
}

PerturbedVictimEnv::PerturbedVictimEnv(const rl::Env& inner, double eps)
    : inner_(inner.clone()), eps_(eps), noise_mode_(true) {
  IMAP_CHECK(eps_ >= 0.0);
}

PerturbedVictimEnv::PerturbedVictimEnv(const PerturbedVictimEnv& other)
    : inner_(other.inner_->clone()),
      adversary_(other.adversary_),
      eps_(other.eps_),
      noise_mode_(other.noise_mode_),
      noise_rng_(other.noise_rng_) {}

std::vector<double> PerturbedVictimEnv::perturb(
    const std::vector<double>& obs) {
  if (noise_mode_) {
    // The scenario layer's obs_noise channel primitive: one U[-1,1] draw per
    // element in index order — bit-identical to the hand-rolled loop this
    // replaced, so existing robust-defense checkpoints stay valid.
    std::vector<double> out = obs;
    scenario::apply_obs_noise(out, eps_, noise_rng_);
    return out;
  }
  auto a = adversary_(obs);
  IMAP_CHECK(a.size() == obs.size());
  std::vector<double> out = obs;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += eps_ * std::clamp(a[i], -1.0, 1.0);
  return out;
}

std::vector<double> PerturbedVictimEnv::reset(Rng& rng) {
  // The noise stream is a pure function of the reset Rng, so a checkpointed
  // episode replays exactly from its captured pre-reset state.
  if (noise_mode_) noise_rng_ = Rng(rng.next_u64());
  return perturb(inner_->reset(rng));
}

rl::StepResult PerturbedVictimEnv::step(const std::vector<double>& action) {
  rl::StepResult sr = inner_->step(action);
  sr.obs = perturb(sr.obs);
  return sr;
}

AtlaTrainer::AtlaTrainer(const rl::Env& training_env, bool with_sa,
                         long long steps, double eps, double reg_coef,
                         rl::PpoOptions ppo, int rounds,
                         double adversary_fraction, Rng rng)
    : training_env_(training_env.clone()),
      with_sa_(with_sa),
      eps_(eps),
      ppo_(ppo),
      rounds_(rounds),
      rng_(rng),
      // Victim trainer persists across rounds; only its env changes.
      victim_(training_env, ppo, rng.split(1)) {
  IMAP_CHECK(rounds_ >= 1);
  IMAP_CHECK(adversary_fraction > 0.0 && adversary_fraction < 1.0);
  IMAP_CHECK(steps > 0);

  const long long victim_steps_total = static_cast<long long>(
      static_cast<double>(steps) * (1.0 - adversary_fraction));
  const long long adv_steps_total = steps - victim_steps_total;
  victim_per_round_ =
      std::max<long long>(ppo.steps_per_iter, victim_steps_total / rounds);
  adv_per_round_ =
      std::max<long long>(ppo.steps_per_iter, adv_steps_total / rounds);

  if (with_sa_) {
    hook_rng_ = std::make_shared<Rng>(rng.split(2));
    victim_.set_regularizer_hook(
        make_smoothness_hook(eps_, reg_coef, /*pgd_steps=*/1, hook_rng_));
  }
}

void AtlaTrainer::enter_round_env() {
  IMAP_CHECK(round_adversary_ != nullptr);
  auto snapshot = std::make_shared<nn::GaussianPolicy>(*round_adversary_);
  PerturbedVictimEnv perturbed(
      *training_env_,
      [snapshot](const std::vector<double>& o) {
        return snapshot->mean_action(o);
      },
      eps_);
  victim_.set_env(perturbed);
}

std::vector<rl::IterStats> AtlaTrainer::run_round() {
  IMAP_CHECK_MSG(!done(), "ATLA training already complete");
  std::vector<rl::IterStats> stats;
  if (round_ == 0) {
    // Round 0 warm-up: the victim first learns the task unattacked.
    stats = victim_.train(victim_per_round_);
  } else {
    // (1) Train the RL adversary against the frozen victim snapshot.
    auto victim_snapshot =
        std::make_shared<nn::GaussianPolicy>(victim_.policy());
    rl::ActionFn victim_fn = [victim_snapshot](const std::vector<double>& o) {
      return victim_snapshot->mean_action(o);
    };
    attack::SaRl adversary(
        *training_env_, victim_fn, eps_, ppo_,
        rng_.split(100 + static_cast<std::uint64_t>(round_)));
    adversary.train(adversary.trainer().steps_done() + adv_per_round_);
    round_adversary_ =
        std::make_unique<nn::GaussianPolicy>(adversary.trainer().policy());

    // (2) Continue victim training under that adversary's perturbations.
    enter_round_env();
    stats = victim_.train(victim_.steps_done() + victim_per_round_);
  }
  ++round_;
  return stats;
}

void AtlaTrainer::save_state(ArchiveWriter& a) const {
  auto& meta = a.section("atla/meta");
  meta.write_i64(rounds_);
  meta.write_i64(round_);
  meta.write_bool(with_sa_);
  meta.write_i64(victim_per_round_);
  meta.write_i64(adv_per_round_);
  if (round_adversary_) {
    auto& adv = a.section("atla/adversary");
    nn::write_policy(adv, *round_adversary_);
  }
  if (hook_rng_) {
    auto& hr = a.section("atla/hook_rng");
    hook_rng_->save_state(hr);
  }
  victim_.save_state(a);
}

void AtlaTrainer::load_state(const ArchiveReader& a) {
  auto meta = a.section("atla/meta");
  const long long rounds = meta.read_i64();
  const long long round = meta.read_i64();
  const bool with_sa = meta.read_bool();
  const long long vpr = meta.read_i64();
  const long long apr = meta.read_i64();
  IMAP_CHECK_MSG(rounds == rounds_ && with_sa == with_sa_ &&
                     vpr == victim_per_round_ && apr == adv_per_round_,
                 "ATLA checkpoint was written under a different schedule");
  IMAP_CHECK_MSG(round >= 0 && round <= rounds,
                 "corrupt ATLA checkpoint: bad round counter");
  round_ = static_cast<int>(round);

  if (a.has("atla/adversary")) {
    auto adv = a.section("atla/adversary");
    round_adversary_ =
        std::make_unique<nn::GaussianPolicy>(nn::read_policy(adv));
    // The victim's in-flight episodes were collected under this round's
    // perturbed env; install it before the replay-based restore below.
    enter_round_env();
  } else {
    round_adversary_.reset();
  }
  if (hook_rng_) {
    auto hr = a.section("atla/hook_rng");
    hook_rng_->load_state(hr);
  }
  victim_.load_state(a);
}

bool AtlaTrainer::snapshot(const std::string& path) const {
  ArchiveWriter a;
  save_state(a);
  return a.save(path);
}

bool AtlaTrainer::restore(const std::string& path) {
  ArchiveReader a;
  if (!ArchiveReader::load(path, a)) return false;
  load_state(a);
  return true;
}

nn::GaussianPolicy train_victim_atla(const rl::Env& training_env,
                                     bool with_sa, long long steps,
                                     double eps, double reg_coef,
                                     rl::PpoOptions ppo, int rounds,
                                     double adversary_fraction, Rng rng) {
  AtlaTrainer trainer(training_env, with_sa, steps, eps, reg_coef, ppo,
                      rounds, adversary_fraction, rng);
  while (!trainer.done()) trainer.run_round();
  return trainer.policy();
}

}  // namespace imap::defense
