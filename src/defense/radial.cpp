#include "defense/radial.h"

#include <memory>

#include "common/check.h"

namespace imap::defense {

rl::PpoTrainer::RegularizerHook make_radial_hook(double eps, double coef,
                                                 int corners, Rng rng) {
  IMAP_CHECK(eps >= 0.0 && coef >= 0.0 && corners >= 1);
  auto shared_rng = std::make_shared<Rng>(rng);

  return [eps, coef, corners, shared_rng](
             nn::GaussianPolicy& policy, const rl::RolloutBuffer& buf,
             const std::vector<std::size_t>& batch) {
    if (batch.empty()) return;
    const double inv_bs = 1.0 / static_cast<double>(batch.size());
    auto& net = policy.net();

    for (const auto idx : batch) {
      const auto& s = buf.obs[idx];
      nn::Mlp::Tape clean_tape;
      const auto mu_clean = net.forward_tape(s, clean_tape);

      // Worst of N sign corners of the ε-ball.
      double worst = -1.0;
      std::vector<double> worst_adv;
      for (int c = 0; c < corners; ++c) {
        std::vector<double> adv = s;
        for (auto& x : adv) x += shared_rng->bernoulli(0.5) ? eps : -eps;
        const auto mu = net.forward(adv);
        double sq = 0.0;
        for (std::size_t i = 0; i < mu.size(); ++i) {
          const double d = mu[i] - mu_clean[i];
          sq += d * d;
        }
        if (sq > worst) {
          worst = sq;
          worst_adv = std::move(adv);
        }
      }

      nn::Mlp::Tape adv_tape;
      const auto mu_adv = net.forward_tape(worst_adv, adv_tape);
      std::vector<double> grad_out(mu_adv.size());
      for (std::size_t i = 0; i < grad_out.size(); ++i)
        grad_out[i] = 2.0 * coef * inv_bs * (mu_adv[i] - mu_clean[i]);
      net.backward(adv_tape, grad_out);
      for (auto& g : grad_out) g = -g;
      net.backward(clean_tape, grad_out);
    }
  };
}

}  // namespace imap::defense
