#include "defense/radial.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/check.h"
#include "nn/batch.h"

namespace imap::defense {

namespace {

/// Reusable buffers for the batched RADIAL hook — owned by the closure so
/// the hook settles into zero heap allocations per minibatch.
struct RadialScratch {
  nn::Batch clean;               ///< B×obs clean states
  std::vector<nn::Batch> pert;   ///< per-corner B×obs perturbed states
  nn::Batch adv;                 ///< B×obs worst-corner states
  nn::Batch grad_out;            ///< B×act symmetric gradient rows
  std::vector<double> worst;     ///< per-sample worst squared distance
  nn::Mlp::Workspace clean_ws;   ///< tape of the clean forward
  nn::Mlp::Workspace adv_ws;     ///< tape of the worst-corner forward
  nn::Mlp::Workspace probe_ws;   ///< corner-probe forwards (no backward)
};

}  // namespace

rl::PpoTrainer::RegularizerHook make_radial_hook(double eps, double coef,
                                                 int corners, Rng rng) {
  return make_radial_hook(eps, coef, corners, std::make_shared<Rng>(rng));
}

rl::PpoTrainer::RegularizerHook make_radial_hook(double eps, double coef,
                                                 int corners,
                                                 std::shared_ptr<Rng> rng) {
  IMAP_CHECK(eps >= 0.0 && coef >= 0.0 && corners >= 1);
  IMAP_CHECK(rng != nullptr);
  auto shared_rng = std::move(rng);
  auto scratch = std::make_shared<RadialScratch>();

  return [eps, coef, corners, shared_rng, scratch](
             nn::GaussianPolicy& policy, const rl::RolloutBuffer& buf,
             const std::vector<std::size_t>& batch) {
    if (batch.empty()) return;
    const std::size_t bs = batch.size();
    const double inv_bs = 1.0 / static_cast<double>(bs);
    auto& net = policy.net();
    auto& sc = *scratch;

    sc.clean.gather(buf.obs, batch, 0, bs);
    const std::size_t obs_dim = sc.clean.dim();
    const nn::Batch& mu_clean = net.forward_batch(sc.clean, sc.clean_ws);
    const std::size_t act_dim = mu_clean.dim();

    // Draw every corner perturbation first, in the historical order
    // (sample-major, then corner, then dim) so the Rng trace is unchanged
    // from the per-sample implementation.
    sc.pert.resize(static_cast<std::size_t>(corners));
    for (auto& p : sc.pert) p.resize(bs, obs_dim);
    for (std::size_t n = 0; n < bs; ++n) {
      const double* s = sc.clean.row(n);
      for (int c = 0; c < corners; ++c) {
        double* p = sc.pert[static_cast<std::size_t>(c)].row(n);
        for (std::size_t i = 0; i < obs_dim; ++i)
          p[i] = s[i] + (shared_rng->bernoulli(0.5) ? eps : -eps);
      }
    }

    // Worst of N sign corners of the ε-ball, per sample, via one batched
    // probe forward per corner.
    sc.worst.assign(bs, -1.0);
    sc.adv.resize(bs, obs_dim);
    for (int c = 0; c < corners; ++c) {
      auto& pert = sc.pert[static_cast<std::size_t>(c)];
      const nn::Batch& mu = net.forward_batch(pert, sc.probe_ws);
      for (std::size_t n = 0; n < bs; ++n) {
        const double* m = mu.row(n);
        const double* mc = mu_clean.row(n);
        double sq = 0.0;
        for (std::size_t i = 0; i < act_dim; ++i) {
          const double d = m[i] - mc[i];
          sq += d * d;
        }
        if (sq > sc.worst[n]) {
          sc.worst[n] = sq;
          const double* p = pert.row(n);
          std::copy(p, p + obs_dim, sc.adv.row(n));
        }
      }
    }

    // d/dθ of coef·Σ_n ‖μ(s_n+δ_n) − μ(s_n)‖²·inv_bs: symmetric backward
    // through the adversarial and clean tapes.
    const nn::Batch& mu_adv = net.forward_batch(sc.adv, sc.adv_ws);
    sc.grad_out.resize(bs, act_dim);
    for (std::size_t n = 0; n < bs; ++n) {
      const double* ma = mu_adv.row(n);
      const double* mc = mu_clean.row(n);
      double* g = sc.grad_out.row(n);
      for (std::size_t i = 0; i < act_dim; ++i)
        g[i] = 2.0 * coef * inv_bs * (ma[i] - mc[i]);
    }
    net.backward_batch(sc.adv_ws, sc.grad_out);
    double* g = sc.grad_out.data();
    for (std::size_t i = 0; i < bs * act_dim; ++i) g[i] = -g[i];
    net.backward_batch(sc.clean_ws, sc.grad_out);
  };
}

}  // namespace imap::defense
