#include "defense/sa_regularizer.h"

#include <cmath>
#include <memory>

#include "common/check.h"

namespace imap::defense {

rl::PpoTrainer::RegularizerHook make_smoothness_hook(double eps, double coef,
                                                     int pgd_steps, Rng rng) {
  IMAP_CHECK(eps >= 0.0 && coef >= 0.0 && pgd_steps >= 1);
  auto shared_rng = std::make_shared<Rng>(rng);

  return [eps, coef, pgd_steps, shared_rng](
             nn::GaussianPolicy& policy, const rl::RolloutBuffer& buf,
             const std::vector<std::size_t>& batch) {
    if (batch.empty()) return;
    const double inv_bs = 1.0 / static_cast<double>(batch.size());
    auto& net = policy.net();

    for (const auto idx : batch) {
      const auto& s = buf.obs[idx];

      nn::Mlp::Tape clean_tape;
      const auto mu_clean = net.forward_tape(s, clean_tape);

      // Inner max over the ε-ball: random start + FGSM steps on
      // ‖μ(s+δ) − μ(s)‖².
      std::vector<double> delta(s.size());
      for (auto& d : delta) d = shared_rng->uniform(-eps, eps);

      std::vector<double> adv = s;
      nn::Mlp::Tape adv_tape;
      std::vector<double> mu_adv;
      for (int step = 0; step < pgd_steps; ++step) {
        for (std::size_t c = 0; c < s.size(); ++c) adv[c] = s[c] + delta[c];
        mu_adv = net.forward_tape(adv, adv_tape);
        std::vector<double> diff(mu_adv.size());
        for (std::size_t c = 0; c < diff.size(); ++c)
          diff[c] = 2.0 * (mu_adv[c] - mu_clean[c]);
        const auto g = net.input_gradient(adv_tape, diff);
        for (std::size_t c = 0; c < delta.size(); ++c)
          delta[c] = (g[c] >= 0.0 ? eps : -eps);
      }
      for (std::size_t c = 0; c < s.size(); ++c) adv[c] = s[c] + delta[c];
      mu_adv = net.forward_tape(adv, adv_tape);

      // d/dθ of coef·‖μ(s+δ*) − μ(s)‖²: flows through both branches.
      std::vector<double> grad_out(mu_adv.size());
      for (std::size_t c = 0; c < grad_out.size(); ++c)
        grad_out[c] = 2.0 * coef * inv_bs * (mu_adv[c] - mu_clean[c]);
      net.backward(adv_tape, grad_out);
      for (auto& g : grad_out) g = -g;
      net.backward(clean_tape, grad_out);
    }
  };
}

}  // namespace imap::defense
