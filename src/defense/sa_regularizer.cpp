#include "defense/sa_regularizer.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "nn/batch.h"

namespace imap::defense {

namespace {

/// Reusable buffers for the batched smoothness hook — owned by the closure
/// so the hook settles into zero heap allocations per minibatch.
struct SmoothScratch {
  nn::Batch clean;              ///< B×obs clean states
  nn::Batch delta;              ///< B×obs current perturbations
  nn::Batch adv;                ///< B×obs perturbed states
  nn::Batch diff;               ///< B×act 2(μ_adv − μ_clean) rows
  nn::Batch grad_out;           ///< B×act symmetric gradient rows
  nn::Mlp::Workspace clean_ws;  ///< tape of the clean forward
  nn::Mlp::Workspace adv_ws;    ///< tape of the perturbed forwards
};

}  // namespace

rl::PpoTrainer::RegularizerHook make_smoothness_hook(double eps, double coef,
                                                     int pgd_steps, Rng rng) {
  return make_smoothness_hook(eps, coef, pgd_steps,
                              std::make_shared<Rng>(rng));
}

rl::PpoTrainer::RegularizerHook make_smoothness_hook(
    double eps, double coef, int pgd_steps, std::shared_ptr<Rng> rng) {
  IMAP_CHECK(eps >= 0.0 && coef >= 0.0 && pgd_steps >= 1);
  IMAP_CHECK(rng != nullptr);
  auto shared_rng = std::move(rng);
  auto scratch = std::make_shared<SmoothScratch>();

  return [eps, coef, pgd_steps, shared_rng, scratch](
             nn::GaussianPolicy& policy, const rl::RolloutBuffer& buf,
             const std::vector<std::size_t>& batch) {
    if (batch.empty()) return;
    const std::size_t bs = batch.size();
    const double inv_bs = 1.0 / static_cast<double>(bs);
    auto& net = policy.net();
    auto& sc = *scratch;

    sc.clean.gather(buf.obs, batch, 0, bs);
    const std::size_t obs_dim = sc.clean.dim();
    const nn::Batch& mu_clean = net.forward_batch(sc.clean, sc.clean_ws);
    const std::size_t act_dim = mu_clean.dim();

    // Random start of the inner max, drawn in the historical per-sample
    // order (sample-major, then dim) so the Rng trace is unchanged.
    sc.delta.resize(bs, obs_dim);
    for (std::size_t n = 0; n < bs; ++n) {
      double* d = sc.delta.row(n);
      for (std::size_t i = 0; i < obs_dim; ++i)
        d[i] = shared_rng->uniform(-eps, eps);
    }

    // Lock-step batched PGD on ‖μ(s+δ) − μ(s)‖². Samples never couple, so
    // each row's trajectory matches the per-sample FGSM loop exactly.
    sc.adv.resize(bs, obs_dim);
    sc.diff.resize(bs, act_dim);
    for (int step = 0; step < pgd_steps; ++step) {
      for (std::size_t n = 0; n < bs; ++n) {
        const double* s = sc.clean.row(n);
        const double* d = sc.delta.row(n);
        double* a = sc.adv.row(n);
        for (std::size_t i = 0; i < obs_dim; ++i) a[i] = s[i] + d[i];
      }
      const nn::Batch& mu_adv = net.forward_batch(sc.adv, sc.adv_ws);
      for (std::size_t n = 0; n < bs; ++n) {
        const double* ma = mu_adv.row(n);
        const double* mc = mu_clean.row(n);
        double* df = sc.diff.row(n);
        for (std::size_t i = 0; i < act_dim; ++i)
          df[i] = 2.0 * (ma[i] - mc[i]);
      }
      const nn::Batch& g = net.input_gradient_batch(sc.adv_ws, sc.diff);
      for (std::size_t n = 0; n < bs; ++n) {
        const double* gr = g.row(n);
        double* d = sc.delta.row(n);
        for (std::size_t i = 0; i < obs_dim; ++i)
          d[i] = (gr[i] >= 0.0 ? eps : -eps);
      }
    }
    for (std::size_t n = 0; n < bs; ++n) {
      const double* s = sc.clean.row(n);
      const double* d = sc.delta.row(n);
      double* a = sc.adv.row(n);
      for (std::size_t i = 0; i < obs_dim; ++i) a[i] = s[i] + d[i];
    }
    const nn::Batch& mu_adv = net.forward_batch(sc.adv, sc.adv_ws);

    // d/dθ of coef·Σ_n ‖μ(s_n+δ*_n) − μ(s_n)‖²·inv_bs: flows through both
    // the perturbed and the clean branch.
    sc.grad_out.resize(bs, act_dim);
    for (std::size_t n = 0; n < bs; ++n) {
      const double* ma = mu_adv.row(n);
      const double* mc = mu_clean.row(n);
      double* g = sc.grad_out.row(n);
      for (std::size_t i = 0; i < act_dim; ++i)
        g[i] = 2.0 * coef * inv_bs * (ma[i] - mc[i]);
    }
    net.backward_batch(sc.adv_ws, sc.grad_out);
    double* g = sc.grad_out.data();
    for (std::size_t i = 0; i < bs * act_dim; ++i) g[i] = -g[i];
    net.backward_batch(sc.clean_ws, sc.grad_out);
  };
}

}  // namespace imap::defense
