#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "defense/atla.h"
#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/ppo.h"

namespace imap::defense {

/// The victim-training methods evaluated in Table 1 (Sec. 7): vanilla PPO,
/// two adversarial-training defenses (ATLA, ATLA-SA) and three
/// robust-regularizer defenses (SA, RADIAL, WocaR).
enum class DefenseKind { Vanilla, ATLA, SA, ATLA_SA, RADIAL, WocaR };

std::string to_string(DefenseKind kind);
DefenseKind defense_from_string(const std::string& name);

/// Row order of Table 1.
std::vector<DefenseKind> all_defenses();

struct DefenseOptions {
  double eps = 0.1;      ///< training-time perturbation budget
  double reg_coef = 1.0; ///< robust-regularizer weight
  rl::PpoOptions ppo;
  /// ATLA: number of alternation rounds and the adversary's share of steps.
  int atla_rounds = 3;
  double atla_adversary_fraction = 0.5;
};

/// Resumable victim training: the same schedule as train_victim, cut into
/// advance() units (one PPO iteration, or one ATLA alternation round) with a
/// full-state snapshot/restore between any two units. The robust-regularizer
/// defenses run in two phases — a warm-up on the plain task, then continued
/// training with the method's hook plus ε-ball observation noise — and the
/// phase counter is part of the checkpoint, so restoring into a session
/// built with identical constructor arguments resumes bit-identically.
class VictimTrainSession {
 public:
  VictimTrainSession(const rl::Env& training_env, DefenseKind kind,
                     long long steps, DefenseOptions opts, Rng rng);

  DefenseKind kind() const { return kind_; }
  bool done() const;
  /// Advance by one resumable unit; snapshots are valid at every boundary.
  void advance();

  /// The deployed policy network — the only artifact visible (as a black
  /// box) to attackers. Valid any time, final once done().
  nn::GaussianPolicy policy() const;

  void save_state(ArchiveWriter& a) const;
  void load_state(const ArchiveReader& a);
  bool snapshot(const std::string& path) const;
  bool restore(const std::string& path);

 private:
  void enter_perturbed_phase();

  std::unique_ptr<rl::Env> training_env_;
  DefenseKind kind_;
  long long steps_;
  DefenseOptions opts_;
  Rng rng_;
  std::shared_ptr<Rng> hook_rng_;  ///< regularizer-hook stream (phase 1)
  int phase_ = 0;  ///< 0 = plain-task warm-up, 1 = perturbed + hook
  std::unique_ptr<rl::PpoTrainer> trainer_;  ///< non-ATLA kinds
  std::unique_ptr<AtlaTrainer> atla_;        ///< ATLA kinds
};

/// Train one victim on its (training-time, shaped-reward) environment.
/// Returns the deployed policy network — the only artifact visible (as a
/// black box) to attackers.
nn::GaussianPolicy train_victim(const rl::Env& training_env, DefenseKind kind,
                                long long steps, DefenseOptions opts, Rng rng);

}  // namespace imap::defense
