#pragma once

#include <string>
#include <vector>

#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/ppo.h"

namespace imap::defense {

/// The victim-training methods evaluated in Table 1 (Sec. 7): vanilla PPO,
/// two adversarial-training defenses (ATLA, ATLA-SA) and three
/// robust-regularizer defenses (SA, RADIAL, WocaR).
enum class DefenseKind { Vanilla, ATLA, SA, ATLA_SA, RADIAL, WocaR };

std::string to_string(DefenseKind kind);
DefenseKind defense_from_string(const std::string& name);

/// Row order of Table 1.
std::vector<DefenseKind> all_defenses();

struct DefenseOptions {
  double eps = 0.1;      ///< training-time perturbation budget
  double reg_coef = 1.0; ///< robust-regularizer weight
  rl::PpoOptions ppo;
  /// ATLA: number of alternation rounds and the adversary's share of steps.
  int atla_rounds = 3;
  double atla_adversary_fraction = 0.5;
};

/// Train one victim on its (training-time, shaped-reward) environment.
/// Returns the deployed policy network — the only artifact visible (as a
/// black box) to attackers.
nn::GaussianPolicy train_victim(const rl::Env& training_env, DefenseKind kind,
                                long long steps, DefenseOptions opts, Rng rng);

}  // namespace imap::defense
