#pragma once

#include <memory>

#include "common/rng.h"
#include "rl/ppo.h"

namespace imap::defense {

/// WocaR-style worst-case-aware regularisation (Liang et al. 2022): the
/// original directly estimates and optimises the worst-case episode reward
/// under bounded ℓ∞ attack. Our reduction keeps the worst-case-aware
/// ingredient that matters for the attack evaluation — a *strong* inner
/// maximisation (multi-step PGD) with state weighting that concentrates the
/// robustness budget on high-speed (high-value) states — see DESIGN.md.
///
/// The shared_ptr form keeps the hook's Rng owned by the caller so resumable
/// training sessions can checkpoint it.
rl::PpoTrainer::RegularizerHook make_wocar_hook(double eps, double coef,
                                                std::shared_ptr<Rng> rng);
rl::PpoTrainer::RegularizerHook make_wocar_hook(double eps, double coef,
                                                Rng rng);

}  // namespace imap::defense
