#pragma once

#include <memory>

#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/evaluate.h"
#include "rl/ppo.h"

namespace imap::defense {

/// The victim's side of adversarial training: an env whose observations are
/// corrupted by a FIXED adversary (the converse of
/// attack::StatePerturbationEnv, where the adversary is the agent).
class PerturbedVictimEnv : public rl::EnvBase<PerturbedVictimEnv> {
 public:
  PerturbedVictimEnv(const rl::Env& inner, rl::ActionFn adversary,
                     double eps);
  PerturbedVictimEnv(const PerturbedVictimEnv& other);
  PerturbedVictimEnv& operator=(const PerturbedVictimEnv&) = delete;

  std::size_t obs_dim() const override { return inner_->obs_dim(); }
  std::size_t act_dim() const override { return inner_->act_dim(); }
  int max_steps() const override { return inner_->max_steps(); }
  std::string name() const override { return inner_->name() + "+Perturbed"; }
  const rl::BoxSpace& action_space() const override {
    return inner_->action_space();
  }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

 private:
  std::vector<double> perturb(const std::vector<double>& obs) const;

  std::unique_ptr<rl::Env> inner_;
  rl::ActionFn adversary_;
  double eps_;
};

/// ATLA (Zhang et al. 2021): alternately train the victim and an RL state
/// adversary with independent networks. `with_sa` adds the SA smoothness
/// regularizer to the victim's updates (= ATLA-SA; the original's LSTM
/// policy is replaced by an MLP — see DESIGN.md).
nn::GaussianPolicy train_victim_atla(const rl::Env& training_env,
                                     bool with_sa, long long steps,
                                     double eps, double reg_coef,
                                     rl::PpoOptions ppo, int rounds,
                                     double adversary_fraction, Rng rng);

}  // namespace imap::defense
