#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "nn/gaussian.h"
#include "rl/env.h"
#include "rl/evaluate.h"
#include "rl/ppo.h"

namespace imap::defense {

/// The victim's side of adversarial training: an env whose observations are
/// corrupted by a FIXED adversary (the converse of
/// attack::StatePerturbationEnv, where the adversary is the agent).
///
/// Two adversary forms:
///  * an rl::ActionFn (ATLA rounds: the frozen RL adversary of the round);
///  * uniform ε-ball noise (the robust-regularizer defenses). The noise
///    stream is owned per clone and reseeded from the reset Rng, so every
///    clone is self-contained and an episode replays exactly from its
///    pre-reset Rng state — the property checkpoint restore relies on.
class PerturbedVictimEnv : public rl::EnvBase<PerturbedVictimEnv> {
 public:
  PerturbedVictimEnv(const rl::Env& inner, rl::ActionFn adversary,
                     double eps);
  /// Uniform-noise mode: obs += eps·U[-1,1]^d.
  PerturbedVictimEnv(const rl::Env& inner, double eps);
  PerturbedVictimEnv(const PerturbedVictimEnv& other);
  PerturbedVictimEnv& operator=(const PerturbedVictimEnv&) = delete;

  std::size_t obs_dim() const override { return inner_->obs_dim(); }
  std::size_t act_dim() const override { return inner_->act_dim(); }
  int max_steps() const override { return inner_->max_steps(); }
  std::string name() const override { return inner_->name() + "+Perturbed"; }
  const rl::BoxSpace& action_space() const override {
    return inner_->action_space();
  }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

 private:
  std::vector<double> perturb(const std::vector<double>& obs);

  std::unique_ptr<rl::Env> inner_;
  rl::ActionFn adversary_;
  double eps_;
  bool noise_mode_ = false;
  Rng noise_rng_{0};  ///< noise mode only; reseeded at every reset
};

/// ATLA (Zhang et al. 2021) as a resumable state machine: alternately train
/// the victim and an RL state adversary with independent networks. Round 0
/// is the unattacked warm-up; each later round trains a fresh SA-RL
/// adversary against the frozen victim, then continues the victim under that
/// adversary's perturbations. `with_sa` adds the SA smoothness regularizer
/// to the victim's updates (= ATLA-SA; the original's LSTM policy is
/// replaced by an MLP — see DESIGN.md).
///
/// Snapshots are taken at round boundaries: restoring into an AtlaTrainer
/// built with identical constructor arguments and running the remaining
/// rounds is bit-identical to never having stopped.
class AtlaTrainer {
 public:
  AtlaTrainer(const rl::Env& training_env, bool with_sa, long long steps,
              double eps, double reg_coef, rl::PpoOptions ppo, int rounds,
              double adversary_fraction, Rng rng);

  int rounds() const { return rounds_; }
  int rounds_done() const { return round_; }
  bool done() const { return round_ >= rounds_; }

  /// Run the next alternation round; returns the victim's iteration stats.
  std::vector<rl::IterStats> run_round();

  nn::GaussianPolicy policy() const { return victim_.policy(); }
  rl::PpoTrainer& victim() { return victim_; }
  const rl::PpoTrainer& victim() const { return victim_; }

  /// Round counter, last completed round's adversary and the full victim
  /// trainer state (plus the SA hook's Rng when with_sa).
  void save_state(ArchiveWriter& a) const;
  void load_state(const ArchiveReader& a);
  bool snapshot(const std::string& path) const;
  bool restore(const std::string& path);

 private:
  void enter_round_env();

  std::unique_ptr<rl::Env> training_env_;
  bool with_sa_;
  double eps_;
  rl::PpoOptions ppo_;
  int rounds_;
  long long victim_per_round_ = 0;
  long long adv_per_round_ = 0;
  Rng rng_;
  std::shared_ptr<Rng> hook_rng_;  ///< SA hook stream (ATLA-SA only)
  int round_ = 0;                  ///< completed rounds
  std::unique_ptr<nn::GaussianPolicy> round_adversary_;
  rl::PpoTrainer victim_;
};

/// One-shot convenience wrapper over AtlaTrainer.
nn::GaussianPolicy train_victim_atla(const rl::Env& training_env,
                                     bool with_sa, long long steps,
                                     double eps, double reg_coef,
                                     rl::PpoOptions ppo, int rounds,
                                     double adversary_fraction, Rng rng);

}  // namespace imap::defense
