#pragma once

#include <memory>

#include "common/rng.h"
#include "rl/ppo.h"

namespace imap::defense {

/// RADIAL-style adversarial loss (Oikarinen et al. 2021): penalise the
/// worst action deviation over the ℓ∞ ball. The original bounds the network
/// output with interval arithmetic; here the bound is approximated by the
/// worst of `corners` random sign-corner perturbations of the ball (the
/// extreme points that drive the interval bound) — see DESIGN.md.
///
/// The shared_ptr form keeps the hook's Rng owned by the caller so resumable
/// training sessions can checkpoint it.
rl::PpoTrainer::RegularizerHook make_radial_hook(double eps, double coef,
                                                 int corners,
                                                 std::shared_ptr<Rng> rng);
rl::PpoTrainer::RegularizerHook make_radial_hook(double eps, double coef,
                                                 int corners, Rng rng);

}  // namespace imap::defense
