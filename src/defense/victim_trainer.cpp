#include "defense/victim_trainer.h"

#include "common/check.h"
#include "defense/atla.h"
#include "defense/radial.h"
#include "defense/sa_regularizer.h"
#include "defense/wocar.h"

namespace imap::defense {

std::string to_string(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::Vanilla: return "PPO";
    case DefenseKind::ATLA: return "ATLA";
    case DefenseKind::SA: return "SA";
    case DefenseKind::ATLA_SA: return "ATLA-SA";
    case DefenseKind::RADIAL: return "RADIAL";
    case DefenseKind::WocaR: return "WocaR";
  }
  return "?";
}

DefenseKind defense_from_string(const std::string& name) {
  for (const auto kind : all_defenses())
    if (to_string(kind) == name) return kind;
  IMAP_CHECK_MSG(false, "unknown defense: " << name);
  return DefenseKind::Vanilla;  // unreachable
}

std::vector<DefenseKind> all_defenses() {
  return {DefenseKind::Vanilla, DefenseKind::ATLA,   DefenseKind::SA,
          DefenseKind::ATLA_SA, DefenseKind::RADIAL, DefenseKind::WocaR};
}

nn::GaussianPolicy train_victim(const rl::Env& training_env, DefenseKind kind,
                                long long steps, DefenseOptions opts,
                                Rng rng) {
  IMAP_CHECK(steps > 0);

  switch (kind) {
    case DefenseKind::ATLA:
    case DefenseKind::ATLA_SA:
      return train_victim_atla(training_env, kind == DefenseKind::ATLA_SA,
                               steps, opts.eps, opts.reg_coef, opts.ppo,
                               opts.atla_rounds,
                               opts.atla_adversary_fraction, rng);
    case DefenseKind::Vanilla:
    case DefenseKind::SA:
    case DefenseKind::RADIAL:
    case DefenseKind::WocaR: {
      rl::PpoTrainer trainer(training_env, opts.ppo, rng.split(1));
      if (kind == DefenseKind::Vanilla) {
        trainer.train(steps);
        return trainer.policy();
      }
      // Robust-regularizer defenses warm-start on the plain task (the
      // originals anneal their robustness coefficient in the same spirit),
      // then continue with (a) the method's smoothness/adversarial-loss hook
      // and (b) sampled ε-ball observation noise in the rollouts — the
      // standard training-time surrogate for bounding the policy's action
      // divergence under state perturbations. Experiencing perturbation at
      // speed is what lets the victim retreat to the slower, robust gait.
      trainer.train(steps / 2);
      if (kind == DefenseKind::SA)
        trainer.set_regularizer_hook(make_smoothness_hook(
            opts.eps, opts.reg_coef, /*pgd_steps=*/1, rng.split(2)));
      else if (kind == DefenseKind::RADIAL)
        trainer.set_regularizer_hook(
            make_radial_hook(opts.eps, opts.reg_coef, /*corners=*/4,
                             rng.split(2)));
      else
        trainer.set_regularizer_hook(
            make_wocar_hook(opts.eps, opts.reg_coef, rng.split(2)));
      {
        auto noise_rng = std::make_shared<Rng>(rng.split(3));
        const std::size_t obs_dim = training_env.obs_dim();
        PerturbedVictimEnv noisy(
            training_env,
            [noise_rng, obs_dim](const std::vector<double>&) {
              return noise_rng->uniform_vec(obs_dim, -1.0, 1.0);
            },
            opts.eps);
        trainer.set_env(noisy);
        trainer.train(steps);
      }
      return trainer.policy();
    }
  }
  IMAP_CHECK_MSG(false, "unreachable defense kind");
  Rng dummy(0);
  return nn::GaussianPolicy(1, 1, {1}, dummy);  // unreachable
}

}  // namespace imap::defense
