#include "defense/victim_trainer.h"

#include "common/check.h"
#include "defense/atla.h"
#include "defense/radial.h"
#include "defense/sa_regularizer.h"
#include "defense/wocar.h"

namespace imap::defense {

std::string to_string(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::Vanilla: return "PPO";
    case DefenseKind::ATLA: return "ATLA";
    case DefenseKind::SA: return "SA";
    case DefenseKind::ATLA_SA: return "ATLA-SA";
    case DefenseKind::RADIAL: return "RADIAL";
    case DefenseKind::WocaR: return "WocaR";
  }
  return "?";
}

DefenseKind defense_from_string(const std::string& name) {
  for (const auto kind : all_defenses())
    if (to_string(kind) == name) return kind;
  IMAP_CHECK_MSG(false, "unknown defense: " << name);
  return DefenseKind::Vanilla;  // unreachable
}

std::vector<DefenseKind> all_defenses() {
  return {DefenseKind::Vanilla, DefenseKind::ATLA,   DefenseKind::SA,
          DefenseKind::ATLA_SA, DefenseKind::RADIAL, DefenseKind::WocaR};
}

VictimTrainSession::VictimTrainSession(const rl::Env& training_env,
                                       DefenseKind kind, long long steps,
                                       DefenseOptions opts, Rng rng)
    : training_env_(training_env.clone()),
      kind_(kind),
      steps_(steps),
      opts_(opts),
      rng_(rng) {
  IMAP_CHECK(steps_ > 0);
  if (kind_ == DefenseKind::ATLA || kind_ == DefenseKind::ATLA_SA) {
    atla_ = std::make_unique<AtlaTrainer>(
        training_env, kind_ == DefenseKind::ATLA_SA, steps_, opts_.eps,
        opts_.reg_coef, opts_.ppo, opts_.atla_rounds,
        opts_.atla_adversary_fraction, rng);
  } else {
    trainer_ = std::make_unique<rl::PpoTrainer>(training_env, opts_.ppo,
                                                rng.split(1));
  }
}

bool VictimTrainSession::done() const {
  if (atla_) return atla_->done();
  return trainer_->steps_done() >= steps_;
}

void VictimTrainSession::advance() {
  IMAP_CHECK_MSG(!done(), "victim training already complete");
  if (atla_) {
    atla_->run_round();
    return;
  }
  // Robust-regularizer defenses warm-start on the plain task (the originals
  // anneal their robustness coefficient in the same spirit), then continue
  // with (a) the method's smoothness/adversarial-loss hook and (b) sampled
  // ε-ball observation noise in the rollouts — the standard training-time
  // surrogate for bounding the policy's action divergence under state
  // perturbations. Experiencing perturbation at speed is what lets the
  // victim retreat to the slower, robust gait.
  if (phase_ == 0 && kind_ != DefenseKind::Vanilla &&
      trainer_->steps_done() >= steps_ / 2) {
    enter_perturbed_phase();
    phase_ = 1;
  }
  trainer_->iterate();
}

void VictimTrainSession::enter_perturbed_phase() {
  hook_rng_ = std::make_shared<Rng>(rng_.split(2));
  switch (kind_) {
    case DefenseKind::SA:
      trainer_->set_regularizer_hook(make_smoothness_hook(
          opts_.eps, opts_.reg_coef, /*pgd_steps=*/1, hook_rng_));
      break;
    case DefenseKind::RADIAL:
      trainer_->set_regularizer_hook(make_radial_hook(
          opts_.eps, opts_.reg_coef, /*corners=*/4, hook_rng_));
      break;
    case DefenseKind::WocaR:
      trainer_->set_regularizer_hook(
          make_wocar_hook(opts_.eps, opts_.reg_coef, hook_rng_));
      break;
    default:
      IMAP_CHECK_MSG(false,
                     to_string(kind_) << " has no perturbed training phase");
  }
  PerturbedVictimEnv noisy(*training_env_, opts_.eps);
  trainer_->set_env(noisy);
}

nn::GaussianPolicy VictimTrainSession::policy() const {
  return atla_ ? atla_->policy() : trainer_->policy();
}

void VictimTrainSession::save_state(ArchiveWriter& a) const {
  auto& meta = a.section("victim/meta");
  meta.write_string(to_string(kind_));
  meta.write_i64(steps_);
  meta.write_i64(phase_);
  if (atla_) {
    atla_->save_state(a);
    return;
  }
  if (hook_rng_) {
    auto& hr = a.section("victim/hook_rng");
    hook_rng_->save_state(hr);
  }
  trainer_->save_state(a);
}

void VictimTrainSession::load_state(const ArchiveReader& a) {
  auto meta = a.section("victim/meta");
  IMAP_CHECK_MSG(meta.read_string() == to_string(kind_),
                 "victim checkpoint was written for a different defense");
  IMAP_CHECK_MSG(meta.read_i64() == steps_,
                 "victim checkpoint was written for a different step budget");
  const long long phase = meta.read_i64();
  IMAP_CHECK_MSG(phase == 0 || phase == 1,
                 "corrupt victim checkpoint: bad phase counter");
  if (atla_) {
    atla_->load_state(a);
    return;
  }
  phase_ = static_cast<int>(phase);
  if (phase_ == 1) {
    // Reinstall the hook and the noisy env, then overwrite the hook's Rng
    // with the checkpointed stream (the hook holds the shared pointer).
    enter_perturbed_phase();
    auto hr = a.section("victim/hook_rng");
    hook_rng_->load_state(hr);
  }
  trainer_->load_state(a);
}

bool VictimTrainSession::snapshot(const std::string& path) const {
  ArchiveWriter a;
  save_state(a);
  return a.save(path);
}

bool VictimTrainSession::restore(const std::string& path) {
  ArchiveReader a;
  if (!ArchiveReader::load(path, a)) return false;
  load_state(a);
  return true;
}

nn::GaussianPolicy train_victim(const rl::Env& training_env, DefenseKind kind,
                                long long steps, DefenseOptions opts,
                                Rng rng) {
  VictimTrainSession session(training_env, kind, steps, opts, rng);
  while (!session.done()) session.advance();
  return session.policy();
}

}  // namespace imap::defense
