#pragma once

#include <memory>

#include "common/rng.h"
#include "rl/ppo.h"

namespace imap::defense {

/// SA policy-smoothness regularizer (Zhang et al. 2020): adds
/// coef · ‖μ_θ(s + δ*) − μ_θ(s)‖² to the PPO loss, with the inner
/// maximisation over ‖δ‖∞ ≤ ε approximated by `pgd_steps` of FGSM from a
/// random start (the convex-relaxation bound of the original is replaced by
/// this PGD approximation — see DESIGN.md).
///
/// The shared_ptr form keeps the hook's Rng owned by the caller so resumable
/// training sessions can checkpoint it; the by-value form is a convenience
/// for one-shot training.
rl::PpoTrainer::RegularizerHook make_smoothness_hook(
    double eps, double coef, int pgd_steps, std::shared_ptr<Rng> rng);
rl::PpoTrainer::RegularizerHook make_smoothness_hook(double eps, double coef,
                                                     int pgd_steps, Rng rng);

}  // namespace imap::defense
