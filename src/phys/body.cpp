#include "phys/body.h"

#include <algorithm>

namespace imap::phys {

void CircleBody::integrate(double dt) {
  vel += force * (dt / mass);
  // Exponential damping keeps top speed bounded under constant thrust.
  const double decay = std::max(0.0, 1.0 - damping * dt);
  vel = vel * decay;
  pos += vel * dt;
  force = {};
}

bool CircleBody::overlaps(const CircleBody& other) const {
  return distance(pos, other.pos) < radius + other.radius;
}

}  // namespace imap::phys
