#include "phys/vec2.h"

#include <algorithm>

namespace imap::phys {

Vec2 Vec2::normalized() const {
  const double n = norm();
  if (n < 1e-12) return {};
  return {x / n, y / n};
}

Vec2 Vec2::rotated(double angle) const {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * x - s * y, s * x + c * y};
}

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len_sq = ab.norm_sq();
  if (len_sq < 1e-12) return a;
  const double t = std::clamp((p - a).dot(ab) / len_sq, 0.0, 1.0);
  return a + ab * t;
}

}  // namespace imap::phys
