#pragma once

#include <cmath>

namespace imap::phys {

/// 2-D vector value type for the physics substrate.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2() = default;
  Vec2(double x_, double y_) : x(x_), y(y_) {}

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2 operator-() const { return {-x, -y}; }

  double dot(Vec2 o) const { return x * o.x + y * o.y; }
  double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::sqrt(x * x + y * y); }
  double norm_sq() const { return x * x + y * y; }

  /// Unit vector (zero vector maps to zero).
  Vec2 normalized() const;

  /// Rotate counter-clockwise by `angle` radians.
  Vec2 rotated(double angle) const;

  /// Perpendicular (CCW).
  Vec2 perp() const { return {-y, x}; }
};

inline Vec2 operator*(double s, Vec2 v) { return v * s; }

double distance(Vec2 a, Vec2 b);

/// Closest point to `p` on segment [a, b].
Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b);

}  // namespace imap::phys
