#pragma once

#include "phys/vec2.h"

namespace imap::phys {

/// Dynamic circle body (robots, the ball) integrated with semi-implicit
/// Euler and linear damping.
struct CircleBody {
  Vec2 pos;
  Vec2 vel;
  double radius = 0.3;
  double mass = 1.0;
  double damping = 2.0;   ///< per-second velocity decay (ground friction)
  Vec2 force;             ///< accumulated this step, cleared by integrate

  void apply_force(Vec2 f) { force += f; }
  void integrate(double dt);

  bool overlaps(const CircleBody& other) const;
};

/// Static wall segment with a thickness used for collision radius.
struct Segment {
  Vec2 a;
  Vec2 b;
  double thickness = 0.05;
};

}  // namespace imap::phys
