#include "phys/world.h"

#include <algorithm>

#include "common/check.h"

namespace imap::phys {

std::size_t World::add_body(CircleBody body) {
  bodies_.push_back(body);
  return bodies_.size() - 1;
}

void World::add_segment(Segment seg) { segments_.push_back(seg); }

void World::resolve_body_wall(CircleBody& b) {
  for (const auto& seg : segments_) {
    const Vec2 cp = closest_point_on_segment(b.pos, seg.a, seg.b);
    const Vec2 d = b.pos - cp;
    const double dist = d.norm();
    const double min_dist = b.radius + seg.thickness;
    if (dist < min_dist) {
      // Degenerate case (centre exactly on the wall line): push back against
      // the incoming velocity rather than in an arbitrary direction.
      const Vec2 n = dist > 1e-9
                         ? d / dist
                         : (b.vel.norm_sq() > 1e-12 ? -b.vel.normalized()
                                                    : Vec2{0.0, 1.0});
      b.pos = cp + n * min_dist;
      const double vn = b.vel.dot(n);
      if (vn < 0.0) b.vel -= n * vn;  // kill the inward component
    }
  }
}

bool World::resolve_body_body(CircleBody& p, CircleBody& q) {
  const Vec2 d = q.pos - p.pos;
  const double dist = d.norm();
  const double min_dist = p.radius + q.radius;
  if (dist >= min_dist) return false;

  const Vec2 n = dist > 1e-9 ? d / dist : Vec2{1.0, 0.0};
  const double overlap = min_dist - dist;
  const double total_mass = p.mass + q.mass;
  // Positional correction split by mass.
  p.pos -= n * (overlap * q.mass / total_mass);
  q.pos += n * (overlap * p.mass / total_mass);
  // Inelastic impulse along the normal.
  const double rel_vn = (q.vel - p.vel).dot(n);
  if (rel_vn < 0.0) {
    const double impulse = -rel_vn / (1.0 / p.mass + 1.0 / q.mass);
    p.vel -= n * (impulse / p.mass);
    q.vel += n * (impulse / q.mass);
  }
  return true;
}

bool World::step(double dt) {
  IMAP_CHECK(dt > 0.0);
  bool contact = false;
  // Sub-stepping keeps fast bodies from tunnelling through thin walls.
  constexpr int kSubsteps = 4;
  const double h = dt / kSubsteps;
  for (int sub = 0; sub < kSubsteps; ++sub) {
    for (auto& b : bodies_) {
      // Re-apply the accumulated force each substep, consume it at the end.
      const Vec2 f = b.force;
      b.integrate(h);
      if (sub + 1 < kSubsteps) b.force = f;
    }
    // A couple of relaxation passes keep stacked contacts stable.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < bodies_.size(); ++i)
        for (std::size_t j = i + 1; j < bodies_.size(); ++j)
          contact |= resolve_body_body(bodies_[i], bodies_[j]);
      for (auto& b : bodies_) resolve_body_wall(b);
    }
  }
  return contact;
}

bool World::path_clear(Vec2 from, Vec2 to, double radius) const {
  // Sample along the path; fine enough for maze-scale geometry.
  const double len = distance(from, to);
  const int samples = std::max(2, static_cast<int>(len / 0.1));
  for (int i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const Vec2 p = from + (to - from) * t;
    for (const auto& seg : segments_) {
      const Vec2 cp = closest_point_on_segment(p, seg.a, seg.b);
      if (distance(p, cp) < radius + seg.thickness) return false;
    }
  }
  return true;
}

void World::clear() {
  bodies_.clear();
  segments_.clear();
}

}  // namespace imap::phys
