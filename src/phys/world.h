#pragma once

#include <vector>

#include "phys/body.h"

namespace imap::phys {

/// Minimal 2-D world: dynamic circles against each other and static wall
/// segments. Collisions are resolved by positional projection plus a
/// restitution-free velocity impulse — enough for maze navigation and for
/// body-blocking contact in the competitive games.
class World {
 public:
  /// Returns index of the added body.
  std::size_t add_body(CircleBody body);
  void add_segment(Segment seg);

  CircleBody& body(std::size_t i) { return bodies_[i]; }
  const CircleBody& body(std::size_t i) const { return bodies_[i]; }
  std::size_t body_count() const { return bodies_.size(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Advance the simulation. Returns true if any circle-circle contact
  /// occurred this step (games use this as the "contact" signal).
  bool step(double dt);

  /// True if the straight path from `from` to `to` crosses no wall within
  /// `radius` clearance (used by env observation features and tests).
  bool path_clear(Vec2 from, Vec2 to, double radius) const;

  void clear();

 private:
  void resolve_body_wall(CircleBody& b);
  bool resolve_body_body(CircleBody& p, CircleBody& q);

  std::vector<CircleBody> bodies_;
  std::vector<Segment> segments_;
};

}  // namespace imap::phys
