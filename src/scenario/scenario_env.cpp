#include "scenario/scenario_env.h"

#include <algorithm>

#include "common/check.h"
#include "env/registry.h"

namespace imap::scenario {

namespace {

/// splitmix64 finalizer — decorrelates the family seed from the slot-Rng
/// draw it is mixed with, so nearby seeds name unrelated families.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ScenarioEnv::ScenarioEnv(const ScenarioSpec& spec, rl::PolicyHandle victim,
                         attack::RewardMode mode)
    : spec_(spec),
      inner_(env::make_env(spec.env)),
      victim_(std::move(victim)),
      mode_(mode),
      pipeline_(spec, inner_->obs_dim(), inner_->act_dim()),
      act_space_(std::max<std::size_t>(1, pipeline_.ctrl_dim()), 1.0) {
  IMAP_CHECK(static_cast<bool>(victim_));
  for (const auto& r : spec_.dr)
    if (r.key == "mass" || r.key == "gain")
      IMAP_CHECK_MSG(inner_->apply_dynamics(rl::DynamicsScales{}),
                     "scenario: environment '"
                         << spec_.env
                         << "' does not support dynamics randomization");
}

ScenarioEnv::ScenarioEnv(const ScenarioEnv& other)
    : spec_(other.spec_),
      inner_(other.inner_->clone()),
      victim_(other.victim_),
      mode_(other.mode_),
      pipeline_(other.pipeline_),
      act_space_(other.act_space_),
      dynamics_(other.dynamics_),
      budget_scale_(other.budget_scale_),
      cur_obs_(other.cur_obs_),
      pending_ctrl_(other.pending_ctrl_) {}

void ScenarioEnv::apply_dr(Rng& rng) {
  if (spec_.dr.empty()) return;
  // ONE slot-Rng draw per reset, whatever the dr ranges — the factor stream
  // is a child keyed by (that draw XOR the mixed family seed), so the same
  // spec@seed draws the same family at the same slot-stream position on any
  // workers×slots×procs factorization.
  const std::uint64_t u = rng.next_u64();
  Rng dr_rng(spec_.has_seed ? (u ^ mix(spec_.seed)) : u);
  dynamics_ = rl::DynamicsScales{};
  budget_scale_ = 1.0;
  bool dynamics_drawn = false;
  for (const auto& r : spec_.dr) {  // canonical (sorted) order
    const double f = dr_rng.uniform(r.lo, r.hi);
    if (r.key == "mass") {
      dynamics_.mass = f;
      dynamics_drawn = true;
    } else if (r.key == "gain") {
      dynamics_.gain = f;
      dynamics_drawn = true;
    } else {
      budget_scale_ = f;
    }
  }
  if (dynamics_drawn) inner_->apply_dynamics(dynamics_);
}

std::vector<double> ScenarioEnv::reset(Rng& rng) {
  apply_dr(rng);
  auto obs = inner_->reset(rng);
  pipeline_.begin_episode(rng, budget_scale_);
  pipeline_.corrupt_obs(obs);
  cur_obs_ = std::move(obs);
  return cur_obs_;
}

const std::vector<double>& ScenarioEnv::begin_step(
    const std::vector<double>& action) {
  IMAP_CHECK(action.size() == act_dim());
  pending_ctrl_ = act_space_.clamp(action);
  perturbed_ = cur_obs_;
  pipeline_.perturb_obs(perturbed_, pending_ctrl_);
  return perturbed_;
}

rl::StepResult ScenarioEnv::finish_step(
    const std::vector<double>& policy_out) {
  auto victim_action = inner_->action_space().clamp(policy_out);
  if (pipeline_.has_act_perturb()) {
    pipeline_.perturb_act(victim_action, pending_ctrl_);
    victim_action = inner_->action_space().clamp(std::move(victim_action));
  }
  rl::StepResult sr = inner_->step(victim_action);
  pipeline_.corrupt_obs(sr.obs);
  cur_obs_ = sr.obs;

  if (mode_ == attack::RewardMode::Adversary)
    sr.reward = -sr.surrogate;
  else if (mode_ == attack::RewardMode::AdversaryRelaxed)
    sr.reward = -sr.reward;
  // VictimTrue keeps the inner reward untouched.
  return sr;
}

rl::StepResult ScenarioEnv::step(const std::vector<double>& action) {
  return finish_step(victim_.query(begin_step(action)));
}

std::unique_ptr<ScenarioEnv> make_scenario_env(const ScenarioSpec& spec,
                                               rl::PolicyHandle victim,
                                               attack::RewardMode mode) {
  return std::make_unique<ScenarioEnv>(spec, std::move(victim), mode);
}

}  // namespace imap::scenario
