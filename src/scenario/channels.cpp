#include "scenario/channels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace imap::scenario {

void apply_obs_perturb(std::vector<double>& obs, const double* ctrl,
                       double eps) {
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i] += eps * ctrl[i];
}

void apply_obs_noise(std::vector<double>& obs, double eps, Rng& rng) {
  for (auto& x : obs) x += eps * rng.uniform(-1.0, 1.0);
}

ChannelPipeline::ChannelPipeline(const ScenarioSpec& spec,
                                 std::size_t obs_dim,
                                 std::size_t victim_act_dim)
    : obs_dim_(obs_dim), act_dim_(victim_act_dim) {
  for (const auto& c : spec.channels) {
    switch (c.kind) {
      case ChannelKind::ObsPerturb: obs_eps_ = c.param; break;
      case ChannelKind::ActPerturb: act_eps_ = c.param; break;
      case ChannelKind::ObsDelay: delay_ = static_cast<int>(c.param); break;
      case ChannelKind::ObsDropout: dropout_p_ = c.param; break;
      case ChannelKind::ObsNoise: noise_eps_ = c.param; break;
      case ChannelKind::Budget: budget_total_ = c.param; break;
    }
  }
  ctrl_dim_ = (has_obs_perturb() ? obs_dim_ : 0) +
              (has_act_perturb() ? act_dim_ : 0);
  if (delay_ > 0)
    delay_ring_.assign(static_cast<std::size_t>(delay_) + 1,
                       std::vector<double>(obs_dim_, 0.0));
  budget_remaining_ = has_budget()
                          ? budget_total_
                          : std::numeric_limits<double>::infinity();
}

void ChannelPipeline::begin_episode(Rng& rng, double budget_scale) {
  // One reseed draw per stochastic channel PRESENT, in pipeline order, so a
  // scenario without stochastic channels consumes no extra slot-Rng draws
  // (keeping e.g. `env+obs_perturb:eps` rollouts bit-identical to the
  // legacy StatePerturbationEnv's).
  if (dropout_p_ >= 0.0) dropout_rng_ = Rng(rng.next_u64());
  if (noise_eps_ >= 0.0) noise_rng_ = Rng(rng.next_u64());
  ring_head_ = 0;
  ring_count_ = 0;
  hold_.clear();
  budget_remaining_ = has_budget()
                          ? budget_total_ * budget_scale
                          : std::numeric_limits<double>::infinity();
  episode_open_ = true;
}

void ChannelPipeline::corrupt_obs(std::vector<double>& obs) {
  IMAP_CHECK_MSG(episode_open_, "ChannelPipeline: corrupt_obs before reset");
  if (delay_ > 0) {
    // Bank the fresh observation, deliver the one from `delay_` steps ago
    // (the reset observation while the ring is still filling).
    delay_ring_[ring_head_] = obs;
    ring_head_ = (ring_head_ + 1) % delay_ring_.size();
    ++ring_count_;
    if (ring_count_ > static_cast<std::size_t>(delay_))
      obs = delay_ring_[ring_head_];  // oldest banked = t - delay_
    else
      obs = delay_ring_[0];  // not enough history yet: the reset obs
  }
  if (dropout_p_ >= 0.0) {
    if (hold_.empty()) {
      hold_ = obs;  // the reset observation is always delivered intact
    } else {
      for (std::size_t i = 0; i < obs.size(); ++i)
        if (dropout_rng_.bernoulli(dropout_p_)) obs[i] = hold_[i];
      hold_ = obs;
    }
  }
  if (noise_eps_ >= 0.0) apply_obs_noise(obs, noise_eps_, noise_rng_);
}

double ChannelPipeline::charge(double eps, const double* ctrl,
                               std::size_t n) {
  if (!has_budget()) return eps;
  const double eps_eff = std::min(eps, std::max(0.0, budget_remaining_));
  double linf = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    linf = std::max(linf, std::abs(eps_eff * ctrl[i]));
  budget_remaining_ -= linf;
  return eps_eff;
}

void ChannelPipeline::perturb_obs(std::vector<double>& obs,
                                  const std::vector<double>& ctrl) {
  if (!has_obs_perturb()) return;
  IMAP_CHECK(ctrl.size() >= obs_dim_ && obs.size() == obs_dim_);
  const double eps = charge(obs_eps_, ctrl.data(), obs_dim_);
  apply_obs_perturb(obs, ctrl.data(), eps);
}

void ChannelPipeline::perturb_act(std::vector<double>& act,
                                  const std::vector<double>& ctrl) {
  if (!has_act_perturb()) return;
  const std::size_t off = has_obs_perturb() ? obs_dim_ : 0;
  IMAP_CHECK(ctrl.size() >= off + act_dim_ && act.size() == act_dim_);
  const double eps = charge(act_eps_, ctrl.data() + off, act_dim_);
  for (std::size_t i = 0; i < act_dim_; ++i)
    act[i] += eps * ctrl[off + i];
}

}  // namespace imap::scenario
