#include "scenario/spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "common/check.h"
#include "env/registry.h"

namespace imap::scenario {

namespace {

constexpr ChannelKind kAllKinds[] = {
    ChannelKind::ObsPerturb, ChannelKind::ActPerturb, ChannelKind::ObsDelay,
    ChannelKind::ObsDropout, ChannelKind::ObsNoise,   ChannelKind::Budget,
};

std::string lower(std::string s) {
  for (auto& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Registry env name, resolved case-insensitively ("hopper" -> "Hopper").
std::string resolve_env(const std::string& raw) {
  const auto resolved = env::resolve_name(raw);
  IMAP_CHECK_MSG(resolved.has_value(),
                 "scenario: unknown environment '" << raw << "'");
  return *resolved;
}

double parse_num(const std::string& s, const char* what) {
  double v = 0.0;
  const char* b = s.data();
  const char* e = s.data() + s.size();
  const auto res = std::from_chars(b, e, v);
  IMAP_CHECK_MSG(res.ec == std::errc() && res.ptr == e && std::isfinite(v),
                 "scenario: bad " << what << " '" << s << "'");
  return v;
}

void validate_channel(const ChannelSpec& c) {
  switch (c.kind) {
    case ChannelKind::ObsPerturb:
    case ChannelKind::ActPerturb:
    case ChannelKind::ObsNoise:
      IMAP_CHECK_MSG(c.param >= 0.0, "scenario: " << to_string(c.kind)
                                                  << " needs eps >= 0");
      break;
    case ChannelKind::ObsDelay:
      IMAP_CHECK_MSG(c.param >= 1.0 && c.param <= 64.0 &&
                         c.param == std::floor(c.param),
                     "scenario: obs_delay needs an integer 1..64");
      break;
    case ChannelKind::ObsDropout:
      IMAP_CHECK_MSG(c.param >= 0.0 && c.param < 1.0,
                     "scenario: obs_dropout needs p in [0, 1)");
      break;
    case ChannelKind::Budget:
      IMAP_CHECK_MSG(c.param > 0.0, "scenario: budget needs B > 0");
      break;
  }
}

}  // namespace

const char* to_string(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::ObsPerturb: return "obs_perturb";
    case ChannelKind::ActPerturb: return "act_perturb";
    case ChannelKind::ObsDelay: return "obs_delay";
    case ChannelKind::ObsDropout: return "obs_dropout";
    case ChannelKind::ObsNoise: return "obs_noise";
    case ChannelKind::Budget: return "budget";
  }
  return "?";
}

std::string format_number(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

const ChannelSpec* ScenarioSpec::channel(ChannelKind kind) const {
  for (const auto& c : channels)
    if (c.kind == kind) return &c;
  return nullptr;
}

bool ScenarioSpec::attackable() const {
  return channel(ChannelKind::ObsPerturb) != nullptr ||
         channel(ChannelKind::ActPerturb) != nullptr;
}

double ScenarioSpec::epsilon() const {
  if (const auto* c = channel(ChannelKind::ObsPerturb)) return c->param;
  return env::spec(env).epsilon;
}

double ScenarioSpec::budget() const {
  if (const auto* c = channel(ChannelKind::Budget)) return c->param;
  return 0.0;
}

std::string ScenarioSpec::canonical() const {
  std::string out = env;
  for (const auto& c : channels) {
    out += '+';
    out += to_string(c.kind);
    out += ':';
    out += format_number(c.param);
  }
  if (!dr.empty()) {
    out += "+dr[";
    for (std::size_t i = 0; i < dr.size(); ++i) {
      if (i) out += ',';
      out += dr[i].key;
      out += ':';
      out += format_number(dr[i].lo);
      out += "..";
      out += format_number(dr[i].hi);
    }
    out += ']';
  }
  if (has_seed) {
    out += '@';
    out += std::to_string(seed);
  }
  return out;
}

ScenarioSpec parse(const std::string& text) {
  std::string s = text;
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](unsigned char c) { return std::isspace(c); }),
          s.end());
  IMAP_CHECK_MSG(!s.empty(), "scenario: empty spec");

  ScenarioSpec spec;

  // Seed suffix: the '@' never appears inside dr[...], so a plain find on
  // the tail is unambiguous.
  const auto at = s.rfind('@');
  if (at != std::string::npos && s.find(']', at) == std::string::npos) {
    const std::string tail = s.substr(at + 1);
    IMAP_CHECK_MSG(tail.find("..") == std::string::npos,
                   "scenario: seed ranges ('@lo..hi') are only valid in "
                   "expand() patterns, not in a concrete spec");
    std::uint64_t seed = 0;
    const auto res =
        std::from_chars(tail.data(), tail.data() + tail.size(), seed);
    IMAP_CHECK_MSG(res.ec == std::errc() &&
                       res.ptr == tail.data() + tail.size() && !tail.empty(),
                   "scenario: bad seed '" << tail << "'");
    spec.seed = seed;
    spec.has_seed = true;
    s = s.substr(0, at);
  }

  // '+'-separated components: env first, then channels / one dr block.
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    auto next = s.find('+', pos);
    if (next == std::string::npos) next = s.size();
    parts.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  IMAP_CHECK_MSG(!parts[0].empty(), "scenario: missing environment name");
  spec.env = resolve_env(parts[0]);

  bool saw_dr = false;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    IMAP_CHECK_MSG(!part.empty(), "scenario: empty '+' component in '"
                                      << text << "'");
    if (part.rfind("dr[", 0) == 0) {
      IMAP_CHECK_MSG(!saw_dr, "scenario: more than one dr[...] block");
      IMAP_CHECK_MSG(part.back() == ']', "scenario: unterminated dr[...]");
      saw_dr = true;
      const std::string body = part.substr(3, part.size() - 4);
      IMAP_CHECK_MSG(!body.empty(), "scenario: empty dr[...]");
      std::size_t rpos = 0;
      while (rpos <= body.size()) {
        auto rnext = body.find(',', rpos);
        if (rnext == std::string::npos) rnext = body.size();
        const std::string range = body.substr(rpos, rnext - rpos);
        rpos = rnext + 1;
        const auto colon = range.find(':');
        IMAP_CHECK_MSG(colon != std::string::npos,
                       "scenario: dr range '" << range << "' needs key:lo..hi");
        DrRange r;
        r.key = lower(range.substr(0, colon));
        IMAP_CHECK_MSG(
            r.key == "mass" || r.key == "gain" || r.key == "budget",
            "scenario: unknown dr key '" << r.key
                                         << "' (mass, gain, budget)");
        const std::string span = range.substr(colon + 1);
        const auto dots = span.find("..");
        IMAP_CHECK_MSG(dots != std::string::npos,
                       "scenario: dr range '" << range << "' needs lo..hi");
        r.lo = parse_num(span.substr(0, dots), "dr bound");
        r.hi = parse_num(span.substr(dots + 2), "dr bound");
        IMAP_CHECK_MSG(r.lo > 0.0 && r.hi >= r.lo,
                       "scenario: dr range '" << range
                                              << "' needs 0 < lo <= hi");
        for (const auto& prev : spec.dr)
          IMAP_CHECK_MSG(prev.key != r.key,
                         "scenario: duplicate dr key '" << r.key << "'");
        spec.dr.push_back(std::move(r));
      }
      continue;
    }
    // Channel component: name[:param].
    const auto colon = part.find(':');
    const std::string name = lower(part.substr(0, colon));
    ChannelSpec c;
    bool known = false;
    for (const auto kind : kAllKinds)
      if (name == to_string(kind)) {
        c.kind = kind;
        known = true;
        break;
      }
    IMAP_CHECK_MSG(known, "scenario: unknown channel '" << name << "'");
    if (colon != std::string::npos) {
      c.param = parse_num(part.substr(colon + 1), "channel parameter");
    } else {
      // Defaults: perturbation eps falls back to the registry budget,
      // delay to one step; dropout and budget have no sensible default.
      switch (c.kind) {
        case ChannelKind::ObsPerturb:
        case ChannelKind::ActPerturb:
        case ChannelKind::ObsNoise:
          c.param = env::spec(spec.env).epsilon;
          break;
        case ChannelKind::ObsDelay:
          c.param = 1.0;
          break;
        case ChannelKind::ObsDropout:
        case ChannelKind::Budget:
          IMAP_CHECK_MSG(false, "scenario: " << name
                                             << " needs an explicit value");
          break;
      }
    }
    validate_channel(c);
    for (const auto& prev : spec.channels)
      IMAP_CHECK_MSG(prev.kind != c.kind,
                     "scenario: duplicate channel '" << name << "'");
    spec.channels.push_back(c);
  }

  // Canonical order: channels by pipeline position, dr by key.
  std::sort(spec.channels.begin(), spec.channels.end(),
            [](const ChannelSpec& a, const ChannelSpec& b) {
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  std::sort(spec.dr.begin(), spec.dr.end(),
            [](const DrRange& a, const DrRange& b) { return a.key < b.key; });

  // Cross-field validation.
  if (!spec.trivial())
    IMAP_CHECK_MSG(
        env::spec(spec.env).type != env::TaskType::MultiAgent,
        "scenario: channels/dr/seed unsupported on multi-agent game '"
            << spec.env << "'");
  for (const auto& r : spec.dr)
    if (r.key == "budget")
      IMAP_CHECK_MSG(
          spec.channel(ChannelKind::Budget) != nullptr ||
              spec.channel(ChannelKind::ObsPerturb) != nullptr ||
              spec.channel(ChannelKind::ActPerturb) != nullptr ||
              spec.channel(ChannelKind::ObsNoise) != nullptr,
          "scenario: dr[budget:...] scales perturbation budgets, but no "
          "perturbation/budget channel is present");
  return spec;
}

std::string canonical(const std::string& text) {
  return parse(text).canonical();
}

std::optional<std::string> try_canonical(const std::string& text) {
  try {
    return canonical(text);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

ScenarioSpec with_default_threat(ScenarioSpec spec) {
  if (spec.attackable()) return spec;
  ChannelSpec c;
  c.kind = ChannelKind::ObsPerturb;
  c.param = env::spec(spec.env).epsilon;
  spec.channels.insert(spec.channels.begin(), c);
  return spec;
}

std::vector<ScenarioSpec> expand(const std::string& pattern) {
  std::string s = pattern;
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](unsigned char c) { return std::isspace(c); }),
          s.end());
  IMAP_CHECK_MSG(!s.empty(), "scenario: empty pattern");

  // Seed range suffix.
  std::vector<std::string> seed_suffixes{""};
  const auto at = s.rfind('@');
  if (at != std::string::npos && s.find(']', at) == std::string::npos) {
    const std::string tail = s.substr(at + 1);
    s = s.substr(0, at);
    const auto dots = tail.find("..");
    if (dots == std::string::npos) {
      seed_suffixes = {"@" + tail};
    } else {
      const auto lo = static_cast<long long>(
          parse_num(tail.substr(0, dots), "seed range"));
      const auto hi = static_cast<long long>(
          parse_num(tail.substr(dots + 2), "seed range"));
      IMAP_CHECK_MSG(lo >= 0 && hi >= lo && hi - lo < 4096,
                     "scenario: bad seed range '@" << tail << "'");
      seed_suffixes.clear();
      for (long long v = lo; v <= hi; ++v)
        seed_suffixes.push_back("@" + std::to_string(v));
    }
  }

  // Env alternation: the leading component up to the first '+'.
  auto plus = s.find('+');
  if (plus == std::string::npos) plus = s.size();
  const std::string env_part = s.substr(0, plus);
  const std::string rest = s.substr(plus);
  std::vector<std::string> envs;
  if (env_part == "*") {
    for (const auto& e : env::single_agent_specs()) envs.push_back(e.name);
  } else {
    std::size_t pos = 0;
    while (pos <= env_part.size()) {
      auto next = env_part.find(',', pos);
      if (next == std::string::npos) next = env_part.size();
      envs.push_back(env_part.substr(pos, next - pos));
      pos = next + 1;
    }
  }

  std::vector<ScenarioSpec> out;
  out.reserve(envs.size() * seed_suffixes.size());
  for (const auto& e : envs)
    for (const auto& suffix : seed_suffixes)
      out.push_back(parse(e + rest + suffix));
  return out;
}

}  // namespace imap::scenario
