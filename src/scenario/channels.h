#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "scenario/spec.h"

namespace imap::scenario {

/// The two shared perturbation primitives. Both threat-model wrappers apply
/// them with exactly these loops, so porting a wrapper onto the pipeline is
/// bit-compatible by construction.

/// obs[i] += eps * ctrl[i] — the SA-MDP observation perturbation
/// (attack::StatePerturbationEnv::begin_step's arithmetic). `ctrl` must be
/// pre-clamped to [-1, 1] and at least obs.size() wide.
void apply_obs_perturb(std::vector<double>& obs, const double* ctrl,
                       double eps);

/// obs[i] += eps * U[-1,1], one draw per element in index order — the
/// robust-defense noise channel (defense::PerturbedVictimEnv noise mode).
void apply_obs_noise(std::vector<double>& obs, double eps, Rng& rng);

/// The stacked perturbation-channel state of one scenario instance: the
/// env-side observation corruptions (delay -> dropout -> noise, in pipeline
/// order), the adversary-controlled perturbations (obs_perturb on the victim
/// query, act_perturb on the victim action), and the shared per-episode ε
/// budget they deplete.
///
/// The adversary's action vector is the concatenation of the controlled
/// channels' slices: [obs_perturb: obs_dim][act_perturb: victim_act_dim].
/// Channels without control consume no dims.
///
/// All channel state (delay ring, dropout hold, noise streams, budget pool)
/// is a pure function of the reset Rng and the action sequence, so
/// replay-based snapshot restore (rl::EpisodeReplay) reproduces it without
/// any explicit serialization — the same property the existing wrappers
/// rely on.
class ChannelPipeline {
 public:
  ChannelPipeline(const ScenarioSpec& spec, std::size_t obs_dim,
                  std::size_t victim_act_dim);

  /// Total adversary-controlled dims (0 when no controlled channel).
  std::size_t ctrl_dim() const { return ctrl_dim_; }
  bool has_obs_perturb() const { return obs_eps_ >= 0.0; }
  bool has_act_perturb() const { return act_eps_ >= 0.0; }
  bool has_budget() const { return budget_total_ > 0.0; }

  /// Start an episode: reseed the stochastic channels from `rng` (one
  /// next_u64 per stochastic channel present, in pipeline order), clear the
  /// delay/dropout state and refill the budget pool scaled by
  /// `budget_scale` (the dr[budget] factor of this episode).
  void begin_episode(Rng& rng, double budget_scale);

  /// Env-side corruptions, in place, in pipeline order. Called on the reset
  /// observation and on every step observation.
  void corrupt_obs(std::vector<double>& obs);

  /// Adversary observation perturbation from the obs_perturb slice of the
  /// (pre-clamped) control vector; consumes budget.
  void perturb_obs(std::vector<double>& obs, const std::vector<double>& ctrl);

  /// Adversary action perturbation from the act_perturb slice; consumes
  /// budget. Caller re-clamps into the victim action space afterwards.
  void perturb_act(std::vector<double>& act, const std::vector<double>& ctrl);

  /// Remaining ε budget this episode (infinity when unbudgeted).
  double budget_remaining() const { return budget_remaining_; }

 private:
  /// Effective ε for one perturbation application under the depleting
  /// budget, charging max_i |eps_eff·ctrl_i| against the pool.
  double charge(double eps, const double* ctrl, std::size_t n);

  std::size_t obs_dim_ = 0;
  std::size_t act_dim_ = 0;
  std::size_t ctrl_dim_ = 0;

  // Channel parameters; a negative ε / delay / probability means "absent".
  double obs_eps_ = -1.0;
  double act_eps_ = -1.0;
  int delay_ = 0;
  double dropout_p_ = -1.0;
  double noise_eps_ = -1.0;
  double budget_total_ = 0.0;

  double budget_remaining_ = 0.0;
  Rng dropout_rng_{0};
  Rng noise_rng_{0};
  std::vector<std::vector<double>> delay_ring_;  ///< last `delay_`+1 raw obs
  std::size_t ring_head_ = 0;   ///< next write slot
  std::size_t ring_count_ = 0;  ///< observations banked since reset
  std::vector<double> hold_;    ///< dropout: last delivered observation
  bool episode_open_ = false;
};

}  // namespace imap::scenario
