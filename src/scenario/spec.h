#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace imap::scenario {

/// Perturbation channels of the composable threat-model pipeline, in the
/// FIXED pipeline order (see DESIGN.md "Scenario layer"): the enum order is
/// both the canonical-string order and the order channel effects compose in
/// (environment-side corruptions first, adversary-controlled perturbations
/// at the victim-query boundary). A scenario holds at most one channel of
/// each kind, so a channel *set* has exactly one canonical string and one
/// semantics.
enum class ChannelKind {
  ObsPerturb,  ///< adversary obs perturbation s + ε·a (the SA-MDP channel)
  ActPerturb,  ///< adversary action perturbation u + ε·a on the victim act
  ObsDelay,    ///< victim observes s_{t-k} (param = integer k ≥ 1)
  ObsDropout,  ///< each obs element held at its previous value w.p. p
  ObsNoise,    ///< obs + ε·U[-1,1]^d env noise (the robust-defense channel)
  Budget,      ///< per-episode ℓ∞ perturbation budget that depletes
};

const char* to_string(ChannelKind kind);

struct ChannelSpec {
  ChannelKind kind = ChannelKind::ObsPerturb;
  double param = 0.0;
};

/// One domain-randomization range `key:lo..hi`; keys are "budget", "gain",
/// "mass" (canonical order: sorted by key). The factor for each reset is
/// drawn uniformly from [lo, hi].
struct DrRange {
  std::string key;
  double lo = 1.0;
  double hi = 1.0;
};

/// A parsed scenario: environment + perturbation channels + procedural
/// domain-randomization ranges + family seed. The grammar (DESIGN.md):
///
///   scenario := env ('+' channel)* ('+' dr)? ('@' seed)?
///   channel  := name (':' number)?        e.g. obs_perturb:0.1, obs_delay:2
///   dr       := 'dr[' key ':' lo '..' hi (',' key ':' lo '..' hi)* ']'
///
/// `canonical()` renders the one normalized string for the scenario —
/// registry capitalization, channels in ChannelKind order with defaults
/// resolved, dr keys sorted, shortest-round-trip numbers — and that string
/// is the scenario's identity everywhere (zoo/experiment cache keys, DAG
/// nodes, the serving API). A trivial scenario (no channels, no dr, no
/// seed) canonicalizes to exactly the registry env name, so the paper-grid
/// baselines keep their existing cache keys.
struct ScenarioSpec {
  std::string env;                    ///< canonical registry name
  std::vector<ChannelSpec> channels;  ///< sorted by kind; at most one each
  std::vector<DrRange> dr;            ///< sorted by key
  std::uint64_t seed = 0;             ///< DR family seed (when has_seed)
  bool has_seed = false;

  bool trivial() const { return channels.empty() && dr.empty() && !has_seed; }
  const ChannelSpec* channel(ChannelKind kind) const;
  /// Any adversary-controlled channel (obs_perturb / act_perturb)?
  bool attackable() const;
  /// Observation-perturbation ε; falls back to the registry budget
  /// (env::spec(env).epsilon) when no obs_perturb channel is present.
  double epsilon() const;
  /// Per-episode perturbation budget (0 = unbounded / no budget channel).
  double budget() const;

  std::string canonical() const;
};

/// Parse a scenario string (case-insensitive env resolution against the
/// registry, defaults resolved, everything validated). Throws CheckError
/// with a pointed message on malformed input. parse(canonical(parse(s)))
/// is the identity on specs for every valid s.
ScenarioSpec parse(const std::string& text);

/// parse(text).canonical().
std::string canonical(const std::string& text);

/// Canonical string when `text` parses, std::nullopt otherwise. The serve
/// model cache uses this so injected synthetic model names bypass the
/// grammar instead of faulting the lookup.
std::optional<std::string> try_canonical(const std::string& text);

/// Ensure the spec names an adversary-controlled channel: appends
/// obs_perturb at the registry ε when none is present. The experiment
/// runner applies this to non-trivial scenarios before training an attack,
/// so the implicit default becomes explicit in the cell's identity string.
ScenarioSpec with_default_threat(ScenarioSpec spec);

/// Expand a scenario pattern into concrete scenarios:
///   * the env component may be '*' (every single-agent task) or a
///     comma-separated alternation ("hopper,walker2d");
///   * the seed may be a range `@lo..hi` (inclusive).
/// Plain scenarios expand to themselves. Order: envs in registry order /
/// as listed, then seeds ascending.
std::vector<ScenarioSpec> expand(const std::string& pattern);

/// Shortest round-trip decimal rendering (the canonical number format).
std::string format_number(double v);

}  // namespace imap::scenario
