#pragma once

#include <memory>

#include "attack/threat_model.h"
#include "rl/env.h"
#include "rl/policy_handle.h"
#include "rl/split_step.h"
#include "scenario/channels.h"
#include "scenario/spec.h"

namespace imap::scenario {

/// One scenario instance: the base environment wrapped in the full
/// perturbation-channel pipeline plus per-reset domain randomization, hosted
/// behind the same rl::SplitStepEnv contract as attack::StatePerturbationEnv
/// — so the vectorized rollout engine still answers every lockstep slot's
/// victim query with ONE batched forward per tick, whatever the channel
/// stack.
///
/// As an rl::Env the *agent* is the adversary; its action is the
/// concatenation of the controlled channels' slices (see ChannelPipeline).
/// A scenario with no controlled channel exposes one ignored dummy action
/// dim so PPO machinery and null attacks keep working.
///
/// Determinism: each reset draws, from the SLOT Rng it is given and in fixed
/// order, (1) one u64 for the dr factors when dr ranges are present — mixed
/// with the family seed, so `spec@7` names one reproducible family — then
/// (2) the inner env's own reset draws, then (3) one reseed u64 per
/// stochastic channel present. Everything downstream is a pure function of
/// those draws and the action sequence, so randomized rollouts are
/// bit-identical across any workers×slots×procs factorization and episodes
/// replay exactly from their pre-reset Rng state (snapshot restore).
class ScenarioEnv : public rl::EnvBase<ScenarioEnv>, public rl::SplitStepEnv {
 public:
  ScenarioEnv(const ScenarioSpec& spec, rl::PolicyHandle victim,
              attack::RewardMode mode);
  ScenarioEnv(const ScenarioEnv& other);
  ScenarioEnv& operator=(const ScenarioEnv&) = delete;

  std::size_t obs_dim() const override { return inner_->obs_dim(); }
  std::size_t act_dim() const override { return act_space_.dim(); }
  int max_steps() const override { return inner_->max_steps(); }
  /// The canonical scenario string — the identity used in cache keys.
  std::string name() const override { return spec_.canonical(); }
  const rl::BoxSpace& action_space() const override { return act_space_; }

  std::vector<double> reset(Rng& rng) override;
  rl::StepResult step(const std::vector<double>& action) override;

  // SplitStepEnv: step(a) == finish_step(victim.query(begin_step(a))).
  const std::vector<double>& begin_step(
      const std::vector<double>& action) override;
  rl::StepResult finish_step(const std::vector<double>& policy_out) override;
  std::size_t query_dim() const override { return inner_->obs_dim(); }
  const rl::PolicyHandle& frozen_policy() const override { return victim_; }

  const ScenarioSpec& spec() const { return spec_; }
  double epsilon() const { return spec_.epsilon(); }
  const rl::Env& inner() const { return *inner_; }
  /// Remaining ε budget in the current episode (infinity when unbudgeted).
  double budget_remaining() const { return pipeline_.budget_remaining(); }
  /// Dynamics scales drawn at the last reset (1/1 without mass/gain dr).
  const rl::DynamicsScales& dynamics() const { return dynamics_; }

 private:
  void apply_dr(Rng& rng);

  ScenarioSpec spec_;
  std::unique_ptr<rl::Env> inner_;
  rl::PolicyHandle victim_;
  attack::RewardMode mode_;
  ChannelPipeline pipeline_;
  rl::BoxSpace act_space_;
  rl::DynamicsScales dynamics_;
  double budget_scale_ = 1.0;
  std::vector<double> cur_obs_;
  std::vector<double> pending_ctrl_;  ///< clamped action, begin->finish
  std::vector<double> perturbed_;     ///< begin_step scratch (reused)
};

/// Build the attack/evaluation env for a scenario: RewardMode::Adversary for
/// attack training, RewardMode::VictimTrue for evaluation (exactly the
/// threat_model.h conventions).
std::unique_ptr<ScenarioEnv> make_scenario_env(const ScenarioSpec& spec,
                                               rl::PolicyHandle victim,
                                               attack::RewardMode mode);

}  // namespace imap::scenario
