// fabric_grid: drive a small victim→attack experiment grid through the
// multi-process DAG scheduler and (optionally) prove it bit-identical to a
// serial run of the same grid in a separate store.
//
//   Usage: fabric_grid [--procs N] [--crash-nth K] [--zoo DIR]
//                      [--serial-zoo DIR] [--steps N] [--episodes N]
//                      [--scenario SPEC] [--compare]
//
//   --procs N       worker processes for the DAG run (default 2)
//   --crash-nth K   crash drill: kill the worker executing the Kth attack
//                   dispatch mid-cell; the scheduler must re-dispatch it and
//                   resume from the snapshot (default 0 = off)
//   --zoo DIR       artifact store for the DAG run (default ./fabric_zoo)
//   --serial-zoo D  store for the serial reference run (default <zoo>_serial)
//   --steps N       attack training steps per cell (default 4096)
//   --episodes N    eval episodes per cell (default 10)
//   --scenario S    append an SA-RL attack cell over scenario string S (e.g.
//                   "hopper+obs_delay:1+dr[mass:0.9..1.1]@7"); it shares its
//                   base env's victim node with the baseline cells
//   --compare       also run the grid serially (1 process, fresh store) and
//                   bit-compare every outcome; exit 1 on any mismatch
//
// Exit status: 0 on success (and bit-identical outcomes under --compare),
// 1 on mismatch or bad usage. This is the ci.sh fabric stage's workhorse.

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/experiment.h"
#include "core/experiment_dag.h"

namespace {

std::uint64_t bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool same(double a, double b) { return bits(a) == bits(b); }

/// Bitwise outcome equality — fabric runs must not differ from serial runs
/// by even one ULP anywhere.
bool outcomes_identical(const imap::core::AttackOutcome& a,
                        const imap::core::AttackOutcome& b,
                        std::string& why) {
  const auto& ea = a.victim_eval;
  const auto& eb = b.victim_eval;
  if (a.completed != b.completed) { why = "completed"; return false; }
  if (!same(ea.returns.mean, eb.returns.mean)) { why = "mean"; return false; }
  if (!same(ea.returns.stddev, eb.returns.stddev)) { why = "stddev"; return false; }
  if (ea.returns.episodes != eb.returns.episodes) { why = "episodes"; return false; }
  if (!same(ea.success_rate, eb.success_rate)) { why = "success_rate"; return false; }
  if (!same(ea.mean_length, eb.mean_length)) { why = "mean_length"; return false; }
  if (ea.episode_returns.size() != eb.episode_returns.size()) { why = "returns size"; return false; }
  for (std::size_t i = 0; i < ea.episode_returns.size(); ++i)
    if (!same(ea.episode_returns[i], eb.episode_returns[i])) { why = "episode_returns"; return false; }
  if (a.curve.size() != b.curve.size()) { why = "curve size"; return false; }
  for (std::size_t i = 0; i < a.curve.size(); ++i)
    if (a.curve[i].steps != b.curve[i].steps ||
        !same(a.curve[i].victim_success, b.curve[i].victim_success) ||
        !same(a.curve[i].tau, b.curve[i].tau)) { why = "curve"; return false; }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int procs = 2;
  int crash_nth = 0;
  long long steps = 4096;
  int episodes = 10;
  bool compare = false;
  std::string zoo = "./fabric_zoo";
  std::string serial_zoo;
  std::string scenario;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fabric_grid: " << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--procs") procs = std::stoi(next());
    else if (arg == "--crash-nth") crash_nth = std::stoi(next());
    else if (arg == "--zoo") zoo = next();
    else if (arg == "--serial-zoo") serial_zoo = next();
    else if (arg == "--steps") steps = std::stoll(next());
    else if (arg == "--episodes") episodes = std::stoi(next());
    else if (arg == "--scenario") scenario = next();
    else if (arg == "--compare") compare = true;
    else {
      std::cerr << "fabric_grid: unknown flag " << arg << "\n";
      return 1;
    }
  }
  if (serial_zoo.empty()) serial_zoo = zoo + "_serial";

  // A small grid with real DAG structure: three attack cells sharing one
  // victim checkpoint (SparseHopper deploys the dense Hopper victim).
  using imap::core::AttackKind;
  std::vector<imap::core::AttackPlan> plans;
  for (const auto& [env, kind] :
       std::vector<std::pair<std::string, AttackKind>>{
           {"Hopper", AttackKind::None},
           {"Hopper", AttackKind::ImapPC},
           {"SparseHopper", AttackKind::ImapSC}}) {
    imap::core::AttackPlan p;
    p.env_name = env;
    p.attack = kind;
    p.attack_steps = steps;
    p.eval_episodes = episodes;
    plans.push_back(p);
  }
  if (!scenario.empty()) {
    // Randomized-scenario cell: the full channel/DR pipeline under an SA-RL
    // adversary, scheduled through the same DAG (and victim dedup) as the
    // baseline cells.
    imap::core::AttackPlan p;
    p.scenario = scenario;
    p.attack = AttackKind::SaRl;
    p.attack_steps = steps;
    p.eval_episodes = episodes;
    plans.push_back(p);
  }

  imap::BenchConfig cfg = imap::BenchConfig::from_env();
  cfg.zoo_dir = zoo;
  if (cfg.snapshot_every <= 0) cfg.snapshot_every = 1;  // crash drill fodder

  imap::core::DagOptions dopts;
  dopts.procs = procs;
  dopts.crash_nth_attack = crash_nth;
  imap::core::DagScheduler sched(cfg, dopts);
  const auto out = sched.run(plans);
  const auto& st = sched.stats();
  std::cout << "{\"nodes\": " << st.nodes << ", \"procs\": " << st.procs
            << ", \"dispatched\": " << st.dispatched
            << ", \"re_dispatched\": " << st.re_dispatched
            << ", \"worker_deaths\": " << st.worker_deaths << "}\n";

  if (crash_nth > 0 && (st.worker_deaths < 1 || st.re_dispatched < 1)) {
    std::cerr << "fabric_grid: crash drill did not kill/re-dispatch\n";
    return 1;
  }

  if (compare) {
    imap::BenchConfig scfg = cfg;
    scfg.zoo_dir = serial_zoo;
    imap::core::DagOptions sopts;
    sopts.procs = 1;
    imap::core::DagScheduler serial(scfg, sopts);
    const auto ref = serial.run(plans);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      std::string why;
      if (!outcomes_identical(out[i], ref[i], why)) {
        std::cerr << "fabric_grid: MISMATCH vs serial in plan " << i << " ("
                  << (plans[i].scenario.empty() ? plans[i].env_name
                                                : plans[i].scenario)
                  << "): " << why << "\n";
        return 1;
      }
    }
    std::cout << "fabric vs serial: " << plans.size()
              << " outcomes bit-identical\n";
  }
  return 0;
}
