// imap_serve: the long-running robustness-evaluation serving daemon.
//
// Loads the victim zoo once, keeps hot models resident in a TTL'd cache and
// answers HTTP on 127.0.0.1 (see src/serve/server.h for the route table).
// Concurrent single-row /infer requests for the same victim are coalesced
// into one batched int8 forward — responses stay bit-identical to direct
// per-request queries.
//
//   Usage: imap_serve [--port N] [--print-port]
//
// Configuration (flags override environment):
//   IMAP_SERVE_PORT         listen port (default 8950; 0 = ephemeral)
//   IMAP_SERVE_THREADS      request-handler workers (default 8)
//   IMAP_SERVE_MAX_BATCH    rows per coalesced forward (default 32)
//   IMAP_SERVE_MAX_WAIT_US  batching deadline in microseconds (default 200)
//   IMAP_SERVE_COALESCE     1/0: cross-connection coalescing (default 1)
//   IMAP_SERVE_QUANT        1/0: serve victims through int8 (default 1)
//   IMAP_SERVE_CACHE_TTL_MS model-cache TTL (default 60000)
//   IMAP_SERVE_CACHE_CAP    resident-model capacity (default 16)
//   IMAP_SERVE_JOB_PROCS    attack-job fabric processes (0 = IMAP_PROCS)
//   plus the usual IMAP_ZOO_DIR / IMAP_BENCH_SCALE / IMAP_SEED knobs.
//
// SIGINT/SIGTERM drain in-flight requests and exit 0.

#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.h"
#include "common/proc.h"
#include "serve/server.h"

namespace {

// Classic self-pipe: the handler sets the flag and pokes the pipe the main
// thread is blocked on (write(2) is async-signal-safe), so shutdown starts
// immediately instead of on the next poll timeout.
volatile std::sig_atomic_t g_stop = 0;
int g_wake_w = -1;

void on_signal(int) {
  g_stop = 1;
  if (g_wake_w >= 0) {
    const ssize_t rc = ::write(g_wake_w, "x", 1);
    (void)rc;
  }
}

int env_int(const char* name, int fallback) {
  return static_cast<int>(imap::env_double(name, fallback));
}

}  // namespace

int main(int argc, char** argv) {
  imap::serve::ServeOptions opts;
  opts.bench = imap::BenchConfig::from_env();
  opts.port = static_cast<std::uint16_t>(env_int("IMAP_SERVE_PORT", 8950));
  opts.threads = env_int("IMAP_SERVE_THREADS", 8);
  opts.coalesce.max_batch = env_int("IMAP_SERVE_MAX_BATCH", 32);
  opts.coalesce.max_wait_us = env_int("IMAP_SERVE_MAX_WAIT_US", 200);
  opts.coalesce.enabled = env_int("IMAP_SERVE_COALESCE", 1) != 0;
  opts.cache.quant = env_int("IMAP_SERVE_QUANT", 1) != 0;
  opts.cache.ttl_ms = env_int("IMAP_SERVE_CACHE_TTL_MS", 60'000);
  opts.cache.capacity = env_int("IMAP_SERVE_CACHE_CAP", 16);
  opts.job_procs = env_int("IMAP_SERVE_JOB_PROCS", 0);

  bool print_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      opts.port = static_cast<std::uint16_t>(std::stoi(argv[++i]));
    } else if (arg == "--print-port") {
      print_port = true;
    } else {
      std::cerr << "imap_serve: unknown flag " << arg << "\n";
      return 1;
    }
  }

  int wake[2];
  if (::pipe(wake) != 0) {
    std::cerr << "imap_serve: pipe() failed\n";
    return 1;
  }
  g_wake_w = wake[1];
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  imap::serve::Server server(opts);
  server.start();
  if (print_port) std::cout << server.port() << std::endl;
  std::cerr << "imap_serve: listening on 127.0.0.1:" << server.port()
            << " (zoo: " << opts.bench.zoo_dir
            << ", coalesce: " << (opts.coalesce.enabled ? "on" : "off")
            << ", max_batch: " << opts.coalesce.max_batch
            << ", max_wait_us: " << opts.coalesce.max_wait_us
            << ", quant: " << (opts.cache.quant ? "int8" : "fp64") << ")\n";

  // The server runs on its own pool; this thread blocks on the self-pipe
  // until a signal arrives.
  while (g_stop == 0) imap::proc::poll_readable({wake[0]}, 1000);
  std::cerr << "imap_serve: draining and shutting down\n";
  server.stop();
  return 0;
}
