#!/usr/bin/env python3
"""Self-test for imap_lint: every rule must fire on its bad fixture and stay
silent on the clean fixtures. Registered in tier-1 ctest as lint.selftest."""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
sys.path.insert(0, HERE)

import imap_lint  # noqa: E402


def lint_fixture(filename, relpath=None):
    """Lint a fixture file under a synthetic repo-relative path (so path-scoped
    rules like unordered-iter see a numeric src/ location)."""
    with open(os.path.join(FIXTURES, filename), encoding="utf-8") as fh:
        text = fh.read()
    return imap_lint.lint_file(relpath or f"src/core/{filename}", text)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class RuleFiring(unittest.TestCase):
    def test_rng_discipline_fires_per_primitive(self):
        findings = lint_fixture("bad_rng.cpp")
        self.assertEqual(rules_of(findings), ["rng-discipline"])
        # random_device, mt19937, srand, std::rand — one finding per line.
        self.assertEqual(len(findings), 4)

    def test_rng_rule_exempts_its_home_files(self):
        with open(os.path.join(FIXTURES, "bad_rng.cpp"), encoding="utf-8") as fh:
            text = fh.read()
        self.assertEqual(imap_lint.lint_file("src/common/rng.cpp", text), [])

    def test_raw_thread_fires_on_thread_detach_async(self):
        findings = lint_fixture("bad_thread.cpp")
        self.assertEqual(rules_of(findings), ["raw-thread"])
        self.assertEqual(len(findings), 3)

    def test_hardware_concurrency_is_not_thread_creation(self):
        code = "unsigned n = std::thread::hardware_concurrency();\n"
        self.assertEqual(imap_lint.lint_file("src/rl/ppo.cpp", code), [])

    def test_unordered_iteration_fires_in_numeric_paths_only(self):
        findings = lint_fixture("bad_unordered.cpp")
        self.assertEqual(rules_of(findings), ["unordered-iter"])
        self.assertEqual(len(findings), 2)  # range-for + iterator loop
        outside = lint_fixture("bad_unordered.cpp",
                               relpath="tools/fixture/bad_unordered.cpp")
        self.assertEqual(outside, [])

    def test_float_eq_fires_on_literal_comparisons(self):
        findings = lint_fixture("bad_float_eq.cpp")
        self.assertEqual(rules_of(findings), ["float-eq"])
        self.assertEqual(len(findings), 3)

    def test_header_hygiene_fires_three_ways(self):
        findings = lint_fixture("bad_header.h")
        self.assertEqual(
            rules_of(findings),
            ["parent-include", "pragma-once", "using-ns-header"])

    def test_hot_loop_alloc_fires_in_hot_path_layers_only(self):
        # for-body, while-body, braceless for-body; hoisted decl and the
        # reference inside a loop stay silent — in every hot-path layer.
        for rel in ("src/nn/bad_hot_alloc.cpp", "src/rl/bad_hot_alloc.cpp",
                    "src/attack/bad_hot_alloc.cpp",
                    "src/serve/bad_hot_alloc.cpp",
                    "src/scenario/bad_hot_alloc.cpp"):
            findings = lint_fixture("bad_hot_alloc.cpp", relpath=rel)
            self.assertEqual(rules_of(findings), ["hot-loop-alloc"], rel)
            self.assertEqual(len(findings), 3, rel)
        # The rule is scoped to the hot-path layers: the same code elsewhere
        # (default src/core path) is silent.
        self.assertEqual(lint_fixture("bad_hot_alloc.cpp"), [])

    def test_hot_loop_alloc_fires_on_quant_buffer_types(self):
        # float / int16_t / int32_t / int8_t scratch inside loops — the
        # quantized-serving buffer types; hoisted and thread_local
        # function-scope vectors and a reference inside a loop stay silent.
        findings = lint_fixture("bad_hot_alloc_quant.cpp",
                                relpath="src/nn/bad_hot_alloc_quant.cpp")
        self.assertEqual(rules_of(findings), ["hot-loop-alloc"])
        self.assertEqual(len(findings), 4)
        # Path scoping still applies outside the hot-path layers.
        self.assertEqual(lint_fixture("bad_hot_alloc_quant.cpp"), [])

    def test_hot_loop_alloc_fires_on_collect_shaped_loops(self):
        findings = lint_fixture("bad_hot_alloc_collect.cpp",
                                relpath="src/rl/bad_hot_alloc_collect.cpp")
        self.assertEqual(rules_of(findings), ["hot-loop-alloc"])
        # per-tick obs, per-tick copy-init, per-query victim input.
        self.assertEqual(len(findings), 3)
        self.assertEqual(lint_fixture("bad_hot_alloc_collect.cpp"), [])

    def test_hot_loop_alloc_fires_on_serving_loops(self):
        # Request gather row and per-request int8 scratch — the serving
        # layer's hot shapes; src/serve/ is a hot-path layer.
        findings = lint_fixture("bad_hot_alloc_serve.cpp",
                                relpath="src/serve/bad_hot_alloc_serve.cpp")
        self.assertEqual(rules_of(findings), ["hot-loop-alloc"])
        self.assertEqual(len(findings), 2)
        # Path scoping still applies outside the hot-path layers.
        self.assertEqual(lint_fixture("bad_hot_alloc_serve.cpp"), [])

    def test_hot_loop_alloc_fires_on_channel_pipeline_loops(self):
        # Per-tick delay-ring slot and perturbation row — the scenario
        # layer's channel pipeline runs every environment step and is a
        # hot-path layer like the rollout engine it feeds.
        findings = lint_fixture("bad_hot_alloc_scenario.cpp",
                                relpath="src/scenario/bad_hot_alloc_scenario.cpp")
        self.assertEqual(rules_of(findings), ["hot-loop-alloc"])
        self.assertEqual(len(findings), 2)
        # Path scoping still applies outside the hot-path layers.
        self.assertEqual(lint_fixture("bad_hot_alloc_scenario.cpp"), [])

    def test_hot_loop_alloc_ignores_loop_header_and_suppresses(self):
        init = (
            "void f(std::size_t n) {\n"
            "  for (std::vector<double> v(n); v.size() < n;) v.clear();\n"
            "}\n"
        )
        self.assertEqual(imap_lint.lint_file("src/nn/x.cpp", init), [])
        suppressed = (
            "void f(std::size_t n) {\n"
            "  for (std::size_t i = 0; i < n; ++i) {\n"
            "    std::vector<double> v(n);"
            "  // imap-lint: allow(hot-loop-alloc)\n"
            "  }\n"
            "}\n"
        )
        self.assertEqual(imap_lint.lint_file("src/nn/x.cpp", suppressed), [])

    def test_serialize_symmetry_fires_on_one_sided_headers(self):
        findings = lint_fixture("bad_serialize_asym.h",
                                relpath="src/core/bad_serialize_asym.h")
        self.assertEqual(rules_of(findings), ["serialize-symmetry"])
        self.assertEqual(len(findings), 1)
        # The mirror asymmetry (load without save) fires too.
        load_only = (
            "#pragma once\n"
            "struct S { void load_state(BinaryReader& r); };\n"
        )
        findings = imap_lint.lint_file("src/rl/x.h", load_only)
        self.assertEqual(rules_of(findings), ["serialize-symmetry"])
        # A symmetric pair is silent, and the rule is header-only: an
        # implementation file defining just one side (the other may live in
        # another TU) is fine.
        paired = (
            "#pragma once\n"
            "struct S {\n"
            "  void save_state(BinaryWriter& w) const;\n"
            "  void load_state(BinaryReader& r);\n"
            "};\n"
        )
        self.assertEqual(imap_lint.lint_file("src/rl/x.h", paired), [])
        self.assertEqual(
            imap_lint.lint_file(
                "src/rl/x.cpp", "void S::save_state(BinaryWriter& w) const {}\n"),
            [])

    def test_clean_fixtures_are_silent(self):
        self.assertEqual(lint_fixture("clean.cpp"), [])
        self.assertEqual(lint_fixture("clean.h"), [])


class Suppression(unittest.TestCase):
    def test_inline_allow_suppresses_only_that_rule_on_that_line(self):
        code = (
            "bool a = (x == 0.0);  // imap-lint: allow(float-eq)\n"
            "bool b = (y == 0.0);\n"
        )
        findings = imap_lint.lint_file("src/rl/gae.cpp", code)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 2)

    def test_allowlist_glob_matches(self):
        entries = [("float-eq", "src/rl/*.cpp")]
        self.assertTrue(imap_lint.allowed(entries, "float-eq", "src/rl/gae.cpp"))
        self.assertFalse(imap_lint.allowed(entries, "float-eq", "src/nn/mlp.cpp"))
        self.assertFalse(imap_lint.allowed(entries, "raw-thread", "src/rl/gae.cpp"))


class Stripper(unittest.TestCase):
    def test_comments_and_strings_never_fire(self):
        code = (
            "// std::rand() in a comment\n"
            "/* std::thread t; */\n"
            'const char* s = "std::random_device";\n'
        )
        self.assertEqual(imap_lint.lint_file("src/core/x.cpp", code), [])

    def test_block_comment_spanning_lines(self):
        code = "/* begin\nstd::rand();\nend */\nint x = 0;\n"
        self.assertEqual(imap_lint.lint_file("src/core/x.cpp", code), [])


class CommandLine(unittest.TestCase):
    def test_cli_exit_codes(self):
        lint = os.path.join(HERE, "imap_lint.py")
        bad = subprocess.run(
            [sys.executable, lint, "--root", FIXTURES, "--allowlist",
             os.devnull, "bad_rng.cpp"],
            capture_output=True, text=True)
        self.assertEqual(bad.returncode, 1, bad.stdout + bad.stderr)
        self.assertIn("rng-discipline", bad.stdout)
        self.assertIn("fix-it:", bad.stdout)
        clean = subprocess.run(
            [sys.executable, lint, "--root", FIXTURES, "--allowlist",
             os.devnull, "clean.cpp", "clean.h"],
            capture_output=True, text=True)
        self.assertEqual(clean.returncode, 0, clean.stdout + clean.stderr)


if __name__ == "__main__":
    unittest.main()
