#!/usr/bin/env python3
"""imap_lint — repo-specific invariant linter for the imap codebase.

Enforces rules that no off-the-shelf tool knows about:

  rng-discipline     All randomness flows through imap::Rng (src/common/rng.*).
                     std::rand / srand / std::random_device / raw mt19937
                     anywhere else breaks seed-reproducibility and the
                     RNG-stream-splitting discipline.
  unordered-iter     Iterating a std::unordered_map/std::unordered_set in a
                     numeric code path makes results depend on hash layout
                     (pointer values, libstdc++ version) — nondeterministic
                     run-to-run. Use std::map/std::set or sort keys first.
  raw-thread         All parallelism flows through imap::ThreadPool
                     (src/common/thread_pool.*). Raw std::thread/std::jthread/
                     std::async or .detach() bypasses IMAP_THREADS, ScopedSerial
                     and the determinism guarantees of parallel_for.
  float-eq           ==/!= against floating-point literals is brittle; compare
                     with a tolerance (std::abs(a-b) <= eps, EXPECT_NEAR) or
                     suppress deliberately for exact sentinels.
  pragma-once        Every header starts with #pragma once.
  using-ns-header    No `using namespace` at namespace scope in headers.
  parent-include     No parent-relative includes (#include "../..."): project
                     headers are included relative to src/ (e.g. "common/rng.h").
  hot-loop-alloc     Constructing a numeric std::vector (double, float, or a
                     fixed-width integer — the kernel and quantized-serving
                     buffer types) inside a loop in a hot-path layer
                     (src/nn/, src/rl/, src/attack/, src/serve/) allocates
                     on every
                     iteration; the zero-allocation contract of the kernels,
                     the rollout engine and the int8 serving path requires
                     hoisted, capacity-reusing buffers (Batch /
                     Mlp::Workspace, including its q* scratch).
  serialize-symmetry A header that declares save_state must declare load_state
                     too (and vice versa). A one-sided pair means checkpoints
                     that can be written but never restored — the
                     checkpoint/resume bit-identity contract needs both.

Suppression:
  * inline, single finding:   // imap-lint: allow(rule-name)
  * allowlist file (default tools/lint/lint_allowlist.txt): lines of
    `rule-name  path-glob` (fnmatch against the repo-relative posix path).
    Keep every entry documented with a trailing comment.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys

CXX_EXTENSIONS = {".h", ".hpp", ".cpp", ".cc", ".cxx"}

SUPPRESS_RE = re.compile(r"imap-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

FIXITS = {
    "rng-discipline": (
        "use imap::Rng (src/common/rng.h) and derive decorrelated child "
        "streams with Rng::split"
    ),
    "unordered-iter": (
        "iteration order of unordered containers is nondeterministic; use "
        "std::map/std::set, or copy+sort the keys before iterating"
    ),
    "raw-thread": (
        "use imap::ThreadPool / parallel_for (src/common/thread_pool.h); raw "
        "threads bypass IMAP_THREADS and the determinism controls"
    ),
    "float-eq": (
        "exact floating-point comparison is brittle; compare with a tolerance "
        "(std::abs(a-b) <= eps, EXPECT_NEAR) or annotate a deliberate exact "
        "sentinel with // imap-lint: allow(float-eq)"
    ),
    "pragma-once": "add #pragma once as the first directive of the header",
    "using-ns-header": (
        "remove `using namespace` from the header; qualify names instead "
        "(headers leak it into every includer)"
    ),
    "parent-include": (
        'include project headers relative to src/ (e.g. "common/rng.h"), not '
        "via parent-relative paths"
    ),
    "hot-loop-alloc": (
        "hoist the numeric std::vector out of the loop and reuse it (resize/"
        "assign on a caller-owned buffer, Batch, or Mlp::Workspace — the q* "
        "scratch for quantized buffers); the src/nn, src/rl, src/attack and "
        "src/serve hot paths must be allocation-free in steady state"
    ),
    "serialize-symmetry": (
        "declare the matching save_state/load_state counterpart in the same "
        "header; serialization must round-trip (see common/serialize.h)"
    ),
}

# Files that ARE the sanctioned implementation and therefore exempt from the
# corresponding rule (not allowlist entries — they define the rule's boundary).
RULE_HOME = {
    "rng-discipline": ["src/common/rng.h", "src/common/rng.cpp"],
    "raw-thread": ["src/common/thread_pool.h", "src/common/thread_pool.cpp"],
}

RNG_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\bstd::random_device\b|\brandom_device\b"
    r"|\bstd::(?:mt19937|mt19937_64|minstd_rand0?|ranlux\w+|knuth_b)\b"
)
# `std::thread::hardware_concurrency()` is a static query, not thread
# creation, so `std::thread` followed by `::` is deliberately not matched.
THREAD_RE = re.compile(
    r"\bstd::thread\b(?!\s*::)|\bstd::jthread\b(?!\s*::)"
    r"|\bstd::async\b|\.\s*detach\s*\(\)"
)
UNORDERED_DECL_RE = re.compile(
    r"\b(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?(\w+)\s*\)")
ITER_BEGIN_RE = re.compile(r"\bfor\s*\(.*=\s*(\w+)\s*\.\s*c?begin\s*\(")
FLOAT_LIT = r"[-+]?(?:\d+\.\d*|\.\d+|\d+e[-+]?\d+|\d+\.\d*e[-+]?\d+)f?"
FLOAT_EQ_RE = re.compile(
    r"(?:[=!]=\s*" + FLOAT_LIT + r"(?![\w.]))|(?:(?<![\w.])" + FLOAT_LIT + r"\s*[=!]=)"
)
USING_NS_RE = re.compile(r"^\s*using\s+namespace\s+\w")
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s+"(\.\./|.*/\.\./)')
# A numeric std::vector *construction* (declaration or temporary); plain
# references/pointers (`std::vector<double>&`) deliberately do not match.
# Element types cover every hot-path buffer: fp64 training, fp32 and int8/
# int16/int32 quantized-serving scratch (src/nn/quant.*).
HOT_ALLOC_ELEM = r"(?:double|float|(?:std::)?u?int(?:8|16|32|64)_t)"
HOT_ALLOC_RE = re.compile(
    r"\bstd::vector\s*<\s*" + HOT_ALLOC_ELEM + r"\s*>\s*(?:\w+\s*)?[({]"
    r"|\bstd::vector\s*<\s*" + HOT_ALLOC_ELEM + r"\s*>\s+\w+\s*[;=]"
)
LOOP_KW_RE = re.compile(r"\b(?:for|while)\s*\(")
SAVE_STATE_RE = re.compile(r"\bsave_state\s*\(")
LOAD_STATE_RE = re.compile(r"\bload_state\s*\(")


def hot_loop_alloc_lines(code: list[str]) -> list[int]:
    """Indices of lines that construct a numeric std::vector inside a loop.

    A small character-level scanner tracks loop nesting: a `for`/`while`
    header opens at its '('; once the header's parens close, the next '{'
    pushes a loop body (a ';' instead means a braceless/empty body and is
    treated as closing it). Constructions inside the header itself (for-init
    runs once) are not flagged.
    """
    hits: list[int] = []
    brace_stack: list[bool] = []  # True = this brace opened a loop body
    header_parens = 0  # >0 while inside a loop header's (...)
    awaiting_body = False  # header closed, waiting for '{' or ';'
    for idx, line in enumerate(code):
        kw_spans = {m.start(): m.end() for m in LOOP_KW_RE.finditer(line)}
        allocs = [m.start() for m in HOT_ALLOC_RE.finditer(line)]
        j, n = 0, len(line)
        while j < n:
            if allocs and allocs[0] == j:
                allocs.pop(0)
                in_loop_body = any(brace_stack) or awaiting_body
                if in_loop_body and header_parens == 0 and idx not in hits:
                    hits.append(idx)
            if header_parens:
                if line[j] == "(":
                    header_parens += 1
                elif line[j] == ")":
                    header_parens -= 1
                    if header_parens == 0:
                        awaiting_body = True
                j += 1
                continue
            if j in kw_spans:
                j = kw_spans[j]
                header_parens = 1
                awaiting_body = False
                continue
            c = line[j]
            if c == "{":
                brace_stack.append(awaiting_body)
                awaiting_body = False
            elif c == "}":
                if brace_stack:
                    brace_stack.pop()
            elif c == ";":
                awaiting_body = False
            j += 1
    return hits


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
            f"    fix-it: {FIXITS[self.rule]}"
        )


def strip_code(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving line structure,
    so rule regexes never fire on prose or quoted text."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i, n = 0, len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c == '"' or c == "'":
                quote = c
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                buf.append(quote + quote)
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def is_numeric_path(relpath: str) -> bool:
    """Code paths where hash-order nondeterminism corrupts results."""
    numeric_dirs = (
        "src/nn/", "src/rl/", "src/core/", "src/phys/",
        "src/attack/", "src/defense/", "src/env/", "src/serve/",
        "src/scenario/",
    )
    return relpath.startswith(numeric_dirs)


def lint_file(relpath: str, text: str) -> list[Finding]:
    raw_lines = text.splitlines()
    code = strip_code(raw_lines)
    is_header = os.path.splitext(relpath)[1] in {".h", ".hpp"}

    suppressed: dict[int, set[str]] = {}
    for idx, raw in enumerate(raw_lines):
        m = SUPPRESS_RE.search(raw)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            suppressed[idx] = rules

    findings: list[Finding] = []

    def add(idx: int, rule: str, message: str) -> None:
        if rule in suppressed.get(idx, set()):
            return
        findings.append(Finding(relpath, idx + 1, rule, message))

    # --- pragma-once: first non-comment, non-blank directive of a header.
    if is_header:
        has_pragma = any(
            line.strip().startswith("#pragma once") for line in code
        )
        if not has_pragma:
            add(0, "pragma-once", "header is missing #pragma once")

    unordered_vars: set[str] = set()
    rng_exempt = relpath in RULE_HOME["rng-discipline"]
    thread_exempt = relpath in RULE_HOME["raw-thread"]

    for idx, line in enumerate(code):
        # --- rng-discipline
        if not rng_exempt:
            m = RNG_RE.search(line)
            if m:
                add(idx, "rng-discipline",
                    f"raw standard-library RNG `{m.group(0).strip()}` outside "
                    "src/common/rng.*")

        # --- raw-thread
        if not thread_exempt:
            m = THREAD_RE.search(line)
            if m:
                add(idx, "raw-thread",
                    f"raw threading primitive `{m.group(0).strip()}` outside "
                    "src/common/thread_pool.*")

        # --- unordered-iter (numeric paths only)
        if is_numeric_path(relpath):
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_vars.add(m.group(1))
            for pat in (RANGE_FOR_RE, ITER_BEGIN_RE):
                m = pat.search(line)
                if m and m.group(1) in unordered_vars:
                    add(idx, "unordered-iter",
                        f"iteration over unordered container `{m.group(1)}` "
                        "in a numeric code path")

        # --- float-eq
        if FLOAT_EQ_RE.search(line):
            add(idx, "float-eq",
                "exact ==/!= comparison against a floating-point literal")

        # --- header hygiene
        if is_header and USING_NS_RE.search(line):
            add(idx, "using-ns-header", "`using namespace` in a header")
        # Include paths live inside string literals, which the stripper
        # blanks — match against the raw line instead.
        if PARENT_INCLUDE_RE.search(raw_lines[idx]):
            add(idx, "parent-include", "parent-relative #include")

    # --- serialize-symmetry (headers: every save_state needs a load_state)
    if is_header:
        saves = [i for i, l in enumerate(code) if SAVE_STATE_RE.search(l)]
        loads = [i for i, l in enumerate(code) if LOAD_STATE_RE.search(l)]
        if saves and not loads:
            add(saves[0], "serialize-symmetry",
                "header declares save_state but no load_state")
        elif loads and not saves:
            add(loads[0], "serialize-symmetry",
                "header declares load_state but no save_state")

    # --- hot-loop-alloc (hot-path layers: kernels, rollout engine, attacks)
    if relpath.startswith(("src/nn/", "src/rl/", "src/attack/", "src/serve/",
                           "src/scenario/")):
        for idx in hot_loop_alloc_lines(code):
            add(idx, "hot-loop-alloc",
                "numeric std::vector constructed inside a loop in a "
                "hot-path file")

    return findings


def load_allowlist(path: str) -> list[tuple[str, str]]:
    entries: list[tuple[str, str]] = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[0] not in FIXITS:
                print(f"{path}:{lineno}: malformed allowlist entry: {raw.rstrip()}",
                      file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1]))
    return entries


def allowed(entries: list[tuple[str, str]], rule: str, relpath: str) -> bool:
    return any(r == rule and fnmatch.fnmatch(relpath, glob)
               for r, glob in entries)


def collect_files(root: str, paths: list[str]) -> list[str]:
    rels: list[str] = []
    for p in paths:
        ap = os.path.join(root, p)
        if os.path.isfile(ap):
            rels.append(os.path.relpath(ap, root))
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in CXX_EXTENSIONS:
                    rels.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(set(r.replace(os.sep, "/") for r in rels))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repo root (paths are relative to it)")
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default <root>/tools/lint/lint_allowlist.txt)")
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    allowlist_path = args.allowlist or os.path.join(root, "tools/lint/lint_allowlist.txt")
    entries = load_allowlist(allowlist_path)

    files = collect_files(root, args.paths)
    if not files:
        print("imap_lint: no C++ files found under the given paths", file=sys.stderr)
        return 2

    all_findings: list[Finding] = []
    for rel in files:
        with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        for f in lint_file(rel, text):
            if not allowed(entries, f.rule, f.path):
                all_findings.append(f)

    for f in all_findings:
        print(f)
    n = len(all_findings)
    print(f"imap_lint: {len(files)} files checked, {n} finding(s)")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
