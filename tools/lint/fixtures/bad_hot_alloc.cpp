// Fixture: std::vector<double> constructed inside loops — each marked line
// must trigger hot-loop-alloc when linted under a src/nn/ path.
#include <cstddef>
#include <vector>

void hot(std::size_t n) {
  std::vector<double> hoisted(n);  // outside any loop: fine
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> scratch(n);  // BAD: fresh heap block per iteration
    scratch[0] = static_cast<double>(i);
  }
  std::size_t k = 0;
  while (k < n) {
    std::vector<double> tmp;  // BAD: default-construct in loop
    tmp.push_back(1.0);
    ++k;
  }
  for (std::size_t i = 0; i < n; ++i)
    std::vector<double> braceless{1.0};  // BAD: braceless loop body
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double>& ref = hoisted;  // reference: fine
    hoisted[0] = ref[0];
  }
}
