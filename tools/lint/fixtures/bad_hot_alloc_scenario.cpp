// Fixture: numeric std::vector scratch inside channel-pipeline loops —
// linted under a src/scenario/ path each marked line must trip
// hot-loop-alloc (the per-tick channel pipeline corrupts observations on
// every environment step and must reuse its delay-ring / perturbation
// buffers, never allocate per tick).
#include <cstddef>
#include <vector>

void corrupt_ticks(std::size_t ticks, std::size_t obs_dim) {
  for (std::size_t t = 0; t < ticks; ++t) {
    std::vector<double> delayed(obs_dim);  // BAD: per-tick delay-ring slot
    delayed[0] = static_cast<double>(t);
  }
}

void perturb_ticks(std::size_t ticks, std::size_t obs_dim) {
  std::size_t t = 0;
  while (t < ticks) {
    std::vector<double> perturbed(obs_dim);  // BAD: per-tick perturbation row
    perturbed[0] = static_cast<double>(t);
    ++t;
  }
}
