// Fixture: iterating unordered containers in a numeric path must trip
// unordered-iter (the self-test lints this file under a src/core/ relpath).
#include <string>
#include <unordered_map>
#include <unordered_set>

double bad_unordered_fixture() {
  std::unordered_map<std::string, double> weights;
  std::unordered_set<int> seen;
  double total = 0.0;
  for (const auto& kv : weights) total += kv.second;
  for (auto it = seen.begin(); it != seen.end(); ++it) total += *it;
  return total;
}
