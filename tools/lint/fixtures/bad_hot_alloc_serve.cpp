// Fixture: numeric std::vector scratch inside serving loops — linted under
// a src/serve/ path each marked line must trip hot-loop-alloc (the request
// hot path reuses gather/scatter buffers, it never allocates per request).
#include <cstddef>
#include <cstdint>
#include <vector>

void gather_rows(std::size_t pending, std::size_t obs_dim) {
  for (std::size_t r = 0; r < pending; ++r) {
    std::vector<double> obs(obs_dim);  // BAD: per-request gather row
    obs[0] = static_cast<double>(r);
  }
}

void quantize_rows(std::size_t pending, std::size_t obs_dim) {
  std::size_t r = 0;
  while (r < pending) {
    std::vector<std::int8_t> q(obs_dim);  // BAD: per-request int8 scratch
    q[0] = static_cast<std::int8_t>(r);
    ++r;
  }
}
