// Fixture: must produce ZERO findings even under a numeric-path relpath.
// Mentions of std::rand and std::thread in comments and strings exercise the
// comment/string stripper: "std::rand() is banned" is prose, not code.
#include <cmath>
#include <map>
#include <string>

namespace imap_fixture {

/* block comment naming std::random_device and std::async — not code */
const char* kBanner = "std::thread is banned here";

double clean_fixture(double a, double b) {
  std::map<std::string, double> ordered;  // deterministic iteration is fine
  double total = 0.0;
  for (const auto& kv : ordered) total += kv.second;
  if (std::abs(a - b) <= 1e-9) total += 1.0;      // tolerance compare is fine
  const bool sentinel = (a == 0.0);  // imap-lint: allow(float-eq) exact sentinel
  return sentinel ? total : total + b;
}

}  // namespace imap_fixture
