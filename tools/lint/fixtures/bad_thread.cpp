// Fixture: raw threading primitives must trip raw-thread.
#include <future>
#include <thread>

void bad_thread_fixture() {
  std::thread t([] {});
  t.detach();
  auto f = std::async(std::launch::async, [] { return 1; });
  f.get();
}
