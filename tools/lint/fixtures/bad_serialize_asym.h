#pragma once
// Fixture: declares save_state with no load_state counterpart — checkpoints
// from this class could be written but never restored.

namespace imap {

class BinaryWriter;

class HalfSerialized {
 public:
  void save_state(BinaryWriter& w) const;
};

}  // namespace imap
