// Fixture: a rollout-collect-shaped hot loop that materialises per-step
// vectors — each marked line must trigger hot-loop-alloc when linted under a
// src/rl/ or src/attack/ path (the vectorized engine's zero-allocation
// contract), and stay silent outside the hot-path layers.
#include <cstddef>
#include <vector>

double fake_step(const std::vector<double>& a) { return a.empty() ? 0.0 : a[0]; }

void collect(std::size_t steps, std::size_t adim) {
  std::vector<double> action(adim);  // hoisted scratch: fine
  double ret = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    std::vector<double> obs(adim);  // BAD: per-tick observation copy
    std::vector<double> act = action;  // BAD: per-tick action copy
    obs[0] = static_cast<double>(t);
    ret += fake_step(act);
  }
  std::size_t t = 0;
  while (t < steps) {
    std::vector<double> query(adim);  // BAD: per-query victim input
    ret += fake_step(query);
    ++t;
  }
  (void)ret;
}
