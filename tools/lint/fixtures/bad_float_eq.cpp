// Fixture: exact float comparisons must trip float-eq.
bool bad_float_eq_fixture(double x, float y) {
  if (x == 0.0) return true;
  if (y != 1.5f) return false;
  return 2.0e-3 == x;
}
