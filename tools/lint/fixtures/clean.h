#pragma once

// Fixture: a hygienic header — must produce zero findings.
#include <cstddef>

namespace imap_fixture {

inline std::size_t clean_header_fixture(std::size_t n) { return n + 1; }

}  // namespace imap_fixture
