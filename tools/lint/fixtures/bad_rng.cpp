// Fixture: every line here must trip rng-discipline.
#include <cstdlib>
#include <random>

int bad_rng_fixture() {
  std::random_device rd;
  std::mt19937 gen(rd());
  srand(42);
  return std::rand();
}
