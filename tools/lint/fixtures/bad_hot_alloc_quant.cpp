// Fixture: quantized-serving buffer types (float, int8_t/int16_t/int32_t)
// constructed inside loops — each marked line must trigger hot-loop-alloc
// when linted under a src/nn/ path. Mirrors the buffers src/nn/quant.* uses.
#include <cstddef>
#include <cstdint>
#include <vector>

void quant_serve(std::size_t batch, std::size_t pairs) {
  std::vector<float> hoisted_h(batch);              // outside any loop: fine
  thread_local std::vector<float> xf;               // function scope: fine
  xf.resize(pairs);
  for (std::size_t n = 0; n < batch; ++n) {
    std::vector<float> qscale(batch);         // BAD: fp32 scratch per query
    std::vector<std::int16_t> qx(2 * pairs);  // BAD: codes per query
    std::vector<std::int32_t> acc(pairs);     // BAD: accumulators per query
    acc[0] = static_cast<std::int32_t>(qx[0]) * static_cast<std::int32_t>(n);
    qscale[0] = static_cast<float>(acc[0]);
  }
  std::size_t k = 0;
  while (k < batch) {
    std::vector<int8_t> codes;  // BAD: unqualified fixed-width type in loop
    codes.push_back(0);
    ++k;
  }
  for (std::size_t n = 0; n < batch; ++n) {
    const std::vector<float>& ref = hoisted_h;  // reference: fine
    hoisted_h[0] = ref[0];
  }
}
