// Fixture: missing #pragma once, using namespace at header scope, and a
// parent-relative include — three header-hygiene findings.
#include "../common/rng.h"

using namespace std;

inline int bad_header_fixture() { return 0; }
