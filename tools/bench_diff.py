#!/usr/bin/env python3
"""bench_diff.py — throughput regression gate for tracked BENCH_*.json files.

Usage:
    bench_diff.py [--tolerance FRAC] REFERENCE CANDIDATE

Compares every benchmark entry present in both files. For each metric whose
name ends in ``_steps_per_s`` the candidate must reach at least
``(1 - tolerance)`` of the reference value (default tolerance: 0.10, i.e. a
>10% steps/s regression fails). Entries carrying a ``traces_identical`` flag
must also report ``true`` in the candidate — a faster-but-wrong rollout is a
failure, not a win.

Exit status: 0 when every gate passes, 1 on any regression, broken trace
or malformed input. The ci.sh bench-diff stage runs this against a
freshly probed BENCH_rollout.json from the build directory.
"""

import argparse
import json
import sys

THROUGHPUT_SUFFIX = "_steps_per_s"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if not isinstance(data, dict):
        print(f"bench_diff: {path}: expected a JSON object", file=sys.stderr)
        sys.exit(1)
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional throughput drop (default 0.10)")
    ap.add_argument("reference", help="tracked baseline JSON")
    ap.add_argument("candidate", help="freshly generated JSON to gate")
    args = ap.parse_args()

    ref = load(args.reference)
    cand = load(args.candidate)

    shared = [k for k in ref if k in cand]
    if not shared:
        print("bench_diff: no shared benchmark entries to compare",
              file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    for key in shared:
        r, c = ref[key], cand[key]
        if not isinstance(r, dict) or not isinstance(c, dict):
            continue
        if c.get("traces_identical") is False:
            print(f"FAIL {key}: candidate traces_identical is false")
            failures += 1
        for metric, r_val in r.items():
            if not metric.endswith(THROUGHPUT_SUFFIX):
                continue
            c_val = c.get(metric)
            if not isinstance(r_val, (int, float)) or \
               not isinstance(c_val, (int, float)) or r_val <= 0:
                continue
            compared += 1
            floor = (1.0 - args.tolerance) * r_val
            ratio = c_val / r_val
            verdict = "ok" if c_val >= floor else "FAIL"
            print(f"{verdict:4} {key}.{metric}: {c_val:.1f} vs "
                  f"reference {r_val:.1f} ({ratio:.2%})")
            if c_val < floor:
                failures += 1

    if compared == 0:
        print("bench_diff: no throughput metrics found to compare",
              file=sys.stderr)
        return 1
    if failures:
        print(f"bench_diff: {failures} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print(f"bench_diff: {compared} throughput metric(s) within "
          f"{args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
