// ckpt_inspect: dump the header, section table and CRC status of IMAP
// checkpoint archives (.pol / .res / .snap — anything written by the
// common/serialize Archive layer).
//
//   Usage: ckpt_inspect <archive>...
//
// The tool walks the container framing itself instead of going through
// ArchiveReader so that torn or foreign files still produce a useful
// diagnostic (magic / version / CRC status and however much of the section
// table is intact) rather than a single exception. Exit status is 0 only if
// every file verifies end to end.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace {

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

class Walker {
 public:
  explicit Walker(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > buf_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool bytes(std::size_t n, std::string* out) {
    if (pos_ + n > buf_.size()) return false;
    if (out)
      out->assign(reinterpret_cast<const char*>(buf_.data()) +
                      static_cast<std::ptrdiff_t>(pos_),
                  n);
    pos_ += n;
    return true;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Inspect one archive; returns true if it verifies end to end.
bool inspect(const std::string& path) {
  std::vector<std::uint8_t> buf;
  if (!read_file(path, buf)) {
    std::cout << path << ": cannot open\n";
    return false;
  }

  std::cout << path << ": " << buf.size() << " bytes\n";
  if (buf.size() < 4 + 8 + 8 + 4) {
    std::cout << "  TRUNCATED: smaller than the minimal archive\n";
    return false;
  }

  bool ok = true;

  // CRC first — everything below is untrustworthy if the trailer is wrong.
  const std::size_t body = buf.size() - 4;
  const std::uint32_t want = imap::crc32(buf.data(), body);
  std::uint32_t got = 0;
  for (int i = 0; i < 4; ++i)
    got |= static_cast<std::uint32_t>(buf[body + static_cast<std::size_t>(i)])
           << (8 * i);
  if (want == got) {
    std::cout << "  crc32     OK (" << std::hex << got << std::dec << ")\n";
  } else {
    std::cout << "  crc32     MISMATCH: stored " << std::hex << got
              << ", computed " << want << std::dec << " (torn write?)\n";
    ok = false;
  }

  Walker w(buf);
  std::string magic;
  w.bytes(4, &magic);
  if (magic == "IMAP") {
    std::cout << "  magic     IMAP\n";
  } else {
    std::cout << "  magic     BAD (not an IMAP archive)\n";
    return false;
  }

  std::uint64_t version = 0;
  w.u64(version);
  std::cout << "  version   " << version;
  if (version != imap::kFormatVersion) {
    std::cout << " (this build reads v" << imap::kFormatVersion << ")";
    ok = false;
  }
  std::cout << "\n";

  std::uint64_t count = 0;
  w.u64(count);
  std::cout << "  sections  " << count << "\n";
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    std::string name;
    std::uint64_t payload_len = 0;
    if (!w.u64(name_len) || !w.bytes(name_len, &name) ||
        !w.u64(payload_len) || !w.bytes(payload_len, nullptr)) {
      std::cout << "  TRUNCATED inside section " << i << "\n";
      return false;
    }
    std::cout << "    " << name;
    for (std::size_t p = name.size(); p < 24; ++p) std::cout << ' ';
    std::cout << ' ' << payload_len << " bytes\n";
  }
  if (w.pos() != body) {
    std::cout << "  TRAILING " << (body - w.pos())
              << " bytes after the section table\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ckpt_inspect <archive>...\n";
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i)
    if (!inspect(argv[i])) all_ok = false;
  return all_ok ? 0 : 1;
}
