#!/usr/bin/env python3
"""cpp_ast — the built-in C++ frontend for imap_check.

Produces a TuModel (scope tree + declarations + calls + comparisons + type
oracle) from a single C++ source file, with no compiler dependency. This is
the hermetic fallback frontend: when a clang++ binary is available,
clang_ast.py builds the same TuModel from `clang++ -Xclang -ast-dump=json`
instead (driven by the per-TU flags in compile_commands.json), and the checks
in checks.py are frontend-agnostic.

What this frontend models (enough for the five imap_check rules, far beyond
what a line regex can see):

  * a real tokenizer: comments, string/char/raw-string literals and
    preprocessor lines can never produce tokens, so no string false positives;
  * a scope tree: namespace / class / function / lambda / loop / conditional /
    block nesting, with lambda arguments attached to the call that receives
    them (`parallel_for(n, [&](std::size_t i){ ... })`);
  * declarations with resolved types: `using`/`typedef` aliases are expanded,
    `auto` is resolved through initializer construction and a return-type
    oracle (TU-local function definitions + the imap API table), so
    sugar-hidden `std::vector<double>` declarations are visible;
  * member calls with receiver expressions (`slots_[i].rng.split(g)`),
    kept in token order;
  * `==`/`!=` comparisons with both operand ranges, typed by the oracle.

Preprocessor handling: directives never produce tokens; `#if/#ifdef` chains
keep their first branch and blank `#else`/`#elif` branches (each branch is
internally brace-balanced in this tree), except a literal `#if 0`, whose else
branch is kept instead.
"""

from __future__ import annotations

import re

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

TOK_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<num>0[xX][0-9a-fA-F']+[uUlL]*|(?:\d[\d']*\.[\d']*|\.\d[\d']*|\d[\d']*)(?:[eE][-+]?\d+)?[fFlLuU]*)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<punct>::|->\*?|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|[{}()\[\];,<>=+\-*/%!&|^~?:.#@\\])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "line", "index")

    def __init__(self, kind: str, text: str, line: int, index: int = -1):
        self.kind = kind    # 'num' | 'ident' | 'punct' | 'str' | 'char'
        self.text = text
        self.line = line
        self.index = index  # position in the token stream (filled by lex)

    def __repr__(self):  # pragma: no cover - debug aid
        return f"Token({self.text!r}@{self.line})"


def _strip_comments(text: str) -> list[str]:
    """Blank comments and raw-string contents; ordinary string/char literals
    are left intact (the lexer tokenizes them, preserving e.g. archive
    section names for the serialize-symmetry check)."""
    lines = text.splitlines()
    out: list[list[str]] = [list(l) for l in lines]
    i, n = 0, len(text)
    line, col = 0, 0

    def blank(l, c):
        if out[l][c] not in "\n":
            out[l][c] = " "

    def advance(k=1):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 0
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                blank(line, col)
                advance()
            continue
        if c == "/" and nxt == "*":
            blank(line, col); advance()
            blank(line, col); advance()
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    blank(line, col)
                advance()
            if i < n:
                blank(line, col); advance()
                blank(line, col); advance()
            continue
        if c == "R" and nxt == '"':
            # Raw string literal R"delim( ... )delim" — blank to a plain ""
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                end = text.find(")" + delim + '"', i + m.end())
                end = (end + len(delim) + 2) if end != -1 else n
                first = True
                while i < end:
                    if text[i] != "\n":
                        if first:
                            out[line][col] = '"'
                            first = False
                        else:
                            blank(line, col)
                    advance()
                if line < len(out) and col > 0:
                    out[line][col - 1] = '"'
                continue
        if c == '"' or c == "'":
            quote = c
            advance()
            while i < n and text[i] != quote and text[i] != "\n":
                if text[i] == "\\":
                    advance(2)
                    continue
                advance()
            if i < n:
                advance()
            continue
        advance()
    return ["".join(l) for l in out]


def _preprocess(lines: list[str]) -> list[str]:
    """Blank preprocessor lines; keep the first live branch of #if chains."""
    out: list[str] = []
    # stack of dicts: {'keeping': bool, 'taken': bool}
    stack: list[dict] = []
    cont = False  # previous line ended with backslash (directive continuation)
    for raw in lines:
        stripped = raw.lstrip()
        is_directive = cont or stripped.startswith("#")
        cont = is_directive and raw.rstrip().endswith("\\")
        if is_directive and stripped.startswith("#"):
            d = stripped[1:].lstrip()
            if d.startswith(("if", "ifdef", "ifndef")):
                cond = d.split(None, 1)[1].strip() if " " in d else ""
                if d.startswith("if ") and cond == "0":
                    stack.append({"keeping": False, "taken": False})
                else:
                    keep = all(s["keeping"] for s in stack)
                    stack.append({"keeping": keep, "taken": keep})
            elif d.startswith("elif"):
                if stack:
                    top = stack[-1]
                    if top["taken"]:
                        top["keeping"] = False
                    else:
                        top["keeping"] = all(s["keeping"] for s in stack[:-1])
                        top["taken"] = top["keeping"]
            elif d.startswith("else"):
                if stack:
                    top = stack[-1]
                    if top["taken"]:
                        top["keeping"] = False
                    else:
                        top["keeping"] = all(s["keeping"] for s in stack[:-1])
                        top["taken"] = top["keeping"]
            elif d.startswith("endif"):
                if stack:
                    stack.pop()
            out.append("")
            continue
        if is_directive:  # continuation line of a directive
            out.append("")
            continue
        if all(s["keeping"] for s in stack):
            out.append(raw)
        else:
            out.append("")
    return out


def _scan_literal(line: str, pos: int, quote: str) -> int:
    """End index (past the closing quote) of a literal starting at pos."""
    i = pos + 1
    n = len(line)
    while i < n:
        if line[i] == "\\":
            i += 2
            continue
        if line[i] == quote:
            return i + 1
        i += 1
    return n


def lex(text: str) -> list[Token]:
    lines = _strip_comments(text)
    lines = _preprocess(lines)
    toks: list[Token] = []
    for lineno, line in enumerate(lines, 1):
        pos = 0
        n = len(line)
        while pos < n:
            ch = line[pos]
            if ch == '"':
                end = _scan_literal(line, pos, '"')
                toks.append(Token("str", line[pos:end], lineno))
                pos = end
                continue
            if ch == "'":
                end = _scan_literal(line, pos, "'")
                toks.append(Token("char", line[pos:end], lineno))
                pos = end
                continue
            m = TOK_RE.match(line, pos)
            if not m:
                pos += 1
                continue
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            toks.append(Token(m.lastgroup, m.group(), lineno))
    for idx, t in enumerate(toks):
        t.index = idx
    return toks


# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------

class Scope:
    __slots__ = ("id", "kind", "name", "parent", "params", "line",
                 "class_name", "decls", "children")

    def __init__(self, sid, kind, name, parent, line, params=None):
        self.id = sid
        self.kind = kind      # file|namespace|class|function|lambda|loop|cond|block|init|enum
        self.name = name
        self.parent = parent
        self.params = params or []
        self.line = line
        self.class_name = ""  # for function scopes: Cls of Cls::method
        self.decls: dict[str, "Decl"] = {}
        self.children: list[Scope] = []
        if parent is not None:
            parent.children.append(self)

    def chain(self):
        s = self
        while s is not None:
            yield s
            s = s.parent

    def within(self, kind: str):
        return any(s.kind == kind for s in self.chain())

    def enclosing(self, kind: str):
        for s in self.chain():
            if s.kind == kind:
                return s
        return None

    def lookup(self, name: str):
        for s in self.chain():
            if name in s.decls:
                return s.decls[name]
        return None

    def __repr__(self):  # pragma: no cover - debug aid
        return f"Scope({self.kind}:{self.name}@{self.line})"


class Decl:
    __slots__ = ("name", "type", "line", "scope", "init", "is_ref",
                 "in_loop_header")

    def __init__(self, name, type_, line, scope, init="", is_ref=False,
                 in_loop_header=False):
        self.name = name
        self.type = type_          # resolved canonical type string
        self.line = line
        self.scope = scope
        self.init = init           # initializer text (token join), '' if none
        self.is_ref = is_ref
        self.in_loop_header = in_loop_header


class Call:
    __slots__ = ("callee", "recv", "args", "line", "scope", "lambda_args",
                 "order", "stmt")

    def __init__(self, callee, recv, args, line, scope, order):
        self.callee = callee       # unqualified last name
        self.recv = recv           # receiver expression text ('' for free calls)
        self.args = args           # list of top-level argument texts
        self.line = line
        self.scope = scope
        self.lambda_args = []      # Scope objects of lambdas passed as args
        self.order = order         # token index (source order)
        self.stmt = ""             # enclosing statement text (filled later)


class Cmp:
    __slots__ = ("op", "line", "scope", "lhs", "rhs", "lhs_type", "rhs_type",
                 "lhs_lit", "rhs_lit")

    def __init__(self, op, line, scope, lhs, rhs):
        self.op = op               # '==' or '!='
        self.line = line
        self.scope = scope
        self.lhs = lhs             # list[Token]
        self.rhs = rhs             # list[Token]
        # pre-resolved operand facts (clang frontend); None = infer from
        # tokens via the builtin oracle
        self.lhs_type = None
        self.rhs_type = None
        self.lhs_lit = None
        self.rhs_lit = None


class TuModel:
    def __init__(self, path: str):
        self.path = path
        self.file_scope = Scope(0, "file", path, None, 1)
        self.scopes: list[Scope] = [self.file_scope]
        self.decls: list[Decl] = []
        self.calls: list[Call] = []
        self.cmps: list[Cmp] = []
        self.aliases: dict[str, str] = {}
        self.functions: dict[str, Scope] = {}   # qualified name -> scope
        self.func_returns: dict[str, str] = {}  # last-name -> return type
        self.classes: dict[str, Scope] = {}     # class name -> scope
        self.tokens: list[Token] = []
        self.frontend = "builtin"

    # -- type oracle -------------------------------------------------------

    def resolve_alias(self, type_str: str) -> str:
        seen = set()
        t = type_str.strip()
        while t in self.aliases and t not in seen:
            seen.add(t)
            t = self.aliases[t]
        return t

    def class_member(self, cls: str, name: str):
        sc = self.classes.get(cls)
        return sc.decls.get(name) if sc else None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

CTRL_KW = {"for", "while", "if", "switch", "catch"}
TYPE_KW = {"const", "static", "constexpr", "thread_local", "volatile",
           "mutable", "inline", "unsigned", "signed", "register", "extern"}
NOT_DECL_START = {"return", "if", "for", "while", "do", "switch", "case",
                  "break", "continue", "goto", "else", "delete", "new",
                  "throw", "using", "typedef", "public", "private",
                  "protected", "template", "typename", "friend", "operator",
                  "default", "sizeof", "static_assert", "namespace", "class",
                  "struct", "enum", "union", "co_return", "co_await"}

# Known return types of the imap API surface + std calls the checks care
# about. Keyed by method/function name; values are canonical type strings.
API_RETURNS = {
    "uniform": "double", "normal": "double", "uniform_int": "int",
    "bernoulli": "bool", "uniform_vec": "std::vector<double>",
    "normal_vec": "std::vector<double>", "next_u64": "std::uint64_t",
    "split": "imap::Rng",
    "read_u64": "std::uint64_t", "read_i64": "std::int64_t",
    "read_f64": "double", "read_bool": "bool",
    "read_string": "std::string", "read_vec": "std::vector<double>",
    "knn_distance": "double", "knn_distance_sq": "double",
    "size": "std::size_t", "abs": "double", "fabs": "double",
    "sqrt": "double", "exp": "double", "log": "double", "log1p": "double",
    "pow": "double", "tanh": "double", "min": "", "max": "",
    "to_string": "std::string", "str": "std::string",
}

FLOAT_TYPES = {"double", "float", "long double"}
INT_TYPES = {"int", "long", "short", "char", "bool", "std::size_t", "size_t",
             "std::uint64_t", "std::int64_t", "std::uint32_t", "std::int32_t",
             "std::uint16_t", "std::int16_t", "std::uint8_t", "std::int8_t",
             "uint64_t", "int64_t", "uint32_t", "int32_t", "unsigned",
             "std::ptrdiff_t", "long long", "unsigned long", "unsigned int"}


def join_tokens(toks) -> str:
    out = []
    for t in toks:
        if out and (t.kind in ("ident", "num")) and out[-1][-1:].isalnum():
            out.append(" ")
        out.append(t.text)
    return "".join(out)


def _match_forward(toks, i, open_c, close_c):
    """Index of the token matching toks[i] (an open_c); len(toks) if none."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def split_top_commas(toks):
    """Split a token list on top-level commas (tracking () [] {} <> lightly)."""
    parts, cur = [], []
    depth = 0
    angle = 0
    for k, t in enumerate(toks):
        x = t.text
        if x in "([{":
            depth += 1
        elif x in ")]}":
            depth -= 1
        elif x == "<" and k > 0 and toks[k - 1].kind == "ident":
            angle += 1
        elif x == ">" and angle > 0:
            angle -= 1
        elif x == "," and depth == 0 and angle == 0:
            parts.append(cur)
            cur = []
            continue
        cur.append(t)
    if cur or parts:
        parts.append(cur)
    return parts


def _param_names(toks):
    """Best-effort parameter names from a parameter list token range."""
    names = []
    for part in split_top_commas(toks):
        # strip default argument
        for k, t in enumerate(part):
            if t.text == "=":
                part = part[:k]
                break
        idents = [t for t in part if t.kind == "ident" and
                  t.text not in TYPE_KW and t.text != "void"]
        if idents:
            names.append(idents[-1].text)
    return names


def _parse_type_prefix(toks):
    """Parse a leading type from a statement's tokens.

    Returns (type_str, next_index, is_ref) or (None, 0, False).
    Accepts: [cv/storage]* ident(::ident)* [<...>] [&|*|&&]*
    """
    i = 0
    n = len(toks)
    while i < n and toks[i].kind == "ident" and toks[i].text in TYPE_KW:
        i += 1
    if i >= n or toks[i].kind != "ident":
        return None, 0, False
    if toks[i].text in NOT_DECL_START:
        return None, 0, False
    parts = [toks[i].text]
    i += 1
    while i + 1 < n and toks[i].text == "::" and toks[i + 1].kind == "ident":
        parts.append("::")
        parts.append(toks[i + 1].text)
        i += 2
    # template arguments
    if i < n and toks[i].text == "<":
        j = i
        depth = 0
        while j < n:
            if toks[j].text == "<":
                depth += 1
            elif toks[j].text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif toks[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            elif toks[j].text in (";", "{"):
                return None, 0, False
            j += 1
        if j >= n:
            return None, 0, False
        parts.append(join_tokens(toks[i:j + 1]))
        i = j + 1
    is_ref = False
    while i < n and toks[i].text in ("&", "*", "&&"):
        is_ref = True
        i += 1
    # multi-keyword builtin types: `long long`, `unsigned long` handled above
    type_str = "".join(parts)
    return type_str, i, is_ref


def canonical_type(t: str) -> str:
    """Normalize a type string: drop cv/ref, collapse spaces, strip imap::."""
    t = re.sub(r"\b(const|volatile|typename|struct|class)\b", " ", t)
    t = t.replace("&", " ").replace("*", " ")
    t = re.sub(r"\s+", "", t)
    t = t.replace(">>", "> >").replace(" ", "")
    t = re.sub(r"\bimap::", "", t)
    t = re.sub(r"\brl::|\bnn::|\battack::|\bcore::|\bdefense::|\benv::", "", t)
    return t


NUMERIC_ELEMS = {"double", "float", "int8_t", "int16_t", "int32_t", "int64_t",
                 "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                 "std::int8_t", "std::int16_t", "std::int32_t",
                 "std::int64_t", "std::uint8_t", "std::uint16_t",
                 "std::uint32_t", "std::uint64_t", "int", "std::size_t",
                 "size_t"}


def is_allocating_type(canon: str) -> bool:
    """Heap-allocating container/string types the hot-loop rule cares about."""
    m = re.fullmatch(r"(?:std::)?vector<(.+)>", canon)
    if m:
        inner = m.group(1).strip()
        if inner in NUMERIC_ELEMS:
            return True
        return is_allocating_type(inner)  # nested vectors allocate too
    if canon in ("std::string", "string"):
        return True
    if re.fullmatch(r"(?:std::)?basic_string<.*>", canon):
        return True
    return False


class Parser:
    def __init__(self, path: str, text: str):
        self.model = TuModel(path)
        self.toks = lex(text)
        self.model.tokens = self.toks
        self.next_scope_id = 1

    def new_scope(self, kind, name, parent, line, params=None):
        s = Scope(self.next_scope_id, kind, name, parent, line, params)
        self.next_scope_id += 1
        self.model.scopes.append(s)
        return s

    # -- main loop ---------------------------------------------------------

    def parse(self) -> TuModel:
        toks = self.toks
        n = len(toks)
        scope = self.model.file_scope
        scope_stack = [scope]
        # call_stack depth at each scope's entry: inside a lambda passed as a
        # call argument the enclosing call frame is still open, yet we are in
        # statement context — ';' terminates a statement iff the call depth
        # is back to what it was when the current scope began.
        stmt_base = [0]
        # pending scope description awaiting its '{'
        pending = None      # dict(kind=..., name=..., params=..., line=...)
        pend_oneline = []   # virtual scopes to pop at next ';' (braceless ctrl)
        ctrl = None         # dict(kind, paren_depth) while inside ctrl header
        stmt_start = 0      # token index where the current statement begins
        call_stack = []     # frames: dict(callee, recv, open_index, scope)
        i = 0

        def current():
            return scope_stack[-1]

        def finish_statement(end_i):
            nonlocal stmt_start
            stmt = toks[stmt_start:end_i]
            if stmt:
                self.handle_statement(stmt, current())
            stmt_start = end_i + 1

        while i < n:
            t = toks[i]
            x = t.text

            # -------- control headers ------------------------------------
            if ctrl is not None:
                if x == "(":
                    ctrl["depth"] += 1
                elif x == ")":
                    ctrl["depth"] -= 1
                    if ctrl["depth"] == 0:
                        hdr = toks[ctrl["open"] + 1:i]
                        kind = "loop" if ctrl["kw"] in ("for", "while") else "cond"
                        pending = {"kind": kind, "name": ctrl["kw"],
                                   "line": t.line, "header": hdr}
                        # header tokens never reach handle_statement — scan
                        # them here so `if (x == y)` comparisons and calls in
                        # conditions are part of the model
                        self._scan_cmps(hdr, current())
                        self._scan_header_calls(hdr, current())
                        ctrl = None
                        stmt_start = i + 1
                        i += 1
                        continue
                elif x == ";" and ctrl["depth"] > 0:
                    pass  # for(;;) separators
                i += 1
                continue

            if t.kind == "ident" and x in CTRL_KW:
                # `while` directly after do-loop close is a header too; fine.
                ctrl = {"kw": x, "depth": 0, "open": -1}
                # find the '('
                j = i + 1
                if j < n and toks[j].text == "(":
                    ctrl["open"] = j
                    ctrl["depth"] = 1
                    finish_statement(i)
                    i = j + 1
                    continue
                ctrl = None  # `do ... while` handled via 'do'; stray kw
                i += 1
                continue

            if t.kind == "ident" and x == "do":
                pending = {"kind": "loop", "name": "do", "line": t.line,
                           "header": []}
                finish_statement(i)
                i += 1
                continue

            if t.kind == "ident" and x == "else":
                finish_statement(i)
                pending = {"kind": "cond", "name": "else", "line": t.line,
                           "header": []}
                i += 1
                continue

            if t.kind == "ident" and x == "namespace":
                name = ""
                j = i + 1
                while j < n and toks[j].kind == "ident":
                    name += ("::" if name else "") + toks[j].text
                    j += 1
                if j < n and toks[j].text == "{":
                    pending = {"kind": "namespace", "name": name,
                               "line": t.line}
                    i = j
                    stmt_start = j
                    continue
                i += 1
                continue

            if t.kind == "ident" and x in ("class", "struct", "union", "enum"):
                # scan to the first of ; { ( =  — '{' means a definition
                j = i + 1
                name = ""
                if j < n and toks[j].text == "class":  # enum class
                    j += 1
                while j < n:
                    xt = toks[j].text
                    if xt == "{":
                        pending = {
                            "kind": "enum" if x == "enum" else "class",
                            "name": name, "line": t.line}
                        break
                    if xt in (";", "(", "=", ")"):
                        break
                    if toks[j].kind == "ident" and not name and \
                            toks[j].text not in ("final", "public", "private",
                                                 "protected", "virtual"):
                        name = toks[j].text
                    if xt == ":":
                        name = name or ""
                        # base clause: skip to '{'
                        k = j
                        while k < n and toks[k].text not in ("{", ";"):
                            k += 1
                        if k < n and toks[k].text == "{":
                            pending = {"kind": "class", "name": name,
                                       "line": t.line}
                        j = k
                        break
                    j += 1
                if pending:
                    i = j
                    stmt_start = j
                    continue
                i += 1
                continue

            # -------- lambda detection -----------------------------------
            if x == "[":
                prev = toks[i - 1] if i > 0 else None
                if i + 1 < n and toks[i + 1].text == "[":
                    # [[attribute]]
                    j = _match_forward(toks, i, "[", "]")
                    i = j + 1
                    continue
                is_subscript = prev is not None and (
                    prev.kind in ("ident", "num") or
                    prev.text in (")", "]"))
                if not is_subscript:
                    close = _match_forward(toks, i, "[", "]")
                    j = close + 1
                    params = []
                    if j < n and toks[j].text == "(":
                        pclose = _match_forward(toks, j, "(", ")")
                        params = _param_names(toks[j + 1:pclose])
                        j = pclose + 1
                    # skip specifiers: mutable noexcept -> type
                    while j < n and toks[j].text not in ("{", ";", ")", ","):
                        j += 1
                    if j < n and toks[j].text == "{":
                        lam = self.new_scope("lambda", "<lambda>", current(),
                                             t.line, params)
                        for p in params:
                            lam.decls[p] = Decl(p, "", t.line, lam)
                        if call_stack:
                            call_stack[-1]["lambdas"].append(lam)
                        scope_stack.append(lam)
                        stmt_base.append(len(call_stack))
                        stmt_start = j + 1
                        i = j + 1
                        continue
                # plain subscript or non-brace lambda: continue
                i += 1
                continue

            # -------- call tracking --------------------------------------
            if x == "(":
                callee, recv, cstart = self._callee_before(i)
                call_stack.append({
                    "callee": callee, "recv": recv, "open": i,
                    "line": t.line, "scope": current(), "lambdas": [],
                    "depth_scopes": len(scope_stack),
                })
                i += 1
                continue

            if x == ")":
                if call_stack:
                    fr = call_stack.pop()
                    if fr["callee"]:
                        args_toks = toks[fr["open"] + 1:i]
                        c = Call(fr["callee"], fr["recv"],
                                 [join_tokens(p) for p in
                                  split_top_commas(args_toks)],
                                 toks[fr["open"]].line, fr["scope"],
                                 fr["open"])
                        c.lambda_args = fr["lambdas"]
                        self.model.calls.append(c)
                    elif call_stack and fr["lambdas"]:
                        # parenthesized group: propagate lambdas outward
                        call_stack[-1]["lambdas"].extend(fr["lambdas"])
                i += 1
                continue

            # -------- braces / statements --------------------------------
            if x == "{":
                finish_statement(i)
                if pending is not None:
                    sc = self.new_scope(pending["kind"], pending["name"],
                                        current(), pending["line"])
                    if pending["kind"] == "class" and pending["name"]:
                        self.model.classes[pending["name"]] = sc
                    if pending["kind"] == "loop":
                        self._header_decls(pending.get("header") or [], sc)
                    pending = None
                else:
                    sc = self._classify_brace(i, current())
                scope_stack.append(sc)
                stmt_base.append(len(call_stack))
                stmt_start = i + 1
                i += 1
                continue

            if x == "}":
                finish_statement(i)
                # braceless-ctrl virtual scopes still open at the closing
                # brace belong to the scope being closed: unwind them first
                while pend_oneline and pend_oneline[-1] is scope_stack[-1]:
                    pend_oneline.pop()
                    scope_stack.pop()
                    stmt_base.pop()
                if len(scope_stack) > 1:
                    scope_stack.pop()
                    stmt_base.pop()
                # close any call frames opened inside the scope we just left
                while call_stack and call_stack[-1]["depth_scopes"] > len(scope_stack):
                    call_stack.pop()
                stmt_start = i + 1
                i += 1
                continue

            if x == ";" and len(call_stack) == stmt_base[-1]:
                finish_statement(i)
                while pend_oneline and pend_oneline[-1] is scope_stack[-1]:
                    pend_oneline.pop()
                    scope_stack.pop()
                    stmt_base.pop()
                i += 1
                continue

            # statement content continues
            if pending is not None and x not in ("{",):
                # braceless ctrl body: push a virtual scope for one statement
                sc = self.new_scope(pending["kind"], pending["name"],
                                    current(), pending["line"])
                if pending["kind"] == "loop":
                    self._header_decls(pending.get("header") or [], sc)
                pending = None
                scope_stack.append(sc)
                stmt_base.append(len(call_stack))
                pend_oneline.append(sc)
                stmt_start = i
                continue

            i += 1

        return self.model

    # -- helpers -----------------------------------------------------------

    def _callee_before(self, open_idx: int):
        """Extract (callee, receiver_text, start) for a '(' at open_idx."""
        toks = self.toks
        j = open_idx - 1
        if j < 0 or toks[j].kind != "ident":
            return "", "", open_idx
        callee = toks[j].text
        if callee in CTRL_KW or callee in ("return", "sizeof", "switch",
                                           "catch", "new", "delete",
                                           "static_assert", "alignof",
                                           "defined", "do", "else"):
            return "", "", open_idx
        # walk back over a qualified/receiver chain
        k = j - 1
        recv_end = k
        recv_start = None
        while k >= 0:
            xt = toks[k].text
            if xt in (".", "->", "::"):
                k -= 1
                # the thing before . / -> / :: : ident, ']' chain or ')'
                if k >= 0 and toks[k].text == "]":
                    # balanced backward over [ ]
                    depth = 0
                    while k >= 0:
                        if toks[k].text == "]":
                            depth += 1
                        elif toks[k].text == "[":
                            depth -= 1
                            if depth == 0:
                                break
                        k -= 1
                    k -= 1
                    # also the ident before the subscript
                    if k >= 0 and toks[k].kind == "ident":
                        recv_start = k
                        k -= 1
                    continue
                if k >= 0 and toks[k].kind == "ident":
                    recv_start = k
                    k -= 1
                    continue
                if k >= 0 and toks[k].text == ")":
                    # call-chain receiver: balance backwards over the
                    # argument list and keep walking so
                    # `w.section("x").write_f64(...)` yields the full chain
                    depth = 0
                    while k >= 0:
                        if toks[k].text == ")":
                            depth += 1
                        elif toks[k].text == "(":
                            depth -= 1
                            if depth == 0:
                                break
                        k -= 1
                    recv_start = k
                    k -= 1
                    if k >= 0 and toks[k].kind == "ident":
                        recv_start = k
                        k -= 1
                        continue
                    break
                break
            break
        recv = ""
        if recv_start is not None:
            recv = join_tokens(toks[recv_start:recv_end + 1])
        return callee, recv, open_idx

    def _classify_brace(self, brace_idx: int, parent: Scope) -> Scope:
        """Classify a '{' with no pending construct."""
        toks = self.toks
        # collect statement tokens backwards to last ; { } at this level
        j = brace_idx - 1
        depth = 0
        stmt = []
        while j >= 0:
            xt = toks[j].text
            if xt in (")", "]", ">"):
                depth += 1
            elif xt in ("(", "[", "<"):
                depth -= 1
            if depth == 0 and xt in (";", "{", "}"):
                break
            stmt.append(toks[j])
            j -= 1
        stmt.reverse()
        line = toks[brace_idx].line
        if not stmt:
            return self.new_scope("block", "", parent, line)
        last = stmt[-1].text
        if last in ("=", ",", "(", "[", "return") or last == "{":
            return self.new_scope("init", "", parent, line)
        # function definition? must contain a top-level (...) param list
        # find first top-level '('
        depth = 0
        first_open = -1
        for k, t in enumerate(stmt):
            if t.text == "(":
                if depth == 0 and first_open == -1:
                    first_open = k
                depth += 1
            elif t.text == ")":
                depth -= 1
        if first_open > 0 and depth == 0:
            # name = qualified ident chain right before first '(' — walk
            # ident(::ident)* backwards so the return type (`void Cls::f`)
            # is not glued onto the name
            k = first_open - 1
            name_parts = []
            if k >= 0 and stmt[k].kind == "punct" and k >= 1 and \
                    stmt[k - 1].text == "operator":
                name_parts.append(stmt[k].text)   # operator== / operator< ...
                k -= 1
            while k >= 0:
                t = stmt[k]
                if t.kind != "ident":
                    break
                name_parts.append(t.text)
                k -= 1
                if k >= 0 and stmt[k].text == "~":
                    name_parts.append("~")
                    k -= 1
                if k >= 0 and stmt[k].text == "::":
                    name_parts.append("::")
                    k -= 1
                    continue
                break
            name_parts.reverse()
            name = "".join(name_parts)
            if name and name not in ("if", "for", "while", "switch"):
                pclose = _match_forward(stmt, first_open, "(", ")")
                params = _param_names(stmt[first_open + 1:pclose])
                fn = self.new_scope("function", name, parent, line, params)
                if "::" in name:
                    fn.class_name = name.rsplit("::", 2)[0].split("<")[0] \
                        if name.count("::") == 1 else \
                        name.rsplit("::", 1)[0]
                elif parent.kind == "class":
                    fn.class_name = parent.name
                # qualify in-class definitions so same-named methods of
                # sibling classes in one TU don't overwrite each other
                qname = name if "::" in name or not fn.class_name \
                    else f"{fn.class_name}::{name}"
                self.model.functions[qname] = fn
                # record return type for the oracle (tokens before the name)
                ret_toks = stmt[:k + 1]
                rt, _, _ = _parse_type_prefix(ret_toks)
                if rt:
                    self.model.func_returns.setdefault(
                        name.split("::")[-1], canonical_type(rt))
                # parameter decls with types
                for part in split_top_commas(stmt[first_open + 1:pclose]):
                    ptype, pi, pref = _parse_type_prefix(part)
                    idents = [t for t in part if t.kind == "ident" and
                              t.text not in TYPE_KW]
                    if ptype and idents:
                        pname = idents[-1].text
                        fn.decls[pname] = Decl(pname, canonical_type(ptype),
                                               line, fn, is_ref=pref)
                return fn
        return self.new_scope("block", "", parent, line)

    def _header_decls(self, hdr, loop_scope: Scope):
        """Declarations in a for-header (incl. range-for) — marked as header
        decls so the hot-loop rule skips them (for-init runs once)."""
        if not hdr:
            return
        # range-for: `type name : container`
        depth = 0
        colon = -1
        for k, t in enumerate(hdr):
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text == ":" and depth == 0:
                # skip `::`
                colon = k
                break
        if colon > 0:
            decl_part = hdr[:colon]
            idents = [t for t in decl_part if t.kind == "ident" and
                      t.text not in TYPE_KW and t.text != "auto"]
            if idents:
                name = idents[-1].text
                container = join_tokens(hdr[colon + 1:])
                loop_scope.decls[name] = Decl(
                    name, f"element_of({container})", hdr[0].line, loop_scope,
                    in_loop_header=True)
            return
        # classic for-init: first ;-separated chunk
        init = []
        for t in hdr:
            if t.text == ";":
                break
            init.append(t)
        ty, idx, is_ref = _parse_type_prefix(init)
        if ty and idx < len(init) and init[idx].kind == "ident":
            name = init[idx].text
            loop_scope.decls[name] = Decl(
                name, canonical_type(ty), init[0].line, loop_scope,
                is_ref=is_ref, in_loop_header=True)

    def _scan_header_calls(self, hdr, scope: Scope):
        """Record calls appearing inside a control header (the main loop's
        call tracking never sees those tokens). Nested calls are found by
        visiting every '(' in the header."""
        for k, t in enumerate(hdr):
            if t.text != "(":
                continue
            prev = hdr[k - 1] if k > 0 else None
            if prev is None or prev.kind != "ident" or prev.text in CTRL_KW:
                continue
            callee, recv, _start = self._callee_before(t.index)
            if not callee:
                continue
            depth = 0
            close = None
            for j in range(k, len(hdr)):
                if hdr[j].text == "(":
                    depth += 1
                elif hdr[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        close = j
                        break
            if close is None:
                continue
            c = Call(callee, recv,
                     [join_tokens(p) for p in
                      split_top_commas(hdr[k + 1:close])],
                     t.line, scope, t.index)
            c.stmt = join_tokens(hdr)
            self.model.calls.append(c)

    # -- statement-level analysis ------------------------------------------

    def handle_statement(self, stmt, scope: Scope):
        if not stmt:
            return
        first = stmt[0]
        # alias directives
        if first.text == "using" and len(stmt) >= 3:
            if stmt[1].text == "namespace":
                return
            if any(t.text == "=" for t in stmt):
                eq = next(k for k, t in enumerate(stmt) if t.text == "=")
                name = stmt[eq - 1].text
                target, _, _ = _parse_type_prefix(stmt[eq + 1:])
                if target:
                    self.model.aliases[name] = canonical_type(target)
            return
        if first.text == "typedef":
            ty, idx, _ = _parse_type_prefix(stmt[1:])
            rest = stmt[1 + idx:]
            if ty and rest and rest[-1].kind == "ident":
                self.model.aliases[rest[-1].text] = canonical_type(ty)
            return

        in_code = scope.within("function") or scope.within("lambda")
        in_class = scope.kind == "class"
        if (in_class or scope.kind in ("file", "namespace")) and \
                self._scan_prototype(stmt):
            return
        if in_code or in_class:
            self._scan_decl(stmt, scope)
        if in_code:
            self._scan_cmps(stmt, scope)
            # attach the statement text to calls that start inside it
            lo, hi = stmt[0].index, stmt[-1].index
            text = join_tokens(stmt)
            for c in self.model.calls:
                if lo <= c.order <= hi and not c.stmt:
                    c.stmt = text

    def _scan_prototype(self, stmt) -> bool:
        """`Type name(params...) [const...];` at class/namespace/file scope is
        a function prototype: record its return type so sugar call sites
        (`auto a = policy.act(...)`) resolve through the oracle. Returns True
        when the statement was consumed as a prototype. (In-class members
        cannot use paren-init, so `Type name(` at class scope is always a
        declaration of a function, never of a variable.)"""
        ty, idx, _ = _parse_type_prefix(stmt)
        if not ty or idx >= len(stmt):
            return False
        t = stmt[idx]
        if t.kind != "ident" or t.text in NOT_DECL_START:
            return False
        if idx + 1 >= len(stmt) or stmt[idx + 1].text != "(":
            return False
        close = _match_forward(stmt, idx + 1, "(", ")")
        # after the param list: only cv/ref/noexcept/override/= 0/attributes
        for k in range(close + 1, len(stmt)):
            x = stmt[k].text
            if x == "{" or x == "=" and k + 1 < len(stmt) and \
                    stmt[k + 1].text not in ("0", "default", "delete"):
                return False
        canon = canonical_type(self.model.resolve_alias(canonical_type(ty)))
        if canon and canon != "auto":
            self.model.func_returns.setdefault(t.text, canon)
        return True

    def _scan_decl(self, stmt, scope: Scope):
        ty, idx, is_ref = _parse_type_prefix(stmt)
        if not ty or idx >= len(stmt):
            return
        t = stmt[idx]
        if t.kind != "ident" or t.text in NOT_DECL_START:
            return
        nxt = stmt[idx + 1].text if idx + 1 < len(stmt) else ";"
        if nxt not in ("=", ";", "(", "{", ",", "["):
            return
        # looks like `Type name ...` — could still be an expression like
        # `a * b;` but _parse_type_prefix already rejected operators.
        name = t.text
        init = join_tokens(stmt[idx + 1:]) if idx + 1 < len(stmt) else ""
        # storage-class qualifiers are stripped from the type by
        # _parse_type_prefix; carry them on the init string so checks can
        # see e.g. a `static` in-loop declaration (allocates only once).
        for q in ("thread_local", "static"):
            if any(tok.text == q for tok in stmt[:idx]):
                init = f"{q} {init}"
        canon = canonical_type(self.model.resolve_alias(canonical_type(ty)))
        if canon == "auto":
            inferred = self.infer_expr_type(stmt[idx + 2:], scope) \
                if nxt == "=" else ""
            canon = inferred or "auto"
        d = Decl(name, canon, t.line, scope, init=init, is_ref=is_ref)
        scope.decls[name] = d
        self.model.decls.append(d)
        # additional declarators: `double a = 1, b = 2;` / `T x_, y_;`
        depth = 0
        k = idx + 1
        while k < len(stmt):
            x = stmt[k].text
            if x in "([{":
                depth += 1
            elif x in ")]}":
                depth -= 1
            elif x == "," and depth == 0:
                ref2 = False
                k += 1
                while k < len(stmt) and stmt[k].text in ("&", "*", "&&"):
                    ref2 = True
                    k += 1
                if k < len(stmt) and stmt[k].kind == "ident":
                    d2 = Decl(stmt[k].text, canon, stmt[k].line, scope,
                              is_ref=is_ref or ref2)
                    scope.decls[d2.name] = d2
                    self.model.decls.append(d2)
                continue
            k += 1

    def _scan_cmps(self, stmt, scope: Scope):
        depth = 0
        for k, t in enumerate(stmt):
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
            elif t.text in ("==", "!="):
                lhs = self._operand(stmt, k, -1)
                rhs = self._operand(stmt, k, +1)
                if lhs and rhs:
                    self.model.cmps.append(
                        Cmp(t.text, t.line, scope, lhs, rhs))

    @staticmethod
    def _operand(stmt, op_idx, direction):
        """Token range of the comparison operand next to stmt[op_idx]."""
        stop_ops = {",", ";", "&&", "||", "?", ":", "==", "!=", "=", "<=",
                    ">=", "return"}
        out = []
        depth = 0
        k = op_idx + direction
        while 0 <= k < len(stmt):
            x = stmt[k].text
            if direction < 0:
                if x in ")]":
                    depth += 1
                elif x in "([":
                    if depth == 0:
                        break
                    depth -= 1
            else:
                if x in "([":
                    depth += 1
                elif x in ")]":
                    if depth == 0:
                        break
                    depth -= 1
            if depth == 0 and x in stop_ops:
                break
            out.append(stmt[k])
            k += direction
        if direction < 0:
            out.reverse()
        return out

    # -- expression typing --------------------------------------------------

    def infer_expr_type(self, toks, scope: Scope) -> str:
        """Best-effort type of an expression token range. '' = unknown."""
        # peel fully-enclosing parens only — inner parens are structure
        # (constructor / call argument lists) the patterns below rely on
        while len(toks) >= 2 and toks[0].text == "(":
            depth = 0
            enclosing = False
            for k, t in enumerate(toks):
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        enclosing = k == len(toks) - 1
                        break
            if not enclosing:
                break
            toks = toks[1:-1]
        if not toks:
            return ""
        m = self.model
        # literal?
        if len(toks) == 1:
            t = toks[0]
            if t.kind == "num":
                return "double" if is_float_literal(t.text) else "int"
            if t.kind == "ident":
                d = scope.lookup(t.text)
                if d is None:
                    fn = scope.enclosing("function")
                    if fn is not None and fn.class_name:
                        d = m.class_member(fn.class_name, t.text)
                if d is not None and d.type:
                    return m.resolve_alias(d.type)
                return ""
            return ""
        # cast
        if toks[0].text in ("static_cast", "reinterpret_cast", "const_cast"):
            for k, t in enumerate(toks):
                if t.text == "<":
                    ty, _, _ = _parse_type_prefix(toks[k + 1:])
                    return canonical_type(ty) if ty else ""
            return ""
        # explicit construction  Type{...} / Type(...)
        ty, idx, _ = _parse_type_prefix(toks)
        if ty and idx < len(toks) and toks[idx].text in ("(", "{"):
            # `name(...)` is ambiguous between construction and a plain
            # call; a non-template name that is a known function (and not
            # a known class or alias) is a call — use its return type
            # (covers `make_row(n)` and qualified `std::sqrt(x)`).
            tail = ty.rsplit("::", 1)[-1]
            if ("<" not in ty and ty not in m.classes
                    and ty not in m.aliases and tail not in m.classes):
                rt = m.func_returns.get(ty) or m.func_returns.get(tail) \
                    or API_RETURNS.get(tail, "")
                if rt:
                    return canonical_type(m.resolve_alias(rt))
            return canonical_type(m.resolve_alias(canonical_type(ty)))
        # trailing call:  recv.method(...) or fn(...)
        # find last ident followed by '('
        for k in range(len(toks) - 1):
            if toks[k].kind == "ident" and toks[k + 1].text == "(":
                name = toks[k].text
                rt = m.func_returns.get(name) or API_RETURNS.get(name, "")
                if rt:
                    return canonical_type(m.resolve_alias(rt))
                # element accessors: the result type is the container's
                # template argument (`v.front()` on vector<double> → double)
                if name in ("front", "back", "at") and k >= 2 and \
                        toks[k - 1].text in (".", "->"):
                    base_t = self.infer_expr_type(toks[:k - 1], scope)
                    em = re.match(r"(?:std::)?(?:vector|array|deque|span)"
                                  r"\s*<\s*([^,>]+)", base_t or "")
                    if em:
                        return canonical_type(em.group(1).strip())
                break
        # member access  x.y
        if (len(toks) >= 3 and toks[-2].text in (".", "->") and
                toks[-1].kind == "ident"):
            base_t = self.infer_expr_type(toks[:-2], scope)
            if base_t:
                d = m.class_member(base_t.split("<")[0], toks[-1].text)
                if d and d.type:
                    return m.resolve_alias(d.type)
            return ""
        # arithmetic: float if any float operand and only arith operators
        ops = {"+", "-", "*", "/", "%"}
        has_float = False
        all_known = True
        for t in toks:
            if t.kind == "num":
                if is_float_literal(t.text):
                    has_float = True
            elif t.kind == "ident":
                sub = self.infer_expr_type([t], scope)
                if sub in FLOAT_TYPES:
                    has_float = True
                elif not sub:
                    all_known = False
            elif t.text not in ops and t.text not in ("(", ")", "[", "]",
                                                      ".", "::", "->"):
                all_known = False
        if has_float:
            return "double"
        if all_known:
            return "int"
        return ""


def is_float_literal(text: str) -> bool:
    if text.startswith(("0x", "0X")):
        return False
    t = text.rstrip("fFlL")
    return "." in t or "e" in t or "E" in t


def merge_model(dst: TuModel, src: TuModel) -> None:
    """Merge the cross-TU facts of `src` (a header) into `dst`: class member
    tables, type aliases and function return types — the information a .cpp
    needs to type expressions over classes declared in its headers."""
    for name, sc in src.classes.items():
        dst.classes.setdefault(name, sc)
    for name, target in src.aliases.items():
        dst.aliases.setdefault(name, target)
    for name, ret in src.func_returns.items():
        dst.func_returns.setdefault(name, ret)


def parse_file(path: str, text: str | None = None,
               seed: TuModel | None = None) -> TuModel:
    """Parse one file. `seed` pre-loads cross-TU facts (header classes,
    aliases, return types) into the parser so auto-inference and member
    typing can use them *during* the parse, not just after a merge."""
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    p = Parser(path, text)
    if seed is not None:
        merge_model(p.model, seed)
    return p.parse()
