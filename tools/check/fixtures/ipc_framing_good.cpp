// Fixture: descriptor I/O shapes the ipc-framing rule must NOT flag — the
// sanctioned framing layer's byte-pointer plumbing, member send/recv on a
// Channel, and non-I/O identifiers that happen to share the names. Zero
// findings.
#include <cstddef>
#include <cstdint>
#include <unistd.h>

namespace imap {

// Byte-pointer plumbing: what proc.cpp's write_all/read_upto do. The buffer
// is an opaque byte cursor, the size is a runtime count — no object layout
// crosses the descriptor.
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const auto rc = ::write(fd, p + off, n - off);
    if (rc <= 0) return false;
    off += static_cast<std::size_t>(rc);
  }
  return true;
}

std::size_t read_upto(int fd, std::uint8_t* p, std::size_t n) {
  const auto rc = ::read(fd, p, n);
  return rc > 0 ? static_cast<std::size_t>(rc) : 0;
}

// Member send/recv are somebody's API (proc::Channel), not descriptor I/O.
struct Channel {
  bool send(const std::uint8_t* bytes, std::size_t n);
  bool recv(std::uint8_t* bytes, std::size_t n);
};

bool relay(Channel& ch, const std::uint8_t* frame, std::size_t n) {
  if (!ch.send(frame, n)) return false;
  std::uint8_t echo[16];
  return ch.recv(echo, sizeof(echo) <= n ? 16 : n);
}

}  // namespace imap
