// Fixture: the comparisons that must stay quiet — tolerance checks, integer
// equality, and exact sentinel compares under an inline suppression.
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace imap {

bool tolerance_compare(double a, double b) {
  return std::abs(a - b) < 1e-12;  // OK: tolerance, not equality
}

bool integer_compare(std::int64_t n, std::size_t m) {
  return n == static_cast<std::int64_t>(m);  // OK: integral
}

bool exact_sentinel(double x) {
  // OK: comparing against the exact stored sentinel is intentional here
  return x == -1.0;  // imap-check: allow(float-eq)
}

bool bit_identical(double a, double b) {
  // OK: bit-pattern compare is the sanctioned exactness test
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

}  // namespace imap
