// Fixture: round-trip-correct serialization — symmetric member order,
// temp-then-move loads, and named sections (cross-section order is free
// because sections are random-access by name). Zero findings.
#include "common/serialize.h"
#include <cstdint>
#include <utility>
#include <vector>

namespace imap {

class Symmetric {
 public:
  void save_state(BinaryWriter& w) const {
    w.write_u64(n_);
    w.write_f64(mean_);
    w.write_f64(m2_);
  }
  void load_state(BinaryReader& r) {
    n_ = r.read_u64();
    mean_ = r.read_f64();
    m2_ = r.read_f64();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

class TempThenMove {
 public:
  void save_state(BinaryWriter& w) const { w.write_vec_f64(data_); }
  void load_state(BinaryReader& r) {
    auto data = r.read_vec_f64();  // OK: temp resolves to data_ via move
    data_ = std::move(data);
  }

 private:
  std::vector<double> data_;
};

class Sectioned {
 public:
  void save_state(BinaryWriter& w) const {
    w.section("stats").write_f64(mean_);
    w.section("meta").write_u64(n_);
  }
  void load_state(BinaryReader& r) {
    // OK: opposite section order — sections are random-access by name
    n_ = r.section("meta").read_u64();
    mean_ = r.section("stats").read_f64();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
};

}  // namespace imap
