// Fixture: banned nondeterminism sources in src/ — wall-clock seeds, libc
// rand, std engines. Every marked line must trip nondet-source.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace imap {

unsigned wall_clock_seed() {
  auto t = std::chrono::steady_clock::now();  // BAD: wall clock
  (void)t;
  return static_cast<unsigned>(time(nullptr));  // BAD: libc time
}

int libc_rand() {
  srand(42);          // BAD: libc srand
  return std::rand(); // BAD: libc rand (std-qualified)
}

double std_engine() {
  std::random_device rd;  // BAD: hardware entropy
  std::mt19937_64 gen(rd());  // BAD: std engine, not the project Rng
  return static_cast<double>(gen());
}

}  // namespace imap
