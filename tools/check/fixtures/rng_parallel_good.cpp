// Fixture: the sanctioned slot-keyed patterns — zero rng-parallel findings.
#include "common/rng.h"
#include "common/thread_pool.h"
#include <cstddef>
#include <vector>

namespace imap {

void slot_keyed_split(Rng& rng, std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    Rng local = rng.split(i);  // OK: split is seed-pure, key is the slot
    out[i] = local.uniform(0.0, 1.0);
  });
}

void presplit_streams(Rng& rng, std::vector<double>& out) {
  std::vector<Rng> streams;
  streams.reserve(out.size());
  for (std::size_t g = 0; g < out.size(); ++g)
    streams.push_back(rng.split(g));  // OK: engine untouched, serial region
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = streams[i].uniform(0.0, 1.0);  // OK: per-slot stream
  });
}

void serial_draws_are_fine(Rng& rng, std::vector<double>& out) {
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = rng.normal();  // OK: serial loop, deterministic order
}

void pure_parallel_work(std::vector<double>& out) {
  parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;  // OK: no randomness at all
  });
}

}  // namespace imap
