// Fixture: the hoisted / non-allocating forms — zero hot-loop-alloc findings
// even under a src/nn/ path.
#include <cstddef>
#include <string>
#include <vector>

namespace imap {

using Buffer = std::vector<double>;

void hoisted_buffers(std::size_t n) {
  Buffer row(n);             // OK: hoisted, reused across iterations
  std::string label;         // OK: hoisted
  for (std::size_t i = 0; i < n; ++i) {
    row.assign(n, 0.0);      // OK: assign reuses capacity
    label.assign("row");
    const Buffer& view = row;          // OK: reference, no allocation
    double acc = view[0];              // OK: scalar
    auto count = row.size();           // OK: auto resolves to size_t
    row[0] = acc + static_cast<double>(count);
  }
  for (std::size_t i = 0; i < n; ++i) {
    static std::vector<double> lut(n); // OK: static — allocated once
    row[0] += lut.empty() ? 0.0 : lut[0];
  }
}

}  // namespace imap
