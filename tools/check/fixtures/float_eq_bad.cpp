// Fixture: floating equality on computed expressions — type information the
// regex linter lacks (it only sees float *literals*). Every marked line must
// trip float-eq.
#include <cmath>
#include <vector>

namespace imap {

using Reward = double;

bool computed_compare(double a, double b) {
  double sum = a + b;
  return sum == a * 2.0;  // BAD: computed double vs computed double
}

bool alias_compare(Reward r, double target) {
  return r != target;  // BAD: alias of double vs double
}

bool call_result_compare(const std::vector<double>& v, double x) {
  if (std::sqrt(x) == v.front())  // BAD: call results, both floating
    return true;
  while (x * 0.5 != v.back())  // BAD: inside a loop header
    x *= 0.5;
  return false;
}

}  // namespace imap
