// Minimal stand-in for the AVX2 kernel TU (kernel-flags tests).
namespace imap::kernel {
double affine_avx2_stub(double w, double x, double b) { return w * x + b; }
}  // namespace imap::kernel
