// Minimal stand-in for the scalar reference kernel TU (kernel-flags tests).
namespace imap::kernel {
double affine_stub(double w, double x, double b) { return w * x + b; }
}  // namespace imap::kernel
