// Minimal stand-in for the int8 quantization TU (kernel-flags tests).
namespace imap::kernel {
int quantize_stub(double x, double scale) {
  return static_cast<int>(x / scale);
}
}  // namespace imap::kernel
