// Fixture: the allocation-free counterpart of hot_alloc_serve_bad.cpp —
// hoisted and thread_local buffers resized per request. Must stay clean
// under a src/serve/ path.
#include <cstddef>
#include <string>
#include <vector>

namespace imap {

void answer_requests(std::size_t pending, std::size_t act_dim) {
  std::vector<double> action;  // hoisted: capacity survives the loop
  std::string response;
  for (std::size_t r = 0; r < pending; ++r) {
    action.assign(act_dim, 0.0);
    response.clear();
    response += 'a';
    action[0] = static_cast<double>(response.size());
  }
}

void scatter_batch(std::size_t rows, std::size_t act_dim) {
  thread_local std::vector<double> out;  // per-thread reusable scratch
  std::size_t i = 0;
  while (i < rows) {
    out.assign(act_dim, 0.0);
    out[0] = static_cast<double>(i);
    ++i;
  }
}

}  // namespace imap
