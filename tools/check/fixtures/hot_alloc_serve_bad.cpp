// Fixture: serving-loop shapes — per-request scratch constructed inside the
// dispatch/scatter loops of a request handler. Checked under a src/serve/
// path, every marked line must trip hot-loop-alloc; the serving hot path
// answers thousands of requests per second and must reuse its buffers.
#include <cstddef>
#include <string>
#include <vector>

namespace imap {

void answer_requests(std::size_t pending, std::size_t act_dim) {
  for (std::size_t r = 0; r < pending; ++r) {
    std::vector<double> action(act_dim);  // BAD: per-request action row
    std::string response;                 // BAD: per-request response text
    response += 'a';
    action[0] = static_cast<double>(response.size());
  }
}

void scatter_batch(std::size_t rows, std::size_t act_dim) {
  std::size_t i = 0;
  while (i < rows) {
    std::vector<double> out(act_dim);  // BAD: per-row scatter buffer
    out[0] = static_cast<double>(i);
    ++i;
  }
}

}  // namespace imap
