// Fixture: the allocation-free counterpart of hot_alloc_scenario_bad.cpp —
// hoisted ring/scratch buffers assigned per tick, the way ChannelPipeline
// actually works. Must stay clean under a src/scenario/ path.
#include <cstddef>
#include <vector>

namespace imap {

void corrupt_observations(std::size_t ticks, std::size_t obs_dim) {
  std::vector<double> delayed;  // hoisted: capacity survives the loop
  std::vector<double> noisy;
  for (std::size_t t = 0; t < ticks; ++t) {
    delayed.assign(obs_dim, 0.0);
    noisy.assign(obs_dim, 0.0);
    noisy[0] = delayed.size() > 0 ? 1.0 : 0.0;
  }
}

void perturb_actions(std::size_t ticks, std::size_t act_dim) {
  thread_local std::vector<double> out;  // per-thread reusable scratch
  std::size_t t = 0;
  while (t < ticks) {
    out.assign(act_dim, 0.0);
    out[0] = static_cast<double>(t);
    ++t;
  }
}

}  // namespace imap
