// Fixture: fused multiply-add intrinsics — banned everywhere in src/ because
// fused results differ from mul-then-add and break cross-ISA bit-identity.
// The integer madd and non-fused NEON forms must stay quiet. (No #if arch
// gates here: the builtin frontend keeps only the first branch of an #if
// chain, so each variant lives in its own unconditional function.)
#include <cstddef>

namespace imap {

void avx2_kernel_stub(const float* a, const float* b, float* acc) {
  __m256 va = _mm256_loadu_ps(a);
  __m256 vb = _mm256_loadu_ps(b);
  __m256 vc = _mm256_loadu_ps(acc);
  vc = _mm256_fmadd_ps(va, vb, vc);   // BAD: fused multiply-add
  vc = _mm256_fnmsub_ps(va, vb, vc);  // BAD: fused negated multiply-sub
  _mm256_storeu_ps(acc, vc);
}

void avx512_masked_stub(const double* a, const double* b, double* acc) {
  __m512d va = _mm512_loadu_pd(a);
  __m512d vb = _mm512_loadu_pd(b);
  __m512d vc = _mm512_loadu_pd(acc);
  vc = _mm512_mask_fmadd_pd(va, 0xFF, vb, vc);  // BAD: masked fused form
  _mm512_storeu_pd(acc, vc);
}

void neon_kernel_stub(const float* a, const float* b, float* acc) {
  float32x4_t va = vld1q_f32(a);
  float32x4_t vb = vld1q_f32(b);
  float32x4_t vc = vld1q_f32(acc);
  vc = vfmaq_f32(vc, va, vb);  // BAD: NEON vfma is fused
  vc = vmlaq_f32(vc, va, vb);  // OK: vmla lowers to separate mul+add
  vst1q_f32(acc, vc);
}

void libm_stub(const double* a, const double* b, double* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    acc[i] = std::fma(a[i], b[i], acc[i]);  // BAD: libm fma is fused too
}

void integer_madd_ok(const void* a, const void* b) {
  // OK: _mm256_madd_epi16 is an exact integer op, not floating FMA
  __m256i va = _mm256_loadu_si256((const __m256i*)a);
  __m256i vb = _mm256_loadu_si256((const __m256i*)b);
  __m256i prod = _mm256_madd_epi16(va, vb);
  (void)prod;
}

}  // namespace imap
